"""Population-count strategies (Section IV-B of the paper).

The paper contrasts three ways to count set bits:

- a **naive** per-word loop (Wegner's trick) — the slow baseline whose
  cost blows up with chunk size in Fig. 8;
- the JVM **builtin** ``Long.bitCount`` intrinsic — here, Python's
  ``int.bit_count``;
- a **vectorized** counter in the spirit of the Muła/Kurz/Lemire AVX2
  algorithm — here, a numpy byte-LUT gather that processes every word of
  the mask in one shot (the closest pure-numpy analogue of SIMD).

For chunks larger than 64 words the paper adds *milestones*: cumulative
counts stored every 64 words so a random-access rank only scans one
64-word block. :class:`Milestones` implements that.
"""

from __future__ import annotations

import threading

import numpy as np

WORD_BITS = 64
MILESTONE_STRIDE_WORDS = 64


class RankCounters(threading.local):
    """Lightweight, thread-local rank-query counters.

    Every ``rank`` entry point in the bitmask package bumps one of
    these plain-int attributes — an unlocked, thread-local increment,
    cheap enough to stay on even in hot loops. Being thread-local,
    a task (which runs entirely on one thread) can attribute the
    queries *it* issued by diffing :func:`rank_counts` before/after,
    and the counts are identical between the serial and threaded
    schedulers. The tracing layer uses exactly that to annotate fused
    ChunkPlan spans.
    """

    def __init__(self):
        self.bitmask_rank = 0       # Bitmask.rank calls (any strategy)
        self.milestone_rank = 0     # Milestones.rank calls
        self.hierarchical_rank = 0  # HierarchicalBitmask.rank calls


RANK_COUNTERS = RankCounters()


def rank_counts() -> dict:
    """The calling thread's rank-query counts (a plain dict copy)."""
    counters = RANK_COUNTERS
    return {
        "bitmask_rank": counters.bitmask_rank,
        "milestone_rank": counters.milestone_rank,
        "hierarchical_rank": counters.hierarchical_rank,
    }


def reset_rank_counts() -> None:
    """Zero the calling thread's rank-query counters."""
    counters = RANK_COUNTERS
    counters.bitmask_rank = 0
    counters.milestone_rank = 0
    counters.hierarchical_rank = 0

# one byte -> number of set bits
_BYTE_POPCOUNT = np.array(
    [bin(i).count("1") for i in range(256)], dtype=np.uint8
)


def popcount_word(word: int) -> int:
    """Set bits in a single 64-bit word via the builtin intrinsic."""
    return int(word).bit_count()


def popcount_words_naive(words: np.ndarray) -> int:
    """Wegner's loop per word: clear the lowest set bit until zero.

    Deliberately the slow path — this is the paper's "naive" series in
    Fig. 8, kept as a measurable baseline.
    """
    total = 0
    for word in words:
        w = int(word)
        while w:
            w &= w - 1
            total += 1
    return total


def popcount_words_builtin(words: np.ndarray) -> int:
    """Per-word ``int.bit_count`` (the JVM-intrinsic analogue).

    Deliberately per-word — that is the strategy being measured — but
    ``tolist()`` converts the whole array to Python ints in one C call
    instead of boxing one numpy scalar per loop iteration.
    """
    return sum(word.bit_count() for word in words.tolist())


def popcount_words_vectorized(words: np.ndarray) -> int:
    """Whole-array popcount through a byte-LUT gather (the "SIMD" path)."""
    if words.size == 0:
        return 0
    return int(_BYTE_POPCOUNT[words.view(np.uint8)].sum(dtype=np.int64))


def per_word_popcounts(words: np.ndarray) -> np.ndarray:
    """Vector of set-bit counts, one entry per word."""
    if words.size == 0:
        return np.zeros(0, dtype=np.int64)
    per_byte = _BYTE_POPCOUNT[words.view(np.uint8)]
    return per_byte.reshape(words.size, 8).sum(axis=1, dtype=np.int64)


def cumulative_popcounts(words: np.ndarray) -> np.ndarray:
    """Exclusive prefix sums of per-word popcounts (length ``size + 1``)."""
    counts = per_word_popcounts(words)
    out = np.zeros(words.size + 1, dtype=np.int64)
    np.cumsum(counts, out=out[1:])
    return out


class Milestones:
    """Cumulative popcounts every ``stride`` words.

    ``rank(words, bit_pos)`` then touches at most one stride of words
    instead of everything before ``bit_pos`` — constant-ish time for any
    chunk size, as Section IV-B-2 requires.
    """

    def __init__(self, words: np.ndarray,
                 stride_words: int = MILESTONE_STRIDE_WORDS):
        if stride_words <= 0:
            raise ValueError("stride_words must be positive")
        self.stride_words = stride_words
        counts = per_word_popcounts(words)
        num_blocks = (words.size + stride_words - 1) // stride_words
        self._block_prefix = np.zeros(num_blocks + 1, dtype=np.int64)
        if num_blocks:
            # per-block sums in one reduceat, prefix in one cumsum — no
            # Python loop over blocks
            starts = np.arange(num_blocks, dtype=np.intp) * stride_words
            block_sums = np.add.reduceat(counts, starts)
            np.cumsum(block_sums, out=self._block_prefix[1:])

    @property
    def nbytes(self) -> int:
        return int(self._block_prefix.nbytes)

    def total(self) -> int:
        return int(self._block_prefix[-1])

    def rank(self, words: np.ndarray, bit_pos: int) -> int:
        """Set bits strictly before ``bit_pos``."""
        RANK_COUNTERS.milestone_rank += 1
        if bit_pos <= 0:
            return 0
        word_index, bit_offset = divmod(bit_pos, WORD_BITS)
        block = word_index // self.stride_words
        count = int(self._block_prefix[block])
        lo = block * self.stride_words
        if word_index > lo:
            count += popcount_words_vectorized(words[lo:word_index])
        if bit_offset and word_index < words.size:
            partial = int(words[word_index]) & ((1 << bit_offset) - 1)
            count += partial.bit_count()
        return count
