"""Sequential access with delta counting (Section IV-B-1).

Operators that scan all cells (Filter, Aggregator) access bitmask
positions in increasing order. Recomputing a full rank per position would
be quadratic; the cursor instead remembers the rank at its last position
and only counts the bits in between — the paper's *delta count*.
"""

from __future__ import annotations

from repro.bitmask.bitmask import Bitmask
from repro.bitmask.popcount import WORD_BITS
from repro.errors import ArrayError


class SequentialCursor:
    """Monotone rank queries over a bitmask in O(delta) each.

    ``rank_at(pos)`` returns the number of set bits strictly before
    ``pos`` and requires the positions of successive calls to be
    non-decreasing. ``next_valid(pos)`` finds the first set bit at or
    after ``pos``.
    """

    def __init__(self, bitmask: Bitmask):
        self._bitmask = bitmask
        self._position = 0
        self._rank = 0

    @property
    def position(self) -> int:
        return self._position

    def rank_at(self, position: int) -> int:
        if position < self._position:
            raise ArrayError(
                "sequential cursor moved backwards: "
                f"{position} < {self._position}"
            )
        position = min(position, self._bitmask.num_bits)
        words = self._bitmask.words
        pos = self._position
        rank = self._rank
        # finish the current partial word
        while pos < position and pos % WORD_BITS:
            if (int(words[pos // WORD_BITS]) >> (pos % WORD_BITS)) & 1:
                rank += 1
            pos += 1
        # whole words via the builtin popcount
        while position - pos >= WORD_BITS:
            rank += int(words[pos // WORD_BITS]).bit_count()
            pos += WORD_BITS
        # trailing partial word
        if pos < position:
            word = int(words[pos // WORD_BITS])
            offset = pos % WORD_BITS
            span = position - pos
            partial = (word >> offset) & ((1 << span) - 1)
            rank += partial.bit_count()
            pos = position
        self._position = pos
        self._rank = rank
        return rank

    def next_valid(self, position: int) -> int:
        """First set-bit position >= ``position``; -1 when none remains."""
        num_bits = self._bitmask.num_bits
        words = self._bitmask.words
        pos = max(position, 0)
        while pos < num_bits:
            word_index, offset = divmod(pos, WORD_BITS)
            word = int(words[word_index]) >> offset
            if word:
                lowest = (word & -word).bit_length() - 1
                candidate = pos + lowest
                return candidate if candidate < num_bits else -1
            pos = (word_index + 1) * WORD_BITS
        return -1

    def iter_valid(self):
        """Yield ``(position, payload_rank)`` for every set bit, in order.

        The payload rank is exactly the index of the cell's value in a
        sparse chunk's payload array.
        """
        pos = self.next_valid(self._position)
        while pos != -1:
            yield pos, self.rank_at(pos)
            pos = self.next_valid(pos + 1)
