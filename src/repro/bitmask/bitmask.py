"""The Bitmask: one validity bit per cell, packed into 64-bit words.

Bit *i* lives in word ``i // 64`` at (little-endian) bit position
``i % 64``, which lines up with ``numpy.packbits(bitorder="little")`` so
conversions to and from boolean arrays are single vectorized calls.

``rank`` (population count up to a position) is the operation everything
else in Spangle leans on: a sparse chunk finds a cell's payload slot by
ranking its bitmask. The ``strategy`` argument selects between the
paper's naive / builtin / vectorized / milestone implementations so the
Fig. 8 benchmark can compare them on the same data.
"""

from __future__ import annotations

import numpy as np

from repro.bitmask.popcount import (
    RANK_COUNTERS,
    WORD_BITS,
    Milestones,
    popcount_words_builtin,
    popcount_words_naive,
    popcount_words_vectorized,
)
from repro.errors import ArrayError

_STRATEGIES = ("vectorized", "builtin", "naive", "milestone")


def _words_for_bits(num_bits: int) -> int:
    return (num_bits + WORD_BITS - 1) // WORD_BITS


class Bitmask:
    """A fixed-length bitmask over ``num_bits`` cells."""

    __slots__ = ("_words", "num_bits", "_milestones")

    def __init__(self, num_bits: int, words: np.ndarray = None):
        if num_bits < 0:
            raise ArrayError(f"num_bits must be >= 0, got {num_bits}")
        self.num_bits = num_bits
        if words is None:
            words = np.zeros(_words_for_bits(num_bits), dtype=np.uint64)
        else:
            words = np.ascontiguousarray(words, dtype=np.uint64)
            if words.size != _words_for_bits(num_bits):
                raise ArrayError(
                    f"{num_bits} bits need {_words_for_bits(num_bits)} "
                    f"words, got {words.size}"
                )
        self._words = words
        self._milestones = None
        self._mask_tail()

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def zeros(cls, num_bits: int) -> "Bitmask":
        return cls(num_bits)

    @classmethod
    def ones(cls, num_bits: int) -> "Bitmask":
        words = np.full(_words_for_bits(num_bits),
                        np.iinfo(np.uint64).max, dtype=np.uint64)
        return cls(num_bits, words)

    @classmethod
    def from_bools(cls, flags) -> "Bitmask":
        flags = np.asarray(flags, dtype=bool).ravel()
        packed = np.packbits(flags, bitorder="little")
        padded = np.zeros(_words_for_bits(flags.size) * 8, dtype=np.uint8)
        padded[:packed.size] = packed
        return cls(flags.size, padded.view(np.uint64))

    @classmethod
    def from_indices(cls, num_bits: int, indices) -> "Bitmask":
        flags = np.zeros(num_bits, dtype=bool)
        flags[np.asarray(indices, dtype=np.int64)] = True
        return cls.from_bools(flags)

    def copy(self) -> "Bitmask":
        return Bitmask(self.num_bits, self._words.copy())

    # ------------------------------------------------------------------
    # bit access
    # ------------------------------------------------------------------

    def get(self, position: int) -> bool:
        self._check_position(position)
        word, offset = divmod(position, WORD_BITS)
        return bool((int(self._words[word]) >> offset) & 1)

    def set(self, position: int, value: bool = True) -> None:
        self._check_position(position)
        word, offset = divmod(position, WORD_BITS)
        if value:
            self._words[word] |= np.uint64(1 << offset)
        else:
            self._words[word] &= np.uint64(~(1 << offset)
                                           & 0xFFFFFFFFFFFFFFFF)
        self._milestones = None

    def clear(self, position: int) -> None:
        self.set(position, False)

    def set_range(self, start: int, stop: int, value: bool = True) -> None:
        """Set bits in ``[start, stop)``; clamped to the mask length."""
        start = max(0, start)
        stop = min(self.num_bits, stop)
        if start >= stop:
            return
        flags = self.to_bools()
        flags[start:stop] = value
        self._words = Bitmask.from_bools(flags)._words
        self._milestones = None

    # ------------------------------------------------------------------
    # counting
    # ------------------------------------------------------------------

    def count(self, strategy: str = "vectorized") -> int:
        """Total number of set bits."""
        if strategy == "naive":
            return popcount_words_naive(self._words)
        if strategy == "builtin":
            return popcount_words_builtin(self._words)
        if strategy in ("vectorized", "milestone"):
            return popcount_words_vectorized(self._words)
        raise ArrayError(
            f"unknown popcount strategy {strategy!r}; "
            f"expected one of {_STRATEGIES}"
        )

    def rank(self, position: int, strategy: str = "milestone") -> int:
        """Number of set bits strictly before ``position``.

        This is the payload-slot lookup for sparse chunks: if bit
        ``position`` is set, its value sits at payload index
        ``rank(position)``.
        """
        RANK_COUNTERS.bitmask_rank += 1
        if position <= 0:
            return 0
        position = min(position, self.num_bits)
        if strategy == "milestone":
            if self._milestones is None:
                self._milestones = Milestones(self._words)
            return self._milestones.rank(self._words, position)
        word_index, bit_offset = divmod(position, WORD_BITS)
        head = self._words[:word_index]
        if strategy == "naive":
            count = popcount_words_naive(head)
        elif strategy == "builtin":
            count = popcount_words_builtin(head)
        elif strategy == "vectorized":
            count = popcount_words_vectorized(head)
        else:
            raise ArrayError(
                f"unknown popcount strategy {strategy!r}; "
                f"expected one of {_STRATEGIES}"
            )
        if bit_offset and word_index < self._words.size:
            partial = int(self._words[word_index]) & ((1 << bit_offset) - 1)
            count += partial.bit_count()
        return count

    def select(self, k: int) -> int:
        """Position of the ``k``-th (0-based) set bit."""
        indices = self.indices()
        if not 0 <= k < indices.size:
            raise ArrayError(
                f"select({k}) out of range: only {indices.size} set bits"
            )
        return int(indices[k])

    def any(self) -> bool:
        return bool(self._words.any())

    def all(self) -> bool:
        return self.count() == self.num_bits

    def density(self) -> float:
        """Fraction of set bits (0.0 for an empty mask)."""
        if self.num_bits == 0:
            return 0.0
        return self.count() / self.num_bits

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------

    def to_bools(self) -> np.ndarray:
        bits = np.unpackbits(self._words.view(np.uint8),
                             bitorder="little")
        return bits[:self.num_bits].astype(bool)

    def indices(self) -> np.ndarray:
        """Positions of set bits, ascending (int64)."""
        return np.nonzero(self.to_bools())[0].astype(np.int64)

    @property
    def words(self) -> np.ndarray:
        """The backing word array (do not mutate)."""
        return self._words

    @property
    def nbytes(self) -> int:
        return int(self._words.nbytes)

    # ------------------------------------------------------------------
    # bitwise algebra
    # ------------------------------------------------------------------

    def _binary(self, other: "Bitmask", op) -> "Bitmask":
        if not isinstance(other, Bitmask):
            return NotImplemented
        if other.num_bits != self.num_bits:
            raise ArrayError(
                f"bitmask length mismatch: {self.num_bits} vs "
                f"{other.num_bits}"
            )
        return Bitmask(self.num_bits, op(self._words, other._words))

    def __and__(self, other):
        return self._binary(other, np.bitwise_and)

    def __or__(self, other):
        return self._binary(other, np.bitwise_or)

    def __xor__(self, other):
        return self._binary(other, np.bitwise_xor)

    def __invert__(self) -> "Bitmask":
        return Bitmask(self.num_bits, np.bitwise_not(self._words))

    def and_not(self, other: "Bitmask") -> "Bitmask":
        """Bits set here but not in ``other`` (filter-style subtraction)."""
        return self._binary(other, lambda a, b: a & ~b)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def _mask_tail(self) -> None:
        """Force bits beyond ``num_bits`` to zero (invariant)."""
        tail = self.num_bits % WORD_BITS
        if tail and self._words.size:
            keep = np.uint64((1 << tail) - 1)
            self._words[-1] &= keep

    def _check_position(self, position: int) -> None:
        if not 0 <= position < self.num_bits:
            raise ArrayError(
                f"bit position {position} out of range "
                f"[0, {self.num_bits})"
            )

    def __len__(self) -> int:
        return self.num_bits

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Bitmask)
            and self.num_bits == other.num_bits
            and np.array_equal(self._words, other._words)
        )

    def __hash__(self):
        raise TypeError("Bitmask is mutable and unhashable")

    def __repr__(self) -> str:
        return (
            f"Bitmask(bits={self.num_bits}, set={self.count()}, "
            f"density={self.density():.3f})"
        )
