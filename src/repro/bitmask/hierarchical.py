"""Two-level hierarchical bitmask for super-sparse chunks (Section IV-A).

When valid cells are very rare, a flat bitmask is mostly zero words and
its size dominates the chunk. The hierarchical form keeps:

- an *upper* bitmask with one bit per lower-level word — set iff that
  word contains any set bit; and
- only the *non-zero* lower-level words, in order.

An all-zero word costs one upper bit instead of 64 lower bits. Locating
a lower word is a rank query on the upper bitmask.
"""

from __future__ import annotations

import numpy as np

from repro.bitmask.bitmask import Bitmask
from repro.bitmask.popcount import (
    RANK_COUNTERS,
    WORD_BITS,
    per_word_popcounts,
    popcount_words_vectorized,
)
from repro.errors import ArrayError


class HierarchicalBitmask:
    """Compressed two-level view of a bitmask."""

    __slots__ = ("num_bits", "_upper", "_stored_words", "_stored_prefix")

    def __init__(self, num_bits: int, upper: Bitmask,
                 stored_words: np.ndarray):
        self.num_bits = num_bits
        self._upper = upper
        self._stored_words = np.ascontiguousarray(stored_words,
                                                  dtype=np.uint64)
        # exclusive prefix popcounts over stored words, for fast rank
        counts = per_word_popcounts(self._stored_words)
        prefix = np.zeros(self._stored_words.size + 1, dtype=np.int64)
        np.cumsum(counts, out=prefix[1:])
        self._stored_prefix = prefix

    @classmethod
    def from_bitmask(cls, flat: Bitmask) -> "HierarchicalBitmask":
        words = flat.words
        nonzero = words != 0
        upper = Bitmask.from_bools(nonzero)
        return cls(flat.num_bits, upper, words[nonzero])

    @classmethod
    def from_bools(cls, flags) -> "HierarchicalBitmask":
        return cls.from_bitmask(Bitmask.from_bools(flags))

    def to_bitmask(self) -> Bitmask:
        num_words = self._upper.num_bits
        words = np.zeros(num_words, dtype=np.uint64)
        words[self._upper.to_bools()] = self._stored_words
        return Bitmask(self.num_bits, words)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def get(self, position: int) -> bool:
        if not 0 <= position < self.num_bits:
            raise ArrayError(
                f"bit position {position} out of range [0, {self.num_bits})"
            )
        word_index, offset = divmod(position, WORD_BITS)
        if not self._upper.get(word_index):
            return False
        stored_slot = self._upper.rank(word_index)
        return bool(
            (int(self._stored_words[stored_slot]) >> offset) & 1
        )

    def count(self) -> int:
        return popcount_words_vectorized(self._stored_words)

    def rank(self, position: int) -> int:
        """Set bits strictly before ``position``."""
        RANK_COUNTERS.hierarchical_rank += 1
        if position <= 0:
            return 0
        position = min(position, self.num_bits)
        word_index, offset = divmod(position, WORD_BITS)
        stored_before = self._upper.rank(word_index)
        count = int(self._stored_prefix[stored_before])
        if offset and word_index < self._upper.num_bits \
                and self._upper.get(word_index):
            word = int(self._stored_words[stored_before])
            count += (word & ((1 << offset) - 1)).bit_count()
        return count

    def indices(self) -> np.ndarray:
        return self.to_bitmask().indices()

    def density(self) -> float:
        if self.num_bits == 0:
            return 0.0
        return self.count() / self.num_bits

    @property
    def nbytes(self) -> int:
        """Upper-mask bytes + stored lower words only."""
        return int(self._upper.nbytes + self._stored_words.nbytes)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, HierarchicalBitmask)
            and self.num_bits == other.num_bits
            and self.to_bitmask() == other.to_bitmask()
        )

    def __repr__(self) -> str:
        return (
            f"HierarchicalBitmask(bits={self.num_bits}, "
            f"set={self.count()}, stored_words={self._stored_words.size})"
        )
