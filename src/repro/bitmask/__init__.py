"""Bitmask machinery (Section IV of the paper).

A bitmask marks cell validity with one bit per cell. This package provides:

- :class:`~repro.bitmask.bitmask.Bitmask` — a word-array bitmask with
  get/set, bitwise algebra, population count (*rank*) and *select*.
- :mod:`~repro.bitmask.popcount` — the three population-count strategies
  the paper compares (naive per-word loop, builtin, vectorized
  "SIMD"-style) plus per-64-word *milestones* for large chunks.
- :class:`~repro.bitmask.cursor.SequentialCursor` — the *delta count*
  optimization for sequential access patterns (Section IV-B-1).
- :class:`~repro.bitmask.hierarchical.HierarchicalBitmask` — the
  two-level bitmask used by super-sparse chunks (Section IV-A).
"""

from repro.bitmask.bitmask import Bitmask
from repro.bitmask.cursor import SequentialCursor
from repro.bitmask.hierarchical import HierarchicalBitmask
from repro.bitmask.popcount import (
    Milestones,
    popcount_word,
    popcount_words_builtin,
    popcount_words_naive,
    popcount_words_vectorized,
    rank_counts,
    reset_rank_counts,
)

__all__ = [
    "Bitmask",
    "HierarchicalBitmask",
    "Milestones",
    "SequentialCursor",
    "popcount_word",
    "popcount_words_builtin",
    "popcount_words_naive",
    "popcount_words_vectorized",
    "rank_counts",
    "reset_rank_counts",
]
