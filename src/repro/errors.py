"""Exception hierarchy for the Spangle reproduction.

All library-raised errors derive from :class:`SpangleError` so callers can
catch one base class. Engine-level failures (the mini-Spark substrate) derive
from :class:`EngineError`; array-level misuse derives from :class:`ArrayError`.
"""

from __future__ import annotations


class SpangleError(Exception):
    """Base class for every error raised by this library."""


class EngineError(SpangleError):
    """Base class for errors raised by the execution engine."""


class TaskFailure(EngineError):
    """A task failed while executing a partition.

    Carries the partition index and the underlying cause so the scheduler
    can decide whether to retry via lineage recomputation.
    """

    def __init__(self, partition_index, cause):
        super().__init__(
            f"task failed on partition {partition_index}: {cause!r}"
        )
        self.partition_index = partition_index
        self.cause = cause


class PartitionLostError(EngineError):
    """A cached partition was lost (simulated executor failure)."""

    def __init__(self, rdd_id, partition_index):
        super().__init__(
            f"partition {partition_index} of RDD {rdd_id} was lost"
        )
        self.rdd_id = rdd_id
        self.partition_index = partition_index


class OutOfMemoryError(EngineError):
    """The simulated memory budget of an executor or driver was exceeded.

    The name intentionally mirrors the JVM error that the paper's baselines
    hit (MLlib failing to ingest KDD Cup data, SciSpark failing to load
    large dense arrays). It does *not* shadow Python's ``MemoryError``.
    """

    def __init__(self, role, requested_bytes, budget_bytes):
        super().__init__(
            f"{role} out of memory: requested {requested_bytes} bytes, "
            f"budget is {budget_bytes} bytes"
        )
        self.role = role
        self.requested_bytes = requested_bytes
        self.budget_bytes = budget_bytes


class ArrayError(SpangleError):
    """Base class for array-model misuse (bad shapes, coords, modes)."""


class MetadataError(ArrayError):
    """Inconsistent or invalid array metadata."""


class CoordinateError(ArrayError):
    """A coordinate fell outside the array or had the wrong arity."""


class ShapeMismatchError(ArrayError):
    """Two arrays/matrices had incompatible shapes for an operation."""


class AttributeMismatchError(ArrayError):
    """A dataset operation referenced an unknown or duplicate attribute."""


class ModeError(ArrayError):
    """A chunk operation is not valid in the chunk's current storage mode."""


class IngestError(SpangleError):
    """Raised when input data (CSV/SNF records) cannot be ingested."""


class ConvergenceError(SpangleError):
    """An iterative ML algorithm failed to converge within its budget."""

    def __init__(self, algorithm, iterations, residual):
        super().__init__(
            f"{algorithm} did not converge after {iterations} iterations "
            f"(residual {residual:.3e})"
        )
        self.algorithm = algorithm
        self.iterations = iterations
        self.residual = residual
