"""Spangle reproduction: a distributed in-memory array processing system.

A from-scratch Python reimplementation of *Spangle* (Kim, Kim, Moon --
ICDE 2021), including its substrate: a mini-Spark execution engine with
lazy RDDs, shuffles, caching, and lineage-based fault tolerance.

Quickstart::

    import numpy as np
    from repro import ClusterContext, ArrayRDD

    ctx = ClusterContext(num_executors=4)
    data = np.random.random((1000, 1000))
    valid = data > 0.6                      # sparse: most cells null
    arr = ArrayRDD.from_numpy(ctx, data, chunk_shape=(128, 128),
                              valid=valid)
    print(arr.subarray((100, 100), (499, 499)).aggregate("avg"))

Package map:

- :mod:`repro.engine` -- the mini-Spark substrate.
- :mod:`repro.bitmask` -- bitmask machinery (popcounts, hierarchy).
- :mod:`repro.core` -- ArrayRDD, MaskRDD, chunks, operators.
- :mod:`repro.plan` -- the chunk-kernel fusion layer
  (``repro.plan.disable_fusion()`` is the eager-execution escape hatch).
- :mod:`repro.optimizer` -- the cost-based logical rewrite layer
  (``repro.optimizer.disable()`` lowers plans exactly as written;
  ``ArrayRDD.explain(optimized=True)`` shows what it rewrote).
- :mod:`repro.matrix` -- distributed linear algebra.
- :mod:`repro.ml` -- PageRank and SGD/logistic regression.
- :mod:`repro.baselines` -- SciSpark/RasterFrames/SciDB/COO/MLlib/GraphX
  comparison systems.
- :mod:`repro.data` -- synthetic datasets with the paper's signatures.
- :mod:`repro.queries` -- the Table-I raster benchmark queries.
- :mod:`repro.io` -- CSV and SNF (NetCDF-like) ingestion.
"""

from repro import optimizer, plan
from repro.bitmask import Bitmask
from repro.core import (
    Aggregator,
    ArrayMetadata,
    ArrayRDD,
    Chunk,
    ChunkMode,
    ChunkPlan,
    MaskRDD,
    SpangleDataset,
)
from repro.engine import ClusterContext, StorageLevel
from repro.errors import SpangleError
from repro.matrix import (
    SpangleMatrix,
    SpangleVector,
    set_sparse_threshold,
    sparse_config,
)
from repro.ml import (
    BitmaskGraph,
    DistributedSamples,
    LogisticRegression,
    pagerank,
)

__version__ = "1.0.0"

__all__ = [
    "Aggregator",
    "ArrayMetadata",
    "ArrayRDD",
    "Bitmask",
    "BitmaskGraph",
    "Chunk",
    "ChunkMode",
    "ChunkPlan",
    "ClusterContext",
    "DistributedSamples",
    "LogisticRegression",
    "MaskRDD",
    "SpangleDataset",
    "SpangleError",
    "SpangleMatrix",
    "SpangleVector",
    "StorageLevel",
    "optimizer",
    "pagerank",
    "plan",
    "set_sparse_threshold",
    "sparse_config",
    "__version__",
]
