"""Public alias for the stage scheduler layer.

``repro.scheduler.disable_pipelining()`` is the documented escape
hatch for running shuffle map stages one at a time behind barriers
(mirroring ``repro.plan.disable_fusion`` and
``repro.engine.batches.disable_columnar``); the implementation lives
in :mod:`repro.engine.scheduler`.

This module re-exports the implementation's scheduling surface — the
drift-guard test in ``tests/engine/test_scheduler.py`` asserts the two
stay identical.
"""

from repro.engine.scheduler import (
    ExecutorPool,
    StageScheduler,
    disable_pipelining,
    enable_pipelining,
    pipelining_enabled,
)

__all__ = [
    "ExecutorPool",
    "StageScheduler",
    "disable_pipelining",
    "enable_pipelining",
    "pipelining_enabled",
]
