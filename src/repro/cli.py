"""Command-line entry point: ``python -m repro <command>``.

Commands:

- ``info``      — version, package map, and environment report.
- ``demo``      — a one-minute tour: build a sparse array, run the core
  operators, train a model, print engine metrics.
- ``selftest``  — run the unit test suite (requires pytest).
- ``bench``     — run the figure/table reproduction benchmarks
  (requires pytest-benchmark); ``--figure fig9`` narrows to one file.
- ``trace``     — replay a saved ``*.trace.jsonl`` event log into a
  stage-breakdown report (``profile`` is an alias); ``--chrome OUT``
  additionally re-exports the log in Chrome ``trace_event`` format.
- ``top``       — live terminal dashboard over the telemetry plane:
  pass a ``http://...`` endpoint (from ``ctx.serve_telemetry()``) to
  poll live, or a recorded ``*.telemetry.jsonl`` to replay; sparkline
  series for memory/tasks/shuffle, per-worker rows, health events.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_info(_args) -> int:
    import numpy

    import repro

    print(f"repro {repro.__version__} — Spangle reproduction "
          f"(Kim, Kim, Moon — ICDE 2021)")
    print(f"python {sys.version.split()[0]}, numpy {numpy.__version__}")
    print()
    packages = [
        ("repro.engine", "mini-Spark substrate (RDDs, shuffles, "
                         "cache, lineage, cost model)"),
        ("repro.bitmask", "bitmask machinery (rank/select, popcounts, "
                          "hierarchical form)"),
        ("repro.core", "ArrayRDD, MaskRDD, chunks, operators, "
                       "stats, updates"),
        ("repro.matrix", "distributed linear algebra"),
        ("repro.ml", "PageRank, SGD/LR/SVM, CG solvers, "
                     "connected components"),
        ("repro.baselines", "SciSpark / RasterFrames / SciDB / COO / "
                            "MLlib / GraphX comparison systems"),
        ("repro.data", "synthetic datasets with the paper's "
                       "signatures"),
        ("repro.queries", "the Table-I raster benchmark queries"),
        ("repro.io", "CSV and SNF ingestion/export"),
    ]
    for name, blurb in packages:
        print(f"  {name:<18} {blurb}")
    return 0


def _cmd_demo(_args) -> int:
    import numpy as np

    from repro import ArrayRDD, ClusterContext

    ctx = ClusterContext(num_executors=4)
    rng = np.random.default_rng(0)
    values = rng.random((512, 512))
    valid = rng.random((512, 512)) < 0.2
    print("building a 512x512 array, 20% of cells valid ...")
    array = ArrayRDD.from_numpy(ctx, values, (128, 128), valid=valid)
    print(f"  chunks: {array.num_chunks_materialized()}  "
          f"valid cells: {array.count_valid():,}  "
          f"footprint: {array.memory_bytes() // 1024} KiB "
          f"(dense: {values.nbytes // 1024} KiB)")
    print(f"  mean of [100:300, 100:300]: "
          f"{array.subarray((100, 100), (299, 299)).aggregate('avg'):.4f}")
    print(f"  cells > 0.9: "
          f"{array.filter(lambda xs: xs > 0.9).count_valid():,}")

    from repro.ml import DistributedSamples, LogisticRegression

    print("\ntraining logistic regression on 2000x16 synthetic rows ...")
    X = rng.normal(size=(2000, 16))
    y = (X @ rng.normal(size=16) > 0).astype(float)
    rows, cols = np.nonzero(X)
    samples = DistributedSamples.from_coo(
        ctx, rows, cols, X[rows, cols], y, 16, chunk_rows=128)
    model = LogisticRegression(max_iterations=120, chunks_per_step=2)
    model.fit(samples)
    print(f"  accuracy: {model.accuracy(samples):.2%} in "
          f"{model.history.iterations} iterations")

    snapshot = ctx.metrics.snapshot()
    print(f"\nengine: {snapshot.jobs_run} jobs, "
          f"{snapshot.tasks_launched} tasks, "
          f"{snapshot.shuffle_bytes:,} shuffle bytes")
    return 0


def _pytest(extra) -> int:
    try:
        import pytest
    except ImportError:
        print("pytest is not installed", file=sys.stderr)
        return 2
    return pytest.main(extra)


def _cmd_selftest(args) -> int:
    return _pytest(["tests/", "-q"] + (["-x"] if args.fail_fast else []))


def _cmd_bench(args) -> int:
    target = "benchmarks/"
    if args.figure:
        mapping = {
            "fig7": "benchmarks/test_fig7_raster_queries.py",
            "fig8": "benchmarks/test_fig8_chunk_size.py",
            "fig9": "benchmarks/test_fig9_maskrdd.py",
            "fig10": "benchmarks/test_fig10_ml_core_ops.py",
            "fig11": "benchmarks/test_fig11_pagerank.py",
            "fig12": "benchmarks/test_fig12_sgd.py",
            "table3": "benchmarks/test_table3_logistic.py",
            "ablations": "benchmarks/test_ablations.py",
        }
        key = args.figure.lower().rstrip("ab")
        if key not in mapping:
            print(f"unknown figure {args.figure!r}; have "
                  f"{sorted(mapping)}", file=sys.stderr)
            return 2
        target = mapping[key]
    return _pytest([target, "--benchmark-only", "-q", "-s"])


def _cmd_trace(args) -> int:
    from repro.engine.tracing import (
        export_chrome_trace,
        load_jsonl,
        profiles_from_spans,
    )

    try:
        meta, spans = load_jsonl(args.log)
    except (OSError, ValueError) as exc:
        print(f"cannot read trace log {args.log!r}: {exc}",
              file=sys.stderr)
        return 2
    if not spans:
        print(f"{args.log}: no spans recorded", file=sys.stderr)
        return 1
    num_executors = args.executors or meta.get("num_executors")
    profiles = profiles_from_spans(spans, num_executors=num_executors)
    print(f"{args.log}: {len(spans)} spans, {len(profiles)} jobs"
          + (f", {num_executors} executors" if num_executors else ""))
    for index, profile in enumerate(profiles):
        print()
        print(f"[job {index}] {profile.render()}")
    orphans = [s for s in spans
               if s.parent_id is None and s.kind != "job"]
    if orphans:
        print(f"\n{len(orphans)} top-level non-job spans "
              f"(checkpoints/broadcasts outside jobs):")
        for span in orphans:
            print(f"  {span.kind:<11} {span.name:<28} "
                  f"{span.wall_s * 1e3:8.2f} ms")
    if args.chrome:
        export_chrome_trace(spans, args.chrome)
        print(f"\nwrote Chrome trace: {args.chrome} "
              f"(open in chrome://tracing or https://ui.perfetto.dev)")
    return 0


def _cmd_top(args) -> int:
    from repro.engine.top import run_top

    return run_top(args.source, interval=args.interval,
                   once=args.once, replay=args.replay)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Spangle reproduction — distributed in-memory "
                    "array processing",
    )
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("info", help="version and package map")
    subparsers.add_parser("demo", help="one-minute guided tour")
    selftest = subparsers.add_parser("selftest",
                                     help="run the unit tests")
    selftest.add_argument("-x", "--fail-fast", action="store_true")
    bench = subparsers.add_parser(
        "bench", help="run the paper-figure benchmarks")
    bench.add_argument("--figure",
                       help="one of fig7..fig12, table3, ablations")
    for name in ("trace", "profile"):
        trace = subparsers.add_parser(
            name, help="replay a saved trace event log into a report")
        trace.add_argument("log", help="path to a *.trace.jsonl file")
        trace.add_argument("--chrome", metavar="OUT",
                           help="also write a Chrome trace_event file")
        trace.add_argument("--executors", type=int, default=None,
                           help="override executor count for the "
                                "utilization report")
    top = subparsers.add_parser(
        "top", help="live telemetry dashboard (endpoint or JSONL)")
    top.add_argument("source",
                     help="a live http://host:port telemetry endpoint "
                          "or a recorded *.telemetry.jsonl file")
    top.add_argument("--interval", type=float, default=1.0,
                     help="refresh period for live endpoints (s)")
    top.add_argument("--once", action="store_true",
                     help="render a single frame and exit")
    top.add_argument("--replay", action="store_true",
                     help="non-interactive replay of a recorded file "
                          "(single final frame; the CI smoke mode)")
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    commands = {
        "info": _cmd_info,
        "demo": _cmd_demo,
        "selftest": _cmd_selftest,
        "bench": _cmd_bench,
        "trace": _cmd_trace,
        "profile": _cmd_trace,
        "top": _cmd_top,
    }
    if args.command is None:
        parser.print_help()
        return 0
    return commands[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
