"""Public alias for the logical rewrite optimizer.

``repro.optimizer.disable()`` is the documented escape hatch for
lowering recorded plans exactly as written (mirroring
``repro.plan.disable_fusion()``); the implementation lives in
:mod:`repro.core.optimizer`.
"""

from repro.core.optimizer import (
    disable,
    enable,
    enabled,
    optimize,
    plan_cost,
)

__all__ = [
    "disable",
    "enable",
    "enabled",
    "optimize",
    "plan_cost",
]
