"""Customized logistic regression for Spangle (Section VI-C).

The update rule, with M_t a mini-batch of rows and h the sigmoid:

    x_{t+1} = x_t − θ Mᵀ_t (h(M_t · x_t) − y_t)

The paper's two optimizations, both toggleable here for the Fig. 12b
ablation:

- **opt1** — never transpose M: rewrite the gradient as
  ``((h(Mx) − y)ᵀ M)ᵀ`` so only a small vector-matrix product runs
  (:meth:`SampleChunk.t_dot`); without it, each step materializes the
  transposed structure (:meth:`SampleChunk.t_dot_materialized`).
- **opt2** — transposing the resulting 1×f row vector back to f×1 is a
  metadata swap (:meth:`SpangleVector.transpose`); without it, a
  physical round-trip through a distributed array pays real shuffles.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConvergenceError
from repro.matrix.vector import SpangleVector
from repro.ml.sgd import DistributedSamples, _sigmoid


@dataclass
class TrainingHistory:
    """Per-iteration residuals and times for the Fig. 12 benches."""

    residuals: list = field(default_factory=list)
    iteration_times_s: list = field(default_factory=list)

    @property
    def total_time_s(self) -> float:
        return sum(self.iteration_times_s)

    @property
    def iterations(self) -> int:
        return len(self.residuals)


class LogisticRegression:
    """Mini-batch SGD logistic regression over DistributedSamples.

    Parameters follow the paper's experiment setup: ``step_size=0.6``,
    ``tolerance=1e-4``. ``chunks_per_step`` is the α knob configuring
    how many sample chunks each partition contributes per step.
    """

    def __init__(self, step_size: float = 0.6, tolerance: float = 1e-4,
                 max_iterations: int = 200, chunks_per_step: int = 1,
                 opt1: bool = True, opt2: bool = True, seed: int = 0,
                 raise_on_divergence: bool = False, optimizer=None):
        from repro.ml.optimizers import resolve_optimizer

        self.step_size = step_size
        self.tolerance = tolerance
        self.max_iterations = max_iterations
        self.chunks_per_step = chunks_per_step
        self.opt1 = opt1
        self.opt2 = opt2
        self.seed = seed
        self.raise_on_divergence = raise_on_divergence
        self.optimizer = resolve_optimizer(optimizer, step_size)
        self.weights: SpangleVector = None
        self.history = TrainingHistory()

    def fit(self, samples: DistributedSamples) -> "LogisticRegression":
        x = SpangleVector.zeros(samples.num_features, "col")
        self.history = TrainingHistory()
        self.optimizer.reset(samples.num_features)
        residual = np.inf
        for step in range(self.max_iterations):
            start = time.perf_counter()
            grad_row, count = samples.sampled_gradient(
                x.data, step, chunks_per_step=self.chunks_per_step,
                opt1=self.opt1, seed=self.seed)
            if count == 0:
                break
            # the gradient arrives as a 1×f row vector (opt1's shape);
            # the update needs f×1
            grad_vector = SpangleVector(grad_row, "row")
            if self.opt2:
                grad_col = grad_vector.transpose()
            else:
                grad_col = grad_vector.transpose_physical(samples.context)
            new_x = SpangleVector(
                self.optimizer.update(x.data, grad_col.data / count),
                "col")
            residual = float(np.abs(new_x.data - x.data).max())
            x = new_x
            self.history.residuals.append(residual)
            self.history.iteration_times_s.append(
                time.perf_counter() - start)
            if residual < self.tolerance:
                break
        else:
            if self.raise_on_divergence and residual >= self.tolerance:
                raise ConvergenceError("logistic regression",
                                       self.max_iterations, residual)
        self.weights = x
        return self

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------

    def _check_fitted(self) -> None:
        if self.weights is None:
            raise ConvergenceError("logistic regression", 0, np.inf)

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Raw scores for a dense (n, f) feature matrix."""
        self._check_fitted()
        return np.asarray(features) @ self.weights.data

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        return _sigmoid(self.decision_function(features))

    def predict(self, features: np.ndarray) -> np.ndarray:
        return (self.predict_proba(features) >= 0.5).astype(np.int64)

    def accuracy(self, samples: DistributedSamples) -> float:
        """Distributed accuracy over a (test) DistributedSamples."""
        self._check_fitted()
        return samples.evaluate_accuracy(self.weights.data)
