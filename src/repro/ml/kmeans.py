"""Distributed k-means over a SpangleMatrix of sample rows.

Lloyd's algorithm in the broadcast-and-aggregate style of the other ML
algorithms here: centers are broadcast, every partition assigns its
rows and emits per-cluster partial sums/counts (no shuffle — the same
tree-aggregate pattern as the matvec kernels), the driver averages.
Distances use the ‖x−c‖² = ‖x‖² + ‖c‖² − 2x·c expansion, so the
per-partition work is one dense (rows × centers) product against the
chunk's sparse payload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ArrayError
from repro.matrix.matrix import SpangleMatrix


@dataclass
class KMeansModel:
    centers: np.ndarray            # (k, f)
    inertia: float                 # sum of squared distances
    iterations: int
    inertia_history: list = field(default_factory=list)

    @property
    def num_clusters(self) -> int:
        return self.centers.shape[0]

    def predict(self, features: np.ndarray) -> np.ndarray:
        features = np.atleast_2d(np.asarray(features, np.float64))
        distances = (
            (features ** 2).sum(axis=1, keepdims=True)
            + (self.centers ** 2).sum(axis=1)
            - 2.0 * features @ self.centers.T
        )
        return distances.argmin(axis=1)


def _row_blocks(matrix: SpangleMatrix):
    """Per-chunk dense row blocks with their global row offsets."""
    block_rows, _block_cols = matrix.block_shape
    grid_rows = matrix.grid_rows

    def blocks(part):
        for chunk_id, chunk in part:
            rb = chunk_id % grid_rows
            dense = chunk.to_dense(0).reshape(matrix.block_shape,
                                              order="F")
            yield rb * block_rows, dense

    return blocks


def kmeans(matrix: SpangleMatrix, num_clusters: int,
           max_iterations: int = 50, tolerance: float = 1e-6,
           seed: int = 0) -> KMeansModel:
    """Cluster the rows of an n×f matrix into ``num_clusters`` groups.

    Rows are assumed to fit one chunk row-block each (the matrix's
    blocks partition rows; column blocks must cover all features, i.e.
    ``block_shape[1] == f``), which is the layout `from_coo` produces
    for sample matrices.
    """
    n, f = matrix.shape
    if not 1 <= num_clusters <= n:
        raise ArrayError(
            f"num_clusters must be in [1, {n}], got {num_clusters}"
        )
    if matrix.block_shape[1] != f:
        raise ArrayError(
            "kmeans needs row-major blocks: block_shape[1] must equal "
            f"the feature count ({matrix.block_shape[1]} != {f})"
        )
    rng = np.random.default_rng(seed)

    # initialize from a sample of actual rows (k distinct row indices)
    chosen = rng.choice(n, size=num_clusters, replace=False)
    chosen_set = set(int(i) for i in chosen)
    blocks = _row_blocks(matrix)

    def pick_rows(part):
        found = []
        for row0, dense in blocks(part):
            for index in range(dense.shape[0]):
                if row0 + index in chosen_set:
                    found.append((row0 + index, dense[index].copy()))
        return found

    picked = dict(
        (row, vec) for row, vec
        in (pair for partial in
            matrix.context.run_job(matrix.array.rdd, pick_rows)
            for pair in partial))
    centers = np.stack([picked[int(i)] for i in chosen])

    inertia = np.inf
    history = []
    iterations = 0
    for _step in range(max_iterations):
        center_norms = (centers ** 2).sum(axis=1)
        current = centers

        def assign(part):
            sums = np.zeros((num_clusters, f))
            counts = np.zeros(num_clusters, dtype=np.int64)
            sq_error = 0.0
            for row0, dense in blocks(part):
                live = min(dense.shape[0], n - row0)
                rows = dense[:live]
                distances = (
                    (rows ** 2).sum(axis=1, keepdims=True)
                    + center_norms - 2.0 * rows @ current.T
                )
                labels = distances.argmin(axis=1)
                sq_error += float(
                    np.clip(distances[np.arange(live), labels],
                            0, None).sum())
                np.add.at(sums, labels, rows)
                counts += np.bincount(labels,
                                      minlength=num_clusters)
            return sums, counts, sq_error

        partials = matrix.context.run_job(matrix.array.rdd, assign)
        sums = np.zeros((num_clusters, f))
        counts = np.zeros(num_clusters, dtype=np.int64)
        new_inertia = 0.0
        for partial_sums, partial_counts, partial_error in partials:
            sums += partial_sums
            counts += partial_counts
            new_inertia += partial_error
        nonempty = counts > 0
        new_centers = centers.copy()
        new_centers[nonempty] = sums[nonempty] \
            / counts[nonempty, None]
        iterations += 1
        history.append(new_inertia)
        shift = float(np.abs(new_centers - centers).max())
        centers = new_centers
        improved = inertia - new_inertia
        inertia = new_inertia
        if shift < tolerance or 0 <= improved < tolerance:
            break
    return KMeansModel(centers=centers, inertia=inertia,
                       iterations=iterations,
                       inertia_history=history)
