"""Machine learning on Spangle (Section VI of the paper).

- :class:`~repro.ml.graph.BitmaskGraph` — an unweighted adjacency matrix
  stored as bitmask blocks only (one bit per edge, Section VI-B).
- :func:`~repro.ml.pagerank.pagerank` — the decomposed power method
  p ← αA'(w ∘ p) + (1−α)/n.
- :mod:`~repro.ml.sgd` — parallel mini-batch SGD with the Eq. 2 chunk-ID
  scheme for shuffle-free sampling.
- :class:`~repro.ml.logistic.LogisticRegression` — the customized
  algorithm with the *opt1*/*opt2* switches of Section VI-C.
"""

from repro.ml.components import connected_components
from repro.ml.graph import BitmaskGraph
from repro.ml.kmeans import KMeansModel, kmeans
from repro.ml.logistic import LogisticRegression
from repro.ml.pca import PCAModel, pca
from repro.ml.optimizers import (
    AdagradOptimizer,
    MomentumOptimizer,
    SGDOptimizer,
)
from repro.ml.pagerank import PageRankResult, pagerank
from repro.ml.sgd import DistributedSamples, SampleChunk
from repro.ml.solvers import conjugate_gradient, ridge_regression
from repro.ml.svm import LinearSVM

__all__ = [
    "AdagradOptimizer",
    "BitmaskGraph",
    "KMeansModel",
    "PCAModel",
    "DistributedSamples",
    "LinearSVM",
    "LogisticRegression",
    "MomentumOptimizer",
    "PageRankResult",
    "SGDOptimizer",
    "SampleChunk",
    "conjugate_gradient",
    "connected_components",
    "kmeans",
    "pagerank",
    "pca",
    "ridge_regression",
]
