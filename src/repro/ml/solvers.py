"""Iterative linear solvers on Spangle matrices.

Conjugate gradient turns the two kernels Fig. 10 benchmarks — M×v and
vᵀM — into a solver for SPD systems without ever materializing MᵀM.
:func:`ridge_regression` uses it for the normal equations

    (MᵀM + λI) x = Mᵀ b

computing each MᵀM·p product as ``vector_dot`` then ``dot_vector`` —
two distributed passes per iteration, no Gramian, no transpose.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConvergenceError, ShapeMismatchError
from repro.matrix.matrix import SpangleMatrix
from repro.matrix.vector import SpangleVector


@dataclass
class SolveResult:
    solution: SpangleVector
    iterations: int
    residual_norm: float
    residual_history: list = field(default_factory=list)


def conjugate_gradient(apply_operator, rhs: np.ndarray,
                       tolerance: float = 1e-8,
                       max_iterations: int = None,
                       raise_on_divergence: bool = False) -> SolveResult:
    """Solve ``A x = rhs`` for SPD ``A`` given ``apply_operator(v)=A·v``.

    Standard CG; ``tolerance`` is relative to ``‖rhs‖``.
    """
    rhs = np.asarray(rhs, dtype=np.float64).ravel()
    n = rhs.size
    if max_iterations is None:
        max_iterations = 2 * n
    x = np.zeros(n)
    residual = rhs.copy()
    direction = residual.copy()
    rs_old = float(residual @ residual)
    rhs_norm = float(np.sqrt(rhs @ rhs)) or 1.0
    history = []
    iterations = 0
    for _step in range(max_iterations):
        if np.sqrt(rs_old) / rhs_norm < tolerance:
            break
        a_direction = np.asarray(apply_operator(direction)).ravel()
        denominator = float(direction @ a_direction)
        if denominator <= 0:
            raise ConvergenceError("conjugate gradient (operator not "
                                   "positive definite)", iterations,
                                   np.sqrt(rs_old))
        alpha = rs_old / denominator
        x = x + alpha * direction
        residual = residual - alpha * a_direction
        rs_new = float(residual @ residual)
        history.append(np.sqrt(rs_new) / rhs_norm)
        direction = residual + (rs_new / rs_old) * direction
        rs_old = rs_new
        iterations += 1
    final = np.sqrt(rs_old) / rhs_norm
    if raise_on_divergence and final >= tolerance:
        raise ConvergenceError("conjugate gradient", iterations, final)
    return SolveResult(SpangleVector(x, "col"), iterations, final,
                       history)


def normal_equation_operator(matrix: SpangleMatrix,
                             regularization: float = 0.0):
    """``v ↦ (MᵀM + λI)·v`` from the distributed kernels.

    ``MᵀM·v = Mᵀ(M·v)`` = one ``dot_vector`` plus one ``vector_dot``
    per application; MᵀM itself never exists.
    """

    def apply_operator(v: np.ndarray) -> np.ndarray:
        mv = matrix.dot_vector(SpangleVector(v, "col"))
        mt_mv = matrix.vector_dot(mv.transpose())  # opt2 metadata flip
        return mt_mv.data + regularization * v

    return apply_operator


def ridge_regression(matrix: SpangleMatrix, targets,
                     regularization: float = 1e-6,
                     tolerance: float = 1e-8,
                     max_iterations: int = None) -> SolveResult:
    """Least squares with L2 regularization via CG on the normal
    equations: minimizes ``‖Mx − b‖² + λ‖x‖²``."""
    targets = np.asarray(targets, dtype=np.float64).ravel()
    if targets.size != matrix.shape[0]:
        raise ShapeMismatchError(
            f"matrix has {matrix.shape[0]} rows but {targets.size} "
            f"targets were given"
        )
    if regularization < 0:
        raise ShapeMismatchError("regularization must be >= 0")
    rhs = matrix.vector_dot(
        SpangleVector(targets, "row")).data  # Mᵀ b as a row product
    return conjugate_gradient(
        normal_equation_operator(matrix, regularization), rhs,
        tolerance=tolerance, max_iterations=max_iterations)
