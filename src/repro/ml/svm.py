"""Linear support vector machine on Spangle's SGD machinery.

The paper (Section VII-C) groups SVM with logistic regression among the
algorithms built from M×V / VᵀM kernels; this implements it: hinge-loss
sub-gradient descent over :class:`DistributedSamples`, reusing the
Eq.-2 shuffle-free sampling and the opt1 transpose-free gradient. The
L2 regularizer is applied driver-side (it only touches the broadcast
weight vector).
"""

from __future__ import annotations

import time

import numpy as np

from repro.errors import ConvergenceError
from repro.matrix.vector import SpangleVector
from repro.ml.logistic import TrainingHistory
from repro.ml.optimizers import resolve_optimizer
from repro.ml.sgd import DistributedSamples


def _hinge_error(z: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Sub-gradient factor per row for hinge loss.

    With targets y ∈ {−1, +1}: rows inside the margin (y·z < 1)
    contribute −y; the rest contribute nothing.
    """
    signs = np.where(labels >= 0.5, 1.0, -1.0)
    inside_margin = signs * z < 1.0
    return np.where(inside_margin, -signs, 0.0)


class LinearSVM:
    """Hinge-loss linear classifier trained with mini-batch SGD.

    Labels are 0/1 (as the rest of the library uses) and mapped to
    ±1 internally. ``regularization`` is the L2 coefficient λ.
    """

    def __init__(self, step_size: float = 0.5, tolerance: float = 1e-4,
                 max_iterations: int = 200, chunks_per_step: int = 1,
                 regularization: float = 1e-4, opt1: bool = True,
                 seed: int = 0, optimizer=None):
        self.step_size = step_size
        self.tolerance = tolerance
        self.max_iterations = max_iterations
        self.chunks_per_step = chunks_per_step
        self.regularization = regularization
        self.opt1 = opt1
        self.seed = seed
        self.optimizer = resolve_optimizer(optimizer, step_size)
        self.weights: SpangleVector = None
        self.history = TrainingHistory()

    def fit(self, samples: DistributedSamples) -> "LinearSVM":
        x = SpangleVector.zeros(samples.num_features, "col")
        self.history = TrainingHistory()
        self.optimizer.reset(samples.num_features)
        for step in range(self.max_iterations):
            start = time.perf_counter()
            grad_row, count = samples.sampled_gradient(
                x.data, step, chunks_per_step=self.chunks_per_step,
                opt1=self.opt1, seed=self.seed,
                error_fn=_hinge_error)
            if count == 0:
                break
            gradient = grad_row / count + self.regularization * x.data
            new_data = self.optimizer.update(x.data, gradient)
            residual = float(np.abs(new_data - x.data).max())
            x = SpangleVector(new_data, "col")
            self.history.residuals.append(residual)
            self.history.iteration_times_s.append(
                time.perf_counter() - start)
            if residual < self.tolerance:
                break
        self.weights = x
        return self

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------

    def _check_fitted(self) -> None:
        if self.weights is None:
            raise ConvergenceError("linear SVM", 0, np.inf)

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return np.asarray(features) @ self.weights.data

    def predict(self, features: np.ndarray) -> np.ndarray:
        return (self.decision_function(features) >= 0).astype(np.int64)

    def accuracy(self, samples: DistributedSamples) -> float:
        """Distributed accuracy over a DistributedSamples (0/1 labels)."""
        self._check_fitted()
        weights = self.weights.data

        def count_correct(part):
            correct = 0
            total = 0
            for _cid, chunk in part:
                if chunk.num_rows == 0:
                    continue
                predicted = chunk.dot(weights) >= 0
                correct += int(
                    (predicted == (chunk.labels >= 0.5)).sum())
                total += chunk.num_rows
            return [(correct, total)]

        pieces = samples.rdd.map_partitions(count_correct).collect()
        correct = sum(p[0] for p in pieces)
        total = sum(p[1] for p in pieces)
        return correct / total if total else 0.0
