"""Gradient-step optimizers for the SGD family.

The paper trains with plain SGD and notes (Section VII-C) that Spangle
"has the challenge of achieving more precise accuracy, as we do not yet
implement a highly optimized algorithm, such as the Adagrad algorithm".
This module implements that future work: optimizers are pluggable into
:class:`~repro.ml.logistic.LogisticRegression` and
:class:`~repro.ml.svm.LinearSVM`.

All optimizers consume the *mean* gradient of the mini-batch and return
the updated weight vector; their state (e.g. Adagrad's accumulated
squared gradients) lives on the driver, like the weight vector itself.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SpangleError


class Optimizer:
    """Base class: transform (weights, mean_gradient) into new weights."""

    def reset(self, num_features: int) -> None:
        """Called once before training starts."""

    def update(self, weights: np.ndarray,
               gradient: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class SGDOptimizer(Optimizer):
    """Plain SGD: ``x ← x − θ·g`` (the paper's update rule)."""

    def __init__(self, step_size: float = 0.6):
        if step_size <= 0:
            raise SpangleError("step_size must be positive")
        self.step_size = step_size

    def update(self, weights, gradient):
        return weights - self.step_size * gradient

    def __repr__(self) -> str:
        return f"SGDOptimizer(step_size={self.step_size})"


class AdagradOptimizer(Optimizer):
    """Adagrad: per-coordinate steps ``θ / sqrt(Σ g² + ε)``.

    Sparse features receive larger effective steps, which is exactly
    why the paper names it for the URL/KDD feature spaces.
    """

    def __init__(self, step_size: float = 0.6, epsilon: float = 1e-8):
        if step_size <= 0:
            raise SpangleError("step_size must be positive")
        if epsilon <= 0:
            raise SpangleError("epsilon must be positive")
        self.step_size = step_size
        self.epsilon = epsilon
        self._accumulated = None

    def reset(self, num_features: int) -> None:
        self._accumulated = np.zeros(num_features)

    def update(self, weights, gradient):
        if self._accumulated is None:
            self.reset(weights.size)
        self._accumulated += gradient * gradient
        scale = self.step_size / np.sqrt(self._accumulated
                                         + self.epsilon)
        return weights - scale * gradient

    def __repr__(self) -> str:
        return (f"AdagradOptimizer(step_size={self.step_size}, "
                f"epsilon={self.epsilon})")


class MomentumOptimizer(Optimizer):
    """Classical momentum: ``v ← μv + g``, ``x ← x − θ·v``."""

    def __init__(self, step_size: float = 0.6, momentum: float = 0.9):
        if step_size <= 0:
            raise SpangleError("step_size must be positive")
        if not 0 <= momentum < 1:
            raise SpangleError("momentum must be in [0, 1)")
        self.step_size = step_size
        self.momentum = momentum
        self._velocity = None

    def reset(self, num_features: int) -> None:
        self._velocity = np.zeros(num_features)

    def update(self, weights, gradient):
        if self._velocity is None:
            self.reset(weights.size)
        self._velocity = self.momentum * self._velocity + gradient
        return weights - self.step_size * self._velocity

    def __repr__(self) -> str:
        return (f"MomentumOptimizer(step_size={self.step_size}, "
                f"momentum={self.momentum})")


def resolve_optimizer(optimizer, step_size: float) -> Optimizer:
    """Accept an Optimizer instance or a name ('sgd'/'adagrad'/...)."""
    if optimizer is None:
        return SGDOptimizer(step_size)
    if isinstance(optimizer, Optimizer):
        return optimizer
    if isinstance(optimizer, str):
        table = {
            "sgd": SGDOptimizer,
            "adagrad": AdagradOptimizer,
            "momentum": MomentumOptimizer,
        }
        try:
            return table[optimizer](step_size)
        except KeyError:
            raise SpangleError(
                f"unknown optimizer {optimizer!r}; have {sorted(table)}"
            ) from None
    raise SpangleError(f"expected Optimizer or name, got {optimizer!r}")
