"""Parallel mini-batch SGD machinery (Section VI-C).

Two ideas from the paper:

1. **Chunk IDs assigned in parallel** (Eq. 2): with ``nP`` partitions,
   partition ``pID`` numbers its local row-chunks ``rID = 0, 1, ...``
   and each chunk gets the globally unique ID

       C = nP · rID + pID

   — no coordination, no shuffle. IDs need not be consecutive, only
   unique.
2. **Shuffle-free sampling**: evaluated *in reverse*, the equation tells
   every partition which chunk IDs it owns (``C ≡ pID (mod nP)``), so at
   each SGD step every partition draws random local chunks and computes
   a partial gradient without any data movement; only the small gradient
   vectors meet at the driver.
"""

from __future__ import annotations

import random

import numpy as np

from repro.engine.partitioner import ExplicitPartitioner
from repro.errors import ArrayError, ShapeMismatchError


class SampleChunk:
    """A block of training rows in COO form plus their labels."""

    __slots__ = ("row_local", "col", "val", "labels", "num_rows")

    def __init__(self, row_local, col, val, labels, num_rows: int):
        self.row_local = np.ascontiguousarray(row_local, dtype=np.int64)
        self.col = np.ascontiguousarray(col, dtype=np.int64)
        self.val = np.ascontiguousarray(val, dtype=np.float64)
        self.labels = np.ascontiguousarray(labels, dtype=np.float64)
        self.num_rows = num_rows
        if not self.row_local.size == self.col.size == self.val.size:
            raise ShapeMismatchError("COO arrays must share a length")
        if self.labels.size != num_rows:
            raise ShapeMismatchError(
                f"{self.labels.size} labels for {num_rows} rows"
            )

    @property
    def nnz(self) -> int:
        return int(self.val.size)

    @property
    def nbytes(self) -> int:
        return int(self.row_local.nbytes + self.col.nbytes
                   + self.val.nbytes + self.labels.nbytes)

    def dot(self, x: np.ndarray) -> np.ndarray:
        """``X_block @ x`` — one gather + segmented sum."""
        return np.bincount(self.row_local,
                           weights=self.val * x[self.col],
                           minlength=self.num_rows)

    def t_dot(self, e: np.ndarray, num_features: int) -> np.ndarray:
        """``(eᵀ X_block)`` without forming Xᵀ — the *opt1* kernel."""
        return np.bincount(self.col,
                           weights=self.val * e[self.row_local],
                           minlength=num_features)

    def transpose_coo(self) -> "SampleChunk":
        """Physically build the transposed structure (the non-opt1 cost).

        Sorting the nonzeros into column-major order is the in-process
        analogue of the O(n/p) distributed transpose the paper avoids.
        """
        order = np.argsort(self.col, kind="stable")
        return SampleChunk(self.col[order], self.row_local[order],
                           self.val[order], self.labels, self.num_rows)

    def t_dot_materialized(self, e: np.ndarray,
                           num_features: int) -> np.ndarray:
        """``Xᵀ e`` through an explicitly transposed copy (no opt1)."""
        transposed = self.transpose_coo()
        # in the transposed structure, "rows" are the original columns
        return np.bincount(transposed.row_local,
                           weights=transposed.val
                           * e[transposed.col],
                           minlength=num_features)


def chunk_id(num_partitions: int, r_id: int, p_id: int) -> int:
    """Equation 2: C = nP · rID + pID."""
    return num_partitions * r_id + p_id


def partition_of(chunk: int, num_partitions: int) -> int:
    """Equation 2 reversed: which partition owns a chunk ID."""
    return chunk % num_partitions


def row_chunk_of(chunk: int, num_partitions: int) -> int:
    """Equation 2 reversed: the local row-chunk index of a chunk ID."""
    return chunk // num_partitions


class DistributedSamples:
    """Training data distributed as Eq.-2-numbered sample chunks."""

    def __init__(self, rdd, num_features: int, num_partitions: int,
                 chunks_per_partition: list, total_rows: int, context):
        self.rdd = rdd
        self.num_features = num_features
        self.num_partitions = num_partitions
        self.chunks_per_partition = list(chunks_per_partition)
        self.total_rows = total_rows
        self.context = context

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_coo(cls, context, rows, cols, values, labels,
                 num_features: int, chunk_rows: int = 256,
                 num_partitions=None) -> "DistributedSamples":
        """Ingest a sparse sample matrix given as global COO + labels."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.float64)
        if num_partitions is None:
            num_partitions = context.default_parallelism
        num_rows = labels.size
        if chunk_rows <= 0:
            raise ArrayError("chunk_rows must be positive")

        # contiguous row ranges per partition, then Eq. 2 numbering
        bounds = np.linspace(0, num_rows, num_partitions + 1) \
                   .astype(np.int64)
        records = []
        chunks_per_partition = []
        order = np.argsort(rows, kind="stable")
        rows_sorted = rows[order]
        cols_sorted = cols[order]
        values_sorted = values[order]
        for p_id in range(num_partitions):
            lo, hi = int(bounds[p_id]), int(bounds[p_id + 1])
            r_count = 0
            for r_id, start in enumerate(range(lo, hi, chunk_rows)):
                stop = min(start + chunk_rows, hi)
                sel_lo = np.searchsorted(rows_sorted, start)
                sel_hi = np.searchsorted(rows_sorted, stop)
                chunk = SampleChunk(
                    rows_sorted[sel_lo:sel_hi] - start,
                    cols_sorted[sel_lo:sel_hi],
                    values_sorted[sel_lo:sel_hi],
                    labels[start:stop],
                    stop - start,
                )
                records.append(
                    (chunk_id(num_partitions, r_id, p_id), chunk))
                r_count += 1
            chunks_per_partition.append(r_count)
        partitioner = ExplicitPartitioner(
            num_partitions, lambda cid: cid % num_partitions,
            tag=("eq2", num_partitions))
        rdd = context.parallelize(records, num_partitions,
                                  partitioner=partitioner)
        rdd.partitioner = partitioner
        return cls(rdd, num_features, num_partitions,
                   chunks_per_partition, num_rows, context)

    @classmethod
    def from_generator(cls, context, num_partitions: int,
                       partition_chunks, num_features: int
                       ) -> "DistributedSamples":
        """Distributed ingest: ``partition_chunks(p_id)`` yields
        :class:`SampleChunk` objects for partition ``p_id``.

        Chunk IDs are assigned inside each partition with Eq. 2 — the
        paper's point is exactly that this needs no coordination.
        """
        partitioner = ExplicitPartitioner(
            num_partitions, lambda cid: cid % num_partitions,
            tag=("eq2", num_partitions))

        def generate(p_id):
            for r_id, chunk in enumerate(partition_chunks(p_id)):
                yield chunk_id(num_partitions, r_id, p_id), chunk

        rdd = context.generate(num_partitions, generate,
                               partitioner=partitioner).cache()
        counts = rdd.map_partitions(
            lambda part: [len(list(part))]).collect()
        rows = rdd.map(lambda kv: kv[1].num_rows).fold(
            0, lambda a, b: a + b)
        return cls(rdd, num_features, num_partitions, counts, rows,
                   context)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------

    def cache(self) -> "DistributedSamples":
        self.rdd.cache()
        return self

    def nnz(self) -> int:
        return self.rdd.map(lambda kv: kv[1].nnz).fold(
            0, lambda a, b: a + b)

    def memory_bytes(self) -> int:
        return self.rdd.map(lambda kv: kv[1].nbytes).fold(
            0, lambda a, b: a + b)

    def sampled_gradient(self, x: np.ndarray, step: int,
                         chunks_per_step: int = 1, opt1: bool = True,
                         hypothesis=None, seed: int = 0,
                         error_fn=None):
        """One parallel mini-batch gradient evaluation.

        Every partition draws ``chunks_per_step`` of its own chunks
        (Eq. 2 reversed — no shuffle), computes the partial gradient
        against the broadcast ``x``, and the driver sums the partials.
        Returns ``(gradient_row, num_samples)``.

        ``error_fn(z, labels) -> per-row error`` defines the loss; the
        default is the logistic loss (``sigmoid(z) − y``). The gradient
        is then ``errorᵀ · X_batch`` whatever the loss.
        """
        num_features = self.num_features
        num_partitions = self.num_partitions
        if error_fn is None:
            if hypothesis is None:
                hypothesis = _sigmoid

            def error_fn(z, labels):  # noqa: E306 - default loss
                return hypothesis(z) - labels

        def partial(index, part):
            records = list(part)
            if not records:
                return [(np.zeros(num_features), 0)]
            rng = random.Random(seed * 1_000_003 + step * 7919 + index)
            grad = np.zeros(num_features)
            count = 0
            picks = min(chunks_per_step, len(records))
            local = {row_chunk_of(cid, num_partitions): chunk
                     for cid, chunk in records}
            chosen_rids = rng.sample(sorted(local), picks)
            for r_id in chosen_rids:
                chunk = local[r_id]
                z = chunk.dot(x)
                error = error_fn(z, chunk.labels)
                if opt1:
                    grad += chunk.t_dot(error, num_features)
                else:
                    grad += chunk.t_dot_materialized(error, num_features)
                count += chunk.num_rows
            return [(grad, count)]

        pieces = self.rdd.map_partitions_with_index(partial).collect()
        grad = np.zeros(num_features)
        total = 0
        for piece_grad, piece_count in pieces:
            grad += piece_grad
            total += piece_count
        return grad, total

    def evaluate_accuracy(self, x: np.ndarray,
                          hypothesis=None) -> float:
        """Fraction of rows classified correctly under weights ``x``."""
        if hypothesis is None:
            hypothesis = _sigmoid

        def count_correct(part):
            correct = 0
            total = 0
            for _cid, chunk in part:
                if chunk.num_rows == 0:
                    continue
                predicted = hypothesis(chunk.dot(x)) >= 0.5
                correct += int((predicted == (chunk.labels >= 0.5)).sum())
                total += chunk.num_rows
            return [(correct, total)]

        pieces = self.rdd.map_partitions(count_correct).collect()
        correct = sum(piece[0] for piece in pieces)
        total = sum(piece[1] for piece in pieces)
        return correct / total if total else 0.0


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z, dtype=np.float64)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    ez = np.exp(z[~positive])
    out[~positive] = ez / (1.0 + ez)
    return out
