"""Spangle's customized PageRank (Section VI-B).

The transition matrix A (column-stochastic over out-edges) decomposes as
A = A' ∘ w: A' is the 0/1 connectivity matrix and w_j = 1/outdeg(j).
The power iteration

    p_k = α A' (w ∘ p_{k-1}) + (1 − α)/n

then only ever touches A' — which lives as bitmask blocks — and two
cheap vector operations. Dangling vertices (out-degree zero) get w = 0,
matching the basic algorithm the paper says it uses.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.ml.graph import BitmaskGraph


@dataclass
class PageRankResult:
    """Ranks plus per-iteration bookkeeping for the Fig. 11 benches."""

    ranks: np.ndarray
    iterations: int
    residual: float
    iteration_times_s: list = field(default_factory=list)

    @property
    def total_time_s(self) -> float:
        return sum(self.iteration_times_s)

    def top_k(self, k: int = 10) -> list:
        order = np.argsort(self.ranks)[::-1][:k]
        return [(int(v), float(self.ranks[v])) for v in order]


def pagerank(graph: BitmaskGraph, damping: float = 0.85,
             max_iterations: int = 20, tolerance: float = 0.0,
             kernel: str = "csr") -> PageRankResult:
    """Run the decomposed power method on a BitmaskGraph.

    ``tolerance=0`` runs exactly ``max_iterations`` iterations (the
    paper's Fig. 11 setup: 20 fixed iterations); a positive tolerance
    stops early when the L1 residual drops below it. ``kernel`` routes
    the A'(w ∘ p) product: ``"csr"`` (default) reuses cached row
    pointers across iterations, ``"offsets"`` re-decodes every block
    each pass; the two produce bit-identical ranks.
    """
    n = graph.num_vertices
    with np.errstate(divide="ignore"):
        w = np.where(graph.out_degrees > 0, 1.0 / graph.out_degrees, 0.0)
    p = np.full(n, 1.0 / n)
    teleport = (1.0 - damping) / n
    residual = np.inf
    times = []
    iterations = 0
    for _step in range(max_iterations):
        start = time.perf_counter()
        weighted = w * p                      # w ∘ p  (Hadamard)
        spread = graph.spmv(weighted, kernel=kernel)  # A' (w ∘ p)
        new_p = damping * spread + teleport
        residual = float(np.abs(new_p - p).sum())
        p = new_p
        times.append(time.perf_counter() - start)
        iterations += 1
        if tolerance > 0 and residual < tolerance:
            break
    return PageRankResult(ranks=p, iterations=iterations,
                          residual=residual, iteration_times_s=times)


def pagerank_reference(edges, num_vertices: int, damping: float = 0.85,
                       max_iterations: int = 20) -> np.ndarray:
    """Dense-numpy oracle used by tests (same basic algorithm)."""
    adjacency = np.zeros((num_vertices, num_vertices))
    for src, dst in edges:
        adjacency[dst, src] = 1.0
    out_degrees = adjacency.sum(axis=0)
    with np.errstate(divide="ignore", invalid="ignore"):
        transition = np.where(out_degrees > 0,
                              adjacency / out_degrees, 0.0)
    p = np.full(num_vertices, 1.0 / num_vertices)
    for _step in range(max_iterations):
        p = damping * (transition @ p) + (1.0 - damping) / num_vertices
    return p
