"""BitmaskGraph: an unweighted graph as pure bitmask blocks (Section VI-B).

The paper's observation: in the PageRank decomposition A = A' ∘ w, the
matrix A' is a connectivity matrix — every entry is 0 or 1 — so a chunk
needs *no payload at all*: the bitmask (one bit per potential edge) or,
for super-sparse blocks, the edge offset list, is the entire chunk. An
edge costs one bit instead of an eight-byte value.

Convention (Section VI-B): rows are destination vertices, columns are
source vertices; entry (i, j) set means an edge j → i.
"""

from __future__ import annotations

import numpy as np

from repro.bitmask import Bitmask
from repro.core import mapper
from repro.core.metadata import ArrayMetadata
from repro.engine import HashPartitioner
from repro.engine.partitioner import NnzBalancedPartitioner
from repro.errors import ArrayError, ShapeMismatchError
from repro.matrix.offsets import (
    CSRBlock,
    bitmask_bytes,
    offset_array_bytes,
)


class _BitmaskBlock:
    """One adjacency block stored as a flat bitmask."""

    __slots__ = ("mask",)

    def __init__(self, mask: Bitmask):
        self.mask = mask

    @property
    def nbytes(self) -> int:
        return self.mask.nbytes

    @property
    def edge_count(self) -> int:
        return self.mask.count()

    def edge_offsets(self) -> np.ndarray:
        return self.mask.indices()


class _OffsetBlock:
    """One adjacency block stored as edge offsets (super-sparse)."""

    __slots__ = ("offsets", "num_cells")

    def __init__(self, offsets: np.ndarray, num_cells: int):
        self.offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        self.num_cells = num_cells

    @property
    def nbytes(self) -> int:
        return int(self.offsets.nbytes)

    @property
    def edge_count(self) -> int:
        return int(self.offsets.size)

    def edge_offsets(self) -> np.ndarray:
        return self.offsets


class _BlockToCSR:
    """Per-block conversion task: edge offsets → :class:`CSRBlock`.

    A module-level class so process-backend tasks pickle it by
    reference. Run once per block and cached; the power loop then
    reuses the row pointers every iteration instead of re-deriving
    ``row = off % block`` / ``col = off // block``.
    """

    __slots__ = ("block",)

    def __init__(self, block: int):
        self.block = block

    def __getstate__(self):
        return self.block

    def __setstate__(self, state):
        self.block = state

    def __call__(self, adjacency) -> CSRBlock:
        return CSRBlock.from_offsets(adjacency.edge_offsets(),
                                     self.block)


class BitmaskGraph:
    """A directed graph as blocks of an N×N boolean adjacency matrix.

    ``mode`` picks the block encoding: ``"sparse"`` keeps flat bitmasks,
    ``"super_sparse"`` keeps offset lists, ``"auto"`` chooses per block
    by size (the paper applies sparse to Enron/Epinions/Twitter and
    super-sparse to LiveJournal).
    """

    def __init__(self, rdd, meta: ArrayMetadata, out_degrees: np.ndarray,
                 context):
        self.rdd = rdd
        self.meta = meta
        self.out_degrees = out_degrees
        self.context = context
        self._csr_rdd = None

    @classmethod
    def from_edges(cls, context, edges, num_vertices: int,
                   block_size: int = 1024, num_partitions=None,
                   mode: str = "auto",
                   balance: str = "hash") -> "BitmaskGraph":
        """Build from ``(src, dst)`` pairs (arrays or iterable).

        Self-loops are kept; duplicate edges collapse (a bit is a bit).
        ``balance="nnz"`` places blocks so per-partition *edge counts*
        balance (greedy LPT over the blocks' edge counts) instead of
        hashing block IDs — on a power-law graph the hash placement can
        strand most edges on one executor.
        """
        if mode not in ("auto", "sparse", "super_sparse"):
            raise ArrayError(f"unknown graph mode {mode!r}")
        if balance not in ("hash", "nnz"):
            raise ArrayError(f"unknown balance policy {balance!r}; "
                             f"use 'hash' or 'nnz'")
        edges = np.asarray(list(edges) if not isinstance(edges, np.ndarray)
                           else edges, dtype=np.int64)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ShapeMismatchError("edges must be an (m, 2) array")
        if edges.size and (edges.min() < 0
                           or edges.max() >= num_vertices):
            raise ArrayError(
                f"vertex ids out of range [0, {num_vertices})"
            )
        src = edges[:, 0]
        dst = edges[:, 1]
        block_size = min(block_size, num_vertices)
        meta = ArrayMetadata((num_vertices, num_vertices),
                             (block_size, block_size),
                             dim_names=("dst", "src"), dtype=np.bool_)
        out_degrees = np.bincount(src, minlength=num_vertices) \
                        .astype(np.float64)

        # rows = destination, cols = source
        coords = np.stack([dst, src], axis=1)
        chunk_ids = mapper.chunk_ids_for_coords_array(meta, coords)
        offsets = mapper.local_offsets_for_coords_array(meta, coords)
        order = np.argsort(chunk_ids, kind="stable")
        chunk_ids = chunk_ids[order]
        offsets = offsets[order]
        cells = meta.cells_per_chunk
        boundaries = np.nonzero(np.diff(chunk_ids))[0] + 1
        starts = np.concatenate([[0], boundaries]) if chunk_ids.size \
            else np.array([], dtype=np.int64)
        ends = np.concatenate([boundaries, [chunk_ids.size]]) \
            if chunk_ids.size else np.array([], dtype=np.int64)
        records = []
        for start, end in zip(starts, ends):
            cid = int(chunk_ids[start])
            block_offsets = np.unique(offsets[start:end])
            records.append(
                (cid, _encode_block(block_offsets, cells, mode)))
        if num_partitions is None:
            num_partitions = context.default_parallelism
        if balance == "nnz" and records:
            weights = {cid: float(block.edge_count)
                       for cid, block in records}
            partitioner = NnzBalancedPartitioner.from_weights(
                weights, num_partitions)
            stats = getattr(context, "nnz_stats", None)
            if stats is not None:
                stats.record("graph-load",
                             partitioner.partition_loads(weights))
        else:
            partitioner = HashPartitioner(num_partitions)
        rdd = context.parallelize(records, num_partitions,
                                  partitioner=partitioner)
        rdd.partitioner = partitioner
        return cls(rdd, meta, out_degrees, context)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return self.meta.shape[0]

    def num_edges(self) -> int:
        return self.rdd.map(lambda kv: kv[1].edge_count).fold(
            0, lambda a, b: a + b)

    def memory_bytes(self) -> int:
        """Adjacency footprint — the one-bit-per-edge claim lives here."""
        return self.rdd.map(lambda kv: kv[1].nbytes).fold(
            0, lambda a, b: a + b)

    def cache(self) -> "BitmaskGraph":
        self.rdd.cache()
        return self

    def csr_blocks(self):
        """The cached row-pointer twin of the adjacency RDD.

        Built lazily (one pass) and kept cached: iterative consumers
        pay the per-block row sort once instead of re-deriving
        ``row = off % block`` every power iteration.
        """
        if self._csr_rdd is None:
            block = self.meta.chunk_shape[0]
            self._csr_rdd = self.rdd.map_values(
                _BlockToCSR(block)).cache()
        return self._csr_rdd

    def spmv(self, x: np.ndarray, kernel: str = "csr") -> np.ndarray:
        """``y = A' @ x``: sum x over in-edges, no multiplications.

        Because every stored entry is exactly 1, the kernel is a gather
        plus a segmented sum — the payload-free benefit of the bitmask
        representation. ``kernel="csr"`` (default) runs it over the
        cached :class:`~repro.matrix.offsets.CSRBlock` structures;
        ``kernel="offsets"`` decodes each block's offsets in place
        (the pre-CSR formulation). Both sum every row's contributions
        sequentially in column order, so their results are
        bit-identical.
        """
        if kernel not in ("csr", "offsets"):
            raise ArrayError(f"unknown spmv kernel {kernel!r}; "
                             f"use 'csr' or 'offsets'")
        if x.size != self.num_vertices:
            raise ShapeMismatchError(
                f"vector length {x.size} != vertex count "
                f"{self.num_vertices}"
            )
        n = self.num_vertices
        block = self.meta.chunk_shape[0]
        grid_rows = self.meta.chunk_grid[0]

        def csr_partials(part):
            partial = np.zeros(n)
            for chunk_id, csr in part:
                if csr.edge_count == 0:
                    continue
                rb = chunk_id % grid_rows
                cb = chunk_id // grid_rows
                contrib = csr.spmv(x[cb * block:(cb + 1) * block])
                hi = min(block, n - rb * block)
                partial[rb * block:rb * block + hi] += contrib[:hi]
            return [partial]

        def offset_partials(part):
            partial = np.zeros(n)
            for chunk_id, adjacency in part:
                offsets = adjacency.edge_offsets()
                if offsets.size == 0:
                    continue
                rb = chunk_id % grid_rows
                cb = chunk_id // grid_rows
                rows = offsets % block
                cols = offsets // block
                contrib = np.bincount(
                    rows, weights=x[cb * block + cols], minlength=block)
                hi = min(block, n - rb * block)
                partial[rb * block:rb * block + hi] += contrib[:hi]
            return [partial]

        if kernel == "csr":
            pieces = self.csr_blocks().map_partitions(
                csr_partials).collect()
        else:
            pieces = self.rdd.map_partitions(offset_partials).collect()
        result = np.zeros(n)
        for piece in pieces:
            result += piece
        return result

    def to_dense(self) -> np.ndarray:
        """Dense boolean adjacency (tests only — O(N^2) memory)."""
        out = np.zeros(self.meta.shape, dtype=bool)
        block = self.meta.chunk_shape[0]
        grid_rows = self.meta.chunk_grid[0]
        for chunk_id, adjacency in self.rdd.collect():
            rb = chunk_id % grid_rows
            cb = chunk_id // grid_rows
            offsets = adjacency.edge_offsets()
            rows = rb * block + offsets % block
            cols = cb * block + offsets // block
            out[rows, cols] = True
        return out

    def __repr__(self) -> str:
        return (
            f"BitmaskGraph(vertices={self.num_vertices}, "
            f"block={self.meta.chunk_shape[0]})"
        )


def _encode_block(offsets: np.ndarray, cells: int, mode: str):
    if mode == "sparse":
        return _BitmaskBlock(Bitmask.from_indices(cells, offsets))
    if mode == "super_sparse":
        return _OffsetBlock(offsets, cells)
    # auto: pick whichever structure is smaller for this block
    if offset_array_bytes(offsets.size) < bitmask_bytes(cells):
        return _OffsetBlock(offsets, cells)
    return _BitmaskBlock(Bitmask.from_indices(cells, offsets))
