"""Connected components over the bitmask adjacency.

A second graph algorithm on :class:`BitmaskGraph` beyond PageRank,
showing the representation is general: label propagation — every vertex
starts with its own id as label and repeatedly adopts the minimum label
among itself and its neighbours. Each round is one ``spmv``-shaped pass
over the bitmask blocks (a min-aggregation instead of a sum), so the
edges stay bits and nothing shuffles.

The graph is treated as undirected (labels flow both ways across an
edge), matching the usual connected-components semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml.graph import BitmaskGraph


@dataclass
class ComponentsResult:
    labels: np.ndarray
    iterations: int
    num_components: int
    sizes: dict = field(default_factory=dict)


def _min_neighbour_labels(graph: BitmaskGraph,
                          labels: np.ndarray) -> np.ndarray:
    """For every vertex: min label over in- AND out-neighbours."""
    n = graph.num_vertices
    block = graph.meta.chunk_shape[0]
    grid_rows = graph.meta.chunk_grid[0]

    def partials(part):
        partial = np.full(n, np.inf)
        for chunk_id, adjacency in part:
            offsets = adjacency.edge_offsets()
            if offsets.size == 0:
                continue
            rb = chunk_id % grid_rows
            cb = chunk_id // grid_rows
            rows = rb * block + offsets % block
            cols = cb * block + offsets // block
            # labels flow dst <- src and src <- dst (undirected view)
            np.minimum.at(partial, rows, labels[cols])
            np.minimum.at(partial, cols, labels[rows])
        return [partial]

    pieces = graph.rdd.map_partitions(partials).collect()
    out = np.full(n, np.inf)
    for piece in pieces:
        np.minimum(out, piece, out=out)
    return out


def connected_components(graph: BitmaskGraph,
                         max_iterations: int = 100) -> ComponentsResult:
    """Label propagation until a fixed point (or the iteration cap)."""
    n = graph.num_vertices
    labels = np.arange(n, dtype=np.float64)
    iterations = 0
    for _step in range(max_iterations):
        neighbour_min = _min_neighbour_labels(graph, labels)
        new_labels = np.minimum(labels, neighbour_min)
        iterations += 1
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
    final = labels.astype(np.int64)
    unique, counts = np.unique(final, return_counts=True)
    return ComponentsResult(
        labels=final,
        iterations=iterations,
        num_components=int(unique.size),
        sizes={int(label): int(count)
               for label, count in zip(unique, counts)},
    )
