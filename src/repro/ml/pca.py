"""Principal component analysis on a distributed matrix.

Section VII-C motivates the MᵀM kernel with PCA; this closes the loop.
For an n×f sample matrix M (n ≫ f, the shape of every Table-II
dataset), the covariance is assembled from two distributed passes —

    C = (MᵀM − n·μμᵀ) / (n − 1)

where MᵀM is the transpose-free :meth:`SpangleMatrix.gram` and μ the
column means (one ``col_sums`` pass). The f×f eigen-decomposition runs
on the driver, like every system the paper benchmarks would do; the
projection of the data onto the top components is one more distributed
pass per component batch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ArrayError, ShapeMismatchError
from repro.matrix.creation import col_sums
from repro.matrix.matrix import SpangleMatrix
from repro.matrix.vector import SpangleVector


@dataclass
class PCAModel:
    """Fitted principal components."""

    mean: np.ndarray                 # (f,)
    components: np.ndarray           # (k, f), rows are components
    explained_variance: np.ndarray   # (k,)
    explained_variance_ratio: np.ndarray

    @property
    def num_components(self) -> int:
        return self.components.shape[0]

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Project dense rows onto the components."""
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        if features.shape[1] != self.mean.size:
            raise ShapeMismatchError(
                f"expected {self.mean.size} features, got "
                f"{features.shape[1]}"
            )
        return (features - self.mean) @ self.components.T

    def transform_distributed(self, matrix: SpangleMatrix) -> np.ndarray:
        """Project a distributed matrix: one VᵀM-shaped pass/component.

        Projection of row i onto component c is (Mᵢ − μ)·c =
        (M·c)ᵢ − μ·c, so each component costs one matvec.
        """
        if matrix.shape[1] != self.mean.size:
            raise ShapeMismatchError(
                f"matrix has {matrix.shape[1]} features, model has "
                f"{self.mean.size}"
            )
        n = matrix.shape[0]
        out = np.empty((n, self.num_components))
        for index, component in enumerate(self.components):
            projected = matrix.dot_vector(
                SpangleVector(component, "col")).data
            out[:, index] = projected - float(self.mean @ component)
        return out


def pca(matrix: SpangleMatrix, num_components: int) -> PCAModel:
    """Fit PCA on the rows of a distributed n×f matrix."""
    n, f = matrix.shape
    if not 1 <= num_components <= f:
        raise ArrayError(
            f"num_components must be in [1, {f}], got {num_components}"
        )
    if n < 2:
        raise ArrayError("PCA needs at least two rows")

    # pass 1: column means (zeros included — they are real values here)
    mean = col_sums(matrix).data / n
    # pass 2: uncentered Gramian, then the centering correction
    gram = matrix.gram().to_numpy()
    covariance = (gram - n * np.outer(mean, mean)) / (n - 1)

    eigenvalues, eigenvectors = np.linalg.eigh(covariance)
    order = np.argsort(eigenvalues)[::-1]
    eigenvalues = np.clip(eigenvalues[order], 0.0, None)
    eigenvectors = eigenvectors[:, order]

    total_variance = float(eigenvalues.sum()) or 1.0
    top = slice(0, num_components)
    # deterministic orientation: the largest-magnitude entry is positive
    components = eigenvectors[:, top].T.copy()
    for row in components:
        pivot = np.argmax(np.abs(row))
        if row[pivot] < 0:
            row *= -1
    return PCAModel(
        mean=mean,
        components=components,
        explained_variance=eigenvalues[top],
        explained_variance_ratio=eigenvalues[top] / total_variance,
    )
