"""Resilient Distributed Datasets, in miniature.

An :class:`RDD` is a lazy, partitioned collection. Transformations build a
DAG; actions walk it. Narrow transformations (map/filter/...) pipeline
within a partition exactly like Spark; wide transformations go through
:class:`ShuffledRDD` / :class:`CoGroupedRDD`, which materialize a real
hash-bucketed shuffle with byte accounting.

Fault tolerance follows Spark's model: a partition is recomputed from its
lineage whenever it is needed and not cached. Tests inject block loss via
the cache manager and verify results are rebuilt transparently.
"""

from __future__ import annotations

import heapq
import itertools
import random
import threading
import time

import numpy as np

from repro.engine import batches
from repro.engine import shm as shm_mod
from repro.engine.batches import (
    BatchSegment,
    RecordBatch,
    ScalarValues,
    combine_runs,
    group_indices_by_partition,
    pack_int_keys,
    pack_values,
)
from repro.engine.partitioner import Partitioner
from repro.engine.sizing import estimate_partition_size
from repro.engine.storage import StorageLevel
from repro.errors import EngineError, TaskFailure


def run_task_with_retries(context, index, attempt_func):
    """One logical task: ``1 + task_retries`` attempts, all metered.

    Mirrors Spark's ``spark.task.maxFailures``: deterministic failures
    exhaust the attempts and surface as a :class:`TaskFailure`. Used by
    both shuffle map tasks and result-stage tasks so retry semantics are
    identical on either side of a stage boundary.
    """
    metrics = context.metrics
    last_error = None
    for attempt in range(1 + context.task_retries):
        metrics.record_task()
        if attempt > 0:
            metrics.record_task_retry()
        start = time.perf_counter()
        try:
            result = attempt_func()
        except Exception as exc:  # noqa: BLE001 - retried
            metrics.record_task_time(time.perf_counter() - start)
            last_error = exc
            continue
        metrics.record_task_time(time.perf_counter() - start)
        return result
    raise TaskFailure(index, last_error) from last_error


# ----------------------------------------------------------------------
# task callables
#
# The engine's own per-partition functions are module-level classes, not
# lambdas, so a task crossing the process boundary pickles them by
# reference (a qualified name) instead of marshaling code by value —
# only the *user's* UDF inside them ever needs the by-value path of
# repro.engine.closure. Each wrapper exposes the wrapped callable as
# ``func`` so the worker's context-binding walk can reach through
# arbitrarily nested wrappers.
# ----------------------------------------------------------------------

class _IgnoreIndex:
    """Adapts ``func(part)`` to the ``func(index, part)`` slot."""

    __slots__ = ("func",)

    def __init__(self, func):
        self.func = func

    def __call__(self, _index, part):
        return self.func(part)


class _PerRecord:
    """``map``: apply ``func`` to every record, lazily."""

    __slots__ = ("func",)

    def __init__(self, func):
        self.func = func

    def __call__(self, part):
        func = self.func
        return (func(record) for record in part)


class _FilterRecords:
    """``filter``: keep records satisfying the predicate."""

    __slots__ = ("func",)

    def __init__(self, func):
        self.func = func

    def __call__(self, part):
        predicate = self.func
        return (record for record in part if predicate(record))


class _FlatMapRecords:
    """``flat_map``: concatenate ``func(record)`` iterables."""

    __slots__ = ("func",)

    def __init__(self, func):
        self.func = func

    def __call__(self, part):
        func = self.func
        return itertools.chain.from_iterable(
            func(record) for record in part)


class _KeyBy:
    """``key_by``: pair every record with ``func(record)``."""

    __slots__ = ("func",)

    def __init__(self, func):
        self.func = func

    def __call__(self, record):
        return (self.func(record), record)


class _AttachIndex:
    """``zip_with_index``: attach partition-major global indices."""

    __slots__ = ("offsets",)

    def __init__(self, offsets):
        self.offsets = offsets

    def __call__(self, index, part):
        offset = self.offsets[index]
        return ((record, offset + i)
                for i, record in enumerate(part))


class _Sampler:
    """``sample``: per-partition deterministic Bernoulli sampling."""

    __slots__ = ("fraction", "seed")

    def __init__(self, fraction, seed):
        self.fraction = fraction
        self.seed = seed

    def __call__(self, index, part):
        rng = random.Random(self.seed * 1_000_003 + index)
        fraction = self.fraction
        return (record for record in part if rng.random() < fraction)


class _MapValuesPart:
    """``map_values``: apply ``func`` to values, keys untouched."""

    __slots__ = ("func",)

    def __init__(self, func):
        self.func = func

    def __call__(self, part):
        func = self.func
        return ((key, func(value)) for key, value in part)


class _FlatMapValuesPart:
    """``flat_map_values``: expand each value, replicating the key."""

    __slots__ = ("func",)

    def __init__(self, func):
        self.func = func

    def __call__(self, part):
        func = self.func
        return ((key, out) for key, value in part
                for out in func(value))


class _SeqFold:
    """``aggregate``: fold a partition with ``seq_op`` from ``zero``."""

    __slots__ = ("zero", "func")

    def __init__(self, zero, seq_op):
        self.zero = zero
        self.func = seq_op

    def __call__(self, part):
        acc = self.zero
        func = self.func
        for record in part:
            acc = func(acc, record)
        return acc


class _NSmallest:
    """``take_ordered``: per-partition n-smallest heap."""

    __slots__ = ("n", "key")

    def __init__(self, n, key):
        self.n = n
        self.key = key

    def __call__(self, part):
        return heapq.nsmallest(self.n, part, key=self.key)


class _NLargest:
    """``top``: per-partition n-largest heap."""

    __slots__ = ("n", "key")

    def __init__(self, n, key):
        self.n = n
        self.key = key

    def __call__(self, part):
        return heapq.nlargest(self.n, part, key=self.key)


class _ForEach:
    """``foreach``: run ``func`` for its side effects."""

    __slots__ = ("func",)

    def __init__(self, func):
        self.func = func

    def __call__(self, part):
        func = self.func
        for record in part:
            func(record)
        return None


def _glom_part(part):
    return [list(part)]


def _count_records(part):
    return sum(1 for _ in part)


def _count_part(part):
    return [sum(1 for _ in part)]


def _zip_parts(left_part, right_part):
    left_list = list(left_part)
    right_list = list(right_part)
    if len(left_list) != len(right_list):
        raise EngineError(
            "zip requires identically sized partitions "
            f"({len(left_list)} vs {len(right_list)})"
        )
    return list(zip(left_list, right_list))


def _identity(value):
    return value


def _pair_with_none(record):
    return (record, None)


def _keep_first(a, _b):
    return a


def _first_element(kv):
    return kv[0]


def _second_element(kv):
    return kv[1]


def _singleton_list(value):
    return [value]


def _append_value(acc, value):
    acc.append(value)
    return acc


def _extend_list(a, b):
    a.extend(b)
    return a


def _one(_value):
    return 1


def _add(a, b):
    return a + b


class RDD:
    """Base class for all RDDs.

    Subclasses implement :meth:`compute`; everything else (caching,
    lineage, the transformation/action API) lives here.
    """

    def __init__(self, context, dependencies=(), num_partitions=None,
                 partitioner=None, name=None):
        self.context = context
        self.rdd_id = context._next_rdd_id()
        self.dependencies = tuple(dependencies)
        if num_partitions is None:
            if not self.dependencies:
                raise EngineError("root RDD must declare num_partitions")
            num_partitions = self.dependencies[0].num_partitions
        self.num_partitions = num_partitions
        self.partitioner = partitioner
        self.name = name or type(self).__name__
        self.storage_level = StorageLevel.NONE
        self._cached_indices = set()
        self._checkpoint_data = None
        self._checkpoint_lock = threading.Lock()
        self._compute_locks = {}
        self._compute_locks_guard = threading.Lock()
        self._mat_locks = {}
        self._mat_locks_guard = threading.Lock()
        self._lineage_hint_cache = None

    # ------------------------------------------------------------------
    # computation and caching
    # ------------------------------------------------------------------

    def compute(self, index: int) -> list:
        """Produce partition ``index`` from parent partitions."""
        raise NotImplementedError

    def iterator(self, index: int) -> list:
        """Cache-aware access to partition ``index``.

        If the RDD is persisted, serve from the block cache when possible
        and repopulate it (counting a recomputation) when the block was
        lost.
        """
        if self._checkpoint_data is not None:
            data = self._checkpoint_data[index]
            self.context.metrics.record_disk_read(
                estimate_partition_size(data))
            return data
        if self.storage_level is StorageLevel.NONE:
            return self.compute(index)
        cache = self.context.cache
        found, data = cache.get(self.rdd_id, index)
        if found:
            return data
        with self._partition_lock(index):
            # recheck silently: a concurrent task may have populated the
            # block while we waited; computing again here would both
            # duplicate the work and corrupt the recomputation counter
            found, data = cache.peek(self.rdd_id, index)
            if found:
                return data
            if index in self._cached_indices:
                self.context.metrics.record_recomputation()
            data = list(self.compute(index))
            depth, wide = self.lineage_hint()
            cache.put(self.rdd_id, index, data,
                      allow_spill=self.storage_level
                      is StorageLevel.MEMORY_AND_DISK,
                      lineage_depth=depth, shuffle_depth=wide)
            self._cached_indices.add(index)
        return data

    def _partition_lock(self, index: int) -> threading.Lock:
        """The per-(rdd, partition) compute lock.

        Two tasks that miss the cache for the same block serialize here,
        so a partition is computed at most once however many concurrent
        consumers it has.
        """
        with self._compute_locks_guard:
            lock = self._compute_locks.get(index)
            if lock is None:
                lock = self._compute_locks[index] = threading.Lock()
            return lock

    def _materialize_lock(self, which) -> threading.Lock:
        """The per-(rdd, which) shuffle-stage materialize lock.

        Concurrent callers of one map stage — two driver jobs sharing a
        cached upstream, or the pipelined scheduler racing a direct
        ``_fetch_shuffle`` — serialize here and double-check the stored
        buckets, so a stage's map tasks run at most once. ``which`` is
        the :class:`CoGroupedRDD` parent slot (``None`` for a
        :class:`ShuffledRDD`); each slot gets its own lock so the two
        sides of a cogroup can materialize concurrently.
        """
        with self._mat_locks_guard:
            lock = self._mat_locks.get(which)
            if lock is None:
                lock = self._mat_locks[which] = threading.Lock()
            return lock

    # ------------------------------------------------------------------
    # process-boundary pickling
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict:
        """Ship lineage across the process boundary.

        Driver-only machinery — the context and every lock — stays
        behind; the worker rebinds a fresh context over the lineage
        walk. ``_cached_indices`` is copied under retry because
        dispatcher threads may be adding to it concurrently.
        """
        state = self.__dict__.copy()
        state["context"] = None
        state["_checkpoint_lock"] = None
        state["_compute_locks"] = {}
        state["_compute_locks_guard"] = None
        state["_mat_locks"] = {}
        state["_mat_locks_guard"] = None
        state.pop("_lock", None)
        while True:
            try:
                state["_cached_indices"] = set(self._cached_indices)
                break
            except RuntimeError:  # pragma: no cover - concurrent add
                continue
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._checkpoint_lock = threading.Lock()
        self._compute_locks = {}
        self._compute_locks_guard = threading.Lock()
        self._mat_locks = {}
        self._mat_locks_guard = threading.Lock()
        self._lock = threading.Lock()

    def persist(self, level: StorageLevel = StorageLevel.MEMORY) -> "RDD":
        self.storage_level = level
        return self

    def cache(self) -> "RDD":
        return self.persist(StorageLevel.MEMORY)

    def unpersist(self) -> "RDD":
        self.storage_level = StorageLevel.NONE
        self._cached_indices.clear()
        self.context.cache.drop_rdd(self.rdd_id)
        return self

    # ------------------------------------------------------------------
    # checkpointing and lineage
    # ------------------------------------------------------------------

    def checkpoint(self) -> "RDD":
        """Materialize to (simulated) reliable storage, cutting lineage.

        Iterative jobs whose lineage would otherwise grow without bound
        — the paper observes GraphX regenerating spilled RDDs by lineage
        and doubling its iteration time — checkpoint periodically. The
        write is metered as disk I/O, as Spark's reliable checkpoints
        are; afterwards reads come from the checkpoint, not the parents.
        """
        with self._checkpoint_lock:
            if self._checkpoint_data is None:
                data = self.context.scheduler.materialize_partitions(self)
                total = sum(estimate_partition_size(part) for part in data)
                self.context.metrics.record_disk_write(total)
                self._checkpoint_data = data
        return self

    @property
    def is_checkpointed(self) -> bool:
        return self._checkpoint_data is not None

    def _own_wide_count(self) -> int:
        """Wide dependencies this RDD itself introduces (0 for narrow)."""
        return 0

    def lineage_hint(self) -> tuple:
        """``(lineage_depth, shuffle_depth)`` — how dear a recompute is.

        ``lineage_depth`` is the longest chain of narrow ancestors;
        ``shuffle_depth`` counts wide dependencies on that chain. The
        block cache stores both with every cached partition so the
        cost-aware eviction policy can price recomputation: shallow
        narrow results are cheap to lose, shuffle outputs are not.
        Checkpoints cut the lineage here exactly as they do for
        recovery. Memoized — the DAG beneath an RDD never changes.
        """
        if self._lineage_hint_cache is None:
            if self.is_checkpointed or not self.dependencies:
                depth, wide = 1, self._own_wide_count()
            else:
                depth, wide = 0, 0
                for dep in self.dependencies:
                    dep_depth, dep_wide = dep.lineage_hint()
                    depth = max(depth, dep_depth)
                    wide = max(wide, dep_wide)
                depth += 1
                wide += self._own_wide_count()
            self._lineage_hint_cache = (depth, wide)
        return self._lineage_hint_cache

    def lineage(self) -> dict:
        """A nested description of how this RDD derives from its parents.

        Checkpointed RDDs are lineage roots: their parents are elided.
        """
        if self.is_checkpointed:
            return {
                "id": self.rdd_id,
                "op": f"{self.name} [checkpoint]",
                "partitions": self.num_partitions,
                "parents": [],
            }
        return {
            "id": self.rdd_id,
            "op": self.name,
            "partitions": self.num_partitions,
            "parents": [dep.lineage() for dep in self.dependencies],
        }

    def lineage_string(self, _depth: int = 0) -> str:
        marker = " [checkpoint]" if self.is_checkpointed else ""
        lines = [
            "  " * _depth
            + f"({self.rdd_id}) {self.name}[{self.num_partitions}]"
            + marker
        ]
        if not self.is_checkpointed:
            for dep in self.dependencies:
                lines.append(dep.lineage_string(_depth + 1))
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # narrow transformations
    # ------------------------------------------------------------------

    def map_partitions_with_index(self, func, preserves_partitioning=False):
        """``func(index, iterable) -> iterable`` applied per partition."""
        return MapPartitionsRDD(self, func,
                                preserves_partitioning=preserves_partitioning)

    def map_partitions(self, func, preserves_partitioning=False):
        return self.map_partitions_with_index(
            _IgnoreIndex(func),
            preserves_partitioning=preserves_partitioning,
        )

    def map(self, func):
        return self.map_partitions(_PerRecord(func)).rename("map")

    def filter(self, predicate):
        return self.map_partitions(
            _FilterRecords(predicate),
            preserves_partitioning=True,
        ).rename("filter")

    def flat_map(self, func):
        return self.map_partitions(
            _FlatMapRecords(func)).rename("flat_map")

    def glom(self):
        return self.map_partitions(_glom_part).rename("glom")

    def key_by(self, func):
        return self.map(_KeyBy(func)).rename("key_by")

    def zip_with_index(self):
        """Pair every record with a global, partition-major index."""
        counts = self.map_partitions(_count_part).collect()
        offsets = [0]
        for count in counts[:-1]:
            offsets.append(offsets[-1] + count)
        return self.map_partitions_with_index(
            _AttachIndex(offsets)).rename("zip_with_index")

    def union(self, other: "RDD") -> "RDD":
        return UnionRDD(self.context, [self, other])

    def zip_partitions(self, other: "RDD", func,
                       preserves_partitioning: bool = False) -> "RDD":
        """Pairwise-combine co-numbered partitions of two RDDs."""
        return ZippedPartitionsRDD(self, other, func,
                                   preserves_partitioning)

    def sample(self, fraction: float, seed: int = 0) -> "RDD":
        return self.map_partitions_with_index(
            _Sampler(fraction, seed), preserves_partitioning=True
        ).rename("sample")

    def distinct(self) -> "RDD":
        return (
            self.map(_pair_with_none)
            .reduce_by_key(_keep_first)
            .map(_first_element)
            .rename("distinct")
        )

    def coalesce(self, num_partitions: int) -> "RDD":
        return CoalescedRDD(self, num_partitions)

    def rename(self, name: str) -> "RDD":
        self.name = name
        return self

    # ------------------------------------------------------------------
    # pair-RDD transformations (delegated; defined in pairs.py)
    # ------------------------------------------------------------------

    def keys(self):
        return self.map(_first_element).rename("keys")

    def values(self):
        return self.map(_second_element).rename("values")

    def map_values(self, func):
        return self.map_partitions(
            _MapValuesPart(func),
            preserves_partitioning=True,
        ).rename("map_values")

    def flat_map_values(self, func):
        return self.map_partitions(
            _FlatMapValuesPart(func),
            preserves_partitioning=True,
        ).rename("flat_map_values")

    def combine_by_key(self, create_combiner, merge_value, merge_combiners,
                       partitioner=None, map_side_combine=True,
                       combine_kernel=None):
        from repro.engine.pairs import combine_by_key

        return combine_by_key(
            self, create_combiner, merge_value, merge_combiners,
            partitioner=partitioner, map_side_combine=map_side_combine,
            combine_kernel=combine_kernel,
        )

    def reduce_by_key(self, func, partitioner=None, combine_kernel=None):
        return self.combine_by_key(
            _identity, func, func, partitioner=partitioner,
            combine_kernel=combine_kernel,
        ).rename("reduce_by_key")

    def group_by_key(self, partitioner=None):
        return self.combine_by_key(
            _singleton_list, _append_value, _extend_list,
            partitioner=partitioner, map_side_combine=False,
        ).rename("group_by_key")

    def partition_by(self, partitioner: Partitioner):
        from repro.engine.pairs import partition_by

        return partition_by(self, partitioner)

    def join(self, other, partitioner=None):
        from repro.engine.pairs import join

        return join(self, other, partitioner)

    def left_outer_join(self, other, partitioner=None):
        from repro.engine.pairs import left_outer_join

        return left_outer_join(self, other, partitioner)

    def full_outer_join(self, other, partitioner=None):
        from repro.engine.pairs import full_outer_join

        return full_outer_join(self, other, partitioner)

    def cogroup(self, other, partitioner=None):
        from repro.engine.pairs import cogroup

        return cogroup([self, other], partitioner)

    def sort_by_key(self, num_partitions=None):
        from repro.engine.pairs import sort_by_key

        return sort_by_key(self, num_partitions)

    def count_by_key(self) -> dict:
        return dict(
            self.map_values(_one)
            .reduce_by_key(_add, combine_kernel="sum")
            .collect()
        )

    def lookup(self, key) -> list:
        """All values for ``key``; uses the partitioner when known."""
        if self.partitioner is not None:
            index = self.partitioner.partition(key)
            return [
                v for k, v in self.context.run_partition(self, index)
                if k == key
            ]
        return self.filter(lambda kv: kv[0] == key).values().collect()

    # ------------------------------------------------------------------
    # actions
    # ------------------------------------------------------------------

    def collect(self) -> list:
        chunks = self.context.run_job(self, list)
        return [record for chunk in chunks for record in chunk]

    def collect_as_map(self) -> dict:
        return dict(self.collect())

    def count(self) -> int:
        return sum(self.context.run_job(self, _count_records))

    def reduce(self, func):
        parts = self.context.run_job(self, list)
        non_empty = [p for p in parts if p]
        if not non_empty:
            raise EngineError("reduce() on an empty RDD")
        partials = []
        for part in non_empty:
            acc = part[0]
            for record in part[1:]:
                acc = func(acc, record)
            partials.append(acc)
        result = partials[0]
        for partial in partials[1:]:
            result = func(result, partial)
        return result

    def fold(self, zero, func):
        parts = self.context.run_job(self, list)
        result = zero
        for part in parts:
            acc = zero
            for record in part:
                acc = func(acc, record)
            result = func(result, acc)
        return result

    def aggregate(self, zero, seq_op, comb_op):
        partials = self.context.run_job(self, _SeqFold(zero, seq_op))
        result = zero
        for partial in partials:
            result = comb_op(result, partial)
        return result

    def sum(self):
        return self.fold(0, lambda a, b: a + b)

    def max(self):
        return self.reduce(lambda a, b: a if a >= b else b)

    def min(self):
        return self.reduce(lambda a, b: a if a <= b else b)

    def take(self, n: int) -> list:
        """The first ``n`` records, probing as few partitions as possible.

        One job however many partitions are probed (Spark's take is a
        single incremental job, not a job per partition).
        """
        if n <= 0:
            return []
        return self.context.run_take(self, n)

    def first(self):
        got = self.take(1)
        if not got:
            raise EngineError("first() on an empty RDD")
        return got[0]

    def take_ordered(self, n: int, key=None) -> list:
        """The ``n`` smallest records (per-partition heaps, one merge)."""
        partials = self.context.run_job(self, _NSmallest(n, key))
        return heapq.nsmallest(
            n, (item for partial in partials for item in partial),
            key=key)

    def top(self, n: int, key=None) -> list:
        """The ``n`` largest records (descending)."""
        partials = self.context.run_job(self, _NLargest(n, key))
        return heapq.nlargest(
            n, (item for partial in partials for item in partial),
            key=key)

    def zip(self, other: "RDD") -> "RDD":
        """Pair up records positionally (equal partition structure)."""
        return self.zip_partitions(other, _zip_parts).rename("zip")

    def foreach(self, func) -> None:
        self.context.run_job(self, _ForEach(func))

    def count_by_value(self) -> dict:
        counts = {}
        for record in self.collect():
            counts[record] = counts.get(record, 0) + 1
        return counts

    def is_empty(self) -> bool:
        return not self.take(1)

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} id={self.rdd_id} name={self.name!r} "
            f"partitions={self.num_partitions}>"
        )


class ParallelCollectionRDD(RDD):
    """A driver-side collection sliced into partitions."""

    def __init__(self, context, data, num_partitions: int, partitioner=None):
        data = list(data)
        if partitioner is not None:
            # placement is dictated by the partitioner: the slice count
            # must match it exactly, however small the data
            num_partitions = partitioner.num_partitions
        else:
            num_partitions = max(1, min(num_partitions,
                                        max(1, len(data))))
        super().__init__(context, dependencies=(),
                         num_partitions=num_partitions,
                         partitioner=partitioner, name="parallelize")
        self._slices = [[] for _ in range(num_partitions)]
        if partitioner is not None:
            for record in data:
                self._slices[partitioner.partition(record[0])].append(record)
        else:
            # contiguous slicing, like Spark's parallelize
            base, extra = divmod(len(data), num_partitions)
            start = 0
            for i in range(num_partitions):
                size = base + (1 if i < extra else 0)
                self._slices[i] = data[start:start + size]
                start += size

    def compute(self, index: int) -> list:
        return self._slices[index]


class GeneratedRDD(RDD):
    """Partitions produced on demand by ``func(index) -> iterable``.

    Used by data generators so large synthetic datasets never pass through
    the driver as one list.
    """

    def __init__(self, context, num_partitions: int, func, partitioner=None):
        super().__init__(context, dependencies=(),
                         num_partitions=num_partitions,
                         partitioner=partitioner, name="generate")
        self._func = func

    def compute(self, index: int) -> list:
        return list(self._func(index))


class MapPartitionsRDD(RDD):
    """The workhorse narrow transformation."""

    def __init__(self, parent: RDD, func, preserves_partitioning=False):
        partitioner = parent.partitioner if preserves_partitioning else None
        super().__init__(parent.context, dependencies=(parent,),
                         partitioner=partitioner, name="map_partitions")
        self._func = func

    def compute(self, index: int) -> list:
        parent = self.dependencies[0]
        return list(self._func(index, parent.iterator(index)))


class UnionRDD(RDD):
    """Concatenation of the partitions of several RDDs."""

    def __init__(self, context, parents):
        parents = list(parents)
        total = sum(p.num_partitions for p in parents)
        super().__init__(context, dependencies=tuple(parents),
                         num_partitions=total, name="union")
        self._offsets = []
        running = 0
        for parent in parents:
            self._offsets.append(running)
            running += parent.num_partitions

    def compute(self, index: int) -> list:
        for parent, offset in zip(reversed(self.dependencies),
                                  reversed(self._offsets)):
            if index >= offset:
                return list(parent.iterator(index - offset))
        raise EngineError(f"partition index {index} out of range")


class ZippedPartitionsRDD(RDD):
    """Combine co-numbered partitions of two RDDs with ``func(a, b)``.

    The zipper may emit records with arbitrary keys, so the parent's
    partitioner is *not* inherited unless the caller opts in.
    """

    def __init__(self, left: RDD, right: RDD, func,
                 preserves_partitioning: bool = False):
        if left.num_partitions != right.num_partitions:
            raise EngineError(
                "zip_partitions requires equal partition counts "
                f"({left.num_partitions} vs {right.num_partitions})"
            )
        partitioner = left.partitioner if preserves_partitioning else None
        super().__init__(left.context, dependencies=(left, right),
                         num_partitions=left.num_partitions,
                         partitioner=partitioner,
                         name="zip_partitions")
        self._func = func

    def compute(self, index: int) -> list:
        left, right = self.dependencies
        return list(self._func(left.iterator(index), right.iterator(index)))


class CoalescedRDD(RDD):
    """Reduce partition count without a shuffle."""

    def __init__(self, parent: RDD, num_partitions: int):
        num_partitions = max(1, min(num_partitions, parent.num_partitions))
        super().__init__(parent.context, dependencies=(parent,),
                         num_partitions=num_partitions, name="coalesce")

    def compute(self, index: int) -> list:
        parent = self.dependencies[0]
        out = []
        for parent_index in range(index, parent.num_partitions,
                                  self.num_partitions):
            out.extend(parent.iterator(parent_index))
        return out


class _ShuffleStageBase(RDD):
    """Shared map-stage machinery for the two wide-dependency RDDs.

    A shuffle map stage is the same thing on a :class:`ShuffledRDD` and
    on one parent slot of a :class:`CoGroupedRDD`: run one map task per
    parent partition, merge the per-task buckets in parent-partition
    order (the byte-identity contract), record the shuffle metrics, and
    store the buckets. This base factors the pieces so the barrier path
    (:meth:`materialize_stage`) and the pipelined scheduler — which
    submits :meth:`run_shuffle_map_task` calls itself and commits via
    :meth:`commit_shuffle` when the last output lands — execute the
    exact same task bodies and merge.

    ``which`` selects the cogroup parent slot and is ``None`` for a
    plain shuffle throughout.
    """

    def shuffle_parent(self, which) -> RDD:
        """The map-side parent of stage ``which``."""
        return self.dependencies[0 if which is None else which]

    def shuffle_label(self, which) -> str:
        """The stage's span/timing label."""
        raise NotImplementedError

    def shuffle_ready(self, which) -> bool:
        """Whether stage ``which`` already has materialized buckets."""
        return self._peek_buckets(which) is not None

    def _peek_buckets(self, which):
        """The stored buckets of stage ``which``, or None."""
        raise NotImplementedError

    def _store_buckets(self, which, buckets) -> None:
        raise NotImplementedError

    def run_shuffle_map_task(self, which, parent_index, stage_span):
        """One traced, retried shuffle map task (any thread).

        Returns the ``(buckets, records, bytes, batch_stats)`` tuple of
        ``_map_task``; under the process backend the body round-trips
        through a worker instead.
        """
        tracer = self.context.tracer
        runner = self.context.process_runner
        with tracer.span("map_task", "task", parent=stage_span,
                         partition=parent_index) as task_span:
            if runner is not None:
                def attempt():
                    return runner.run_shuffle_map(
                        self, which, parent_index, task_span)
            elif which is None:
                def attempt():
                    return self._map_task(parent_index)
            else:
                def attempt():
                    return self._map_task(which, parent_index)
            out = run_task_with_retries(self.context, parent_index,
                                        attempt)
            task_span.set(records=out[1], bytes=out[2])
            return out

    def commit_shuffle(self, which, outputs, span, start_s) -> list:
        """Merge map outputs in parent-partition order and store them.

        The caller holds the stage's materialize lock. ``outputs`` is
        one ``_map_task`` tuple per parent partition, in parent order —
        whatever order the tasks finished in.
        """
        metrics = self.context.metrics
        parent = self.shuffle_parent(which)
        buckets = [[] for _ in range(self.num_partitions)]
        total_records = 0
        total_bytes = 0
        total_batches = 0
        total_batch_records = 0
        for task_buckets, records, nbytes, stats in outputs:
            for target, segment in enumerate(task_buckets):
                if segment:
                    buckets[target].append(segment)
            total_records += records
            total_bytes += nbytes
            total_batches += stats[0]
            total_batch_records += stats[1]
        span.set(records=total_records, bytes=total_bytes,
                 batches=total_batches)
        metrics.record_shuffle(total_records, total_bytes)
        if total_batches:
            metrics.record_shuffle_batches(total_batches,
                                           total_batch_records)
        metrics.record_stage_timing(
            self.shuffle_label(which), "shuffle",
            time.perf_counter() - start_s, parent.num_partitions)
        self._store_buckets(which, buckets)
        return buckets

    def materialize_stage(self, which, pool=None, depends_on=None,
                          parent_span=None) -> list:
        """Barrier-materialize one shuffle map stage, idempotently.

        Map tasks for every parent partition run concurrently when an
        :class:`~repro.engine.scheduler.ExecutorPool` is given; the
        merge happens once, in parent-partition order, so the threaded
        result is byte-identical to the serial one. Concurrent callers
        serialize on the per-``(rdd, which)`` lock and double-check the
        stored buckets, so map tasks never double-run.

        ``depends_on`` / ``parent_span`` let the scheduler stamp its
        stage-graph edges onto the stage span; direct callers omit them.
        """
        with self._materialize_lock(which):
            ready = self._peek_buckets(which)
            if ready is not None:
                return ready
            parent = self.shuffle_parent(which)
            metrics = self.context.metrics
            tracer = self.context.tracer
            metrics.record_stage()
            start = time.perf_counter()
            attrs = {"num_tasks": parent.num_partitions}
            if depends_on is not None:
                attrs["depends_on"] = depends_on
                attrs["ready_at"] = start
                attrs["launched_at"] = start
            span = tracer.start(self.shuffle_label(which), "shuffle",
                                parent=parent_span, detached=True,
                                **attrs)
            try:
                def run_map_task(parent_index):
                    return self.run_shuffle_map_task(which, parent_index,
                                                     span)

                indices = range(parent.num_partitions)
                if pool is not None:
                    outputs = pool.map_tasks(run_map_task, indices)
                else:
                    outputs = [run_map_task(index) for index in indices]
                return self.commit_shuffle(which, outputs, span, start)
            finally:
                tracer.finish(span)


class ShuffledRDD(_ShuffleStageBase):
    """A wide dependency: re-bucket (key, value) records by a partitioner.

    The combiner triple mirrors Spark's ``combineByKey``. When the parent
    is *already* partitioned by an equal partitioner, the dependency
    narrows: no data moves and no shuffle is recorded — this is precisely
    the property Spangle's matmul local join exploits (Section VI-A).

    When the columnar path is on (the default), map tasks try to pack
    each partition into :class:`~repro.engine.batches.RecordBatch`
    buckets: one numpy pass for partition ids, one stable argsort for
    grouping, and — when ``combine_kernel`` names a commutative scalar
    kernel ("sum" | "min" | "max") — a ``reduceat``-style combine over
    sorted key runs before any bucket is emitted. Declaring a kernel
    promises that ``create_combiner`` is the identity and that
    ``merge_value``/``merge_combiners`` both equal the kernel's scalar
    fold; the packed path is byte-identical to the generic tuple path
    and falls back to it record-exactly whenever keys, values, or
    numeric guards refuse.
    """

    def __init__(self, parent: RDD, partitioner: Partitioner,
                 create_combiner, merge_value, merge_combiners,
                 map_side_combine: bool = True, combine_kernel=None):
        super().__init__(parent.context, dependencies=(parent,),
                         num_partitions=partitioner.num_partitions,
                         partitioner=partitioner, name="shuffle")
        if (combine_kernel is not None
                and combine_kernel not in batches.COMBINE_KERNELS):
            raise EngineError(
                f"unknown combine kernel {combine_kernel!r}; expected "
                f"one of {batches.COMBINE_KERNELS}")
        self._create = create_combiner
        self._merge_value = merge_value
        self._merge_combiners = merge_combiners
        self._map_side_combine = map_side_combine
        self._combine_kernel = combine_kernel
        self._buckets = None
        self._lock = threading.Lock()

    @property
    def is_narrow(self) -> bool:
        parent = self.dependencies[0]
        return (
            parent.partitioner is not None
            and parent.partitioner == self.partitioner
        )

    def _own_wide_count(self) -> int:
        return 0 if self.is_narrow else 1

    def _combine_partition(self, records) -> dict:
        combined = {}
        for key, value in records:
            if key in combined:
                combined[key] = self._merge_value(combined[key], value)
            else:
                combined[key] = self._create(value)
        return combined

    @property
    def is_materialized(self) -> bool:
        return self._buckets is not None

    def _map_task(self, parent_index: int):
        """One shuffle map task: bucket a parent partition per reducer.

        Each map task owns its buckets, so tasks run with no shared
        state; the reduce-side merge concatenates them in parent order.
        Buckets are either :class:`BatchSegment` packed blocks (the
        columnar path) or lists of ``(key, value, combined)`` triples.
        """
        parent = self.dependencies[0]
        records = list(parent.iterator(parent_index))
        if batches.columnar_enabled():
            out = self._columnar_map_task(records)
            if out is not None:
                return out
        if self._map_side_combine:
            records = list(self._combine_partition(records).items())
            emit_combined = True
        else:
            emit_combined = False
        buckets = [[] for _ in range(self.num_partitions)]
        partition = self.partitioner.partition
        for key, value in records:
            buckets[partition(key)].append((key, value, emit_combined))
        return (buckets, len(records), estimate_partition_size(records),
                (0, 0))

    def _columnar_map_task(self, records):
        """The packed map task, or None when the partition must fall
        back to per-record bucketing.

        Order of operations matters for byte-identity: the map-side
        combine (vectorized when the kernel and guards allow, the
        generic dict otherwise) runs *before* bucketing, exactly like
        the generic path, and the stable argsort grouping preserves the
        combine's first-appearance record order within every bucket.
        """
        keys = pack_int_keys(records)
        if keys is None:
            return None
        pids = self.partitioner.partition_array(keys)
        if pids is None:
            return None
        emit_combined = self._map_side_combine
        if self._map_side_combine:
            packed = None
            combined = None
            if self._combine_kernel is not None:
                packed = pack_values([rec[1] for rec in records])
                if isinstance(packed, ScalarValues):
                    combined = combine_runs(keys, packed.data,
                                            self._combine_kernel)
            if combined is not None:
                keys, data = combined
                packed = ScalarValues(data, packed.pykind)
                records = None
            else:
                records = list(self._combine_partition(records).items())
                keys = pack_int_keys(records)
                if keys is None:
                    # combiners replaced the int keys — cannot happen
                    # for dict combine, but stay safe
                    return None
                packed = pack_values([rec[1] for rec in records])
            # the combined keys are a subset of the originals, so the
            # partitioner that accepted them above accepts them again
            pids = self.partitioner.partition_array(keys)
            if pids is None:
                return None
        else:
            packed = pack_values([rec[1] for rec in records])
            if packed is None:
                # unpackable values would ship as per-bucket tuple
                # lists; bucketing those through argsort costs more
                # than the generic per-record loop
                return None
        groups = group_indices_by_partition(pids, self.num_partitions)
        buckets = []
        total_bytes = 0
        num_batches = 0
        for idx in groups:
            if idx.size == 0:
                buckets.append([])
            elif packed is not None:
                batch = RecordBatch(keys[idx], packed.gather(idx))
                buckets.append(BatchSegment(batch, emit_combined))
                total_bytes += batch.nbytes
                num_batches += 1
            else:
                buckets.append([
                    (records[i][0], records[i][1], emit_combined)
                    for i in idx.tolist()
                ])
        num_records = int(keys.size)
        if packed is None:
            total_bytes = estimate_partition_size(records)
            batch_records = 0
        else:
            batch_records = num_records
        return buckets, num_records, total_bytes, (num_batches,
                                                   batch_records)

    def shuffle_label(self, which) -> str:
        return self.name

    def _peek_buckets(self, which):
        return self._buckets

    def _store_buckets(self, which, buckets) -> None:
        self._buckets = buckets

    def materialize(self, pool=None) -> list:
        """Materialize map-side buckets for every reducer (once).

        Idempotent under concurrent callers; see
        :meth:`_ShuffleStageBase.materialize_stage`.
        """
        return self.materialize_stage(None, pool=pool)

    def _fetch_shuffle(self) -> list:
        buckets = self._buckets
        if buckets is not None:
            return buckets
        return self.materialize()

    def invalidate_shuffle(self) -> None:
        """Drop materialized map output (used by fault-injection tests)."""
        with self._materialize_lock(None):
            self._buckets = None

    def _columnar_narrow_combine(self, records):
        """Vectorized combine for the narrow path, or None to fall back.

        Only engages when a ``combine_kernel`` promises scalar-fold
        semantics; the output is byte-identical to the dict combine.
        """
        if self._combine_kernel is None:
            return None
        keys = pack_int_keys(records)
        if keys is None:
            return None
        packed = pack_values([rec[1] for rec in records])
        if not isinstance(packed, ScalarValues):
            return None
        combined = combine_runs(keys, packed.data, self._combine_kernel)
        if combined is None:
            return None
        out_keys, out_data = combined
        return list(zip(out_keys.tolist(), out_data.tolist()))

    def _merge_columnar(self, segments):
        """Vectorized reduce-side merge, or None to fall back.

        Engages only when every segment arriving at this reducer is a
        packed scalar batch of the same python kind and a combine
        kernel is declared; the segments are concatenated in arrival
        (= parent partition) order, so the run fold replays the exact
        add sequence of the generic dict merge.
        """
        if self._combine_kernel is None or not segments:
            return None
        key_parts = []
        data_parts = []
        pykind = None
        for segment in segments:
            if not isinstance(segment, BatchSegment):
                return None
            values = segment.batch.values
            if not isinstance(values, ScalarValues):
                return None
            if pykind is None:
                pykind = values.pykind
            elif values.pykind != pykind:
                return None
            key_parts.append(segment.batch.keys)
            data_parts.append(values.data)
        keys = np.concatenate(key_parts)
        data = np.concatenate(data_parts)
        combined = combine_runs(keys, data, self._combine_kernel)
        if combined is None:
            return None
        out_keys, out_data = combined
        return list(zip(out_keys.tolist(), out_data.tolist()))

    def compute(self, index: int) -> list:
        if self.is_narrow:
            # annotated but free: the parent is already partitioned the
            # way this shuffle wants, so nothing moves (Section VI-A)
            parent = self.dependencies[0]
            tracer = self.context.tracer
            start = time.perf_counter()
            with tracer.span("narrow_shuffle", "shuffle", narrow=True,
                             partition=index) as span:
                records = list(parent.iterator(index))
                out = None
                if batches.columnar_enabled():
                    out = self._columnar_narrow_combine(records)
                if out is None:
                    out = list(self._combine_partition(records).items())
                span.set(records=len(out))
            self.context.metrics.record_stage_timing(
                self.name, "narrow_shuffle",
                time.perf_counter() - start, 1)
            return out
        metrics = self.context.metrics
        # shm-exported buckets (the process backend) resolve to their
        # packed batches here, zero-copy over the mapped segment
        segments = [shm_mod.resolve_segment(segment, metrics)
                    for segment in self._fetch_shuffle()[index]]
        if batches.columnar_enabled():
            merged = self._merge_columnar(segments)
            if merged is not None:
                return merged
        merged = {}
        for segment in segments:
            if isinstance(segment, BatchSegment):
                combined_flag = segment.combined
                rows = ((key, value, combined_flag)
                        for key, value in segment.batch.records())
            else:
                rows = segment
            for key, value, already_combined in rows:
                if key in merged:
                    if already_combined:
                        merged[key] = self._merge_combiners(
                            merged[key], value)
                    else:
                        merged[key] = self._merge_value(merged[key], value)
                else:
                    if already_combined:
                        merged[key] = value
                    else:
                        merged[key] = self._create(value)
        return list(merged.items())


class CoGroupedRDD(_ShuffleStageBase):
    """Group several pair-RDDs by key: ``(key, [values_0, values_1, ...])``.

    Parents whose partitioner equals the target partitioner contribute
    through a narrow dependency (no shuffle); the rest are shuffled.
    """

    def __init__(self, parents, partitioner: Partitioner):
        parents = list(parents)
        super().__init__(parents[0].context, dependencies=tuple(parents),
                         num_partitions=partitioner.num_partitions,
                         partitioner=partitioner, name="cogroup")
        self._buckets = [None] * len(parents)
        self._lock = threading.Lock()

    def _parent_is_narrow(self, parent: RDD) -> bool:
        return (
            parent.partitioner is not None
            and parent.partitioner == self.partitioner
        )

    def _own_wide_count(self) -> int:
        return sum(1 for parent in self.dependencies
                   if not self._parent_is_narrow(parent))

    def is_parent_materialized(self, which: int) -> bool:
        return self._buckets[which] is not None

    def _map_task(self, which: int, parent_index: int):
        """Bucket one partition of parent ``which`` per reducer.

        Buckets are bare :class:`RecordBatch` packed blocks (the
        columnar path; cogroup has no combiners, so no flag rides
        along) or lists of ``(key, value)`` pairs.
        """
        parent = self.dependencies[which]
        records = list(parent.iterator(parent_index))
        if batches.columnar_enabled():
            out = self._columnar_map_task(records)
            if out is not None:
                return out
        buckets = [[] for _ in range(self.num_partitions)]
        partition = self.partitioner.partition
        for key, value in records:
            buckets[partition(key)].append((key, value))
        return (buckets, len(records), estimate_partition_size(records),
                (0, 0))

    def _columnar_map_task(self, records):
        """The packed map task, or None to fall back per record."""
        keys = pack_int_keys(records)
        if keys is None:
            return None
        pids = self.partitioner.partition_array(keys)
        if pids is None:
            return None
        packed = pack_values([rec[1] for rec in records])
        if packed is None:
            # unpackable values would ship as per-bucket tuple lists;
            # bucketing those through argsort costs more than the
            # generic per-record loop
            return None
        groups = group_indices_by_partition(pids, self.num_partitions)
        buckets = []
        total_bytes = 0
        num_batches = 0
        for idx in groups:
            if idx.size == 0:
                buckets.append([])
            else:
                batch = RecordBatch(keys[idx], packed.gather(idx))
                buckets.append(batch)
                total_bytes += batch.nbytes
                num_batches += 1
        num_records = int(keys.size)
        return buckets, num_records, total_bytes, (num_batches,
                                                   num_records)

    def shuffle_label(self, which) -> str:
        return f"{self.name}[{which}]"

    def _peek_buckets(self, which):
        return self._buckets[which]

    def _store_buckets(self, which, buckets) -> None:
        self._buckets[which] = buckets

    def materialize_parent(self, which: int, pool=None) -> list:
        """Materialize the shuffle of one wide parent (once).

        Each parent slot has its own materialize lock, so the two
        sides of a cogroup can materialize concurrently; see
        :meth:`_ShuffleStageBase.materialize_stage`.
        """
        return self.materialize_stage(which, pool=pool)

    def _fetch_parent_shuffle(self, which: int) -> list:
        buckets = self._buckets[which]
        if buckets is not None:
            return buckets
        return self.materialize_parent(which)

    def compute(self, index: int) -> list:
        groups = {}
        arity = len(self.dependencies)
        metrics = self.context.metrics
        for which, parent in enumerate(self.dependencies):
            if self._parent_is_narrow(parent):
                # one pseudo-segment: the parent partition itself
                segments = [parent.iterator(index)]
            else:
                segments = [
                    shm_mod.resolve_segment(segment, metrics)
                    for segment in self._fetch_parent_shuffle(which)[index]
                ]
            for segment in segments:
                if isinstance(segment, RecordBatch):
                    rows = segment.records()
                else:
                    rows = segment
                for key, value in rows:
                    if key not in groups:
                        groups[key] = [[] for _ in range(arity)]
                    groups[key][which].append(value)
        return list(groups.items())
