"""The process execution backend: forked workers, per-task protocol.

The scheduler keeps its thread pool as a *dispatcher* layer — one
thread per in-flight task — and, when ``backend="process"`` is on,
each dispatcher sends the innermost task body to a forked worker
process instead of running it inline. Everything around the body
(retries, task/stage counters, span lifetimes, result-size metering)
stays on the driver, which is what keeps the serial == thread ==
process byte-identity contract cheap to hold.

One round trip:

1. the driver builds a payload — the task (its RDD lineage serialized
   by :mod:`repro.engine.closure`), the tracing flag, global toggle
   state (columnar shuffle, kernel fusion), and a handle map for every
   cached/spilled block in the task's lineage (shared-memory refs,
   spill-file paths, or inline values — :mod:`repro.engine.shm`);
2. :func:`_worker_entry` rebuilds the task over a
   :class:`WorkerContext` (fresh metrics, fresh tracer, a
   :class:`TaskBlockCache` seeded from the handles) and runs it;
   shuffle map output is exported to a shared-memory segment before
   the reply, so bucket payloads never ride the result pipe;
3. the reply carries the result plus everything the driver must merge
   back: metric counter deltas, spans, stage timings, cache
   contributions (blocks the task computed for persisted RDDs), and
   the names of segments it created (adopted into the driver's
   registry, which owns their lifecycle from then on).

Workers are forked **eagerly** — all of them, from the thread that
creates the pool — because forking lazily from dispatcher threads
risks cloning a lock mid-acquisition. A worker killed mid-task breaks
the pool; the pool is respawned (``worker_respawns`` counter) and the
driver-side retry loop re-runs the task.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
import time

from concurrent.futures import CancelledError, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro.engine import batches
from repro.engine import shm as shm_mod
from repro.engine import spill as spill_mod
from repro.engine.batches import BatchSegment, RecordBatch
from repro.engine.closure import task_dumps, task_loads
from repro.engine.metrics import MetricsRegistry
from repro.engine.storage import StorageLevel
from repro.engine.tracing import Tracer


class WorkerCrashed(Exception):
    """A worker process died mid-task; the task is retryable."""


# ----------------------------------------------------------------------
# global toggle state shipped with every task
# ----------------------------------------------------------------------

#: name -> (capture, apply); fork-time snapshots of module toggles go
#: stale when tests flip them, so current values ride with each task
_STATE_HOOKS = {}


def register_task_state(key: str, capture, apply) -> None:
    """Register a module-global toggle to ship per task.

    ``capture()`` reads the current value on the driver; ``apply(v)``
    installs it in the worker (and restores it afterwards). The engine
    registers the columnar-shuffle switch; ``repro.core`` registers
    kernel fusion.
    """
    _STATE_HOOKS[key] = (capture, apply)


def capture_task_state() -> dict:
    return {key: capture() for key, (capture, _apply)
            in _STATE_HOOKS.items()}


def apply_task_state(values: dict) -> dict:
    """Install shipped toggle values; returns the displaced ones."""
    previous = {}
    for key, value in values.items():
        hook = _STATE_HOOKS.get(key)
        if hook is None:
            continue
        previous[key] = hook[0]()
        hook[1](value)
    return previous


def restore_task_state(previous: dict) -> None:
    for key, value in previous.items():
        _STATE_HOOKS[key][1](value)


def _capture_columnar():
    return batches.columnar_enabled()


def _apply_columnar(value):
    batches._STATE["enabled"] = value


register_task_state("columnar", _capture_columnar, _apply_columnar)


# ----------------------------------------------------------------------
# worker-side context
# ----------------------------------------------------------------------

class TaskBlockCache:
    """The block cache a single task sees inside a worker.

    Seeded from the handle map the driver shipped; blocks the task
    computes for persisted RDDs are recorded as *contributions* and
    adopted into the driver cache when the reply lands. Metering
    mirrors :class:`~repro.engine.storage.CacheManager` exactly: a
    resident (shm/inline) block counts a hit per access, a spilled
    block counts hit + reload + its encoded bytes as disk reads on
    every access, and ``peek`` is silent.
    """

    def __init__(self, metrics, handles):
        self._metrics = metrics
        self._handles = dict(handles)
        self._local = {}
        self.contributions = []

    def _load(self, key, handle):
        if isinstance(handle, shm_mod.SpillFileHandle):
            # decoded fresh per access, like the driver's spill tier
            with open(handle.path, "rb") as fh:
                return spill_mod.decode_block(fh.read())
        if isinstance(handle, shm_mod.InlineBlockHandle):
            data = handle.records
        else:
            data = shm_mod.load_ref(handle, self._metrics)
        self._local[key] = data
        del self._handles[key]
        return data

    def get(self, rdd_id: int, partition_index: int):
        key = (rdd_id, partition_index)
        if key in self._local:
            self._metrics.record_cache_hit()
            return True, self._local[key]
        handle = self._handles.get(key)
        if handle is not None:
            self._metrics.record_cache_hit()
            if isinstance(handle, shm_mod.SpillFileHandle):
                self._metrics.record_reload()
                self._metrics.record_disk_read(handle.nbytes)
            return True, self._load(key, handle)
        self._metrics.record_cache_miss()
        return False, None

    def peek(self, rdd_id: int, partition_index: int):
        key = (rdd_id, partition_index)
        if key in self._local:
            return True, self._local[key]
        handle = self._handles.get(key)
        if handle is not None:
            return True, self._load(key, handle)
        return False, None

    def put(self, rdd_id: int, partition_index: int, data,
            allow_spill: bool = True, lineage_depth: int = 1,
            shuffle_depth: int = 0) -> None:
        self._local[(rdd_id, partition_index)] = data
        self.contributions.append(
            (rdd_id, partition_index, data, allow_spill,
             lineage_depth, shuffle_depth))

    def drop_partition(self, rdd_id: int, partition_index: int) -> bool:
        key = (rdd_id, partition_index)
        dropped = self._local.pop(key, None) is not None
        return (self._handles.pop(key, None) is not None) or dropped

    def drop_rdd(self, rdd_id: int) -> int:
        keys = [k for k in list(self._local) if k[0] == rdd_id]
        keys += [k for k in list(self._handles) if k[0] == rdd_id]
        for key in keys:
            self._local.pop(key, None)
            self._handles.pop(key, None)
        return len(set(keys))


class WorkerContext:
    """A per-task stand-in for :class:`ClusterContext` in a worker."""

    backend = "process"
    use_threads = False
    parallel = False
    process_runner = None
    num_executors = 1
    task_retries = 0

    def __init__(self, metrics, tracer, cache):
        self.metrics = metrics
        self.tracer = tracer
        self.cache = cache


# ----------------------------------------------------------------------
# tasks
# ----------------------------------------------------------------------

class ResultTask:
    """One result-stage task: ``partition_func(rdd.iterator(index))``."""

    __slots__ = ("rdd", "index", "partition_func")

    def __init__(self, rdd, index, partition_func):
        self.rdd = rdd
        self.index = index
        self.partition_func = partition_func

    def roots(self):
        return (self.rdd,)

    def run(self):
        return self.partition_func(self.rdd.iterator(self.index))


class ShuffleMapTask:
    """One shuffle map task; ``which`` selects a CoGroup parent."""

    __slots__ = ("rdd", "which", "parent_index")

    def __init__(self, rdd, which, parent_index):
        self.rdd = rdd
        self.which = which
        self.parent_index = parent_index

    def roots(self):
        return (self.rdd,)

    def run(self):
        if self.which is None:
            return self.rdd._map_task(self.parent_index)
        return self.rdd._map_task(self.which, self.parent_index)


class ComputePartitionTask:
    """Checkpoint materialization: a bare ``compute``, no cache."""

    __slots__ = ("rdd", "index")

    def __init__(self, rdd, index):
        self.rdd = rdd
        self.index = index

    def roots(self):
        return (self.rdd,)

    def run(self):
        return list(self.rdd.compute(self.index))


# ----------------------------------------------------------------------
# lineage binding (worker side)
# ----------------------------------------------------------------------

def lineage_nodes(roots) -> list:
    """Every RDD reachable from ``roots`` through dependencies."""
    seen = {}
    stack = list(roots)
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen[id(node)] = node
        stack.extend(node.dependencies)
    return list(seen.values())


def _bind_value(value, context, depth: int = 0) -> None:
    if value is None or depth > 8:
        return
    hook = getattr(value, "bind_engine_context", None)
    if callable(hook):
        hook(context)
        return
    inner = getattr(value, "func", None)
    if inner is not None:
        _bind_value(inner, context, depth + 1)


def bind_lineage(roots, context) -> None:
    """Point every unpickled RDD (and context-bound callables hiding
    in their wrapped functions) at ``context``."""
    for node in lineage_nodes(roots):
        node.context = context
        for value in node.__dict__.values():
            _bind_value(value, context)


# ----------------------------------------------------------------------
# the worker entry point
# ----------------------------------------------------------------------

def _export_map_output(out, prefix, metrics, created):
    """Move packed shuffle buckets into one shared-memory segment.

    Tuple-list fallback buckets (and empty ones) stay inline; packed
    ``BatchSegment``/``RecordBatch`` buckets are replaced by
    :class:`~repro.engine.shm.ShmRef` locators. On any shm failure the
    original buckets ship inline — correctness never depends on the
    segment."""
    buckets, num_records, total_bytes, stats = out
    exportable = [i for i, bucket in enumerate(buckets)
                  if isinstance(bucket, (BatchSegment, RecordBatch))]
    if not exportable:
        return out
    try:
        builder = shm_mod.SegmentBuilder()
        for i in exportable:
            builder.add(buckets[i])
        name, nbytes, refs = shm_mod.write_segment(
            prefix, builder, metrics)
    except Exception:
        return out
    created.append((name, nbytes))
    shipped = list(buckets)
    for i, ref in zip(exportable, refs):
        shipped[i] = ref
    return shipped, num_records, total_bytes, stats


def _warmup() -> int:
    # long enough that rapid-fire warmup submits each fork a fresh
    # worker instead of reusing an idle one; the pid feeds the driver's
    # heartbeat ledger
    time.sleep(0.05)
    return os.getpid()


def _worker_entry(payload: bytes) -> bytes:
    """Run one task in a worker process; returns the pickled reply."""
    metrics = MetricsRegistry()
    tracer = Tracer(enabled=False)
    cache = TaskBlockCache(metrics, {})
    created = []
    previous_state = {}
    try:
        data = task_loads(payload)
        previous_state = apply_task_state(data["state"])
        tracer = Tracer(enabled=data["trace"])
        cache = TaskBlockCache(metrics, data["blocks"])
        context = WorkerContext(metrics, tracer, cache)
        task = data["task"]
        bind_lineage(task.roots(), context)
        task_start = time.perf_counter()
        result = task.run()
        task_wall_s = time.perf_counter() - task_start
        if isinstance(task, ShuffleMapTask):
            result = _export_map_output(result, data["prefix"],
                                        metrics, created)
        reply = {"ok": True, "result": result,
                 "task_wall_s": task_wall_s}
    except BaseException as exc:  # noqa: BLE001 - re-raised driver-side
        reply = {"ok": False, "error": exc}
    finally:
        restore_task_state(previous_state)
    # the heartbeat: which process served this task (drivers feed it to
    # the WorkerHeartbeats ledger; rides even on the error path)
    reply["pid"] = os.getpid()
    snapshot = metrics.snapshot().as_dict()
    reply["counters"] = {name: value for name, value in snapshot.items()
                         if value}
    reply["spans"] = ([span.as_dict() for span in tracer.spans()]
                      if tracer.enabled else [])
    reply["stage_timings"] = [
        (timing.label, timing.kind, timing.wall_s, timing.num_tasks)
        for timing in metrics.stage_timings]
    reply["contributions"] = cache.contributions
    reply["segments"] = created
    try:
        return pickle.dumps(reply, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        fallback = dict(reply, ok=False, result=None, contributions=[],
                        error=RuntimeError(
                            f"task reply failed to serialize: {exc!r}"))
        try:
            return pickle.dumps(fallback,
                                protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            minimal = {"ok": False, "result": None, "counters": {},
                       "spans": [], "stage_timings": [],
                       "contributions": [], "segments": created,
                       "error": RuntimeError(
                           "task reply failed to serialize")}
            return pickle.dumps(minimal,
                                protocol=pickle.HIGHEST_PROTOCOL)


# ----------------------------------------------------------------------
# the worker pool and the driver-side runner
# ----------------------------------------------------------------------

class ProcessWorkerPool:
    """A persistent pool of forked worker processes.

    All workers fork eagerly at creation (from the creating thread —
    never from a dispatcher). A crashed worker breaks the executor;
    the pool drops it, counts a respawn, and recreates lazily on the
    next task so the driver-side retry succeeds.
    """

    def __init__(self, num_workers: int, heartbeats=None, health=None):
        self.num_workers = num_workers
        self.heartbeats = heartbeats
        self.health = health
        self._executor = None
        self._lock = threading.Lock()

    @property
    def started(self) -> bool:
        return self._executor is not None

    def _spawn(self) -> ProcessPoolExecutor:
        methods = multiprocessing.get_all_start_methods()
        method = "fork" if "fork" in methods else "spawn"
        executor = ProcessPoolExecutor(
            max_workers=self.num_workers,
            mp_context=multiprocessing.get_context(method))
        # force every worker to fork NOW: each submit spawns a fresh
        # process while none is idle, and the sleeps keep them busy
        pids = [future.result()
                for future in [executor.submit(_warmup)
                               for _ in range(self.num_workers)]]
        if self.heartbeats is not None:
            self.heartbeats.register(pids)
        return executor

    def ensure_started(self) -> None:
        with self._lock:
            if self._executor is None:
                self._executor = self._spawn()

    def run(self, payload: bytes, metrics=None) -> bytes:
        with self._lock:
            if self._executor is None:
                self._executor = self._spawn()
            executor = self._executor
        try:
            return executor.submit(_worker_entry, payload).result()
        except BrokenProcessPool as exc:
            first = False
            stale = []
            with self._lock:
                if self._executor is executor:
                    self._executor = None
                    first = True
                    if self.heartbeats is not None:
                        # the whole old generation dies with this
                        # executor; snapshot it under the lock so a
                        # concurrent respawn's fresh pids are excluded
                        stale = list(self.heartbeats.rows())
            if first:
                # identify the corpse BEFORE tearing the executor down
                # (teardown kills the surviving workers too, which
                # would smear the blame across the whole pool), and
                # emit its missed-heartbeat health event BEFORE the
                # respawn counter moves — operators see the cause
                # (dead worker) strictly ahead of the effect (respawn)
                dead = self._report_dead_workers()
                executor.shutdown(wait=False)
                if metrics is not None:
                    metrics.record_worker_respawn()
                if self.health is not None:
                    self.health.emit(
                        "worker_respawn", "info",
                        f"worker pool respawning after "
                        f"{len(dead) or 'a'} dead worker(s)",
                        pids=dead)
                if stale and self.heartbeats is not None:
                    # the corpses are replaced and the survivors were
                    # just torn down with the executor: drop every old
                    # row so the health condition clears on the next
                    # rule evaluation instead of warning forever (and
                    # so teardown casualties never read as crashes)
                    self.heartbeats.forget(stale)
            raise WorkerCrashed(
                "worker process died executing a task; "
                "the pool will respawn") from exc

    def _report_dead_workers(self) -> list:
        """Mark dead pids in the heartbeat ledger and emit one
        missed-heartbeat health event per corpse. A BrokenProcessPool
        means *some* worker died, but SIGKILL delivery is asynchronous
        — the victim can still read as running for a few ms — so the
        probe retries briefly. Falls back to a single pid-less event
        when no corpse is identified (already reaped), so a crash
        always leaves a health trail."""
        dead = []
        if self.heartbeats is not None:
            deadline = time.monotonic() + 0.5
            while True:
                dead = self.heartbeats.reap_dead()
                if dead or time.monotonic() >= deadline:
                    break
                time.sleep(0.01)
        if self.health is not None:
            if dead:
                for pid in dead:
                    self.health.emit(
                        "worker_heartbeat_missed", "warning",
                        f"worker {pid} stopped responding",
                        dedup_key=f"worker_heartbeat_missed:{pid}",
                        pid=pid)
            else:
                self.health.emit(
                    "worker_heartbeat_missed", "warning",
                    "a worker process died mid-task", pid=None)
        return dead

    def shutdown(self) -> None:
        with self._lock:
            executor = self._executor
            self._executor = None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)


class ProcessTaskRunner:
    """Driver-side half of the protocol: payloads out, replies merged.

    Owned by a ``backend="process"`` context; dispatcher threads call
    the ``run_*`` helpers from inside the existing retry/span scaffolding.
    """

    def __init__(self, context):
        self.context = context
        self.pool = ProcessWorkerPool(
            context.num_executors,
            heartbeats=getattr(context, "worker_heartbeats", None),
            health=getattr(context, "health_monitor", None))

    def ensure_started(self) -> None:
        self.pool.ensure_started()

    def shutdown(self) -> None:
        self.pool.shutdown()

    # -- task entry points ------------------------------------------------

    def run_result(self, rdd, index, partition_func, parent_span=None):
        return self._run(ResultTask(rdd, index, partition_func),
                         parent_span)

    def run_shuffle_map(self, rdd, which, parent_index,
                        parent_span=None):
        return self._run(ShuffleMapTask(rdd, which, parent_index),
                         parent_span)

    def run_compute(self, rdd, index, parent_span=None):
        return self._run(ComputePartitionTask(rdd, index), parent_span)

    # -- protocol ---------------------------------------------------------

    def _build_payload(self, task) -> bytes:
        context = self.context
        blocks = {}
        for node in lineage_nodes(task.roots()):
            if node.storage_level is StorageLevel.NONE:
                continue
            entries = context.cache.export_entries(node.rdd_id)
            for index, entry in entries.items():
                key = (node.rdd_id, index)
                if entry[0] == "memory":
                    _kind, data, size = entry
                    blocks[key] = context.shm_registry.export_block(
                        key, data, size)
                else:
                    _kind, path, nbytes = entry
                    blocks[key] = shm_mod.SpillFileHandle(path, nbytes)
        return task_dumps({
            "task": task,
            "trace": context.tracer.enabled,
            "state": capture_task_state(),
            "blocks": blocks,
            "prefix": context.shm_registry.prefix,
        })

    def _absorb(self, task, reply, parent_span) -> None:
        context = self.context
        pid = reply.get("pid")
        heartbeats = getattr(context, "worker_heartbeats", None)
        if pid is not None and heartbeats is not None:
            heartbeats.beat(pid, reply.get("task_wall_s"))
        counters = reply.get("counters")
        if counters:
            context.metrics.merge_counters(counters)
        for label, kind, wall_s, num_tasks in \
                reply.get("stage_timings", ()):
            context.metrics.record_stage_timing(label, kind, wall_s,
                                                num_tasks)
        spans = reply.get("spans")
        if spans and context.tracer.enabled:
            context.tracer.adopt_spans(spans, parent=parent_span)
        for name, nbytes in reply.get("segments", ()):
            context.shm_registry.adopt(name, nbytes)
        contributions = reply.get("contributions")
        if contributions:
            nodes = {node.rdd_id: node
                     for node in lineage_nodes(task.roots())}
            for (rdd_id, index, data, allow_spill, depth,
                 wide) in contributions:
                context.cache.put(rdd_id, index, data,
                                  allow_spill=allow_spill,
                                  lineage_depth=depth,
                                  shuffle_depth=wide)
                node = nodes.get(rdd_id)
                if node is not None:
                    node._cached_indices.add(index)

    def _run(self, task, parent_span):
        payload = self._build_payload(task)
        try:
            reply_bytes = self.pool.run(payload, self.context.metrics)
        except CancelledError:
            raise RuntimeError(
                "process pool shut down while the job was running"
            ) from None
        reply = pickle.loads(reply_bytes)
        self._absorb(task, reply, parent_span)
        if not reply["ok"]:
            raise reply["error"]
        return reply["result"]
