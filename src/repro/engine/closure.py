"""Task serialization for the process backend: a closure pickler.

Plain pickle refuses lambdas, local functions, and anything whose
closure they ride in — which is most of an RDD program. This module
ships them anyway, the way cloudpickle does but in miniature:

- functions importable by their qualified name pickle **by reference**
  (the forked worker shares the driver's module table, so the name
  resolves to the same code);
- everything else — lambdas, nested functions, comprehension helpers —
  pickles **by value**: marshaled code object, defaults, closure cell
  contents, and the referenced slice of the function's globals
  (modules by import name, nested non-importable functions recursively
  by value).

The engine's own hot-path callables were refactored into module-level
classes precisely so they take the cheap by-reference path; the
by-value path exists for *user* UDFs, which stay ergonomic lambdas.

``task_dumps``/``task_loads`` wrap a whole task payload; the worker
side is plain ``pickle.loads`` because by-value functions reduce to
:func:`_rebuild_function` calls, which is importable.
"""

from __future__ import annotations

import builtins
import importlib
import io
import marshal
import pickle
import sys
import types

_EMPTY_CELL = object()   # sentinel for not-yet-filled closure cells


def _is_importable(func) -> bool:
    """Whether ``func`` resolves to itself via its module + qualname."""
    module_name = getattr(func, "__module__", None)
    qualname = getattr(func, "__qualname__", None)
    if not module_name or not qualname or "<" in qualname:
        return False
    module = sys.modules.get(module_name)
    if module is None:
        return False
    obj = module
    for part in qualname.split("."):
        obj = getattr(obj, part, None)
        if obj is None:
            return False
    return obj is func


def _referenced_globals(code, func_globals) -> dict:
    """The slice of ``func_globals`` the code object can actually name.

    Walks nested code objects (inner lambdas, comprehensions) so their
    references ship too.
    """
    names = set()

    def walk(code_obj):
        names.update(code_obj.co_names)
        for const in code_obj.co_consts:
            if isinstance(const, types.CodeType):
                walk(const)

    walk(code)
    return {name: func_globals[name]
            for name in names if name in func_globals}


def _make_cell(value):
    if value is _EMPTY_CELL:
        return types.CellType()
    return types.CellType(value)


def _rebuild_function(code_bytes, module_name, qualname, defaults,
                      kwdefaults, cell_values, globals_slice):
    """Reassemble a by-value function in the worker process."""
    code = marshal.loads(code_bytes)
    func_globals = {"__builtins__": builtins.__dict__,
                    "__name__": module_name}
    func_globals.update(globals_slice)
    closure = None
    if cell_values is not None:
        closure = tuple(_make_cell(value) for value in cell_values)
    func = types.FunctionType(code, func_globals, code.co_name,
                              defaults, closure)
    func.__kwdefaults__ = kwdefaults
    func.__module__ = module_name
    func.__qualname__ = qualname
    return func


class TaskPickler(pickle.Pickler):
    """Pickler that serializes non-importable functions by value."""

    def reducer_override(self, obj):
        if isinstance(obj, types.FunctionType):
            if _is_importable(obj):
                return NotImplemented   # by-reference, the default
            cell_values = None
            if obj.__closure__ is not None:
                cell_values = []
                for cell in obj.__closure__:
                    try:
                        cell_values.append(cell.cell_contents)
                    except ValueError:   # unfilled (self-recursive)
                        cell_values.append(_EMPTY_CELL)
                cell_values = tuple(cell_values)
            return (_rebuild_function, (
                marshal.dumps(obj.__code__),
                obj.__module__,
                obj.__qualname__,
                obj.__defaults__,
                obj.__kwdefaults__,
                cell_values,
                _referenced_globals(obj.__code__, obj.__globals__),
            ))
        if isinstance(obj, types.ModuleType):
            return (importlib.import_module, (obj.__name__,))
        return NotImplemented


def task_dumps(obj) -> bytes:
    """Serialize a task payload, closures included."""
    buffer = io.BytesIO()
    TaskPickler(buffer, protocol=pickle.HIGHEST_PROTOCOL).dump(obj)
    return buffer.getvalue()


def task_loads(data: bytes):
    return pickle.loads(data)
