"""``repro top`` — a live terminal dashboard over the telemetry plane.

Renders one frame from a telemetry snapshot dict (the shape served at
``/telemetry.json`` and rebuilt from recorded JSONL by
:func:`repro.engine.telemetry.snapshot_from_records`): sparkline
series for memory / tasks / shuffle, pool occupancy, per-worker rows,
and the most recent health events. Two sources:

- **live** — ``repro top http://127.0.0.1:9100`` polls the endpoint a
  running ``ctx.serve_telemetry()`` exposes, redrawing every interval;
- **replay** — ``repro top run.telemetry.jsonl`` folds a recorded
  sink file back into series and renders the final frame (the
  ``--replay`` flag is the non-interactive CI smoke spelling).

Pure stdlib; the renderer takes a dict and returns a string, so tests
never need a terminal or a socket.
"""

from __future__ import annotations

import json
import os
import sys
import time
import urllib.error
import urllib.request

from repro.engine.telemetry import load_telemetry_jsonl

#: eight levels + blank — the classic terminal sparkline ramp
SPARK_CHARS = " ▁▂▃▄▅▆▇█"

#: gauge/counter series shown as sparklines, by dashboard section;
#: ``rate`` series are differentiated from cumulative counters
DASHBOARD_SERIES = (
    ("memory", (("cache.resident_bytes", "resident", "bytes", False),
                ("cache.spilled_bytes", "spilled", "bytes", False),
                ("shm.resident_bytes", "shm", "bytes", False))),
    ("tasks", (("counter.tasks_launched", "tasks/s", "rate", True),
               ("pool.busy_threads", "busy", "plain", False),
               ("pool.queued_tasks", "queued", "plain", False),
               ("scheduler.ready_stages", "ready", "plain", False),
               ("scheduler.inflight_stages", "inflight", "plain", False))),
    ("shuffle", (("counter.shuffle_bytes", "bytes/s", "bytes", True),
                 ("counter.shuffle_records", "recs/s", "rate", True),
                 ("counter.cache_spills", "spills/s", "rate", True),
                 ("nnz.imbalance", "nnz skew", "plain", False))),
)


def sparkline(values, width: int = 40) -> str:
    """Scale ``values`` into a fixed-width run of block characters."""
    values = [float(v) for v in values]
    if not values:
        return " " * width
    if len(values) > width:
        # keep the most recent points — top is about "now"
        values = values[-width:]
    lo, hi = min(values), max(values)
    span = hi - lo
    levels = len(SPARK_CHARS) - 1
    chars = []
    for value in values:
        if span <= 0:
            chars.append(SPARK_CHARS[1] if hi > 0 else SPARK_CHARS[0])
        else:
            chars.append(
                SPARK_CHARS[1 + int((value - lo) / span * (levels - 1))])
    return "".join(chars).rjust(width)


def _format_bytes(value) -> str:
    value = float(value)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024 or unit == "GiB":
            if unit == "B":
                return f"{value:,.0f} {unit}"
            return f"{value:,.1f} {unit}"
        value /= 1024
    return f"{value:,.1f} GiB"  # pragma: no cover - loop returns first


def _format_value(value, style: str) -> str:
    if value is None:
        return "-"
    if style == "bytes":
        return _format_bytes(value)
    if style == "rate":
        return f"{value:,.1f}/s"
    return f"{value:,.0f}"


def _to_rates(points) -> list:
    rates = []
    for (t0, v0), (t1, v1) in zip(points, points[1:]):
        span = t1 - t0
        rates.append((t1, (v1 - v0) / span if span > 0 else 0.0))
    return rates


def render_dashboard(snapshot: dict, width: int = 40,
                     now=None) -> str:
    """One dashboard frame from a ``/telemetry.json``-shaped dict."""
    now = time.time() if now is None else now
    meta = snapshot.get("meta", {})
    series = snapshot.get("series", {})
    gauges = snapshot.get("gauges", {})
    counters = snapshot.get("counters", {})
    health = snapshot.get("health", {})
    lines = []

    backend = meta.get("backend", "?")
    up = snapshot.get("up_s")
    stamp = snapshot.get("t")
    age = f"{now - stamp:.1f}s ago" if stamp else "no samples"
    lines.append(
        f"repro top — backend={backend} "
        f"executors={meta.get('num_executors', '?')} "
        f"interval={meta.get('interval_s', '?')}s "
        f"samples={snapshot.get('num_samples', 0)} "
        f"up={up:.1f}s " if up is not None else
        f"repro top — backend={backend} "
        f"executors={meta.get('num_executors', '?')} ")
    lines[-1] += f"(last sample {age})"
    lines.append(
        f"jobs={counters.get('jobs_run', 0)} "
        f"stages={counters.get('stages_run', 0)} "
        f"tasks={counters.get('tasks_launched', 0)} "
        f"shuffles={counters.get('shuffles_performed', 0)} "
        f"respawns={counters.get('worker_respawns', 0)}")
    lines.append("")

    for section, specs in DASHBOARD_SERIES:
        lines.append(f"[{section}]")
        for name, label, style, as_rate in specs:
            points = series.get(name, [])
            if as_rate:
                points = _to_rates(points)
            values = [value for _t, value in points]
            latest = values[-1] if values else (
                None if as_rate else
                gauges.get(name) if not name.startswith("counter.")
                else counters.get(name[len("counter."):]))
            lines.append(
                f"  {label:<10} {sparkline(values, width)} "
                f"{_format_value(latest, style):>12}")
        lines.append("")

    workers = snapshot.get("workers", {})
    if workers:
        lines.append(f"[workers]  alive "
                     f"{sum(1 for row in workers.values() if row.get('alive'))}"
                     f"/{len(workers)}")
        lines.append("  pid        state  tasks   last task")
        for pid, row in sorted(workers.items(),
                               key=lambda kv: int(kv[0])):
            state = "up" if row.get("alive") else "DEAD"
            last = row.get("last_task_s")
            last_text = f"{last * 1e3:.1f} ms" if last is not None \
                else "-"
            lines.append(f"  {pid:<10} {state:<6} {row.get('tasks', 0):<7}"
                         f" {last_text}")
        lines.append("")

    status = health.get("status", "ok")
    events = health.get("events", [])
    lines.append(f"[health] {status.upper()}  ({len(events)} events)")
    for event in events[-8:]:
        age_s = now - event.get("t", now)
        lines.append(
            f"  [{event.get('severity', '?'):<7}] "
            f"{event.get('rule', '?'):<26} {age_s:7.1f}s ago  "
            f"{event.get('message', '')}")
    if not events:
        lines.append("  (no health events)")
    return "\n".join(lines)


def fetch_snapshot(url: str, timeout: float = 5.0) -> dict:
    """GET the JSON snapshot from a live telemetry endpoint."""
    if not url.rstrip("/").endswith("/telemetry.json"):
        url = url.rstrip("/") + "/telemetry.json"
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def run_top(source: str, interval: float = 1.0, once: bool = False,
            replay: bool = False, out=None) -> int:
    """The ``repro top`` command body.

    ``source`` is a live endpoint (``http://...``) or a recorded
    telemetry JSONL path. Files always render a single (final) frame;
    live endpoints redraw every ``interval`` seconds until
    interrupted, or once with ``once``/``replay``.
    """
    try:
        return _run_top(source, interval=interval, once=once,
                        replay=replay, out=out)
    except BrokenPipeError:
        # a pager/`head` closed the pipe — the normal way to skim a
        # dashboard; park stdout on devnull so the interpreter's exit
        # flush cannot raise again, and exit cleanly
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


def _run_top(source: str, interval: float, once: bool,
             replay: bool, out) -> int:
    out = sys.stdout if out is None else out
    live = source.startswith(("http://", "https://"))
    if not live:
        try:
            snapshot = load_telemetry_jsonl(source)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"cannot read telemetry log {source!r}: {exc}",
                  file=sys.stderr)
            return 2
        if not snapshot.get("num_samples"):
            print(f"{source}: no samples recorded", file=sys.stderr)
            return 1
        print(render_dashboard(snapshot), file=out)
        return 0
    del replay  # only meaningful for files; harmless on endpoints
    try:
        while True:
            try:
                snapshot = fetch_snapshot(source)
            except (urllib.error.URLError, OSError, ValueError) as exc:
                print(f"cannot reach {source!r}: {exc}",
                      file=sys.stderr)
                return 2
            if not once:
                out.write("\x1b[2J\x1b[H")  # clear screen, home cursor
            print(render_dashboard(snapshot), file=out)
            if once:
                return 0
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0
