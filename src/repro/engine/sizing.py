"""Size estimation for shuffle/cache accounting.

Spark estimates object sizes when it decides what to spill and reports
shuffle read/write volumes; our engine needs the same so the cost model
sees realistic byte counts. The estimator is deliberately simple but exact
for the types the library actually shuffles: numpy arrays, chunks,
bitmasks, and small tuples/records around them.
"""

from __future__ import annotations

import sys

import numpy as np

_PRIMITIVE_SIZE = {int: 8, float: 8, bool: 1, complex: 16}

#: exact sizers registered by higher layers; each probe returns a byte
#: count or None to decline. ``repro.core`` registers a chunk-exact
#: sizer (payload + mask words + milestone caches) so budget accounting
#: and the eviction score see true chunk footprints.
_SIZERS = []


def register_sizer(probe) -> None:
    """Register ``probe(obj) -> int | None`` tried before the generic
    ``nbytes`` path. Used by higher layers so the engine never imports
    them (the same inversion as the shuffle value codecs)."""
    _SIZERS.append(probe)


def estimate_size(obj) -> int:
    """Best-effort deep size of ``obj`` in bytes.

    Registered exact sizers win first (chunks report payload + mask +
    rank caches). Otherwise objects may advertise their payload size
    with a ``nbytes`` attribute (numpy arrays do; so do the library's
    Bitmask and Chunk classes), which takes priority. Containers are
    measured recursively with a small per-element overhead to mimic
    serialization framing.
    """
    if isinstance(obj, np.ndarray):
        if obj.dtype.hasobject:
            # object arrays report pointer bytes only; recurse into the
            # elements for the real payload
            return 8 * obj.size + sum(estimate_size(o) for o in obj.flat)
        return int(obj.nbytes)
    for probe in _SIZERS:
        exact = probe(obj)
        if exact is not None:
            return exact
    nbytes = getattr(obj, "nbytes", None)
    if nbytes is not None and isinstance(nbytes, (int, np.integer)):
        return int(nbytes)
    for primitive, size in _PRIMITIVE_SIZE.items():
        if isinstance(obj, primitive):
            return size
    if isinstance(obj, (np.integer, np.floating, np.bool_)):
        return obj.dtype.itemsize
    if isinstance(obj, (str, bytes, bytearray)):
        return len(obj)
    if isinstance(obj, (tuple, list)):
        return 8 + sum(estimate_size(item) for item in obj)
    if isinstance(obj, dict):
        return 16 + sum(
            estimate_size(k) + estimate_size(v) for k, v in obj.items()
        )
    if isinstance(obj, (set, frozenset)):
        return 16 + sum(estimate_size(item) for item in obj)
    if obj is None:
        return 0
    return sys.getsizeof(obj)


def estimate_partition_size(records) -> int:
    """Total size of an iterable of records (consumes nothing: pass a list).

    Packed shuffle blocks (:class:`~repro.engine.batches.RecordBatch`,
    numpy arrays) advertise exact ``nbytes`` and are reported as such in
    one step rather than sampled per record.
    """
    nbytes = getattr(records, "nbytes", None)
    if nbytes is not None and isinstance(nbytes, (int, np.integer)):
        return int(nbytes)
    return sum(estimate_size(record) for record in records)
