"""Lineage inspection and fault injection utilities.

RDDs already carry their lineage (``RDD.lineage()``); this module adds
driver-side tools used by tests and by the fault-tolerance example:

- :func:`lineage_depth` / :func:`count_shuffle_boundaries` — static DAG
  analysis (stage counting the way Spark's DAGScheduler would).
- :class:`FaultInjector` — deterministically lose cached blocks and
  shuffle outputs mid-computation, so tests can assert that results are
  rebuilt from lineage instead of silently going wrong.
"""

from __future__ import annotations

import random

from repro.engine.rdd import RDD, CoGroupedRDD, ShuffledRDD


def lineage_depth(rdd: RDD) -> int:
    """Longest chain of dependencies above (and including) ``rdd``.

    Checkpointed RDDs are roots: nothing above them will recompute.
    """
    if rdd.is_checkpointed or not rdd.dependencies:
        return 1
    return 1 + max(lineage_depth(dep) for dep in rdd.dependencies)


def count_shuffle_boundaries(rdd: RDD) -> int:
    """Number of wide dependencies in the DAG rooted at ``rdd``.

    Narrowed shuffles (parent already partitioned compatibly) do not
    count — they will not move data.
    """
    count = 0
    if isinstance(rdd, ShuffledRDD) and not rdd.is_narrow:
        count += 1
    if isinstance(rdd, CoGroupedRDD):
        count += sum(
            0 if rdd._parent_is_narrow(parent) else 1
            for parent in rdd.dependencies
        )
    return count + sum(
        count_shuffle_boundaries(dep) for dep in rdd.dependencies
    )


def collect_rdds(rdd: RDD) -> list:
    """All distinct RDDs in the DAG, root last (topological-ish)."""
    seen = {}

    def visit(node):
        if node.rdd_id in seen:
            return
        for dep in node.dependencies:
            visit(dep)
        seen[node.rdd_id] = node

    visit(rdd)
    return list(seen.values())


class FaultInjector:
    """Deterministic executor-failure simulation.

    ``kill_fraction`` of the cached blocks (and materialized shuffle
    outputs) in a DAG are dropped each time :meth:`strike` is called.
    """

    def __init__(self, context, seed: int = 0):
        self._context = context
        self._rng = random.Random(seed)

    def strike(self, rdd: RDD, kill_fraction: float = 0.5) -> int:
        """Lose cached blocks below ``rdd``; returns how many were lost."""
        lost = 0
        for node in collect_rdds(rdd):
            for index in range(node.num_partitions):
                if self._context.cache.contains(node.rdd_id, index):
                    if self._rng.random() < kill_fraction:
                        if self._context.fail_partition(node, index):
                            lost += 1
            if isinstance(node, ShuffledRDD):
                if self._rng.random() < kill_fraction:
                    node.invalidate_shuffle()
                    lost += 1
        return lost
