"""Block cache: the engine's answer to Spark's BlockManager.

Persisted RDD partitions are stored here as blocks keyed by
``(rdd_id, partition_index)``. The cache is a real memory tier:

- a **running byte ledger** — ``used_bytes()`` is O(1); every put,
  eviction, and drop adjusts the total instead of re-summing.
- a **pluggable eviction policy** — LRU (the default) or cost-aware
  (:class:`CostAwareEviction`), which scores each block by what
  bringing it back would cost per byte freed, priced with the
  context's :class:`~repro.engine.costmodel.ClusterCostModel` rates
  and the block's lineage depth. Cheap-to-recompute narrow results go
  first; expensive shuffle outputs stay hot.
- **real spill** — ``MEMORY_AND_DISK`` victims are serialized
  (:mod:`repro.engine.spill`; chunk partitions reuse the compressed
  chunk codec), written to a per-context spill directory, freed from
  RAM, and decoded back on access. Disk bytes are the true encoded
  sizes and flow into the metrics, the cost model, and the trace.
- **density-adaptive repacking** — when enabled, admission re-runs the
  paper's chunk mode policy on each chunk's current density via a
  repacker registered by ``repro.core``, shrinking stale encodings
  (``chunks_repacked`` / ``repack_bytes_saved`` counters).
"""

from __future__ import annotations

import enum
import os
import tempfile
import threading
from collections import OrderedDict

from repro.engine import spill as spill_mod
from repro.engine.sizing import estimate_partition_size

#: the admission repacker registered by ``repro.core``:
#: ``func(records) -> (new_records, chunks_repacked, bytes_saved) | None``
_REPACKER = {"func": None}


def register_repacker(func) -> None:
    """Register the density-driven chunk repacker (one, engine-wide).

    ``repro.core`` registers :func:`repro.core.chunk.repack_records`
    here so the cache never imports the array layer.
    """
    _REPACKER["func"] = func


class StorageLevel(enum.Enum):
    """How (whether) an RDD's partitions are retained after computation."""

    NONE = "none"
    MEMORY = "memory"
    MEMORY_AND_DISK = "memory_and_disk"


class BlockInfo:
    """Per-block accounting the eviction policy scores with."""

    __slots__ = ("size", "allow_spill", "lineage_depth", "shuffle_depth")

    def __init__(self, size: int, allow_spill: bool,
                 lineage_depth: int = 1, shuffle_depth: int = 0):
        self.size = size
        self.allow_spill = allow_spill
        self.lineage_depth = lineage_depth
        self.shuffle_depth = shuffle_depth


class LRUEviction:
    """Evict the least-recently-used block (Spark's default)."""

    name = "lru"

    def select_victim(self, blocks: "OrderedDict", infos: dict):
        return next(iter(blocks))


class CostAwareEviction:
    """Evict the block that is cheapest per byte to bring back.

    Score = ``reload_or_recompute_cost / size``: a spillable block costs
    one disk write now plus one read later; a memory-only block costs a
    lineage recomputation (deeper lineage and shuffle ancestry make it
    dearer). Ties (and the ordering of equal scores) resolve to the
    least recently used, so the policy degrades to LRU over uniform
    blocks and stays deterministic.
    """

    name = "cost"

    def __init__(self, cost_model):
        self.cost_model = cost_model

    def block_cost_s(self, info: BlockInfo) -> float:
        """Modeled seconds to bring one evicted block back."""
        if info.allow_spill:
            return (self.cost_model.spill_seconds(info.size)
                    + self.cost_model.reload_seconds(info.size))
        return self.cost_model.recompute_seconds(
            info.size, info.lineage_depth, info.shuffle_depth)

    def select_victim(self, blocks: "OrderedDict", infos: dict):
        best_key = None
        best_score = None
        for key in blocks:
            info = infos[key]
            score = self.block_cost_s(info) / max(info.size, 1)
            if best_score is None or score < best_score:
                best_key = key
                best_score = score
        return best_key


def make_eviction_policy(name, cost_model=None):
    """``"lru"`` | ``"cost"`` | an object with ``select_victim``."""
    if name is None or name == "lru":
        return LRUEviction()
    if name == "cost":
        return CostAwareEviction(cost_model)
    if hasattr(name, "select_victim"):
        return name
    raise ValueError(
        f"unknown eviction policy {name!r}; expected 'lru', 'cost', or "
        f"an object with select_victim()")


class _SpilledBlock:
    """One on-disk block: its file and the exact encoded byte count."""

    __slots__ = ("path", "nbytes")

    def __init__(self, path: str, nbytes: int):
        self.path = path
        self.nbytes = nbytes


class CacheManager:
    """Block store with a byte budget, spill tier, and eviction policy.

    ``budget_bytes=None`` means unbounded (the default for tests). The
    manager is thread-safe because the scheduler may compute partitions
    concurrently.
    """

    def __init__(self, metrics, budget_bytes=None, tracer=None,
                 eviction_policy="lru", cost_model=None, spill_dir=None,
                 repack_on_admission: bool = False):
        self._metrics = metrics
        self._budget_bytes = budget_bytes
        self._tracer = tracer
        self._policy = make_eviction_policy(eviction_policy, cost_model)
        self._repack = repack_on_admission
        self._blocks = OrderedDict()
        self._infos = {}
        self._spilled = {}
        self._used_bytes = 0
        self._spill_seq = 0
        self._spill_dir = spill_dir
        self._spill_tmp = None     # owned TemporaryDirectory, if lazy
        self._lock = threading.RLock()

    def _trace(self, name: str, rdd_id: int, partition_index: int,
               **attrs) -> None:
        """A zero-duration cache annotation under the current span."""
        if self._tracer is not None and self._tracer.enabled:
            self._tracer.event(name, "cache", rdd_id=rdd_id,
                               partition=partition_index, **attrs)

    @property
    def budget_bytes(self):
        return self._budget_bytes

    @property
    def eviction_policy(self) -> str:
        return self._policy.name

    def used_bytes(self) -> int:
        """Resident (in-memory) bytes — a running total, O(1)."""
        with self._lock:
            return self._used_bytes

    def spilled_bytes(self) -> int:
        """Total encoded bytes currently sitting in the spill tier."""
        with self._lock:
            return sum(block.nbytes for block in self._spilled.values())

    def block_count(self) -> int:
        with self._lock:
            return len(self._blocks)

    def spilled_count(self) -> int:
        with self._lock:
            return len(self._spilled)

    def gauges(self) -> dict:
        """The whole ledger in one lock acquisition (telemetry hook).

        ``pressure`` is resident bytes over the budget (0.0 when
        unbounded) — the eviction-pressure gauge the health monitor's
        high-watermark rule reads.
        """
        with self._lock:
            resident = self._used_bytes
            spilled = sum(block.nbytes for block in
                          self._spilled.values())
            gauges = {
                "resident_bytes": resident,
                "spilled_bytes": spilled,
                "blocks": len(self._blocks),
                "spilled_blocks": len(self._spilled),
                "budget_bytes": self._budget_bytes or 0,
            }
        budget = self._budget_bytes
        gauges["pressure"] = resident / budget if budget else 0.0
        return gauges

    # ------------------------------------------------------------------
    # spill tier
    # ------------------------------------------------------------------

    def spill_directory(self) -> str:
        """The spill directory, created lazily on first use."""
        if self._spill_dir is None:
            self._spill_tmp = tempfile.TemporaryDirectory(
                prefix="spangle-spill-")
            self._spill_dir = self._spill_tmp.name
        return self._spill_dir

    def _write_spill(self, key, data) -> _SpilledBlock:
        self._spill_seq += 1
        encoded = spill_mod.encode_block(data)
        path = os.path.join(
            self.spill_directory(),
            f"block-{key[0]}-{key[1]}-{self._spill_seq}.spill")
        with open(path, "wb") as handle:
            handle.write(encoded)
        return _SpilledBlock(path, len(encoded))

    def _read_spill(self, block: _SpilledBlock):
        with open(block.path, "rb") as handle:
            return spill_mod.decode_block(handle.read())

    def _purge_spill(self, key) -> bool:
        """Drop ``key``'s spill file, if any (stale after a re-put)."""
        block = self._spilled.pop(key, None)
        if block is None:
            return False
        try:
            os.unlink(block.path)
        except OSError:
            pass
        return True

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    def get(self, rdd_id: int, partition_index: int):
        """Return ``(found, value)``; spilled blocks decode from disk."""
        key = (rdd_id, partition_index)
        with self._lock:
            if key in self._blocks:
                self._blocks.move_to_end(key)
                self._metrics.record_cache_hit()
                self._trace("cache_hit", rdd_id, partition_index)
                return True, self._blocks[key]
            if key in self._spilled:
                block = self._spilled[key]
                data = self._read_spill(block)
                self._metrics.record_cache_hit()
                self._metrics.record_reload()
                self._metrics.record_disk_read(block.nbytes)
                self._trace("cache_reload", rdd_id, partition_index,
                            bytes=block.nbytes)
                return True, data
            self._metrics.record_cache_miss()
            self._trace("cache_miss", rdd_id, partition_index)
            return False, None

    def peek(self, rdd_id: int, partition_index: int):
        """``(found, value)`` without touching hit/miss/disk counters.

        Used by the compute-lock recheck in :meth:`RDD.iterator`: the
        initial (counted) lookup already recorded the miss; a waiter
        that finds the block populated after acquiring the lock should
        not distort the cache statistics.
        """
        key = (rdd_id, partition_index)
        with self._lock:
            if key in self._blocks:
                self._blocks.move_to_end(key)
                return True, self._blocks[key]
            if key in self._spilled:
                return True, self._read_spill(self._spilled[key])
            return False, None

    def export_entries(self, rdd_id: int) -> dict:
        """Every block of ``rdd_id`` as a shippable description.

        ``{partition_index: ("memory", data, size) | ("spill", path,
        nbytes)}`` — the process backend turns memory entries into
        shared-memory handles and spill entries into file handles the
        worker decodes (and meters) itself. No counters move and no
        recency is touched: exporting a block is not an access.
        """
        with self._lock:
            entries = {}
            for key, data in self._blocks.items():
                if key[0] == rdd_id:
                    entries[key[1]] = ("memory", data,
                                       self._infos[key].size)
            for key, block in self._spilled.items():
                if key[0] == rdd_id:
                    entries[key[1]] = ("spill", block.path, block.nbytes)
            return entries

    # ------------------------------------------------------------------
    # admission and eviction
    # ------------------------------------------------------------------

    def put(self, rdd_id: int, partition_index: int, data,
            allow_spill: bool = True, lineage_depth: int = 1,
            shuffle_depth: int = 0) -> None:
        key = (rdd_id, partition_index)
        with self._lock:
            # a re-persisted block supersedes any spilled copy; leaving
            # the old file behind would leak disk and resurrect stale
            # data after the live copy is dropped
            self._purge_spill(key)
            if self._repack and _REPACKER["func"] is not None:
                repacked = _REPACKER["func"](data)
                if repacked is not None:
                    data, count, saved = repacked
                    self._metrics.record_repack(count, saved)
                    self._trace("cache_repack", rdd_id, partition_index,
                                chunks=count, bytes_saved=saved)
            size = estimate_partition_size(data)
            if key in self._blocks:
                self._used_bytes -= self._infos[key].size
            self._blocks[key] = data
            self._infos[key] = BlockInfo(size, allow_spill,
                                         lineage_depth, shuffle_depth)
            self._blocks.move_to_end(key)
            self._used_bytes += size
            if self._budget_bytes is not None:
                self._evict_to_budget()

    def _evict_to_budget(self) -> None:
        while (self._used_bytes > self._budget_bytes
               and len(self._blocks) > 1):
            victim_key = self._policy.select_victim(self._blocks,
                                                    self._infos)
            victim_data = self._blocks.pop(victim_key)
            info = self._infos.pop(victim_key)
            self._used_bytes -= info.size
            self._metrics.record_eviction()
            if info.allow_spill:
                block = self._write_spill(victim_key, victim_data)
                self._spilled[victim_key] = block
                self._metrics.record_spill()
                self._metrics.record_disk_write(block.nbytes)
                self._trace("cache_spill", victim_key[0], victim_key[1],
                            bytes=info.size, disk_bytes=block.nbytes)
            else:
                self._trace("cache_evict", victim_key[0], victim_key[1],
                            bytes=info.size, spilled=False)

    # ------------------------------------------------------------------
    # removal
    # ------------------------------------------------------------------

    def drop_partition(self, rdd_id: int, partition_index: int) -> bool:
        """Simulate an executor failure losing one cached block.

        Returns whether a block was actually dropped. The next access will
        miss and trigger lineage recomputation.
        """
        key = (rdd_id, partition_index)
        with self._lock:
            dropped = self._blocks.pop(key, None) is not None
            info = self._infos.pop(key, None)
            if info is not None:
                self._used_bytes -= info.size
            dropped = self._purge_spill(key) or dropped
            return dropped

    def drop_rdd(self, rdd_id: int) -> int:
        """Unpersist every block of an RDD; returns the number dropped."""
        with self._lock:
            keys = [k for k in self._blocks if k[0] == rdd_id]
            for key in keys:
                del self._blocks[key]
                info = self._infos.pop(key, None)
                if info is not None:
                    self._used_bytes -= info.size
            spilled_keys = [k for k in self._spilled if k[0] == rdd_id]
            for key in spilled_keys:
                self._purge_spill(key)
            return len(keys) + len(spilled_keys)

    def contains(self, rdd_id: int, partition_index: int) -> bool:
        key = (rdd_id, partition_index)
        with self._lock:
            return key in self._blocks or key in self._spilled

    def clear(self) -> None:
        with self._lock:
            self._blocks.clear()
            self._infos.clear()
            for key in list(self._spilled):
                self._purge_spill(key)
            self._used_bytes = 0
