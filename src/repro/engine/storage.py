"""Block cache: the engine's answer to Spark's BlockManager.

Persisted RDD partitions are stored here as blocks keyed by
``(rdd_id, partition_index)``. The cache has a configurable memory budget;
when it overflows, least-recently-used blocks are evicted (and counted as
disk spills so the cost model can charge for them, mirroring Spark's
MEMORY_AND_DISK behaviour).
"""

from __future__ import annotations

import enum
import threading
from collections import OrderedDict

from repro.engine.sizing import estimate_partition_size


class StorageLevel(enum.Enum):
    """How (whether) an RDD's partitions are retained after computation."""

    NONE = "none"
    MEMORY = "memory"
    MEMORY_AND_DISK = "memory_and_disk"


class CacheManager:
    """LRU block store with a byte budget.

    ``budget_bytes=None`` means unbounded (the default for tests). The
    manager is thread-safe because the scheduler may compute partitions
    concurrently.
    """

    def __init__(self, metrics, budget_bytes=None, tracer=None):
        self._metrics = metrics
        self._budget_bytes = budget_bytes
        self._tracer = tracer
        self._blocks = OrderedDict()
        self._sizes = {}
        self._spilled = {}
        self._lock = threading.RLock()

    def _trace(self, name: str, rdd_id: int, partition_index: int,
               **attrs) -> None:
        """A zero-duration cache annotation under the current span."""
        if self._tracer is not None and self._tracer.enabled:
            self._tracer.event(name, "cache", rdd_id=rdd_id,
                               partition=partition_index, **attrs)

    @property
    def budget_bytes(self):
        return self._budget_bytes

    def used_bytes(self) -> int:
        with self._lock:
            return sum(self._sizes.values())

    def block_count(self) -> int:
        with self._lock:
            return len(self._blocks)

    def get(self, rdd_id: int, partition_index: int):
        """Return ``(found, value)``; spilled blocks count as disk reads."""
        key = (rdd_id, partition_index)
        with self._lock:
            if key in self._blocks:
                self._blocks.move_to_end(key)
                self._metrics.record_cache_hit()
                self._trace("cache_hit", rdd_id, partition_index)
                return True, self._blocks[key]
            if key in self._spilled:
                data = self._spilled[key]
                self._metrics.record_cache_hit()
                self._metrics.record_disk_read(
                    estimate_partition_size(data)
                )
                self._trace("cache_hit", rdd_id, partition_index,
                            spilled=True)
                return True, data
            self._metrics.record_cache_miss()
            self._trace("cache_miss", rdd_id, partition_index)
            return False, None

    def peek(self, rdd_id: int, partition_index: int):
        """``(found, value)`` without touching hit/miss/disk counters.

        Used by the compute-lock recheck in :meth:`RDD.iterator`: the
        initial (counted) lookup already recorded the miss; a waiter
        that finds the block populated after acquiring the lock should
        not distort the cache statistics.
        """
        key = (rdd_id, partition_index)
        with self._lock:
            if key in self._blocks:
                self._blocks.move_to_end(key)
                return True, self._blocks[key]
            if key in self._spilled:
                return True, self._spilled[key]
            return False, None

    def put(self, rdd_id: int, partition_index: int, data,
            allow_spill: bool = True) -> None:
        key = (rdd_id, partition_index)
        size = estimate_partition_size(data)
        with self._lock:
            self._blocks[key] = data
            self._sizes[key] = size
            self._blocks.move_to_end(key)
            if self._budget_bytes is not None:
                self._evict_to_budget(allow_spill)

    def _evict_to_budget(self, allow_spill: bool) -> None:
        while (
            sum(self._sizes.values()) > self._budget_bytes
            and len(self._blocks) > 1
        ):
            victim_key, victim_data = self._blocks.popitem(last=False)
            size = self._sizes.pop(victim_key)
            self._metrics.record_eviction()
            self._trace("cache_evict", victim_key[0], victim_key[1],
                        bytes=size, spilled=allow_spill)
            if allow_spill:
                self._spilled[victim_key] = victim_data
                self._metrics.record_disk_write(size)

    def drop_partition(self, rdd_id: int, partition_index: int) -> bool:
        """Simulate an executor failure losing one cached block.

        Returns whether a block was actually dropped. The next access will
        miss and trigger lineage recomputation.
        """
        key = (rdd_id, partition_index)
        with self._lock:
            dropped = self._blocks.pop(key, None) is not None
            self._sizes.pop(key, None)
            dropped = self._spilled.pop(key, None) is not None or dropped
            return dropped

    def drop_rdd(self, rdd_id: int) -> int:
        """Unpersist every block of an RDD; returns the number dropped."""
        with self._lock:
            keys = [k for k in self._blocks if k[0] == rdd_id]
            for key in keys:
                del self._blocks[key]
                self._sizes.pop(key, None)
            spilled_keys = [k for k in self._spilled if k[0] == rdd_id]
            for key in spilled_keys:
                del self._spilled[key]
            return len(keys) + len(spilled_keys)

    def contains(self, rdd_id: int, partition_index: int) -> bool:
        key = (rdd_id, partition_index)
        with self._lock:
            return key in self._blocks or key in self._spilled

    def clear(self) -> None:
        with self._lock:
            self._blocks.clear()
            self._sizes.clear()
            self._spilled.clear()
