"""Stage-based DAG scheduling over a persistent executor pool.

Spark's DAGScheduler cuts a job's lineage at wide (shuffle)
dependencies into stages and runs each stage's tasks across long-lived
executors; narrow chains pipeline inside a task. This module does the
same for the mini engine:

- :class:`ExecutorPool` — a pool of executor threads owned by a
  :class:`~repro.engine.context.ClusterContext`, created once and
  reused across every job (task-launch overhead is paid once per
  context, not once per job — the first-order cost the supercomputer
  benchmarking literature attributes to Spark's scheduler).
- :class:`StageScheduler` — walks an RDD's lineage, topologically
  orders the shuffle map stages beneath it, materializes each one
  (map tasks in parallel when threading is on), then runs the result
  stage's tasks.

Determinism contract: the serial path (``use_threads=False``, the
default) and the threaded path produce byte-identical results and
identical logical metrics (jobs, stages, tasks, shuffle records/bytes).
Only wall-clock observations (stage timings, task-time histograms)
differ. Shuffle buckets are merged in parent-partition order and result
rows are collected in partition order regardless of which executor
finished first.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import CancelledError, ThreadPoolExecutor

from repro.engine.rdd import (
    CoGroupedRDD,
    RDD,
    ShuffledRDD,
    run_task_with_retries,
)
from repro.engine.sizing import estimate_partition_size, estimate_size
from repro.engine.storage import StorageLevel


class ExecutorPool:
    """A persistent pool of executor threads.

    The underlying :class:`ThreadPoolExecutor` is created lazily on the
    first parallel job and then reused for the life of the context —
    never per job. numpy kernels release the GIL, so chunk-heavy tasks
    genuinely overlap. Under ``backend="process"`` the same pool serves
    as the *dispatcher* layer: each thread shepherds one in-flight task
    through the worker-process round trip.

    Shutting the pool down while it is idle is reversible — the next
    parallel job lazily recreates the executor. Shutting it down while
    tasks are in flight (a context exiting mid-job) cancels the queued
    tasks and marks the pool broken: the running job fails with a clear
    ``RuntimeError`` and the pool refuses to silently recreate an
    executor afterwards.
    """

    def __init__(self, num_workers: int, name: str = "repro-executor"):
        self.num_workers = num_workers
        self._prefix = f"{name}-{id(self):x}"
        self._executor = None
        self._lock = threading.Lock()
        self._active = 0
        self._broken = False
        # task-level occupancy gauges for the telemetry sampler:
        # _queued counts submitted-but-not-started tasks, _running
        # counts tasks currently on an executor thread
        self._queued = 0
        self._running = 0

    @property
    def started(self) -> bool:
        return self._executor is not None

    def _ensure(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._broken:
                raise RuntimeError(
                    "executor pool was shut down while tasks were in "
                    "flight; it cannot be reused — create a new context")
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.num_workers,
                    thread_name_prefix=self._prefix,
                )
            return self._executor

    def in_worker(self) -> bool:
        """Whether the calling thread is one of this pool's executors."""
        return threading.current_thread().name.startswith(self._prefix)

    def busy_threads(self) -> int:
        """Executor threads currently running a task."""
        with self._lock:
            return self._running

    def queued_tasks(self) -> int:
        """Tasks submitted but not yet started (queue depth)."""
        with self._lock:
            return self._queued

    def gauges(self) -> dict:
        """Occupancy in one lock acquisition (telemetry hook)."""
        with self._lock:
            return {
                "busy_threads": self._running,
                "queued_tasks": self._queued,
                "active_jobs": self._active,
                "num_workers": self.num_workers,
            }

    def map_tasks(self, func, items) -> list:
        """``[func(item) for item in items]``, tasks running concurrently.

        Results come back in submission order whatever the completion
        order. Calls from inside a worker thread fall back to serial
        execution so nested jobs can never deadlock waiting for their
        own pool slot. The first task exception is re-raised, after all
        tasks have finished (no task outlives its job).
        """
        items = list(items)
        if len(items) <= 1 or self.in_worker():
            return [func(item) for item in items]
        executor = self._ensure()

        def run_gauged(item):
            # queued -> running on start; running -> done in finally
            with self._lock:
                self._queued -= 1
                self._running += 1
            try:
                return func(item)
            finally:
                with self._lock:
                    self._running -= 1

        with self._lock:
            self._active += 1
            self._queued += len(items)
        submitted = 0
        try:
            try:
                futures = []
                for item in items:
                    futures.append(executor.submit(run_gauged, item))
                    submitted += 1
            except RuntimeError as exc:
                # the executor was shut down between _ensure and submit
                raise RuntimeError(
                    "executor pool was shut down while a job was "
                    "running; its tasks cannot be scheduled") from exc
            results = []
            first_error = None
            for future in futures:
                try:
                    results.append(future.result())
                except BaseException as exc:  # noqa: BLE001 - re-raised
                    if first_error is None:
                        first_error = exc
                    results.append(None)
            if first_error is not None:
                if isinstance(first_error, CancelledError):
                    raise RuntimeError(
                        "executor pool was shut down mid-job; queued "
                        "tasks were cancelled") from first_error
                raise first_error
            return results
        finally:
            # tasks that never started (cancelled, or never submitted)
            # never passed through run_gauged — reconcile the gauge
            never_started = len(items) - submitted
            never_started += sum(1 for future in futures
                                 if future.cancelled())
            with self._lock:
                self._active -= 1
                self._queued -= never_started

    def shutdown(self) -> None:
        with self._lock:
            executor = self._executor
            self._executor = None
            active = self._active
            if executor is not None and active:
                self._broken = True
        if executor is None:
            return
        if active:
            executor.shutdown(wait=False, cancel_futures=True)
        else:
            executor.shutdown(wait=True)


class StageScheduler:
    """Cut lineage at wide dependencies; run stages over the pool."""

    def __init__(self, context):
        self.context = context

    # ------------------------------------------------------------------
    # DAG analysis
    # ------------------------------------------------------------------

    def shuffle_stages(self, rdd: RDD) -> list:
        """Pending shuffle map stages beneath ``rdd``, parents first.

        Each entry is ``(shuffle_rdd, which)`` — ``which`` selects the
        parent for a :class:`CoGroupedRDD` and is ``None`` for a
        :class:`ShuffledRDD`. Narrowed shuffles, already-materialized
        map output, checkpointed subtrees, and subtrees hidden behind a
        fully cached RDD (whose partitions will be served from the
        block cache without recomputation) are all skipped, so eager
        scheduling records exactly the stages lazy evaluation would.
        """
        ordered = []
        seen = set()

        def visit(node: RDD) -> None:
            if node.rdd_id in seen:
                return
            seen.add(node.rdd_id)
            if node.is_checkpointed or self._fully_cached(node):
                return
            for dep in node.dependencies:
                visit(dep)
            if isinstance(node, ShuffledRDD):
                if not node.is_narrow and not node.is_materialized:
                    ordered.append((node, None))
            elif isinstance(node, CoGroupedRDD):
                for which, parent in enumerate(node.dependencies):
                    if (not node._parent_is_narrow(parent)
                            and not node.is_parent_materialized(which)):
                        ordered.append((node, which))

        visit(rdd)
        return ordered

    def _fully_cached(self, node: RDD) -> bool:
        if node.storage_level is StorageLevel.NONE:
            return False
        cache = self.context.cache
        return all(
            cache.contains(node.rdd_id, index)
            for index in range(node.num_partitions)
        )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def _pool(self):
        # the process backend also dispatches through the thread pool:
        # each dispatcher thread drives one worker-process round trip
        if self.context.parallel:
            return self.context.executor_pool
        return None

    def run_job(self, rdd: RDD, partition_func) -> list:
        """One job: materialize pending shuffle stages, then the result
        stage. Records one job, one result stage, one task per result
        partition; shuffle map stages record themselves as they
        materialize."""
        metrics = self.context.metrics
        metrics.record_job()
        pool = self._pool()
        tracer = self.context.tracer
        with tracer.span(rdd.name, "job",
                         executors=self.context.num_executors,
                         partitions=rdd.num_partitions):
            # shuffle map stages open their own spans (children of the
            # job span through the driver thread's span stack)
            for node, which in self.shuffle_stages(rdd):
                if which is None:
                    node.materialize(pool=pool)
                else:
                    node.materialize_parent(which, pool=pool)
            metrics.record_stage()
            start = time.perf_counter()
            with tracer.span(rdd.name, "stage", stage_kind="result",
                             num_tasks=rdd.num_partitions) as stage_span:
                results = self._run_tasks(
                    rdd, range(rdd.num_partitions), partition_func, pool,
                    stage_span)
            metrics.record_stage_timing(
                rdd.name, "result", time.perf_counter() - start,
                rdd.num_partitions)
        return results

    def _run_tasks(self, rdd: RDD, indices, partition_func, pool,
                   stage_span=None) -> list:
        def run_one(index):
            return self._run_task(rdd, index, partition_func, stage_span)

        indices = list(indices)
        if pool is not None and len(indices) > 1:
            return pool.map_tasks(run_one, indices)
        return [run_one(index) for index in indices]

    def _run_task(self, rdd: RDD, index: int, partition_func,
                  stage_span=None):
        runner = self.context.process_runner
        # the stage span is the *explicit* parent: under threading this
        # runs on an executor thread whose span stack is empty
        with self.context.tracer.span("task", "task", parent=stage_span,
                                      partition=index) as span:
            if runner is not None:
                def attempt():
                    return runner.run_result(rdd, index,
                                             partition_func, span)
            else:
                def attempt():
                    return partition_func(rdd.iterator(index))
            result = run_task_with_retries(self.context, index, attempt)
            result_bytes = estimate_size(result)
            span.set(result_bytes=result_bytes)
        self.context.metrics.record_result(result_bytes)
        return result

    def materialize_partitions(self, rdd: RDD) -> list:
        """Every partition of ``rdd``, computed stage-by-stage.

        Used by :meth:`RDD.checkpoint`: pending shuffles materialize
        first (in parallel under threading), then the partitions
        themselves. No job/stage/task counters move — checkpointing is
        metered as disk I/O by the caller, exactly as before — but the
        write is timed as a stage.
        """
        pool = self._pool()
        tracer = self.context.tracer
        runner = self.context.process_runner
        for node, which in self.shuffle_stages(rdd):
            if which is None:
                node.materialize(pool=pool)
            else:
                node.materialize_parent(which, pool=pool)
        start = time.perf_counter()
        with tracer.span(rdd.name, "checkpoint",
                         num_tasks=rdd.num_partitions) as ckpt_span:
            def compute_one(index):
                with tracer.span("task", "task", parent=ckpt_span,
                                 partition=index) as task_span:
                    if runner is not None:
                        data_part = runner.run_compute(rdd, index,
                                                       task_span)
                    else:
                        data_part = list(rdd.compute(index))
                    if tracer.enabled:
                        task_span.set(
                            bytes=estimate_partition_size(data_part))
                    return data_part

            indices = list(range(rdd.num_partitions))
            if pool is not None and len(indices) > 1:
                data = pool.map_tasks(compute_one, indices)
            else:
                data = [compute_one(index) for index in indices]
        self.context.metrics.record_stage_timing(
            rdd.name, "checkpoint", time.perf_counter() - start,
            rdd.num_partitions)
        return data
