"""Stage-based DAG scheduling over a persistent executor pool.

Spark's DAGScheduler cuts a job's lineage at wide (shuffle)
dependencies into stages and runs each stage's tasks across long-lived
executors; narrow chains pipeline inside a task. This module does the
same for the mini engine:

- :class:`ExecutorPool` — a pool of executor threads owned by a
  :class:`~repro.engine.context.ClusterContext`, created once and
  reused across every job (task-launch overhead is paid once per
  context, not once per job — the first-order cost the supercomputer
  benchmarking literature attributes to Spark's scheduler).
- :class:`StageScheduler` — walks an RDD's lineage, builds the stage
  graph (explicit dependency edges between the pending shuffle map
  stages), runs the map stages, then the result stage's tasks.

Stage execution is **pipelined** by default on parallel contexts: every
dependency-free stage's map tasks are submitted to the shared
:class:`ExecutorPool` at once, per-stage completion counts track each
map output as it lands, and a downstream stage launches the moment its
last input block arrives — the two sides of a join/cogroup/matmul
overlap fully instead of serializing at stage barriers.
``disable_pipelining()`` (mirroring ``repro.plan.disable_fusion`` and
``repro.engine.batches.disable_columnar``) restores the one-stage-at-
a-time barrier loop; serial contexts always use it.

Determinism contract: the serial path (``use_threads=False``, the
default), the threaded path, and the pipelined path all produce
byte-identical results and identical logical metrics (jobs, stages,
tasks, shuffle records/bytes). Only wall-clock observations (stage
timings, task-time histograms, span timestamps) differ. Shuffle
buckets are merged in parent-partition order and result rows are
collected in partition order regardless of which executor finished
first; concurrent stages hold their per-``(rdd, which)`` materialize
lock from launch to commit so map tasks never double-run.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import CancelledError, ThreadPoolExecutor

from repro.engine.rdd import (
    CoGroupedRDD,
    RDD,
    ShuffledRDD,
    run_task_with_retries,
)
from repro.engine.sizing import estimate_partition_size, estimate_size
from repro.engine.storage import StorageLevel
from repro.errors import EngineError


# ----------------------------------------------------------------------
# pipelining switch
# ----------------------------------------------------------------------

class _PipeliningToggle:
    """Flips the global pipelining switch; restores the prior state
    when used as a context manager."""

    def __init__(self, enabled: bool):
        self._previous = _STATE["enabled"]
        _STATE["enabled"] = enabled

    def __enter__(self) -> "_PipeliningToggle":
        return self

    def __exit__(self, *exc) -> bool:
        _STATE["enabled"] = self._previous
        return False


_STATE = {"enabled": True}


def pipelining_enabled() -> bool:
    """Whether parallel contexts overlap independent shuffle stages."""
    return _STATE["enabled"]


def enable_pipelining() -> _PipeliningToggle:
    """Turn stage pipelining on (the default). Usable as ``with`` block."""
    return _PipeliningToggle(True)


def disable_pipelining() -> _PipeliningToggle:
    """Escape hatch: materialize shuffle stages one at a time behind
    barriers, as the pre-pipelined scheduler did. Usable standalone or
    as a ``with`` block that restores the previous setting on exit.
    Driver-side only: it picks the scheduling strategy, never the task
    bodies, so results are byte-identical either way."""
    return _PipeliningToggle(False)


class ExecutorPool:
    """A persistent pool of executor threads.

    The underlying :class:`ThreadPoolExecutor` is created lazily on the
    first parallel job and then reused for the life of the context —
    never per job. numpy kernels release the GIL, so chunk-heavy tasks
    genuinely overlap. Under ``backend="process"`` the same pool serves
    as the *dispatcher* layer: each thread shepherds one in-flight task
    through the worker-process round trip.

    Shutting the pool down while it is idle is reversible — the next
    parallel job lazily recreates the executor. Shutting it down while
    tasks are in flight (a context exiting mid-job) cancels the queued
    tasks and marks the pool broken: the running job fails with a clear
    ``RuntimeError`` and the pool refuses to silently recreate an
    executor afterwards.
    """

    def __init__(self, num_workers: int, name: str = "repro-executor"):
        self.num_workers = num_workers
        self._prefix = f"{name}-{id(self):x}"
        self._executor = None
        self._lock = threading.Lock()
        self._active = 0
        self._broken = False
        # task-level occupancy gauges for the telemetry sampler:
        # _queued counts submitted-but-not-started tasks, _running
        # counts tasks currently on an executor thread
        self._queued = 0
        self._running = 0
        # stage-level gauges maintained by the scheduler: stages whose
        # dependencies are satisfied but whose tasks have not launched,
        # and stages launched but not yet committed
        self._ready_stages = 0
        self._inflight_stages = 0

    @property
    def started(self) -> bool:
        return self._executor is not None

    def _ensure(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._broken:
                raise RuntimeError(
                    "executor pool was shut down while tasks were in "
                    "flight; it cannot be reused — create a new context")
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.num_workers,
                    thread_name_prefix=self._prefix,
                )
            return self._executor

    def in_worker(self) -> bool:
        """Whether the calling thread is one of this pool's executors."""
        return threading.current_thread().name.startswith(self._prefix)

    def busy_threads(self) -> int:
        """Executor threads currently running a task."""
        with self._lock:
            return self._running

    def queued_tasks(self) -> int:
        """Tasks submitted but not yet started (queue depth)."""
        with self._lock:
            return self._queued

    def gauges(self) -> dict:
        """Occupancy in one lock acquisition (telemetry hook)."""
        with self._lock:
            return {
                "busy_threads": self._running,
                "queued_tasks": self._queued,
                "active_jobs": self._active,
                "num_workers": self.num_workers,
                "scheduler.ready_stages": self._ready_stages,
                "scheduler.inflight_stages": self._inflight_stages,
            }

    # ------------------------------------------------------------------
    # stage-level gauges (maintained by the StageScheduler)
    # ------------------------------------------------------------------

    def stage_ready(self) -> None:
        """A stage's dependencies are satisfied; it awaits launch."""
        with self._lock:
            self._ready_stages += 1

    def stage_launched(self) -> None:
        """A ready stage's map tasks were submitted."""
        with self._lock:
            self._ready_stages -= 1
            self._inflight_stages += 1

    def stage_finished(self, launched: bool = True) -> None:
        """A stage committed (``launched``) or was found already
        materialized / abandoned before launch (``not launched``)."""
        with self._lock:
            if launched:
                self._inflight_stages -= 1
            else:
                self._ready_stages -= 1

    def map_tasks(self, func, items) -> list:
        """``[func(item) for item in items]``, tasks running concurrently.

        Results come back in submission order whatever the completion
        order. Calls from inside a worker thread fall back to serial
        execution so nested jobs can never deadlock waiting for their
        own pool slot. The first task exception is re-raised, after all
        tasks have finished (no task outlives its job).
        """
        items = list(items)
        if len(items) <= 1 or self.in_worker():
            return [func(item) for item in items]
        executor = self._ensure()

        def run_gauged(item):
            # queued -> running on start; running -> done in finally
            with self._lock:
                self._queued -= 1
                self._running += 1
            try:
                return func(item)
            finally:
                with self._lock:
                    self._running -= 1

        with self._lock:
            self._active += 1
            self._queued += len(items)
        submitted = 0
        try:
            try:
                futures = []
                for item in items:
                    futures.append(executor.submit(run_gauged, item))
                    submitted += 1
            except RuntimeError as exc:
                # the executor was shut down between _ensure and submit
                raise RuntimeError(
                    "executor pool was shut down while a job was "
                    "running; its tasks cannot be scheduled") from exc
            results = []
            first_error = None
            for future in futures:
                try:
                    results.append(future.result())
                except BaseException as exc:  # noqa: BLE001 - re-raised
                    if first_error is None:
                        first_error = exc
                    results.append(None)
            if first_error is not None:
                if isinstance(first_error, CancelledError):
                    raise RuntimeError(
                        "executor pool was shut down mid-job; queued "
                        "tasks were cancelled") from first_error
                raise first_error
            return results
        finally:
            # tasks that never started (cancelled, or never submitted)
            # never passed through run_gauged — reconcile the gauge
            never_started = len(items) - submitted
            never_started += sum(1 for future in futures
                                 if future.cancelled())
            with self._lock:
                self._active -= 1
                self._queued -= never_started

    def begin_job(self) -> None:
        """Mark a pipelined job active.

        Pairs with :meth:`end_job`; while active, :meth:`shutdown`
        marks the pool broken and cancels queued tasks, exactly as it
        does for a job inside :meth:`map_tasks`.
        """
        self._ensure()
        with self._lock:
            self._active += 1

    def end_job(self) -> None:
        with self._lock:
            self._active -= 1

    def submit_task(self, func):
        """Submit one task; returns its ``Future``.

        The pipelined scheduler's task-granular entry point: gauge
        accounting matches :meth:`map_tasks` (queued on submit, running
        while on an executor thread; a done-callback reconciles tasks
        cancelled before they started). The caller owns completion
        handling — nothing here waits.
        """
        executor = self._ensure()

        def run_gauged():
            with self._lock:
                self._queued -= 1
                self._running += 1
            try:
                return func()
            finally:
                with self._lock:
                    self._running -= 1

        def reconcile(future):
            if future.cancelled():
                with self._lock:
                    self._queued -= 1

        with self._lock:
            self._queued += 1
        try:
            future = executor.submit(run_gauged)
        except RuntimeError as exc:
            # the executor was shut down between _ensure and submit
            with self._lock:
                self._queued -= 1
            raise RuntimeError(
                "executor pool was shut down while a job was "
                "running; its tasks cannot be scheduled") from exc
        future.add_done_callback(reconcile)
        return future

    def shutdown(self) -> None:
        with self._lock:
            executor = self._executor
            self._executor = None
            active = self._active
            if executor is not None and active:
                self._broken = True
        if executor is None:
            return
        if active:
            executor.shutdown(wait=False, cancel_futures=True)
        else:
            executor.shutdown(wait=True)


class _Stage:
    """One node of a job's stage graph: a pending shuffle map stage.

    ``pending`` counts unfinished dependency stages; the pipelined
    scheduler launches the stage when it reaches zero and ``done``
    counts map outputs until every parent partition has landed.
    """

    __slots__ = ("node", "which", "key", "label", "num_tasks", "deps",
                 "children", "pending", "done", "outputs", "span",
                 "lock", "start_s", "ready_s", "state", "gauge")

    def __init__(self, node, which):
        self.node = node
        self.which = which
        self.key = (node.rdd_id, which)
        self.label = node.shuffle_label(which)
        self.num_tasks = node.shuffle_parent(which).num_partitions
        self.deps = []
        self.children = []
        self.pending = 0
        self.done = 0
        self.outputs = None
        self.span = None
        self.lock = None
        self.start_s = 0.0
        self.ready_s = 0.0
        self.state = "waiting"
        self.gauge = None

    @property
    def edge_name(self) -> str:
        """Deterministic stage identifier for ``depends_on`` attrs."""
        return f"{self.label}#{self.node.rdd_id}"

    def depends_on(self) -> list:
        return sorted(dep.edge_name for dep in self.deps)


class StageScheduler:
    """Cut lineage at wide dependencies; run stages over the pool."""

    def __init__(self, context):
        self.context = context

    # ------------------------------------------------------------------
    # DAG analysis
    # ------------------------------------------------------------------

    def shuffle_stages(self, rdd: RDD) -> list:
        """Pending shuffle map stages beneath ``rdd``, parents first.

        Each entry is ``(shuffle_rdd, which)`` — ``which`` selects the
        parent for a :class:`CoGroupedRDD` and is ``None`` for a
        :class:`ShuffledRDD`. Narrowed shuffles, already-materialized
        map output, checkpointed subtrees, and subtrees hidden behind a
        fully cached RDD (whose partitions will be served from the
        block cache without recomputation) are all skipped, so eager
        scheduling records exactly the stages lazy evaluation would.
        """
        ordered = []
        seen = set()

        def visit(node: RDD) -> None:
            if node.rdd_id in seen:
                return
            seen.add(node.rdd_id)
            if node.is_checkpointed or self._fully_cached(node):
                return
            for dep in node.dependencies:
                visit(dep)
            if isinstance(node, ShuffledRDD):
                if not node.is_narrow and not node.is_materialized:
                    ordered.append((node, None))
            elif isinstance(node, CoGroupedRDD):
                for which, parent in enumerate(node.dependencies):
                    if (not node._parent_is_narrow(parent)
                            and not node.is_parent_materialized(which)):
                        ordered.append((node, which))

        visit(rdd)
        return ordered

    def _fully_cached(self, node: RDD) -> bool:
        if node.storage_level is StorageLevel.NONE:
            return False
        cache = self.context.cache
        return all(
            cache.contains(node.rdd_id, index)
            for index in range(node.num_partitions)
        )

    def stage_graph(self, rdd: RDD) -> tuple:
        """``(stages, result_deps)``: the pending shuffle map stages as
        an explicit dependency DAG, plus the result stage's direct
        stage dependencies.

        ``stages`` is :meth:`shuffle_stages` order (parents first) with
        ``deps``/``children`` edges wired between the nearest pending
        stages; ``result_deps`` are the stages the result stage's tasks
        read from directly. Both are deterministic for a given lineage,
        so barrier and pipelined runs stamp identical ``depends_on``
        span attributes.
        """
        ordered = self.shuffle_stages(rdd)
        stages = [_Stage(node, which) for node, which in ordered]
        by_key = {stage.key: stage for stage in stages}
        for stage in stages:
            root = stage.node.shuffle_parent(stage.which)
            for dep in self._direct_stage_deps(root, by_key):
                stage.deps.append(dep)
                dep.children.append(stage)
            stage.pending = len(stage.deps)
        return stages, self._direct_stage_deps(rdd, by_key)

    def _direct_stage_deps(self, root: RDD, by_key: dict) -> list:
        """The nearest pending stages reachable from ``root`` without
        crossing another pending stage boundary.

        Mirrors :meth:`shuffle_stages`'s descent rules (checkpointed
        and fully cached subtrees are opaque; narrow and materialized
        shuffles are transparent) but stops at each pending stage: what
        lies beneath one is *its* dependency, not the caller's.
        """
        deps = []
        found = set()
        seen = set()

        def visit(node: RDD) -> None:
            if node.rdd_id in seen:
                return
            seen.add(node.rdd_id)
            if node.is_checkpointed or self._fully_cached(node):
                return
            if isinstance(node, ShuffledRDD):
                stage = by_key.get((node.rdd_id, None))
                if stage is not None:
                    if stage.key not in found:
                        found.add(stage.key)
                        deps.append(stage)
                    return
                visit(node.dependencies[0])
                return
            if isinstance(node, CoGroupedRDD):
                for which, parent in enumerate(node.dependencies):
                    stage = by_key.get((node.rdd_id, which))
                    if stage is not None:
                        if stage.key not in found:
                            found.add(stage.key)
                            deps.append(stage)
                    else:
                        visit(parent)
                return
            for dep in node.dependencies:
                visit(dep)

        visit(root)
        return deps

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def _pool(self):
        # the process backend also dispatches through the thread pool:
        # each dispatcher thread drives one worker-process round trip
        if self.context.parallel:
            return self.context.executor_pool
        return None

    def run_job(self, rdd: RDD, partition_func) -> list:
        """One job: materialize pending shuffle stages, then the result
        stage. Records one job, one result stage, one task per result
        partition; shuffle map stages record themselves as they launch.

        Map stages run through :meth:`_run_stage_graph` — overlapped on
        parallel contexts, one at a time behind barriers otherwise. The
        result stage launches as soon as its shuffle parents commit;
        since every pending stage feeds the result stage's partition
        computes transitively, that moment is exactly when the last
        map stage lands.
        """
        metrics = self.context.metrics
        metrics.record_job()
        pool = self._pool()
        tracer = self.context.tracer
        with tracer.span(rdd.name, "job",
                         executors=self.context.num_executors,
                         partitions=rdd.num_partitions) as job_span:
            result_deps = self._run_stage_graph(rdd, pool, job_span)
            metrics.record_stage()
            start = time.perf_counter()
            with tracer.span(
                    rdd.name, "stage", stage_kind="result",
                    num_tasks=rdd.num_partitions,
                    depends_on=sorted(stage.edge_name
                                      for stage in result_deps),
                    ready_at=start, launched_at=start) as stage_span:
                results = self._run_tasks(
                    rdd, range(rdd.num_partitions), partition_func, pool,
                    stage_span)
            metrics.record_stage_timing(
                rdd.name, "result", time.perf_counter() - start,
                rdd.num_partitions)
        return results

    def _run_stage_graph(self, rdd: RDD, pool, parent_span) -> list:
        """Materialize every pending shuffle map stage beneath ``rdd``;
        returns the result stage's direct stage dependencies.

        Pipelined mode needs a pool (map tasks are submitted, not
        awaited in place), more than one stage (a single stage cannot
        overlap with anything), the global toggle on, and a driver-side
        caller (nested jobs inside worker threads fall back, mirroring
        ``map_tasks``).
        """
        stages, result_deps = self.stage_graph(rdd)
        if not stages:
            return result_deps
        if (pool is not None and len(stages) > 1
                and pipelining_enabled() and not pool.in_worker()):
            self._run_stages_pipelined(stages, pool, parent_span)
        else:
            self._run_stages_barrier(stages, pool, parent_span)
        return result_deps

    def _run_stages_barrier(self, stages, pool, parent_span) -> None:
        """Topological one-at-a-time stage execution (the pre-pipelined
        scheduler): each stage materializes to completion before the
        next starts. Stage spans carry the same ``depends_on`` edges as
        pipelined runs, so the logical trace is identical."""
        gauges = self.context.executor_pool
        for stage in stages:
            gauges.stage_ready()
            launched = not stage.node.shuffle_ready(stage.which)
            if launched:
                gauges.stage_launched()
            try:
                stage.node.materialize_stage(
                    stage.which, pool=pool,
                    depends_on=stage.depends_on(),
                    parent_span=parent_span)
            finally:
                gauges.stage_finished(launched=launched)

    def _run_stages_pipelined(self, stages, pool, parent_span) -> None:
        """Event-driven overlapped stage execution.

        The driver thread runs a completion loop over a queue fed by
        future done-callbacks; per-stage ``pending`` counts gate
        launches and per-stage ``done`` counts detect the last map
        output. A stage holds its per-``(rdd, which)`` materialize lock
        from launch to commit — a stage whose lock is already held (a
        concurrent driver job is materializing it) is polled until that
        job commits, then adopted as finished. The first task failure
        stops new launches, drains in-flight tasks (no task outlives
        its job), and surfaces as one diagnostic.
        """
        tracer = self.context.tracer
        metrics = self.context.metrics
        events = queue.SimpleQueue()
        state = {"outstanding": 0, "failure": None}
        remaining = {stage.key for stage in stages}
        foreign = []

        def stage_done(stage, launched):
            stage.state = "done"
            remaining.discard(stage.key)
            pool.stage_finished(launched=launched)
            stage.gauge = None
            for child in stage.children:
                child.pending -= 1
                if child.pending == 0 and child.state == "waiting":
                    mark_ready(child)

        def mark_ready(stage):
            stage.state = "ready"
            stage.ready_s = time.perf_counter()
            pool.stage_ready()
            stage.gauge = "ready"
            try_launch(stage)

        def try_launch(stage):
            if state["failure"] is not None:
                return
            lock = stage.node._materialize_lock(stage.which)
            if not lock.acquire(blocking=False):
                # a concurrent driver job is materializing this stage;
                # poll rather than block the event loop on its lock
                foreign.append(stage)
                return
            if stage.node.shuffle_ready(stage.which):
                lock.release()
                stage_done(stage, launched=False)
                return
            launch(stage, lock)

        def launch(stage, lock):
            metrics.record_stage()
            stage.state = "running"
            stage.lock = lock  # held from launch to commit
            stage.start_s = time.perf_counter()
            stage.outputs = [None] * stage.num_tasks
            stage.span = tracer.start(
                stage.label, "shuffle", parent=parent_span,
                detached=True, num_tasks=stage.num_tasks,
                depends_on=stage.depends_on(),
                ready_at=stage.ready_s, launched_at=stage.start_s)
            pool.stage_launched()
            stage.gauge = "inflight"
            for parent_index in range(stage.num_tasks):
                def run(node=stage.node, which=stage.which,
                        index=parent_index, span=stage.span):
                    return node.run_shuffle_map_task(which, index, span)

                try:
                    future = pool.submit_task(run)
                except RuntimeError as exc:
                    state["failure"] = exc
                    return
                state["outstanding"] += 1
                future.add_done_callback(
                    lambda fut, stage=stage, index=parent_index:
                        events.put((stage, index, fut)))

        def absorb(stage, index, future):
            try:
                output = future.result()
            except BaseException as exc:  # noqa: BLE001 - re-raised
                if state["failure"] is None:
                    state["failure"] = exc
                return
            if state["failure"] is not None:
                return
            stage.outputs[index] = output
            stage.done += 1
            if stage.done == stage.num_tasks:
                stage.node.commit_shuffle(stage.which, stage.outputs,
                                          stage.span, stage.start_s)
                tracer.finish(stage.span)
                stage.span = None
                stage.lock.release()
                stage.lock = None
                stage_done(stage, launched=True)

        pool.begin_job()
        try:
            for stage in stages:
                if stage.pending == 0 and stage.state == "waiting":
                    mark_ready(stage)
            while remaining:
                if state["failure"] is not None \
                        and state["outstanding"] == 0:
                    break
                if state["outstanding"] == 0 and not foreign:
                    raise EngineError(
                        f"pipelined scheduler stalled: {len(remaining)} "
                        "stage(s) unfinished with no tasks in flight")
                try:
                    event = events.get(
                        timeout=0.002 if foreign else None)
                except queue.Empty:
                    event = None
                if event is not None:
                    state["outstanding"] -= 1
                    absorb(*event)
                if foreign and state["failure"] is None:
                    retry, foreign = foreign, []
                    for stage in retry:
                        if stage.state == "ready":
                            try_launch(stage)
        finally:
            pool.end_job()
            for stage in stages:
                # failure path: close abandoned spans, release held
                # locks without committing (a later job redoes the
                # stage), and zero the stage gauges
                if stage.span is not None:
                    tracer.finish(stage.span)
                    stage.span = None
                if stage.lock is not None:
                    stage.lock.release()
                    stage.lock = None
                if stage.gauge is not None:
                    pool.stage_finished(
                        launched=stage.gauge == "inflight")
                    stage.gauge = None
        failure = state["failure"]
        if failure is not None:
            if isinstance(failure, CancelledError):
                raise RuntimeError(
                    "executor pool was shut down mid-job; queued "
                    "shuffle map tasks were cancelled") from failure
            raise failure

    def _run_tasks(self, rdd: RDD, indices, partition_func, pool,
                   stage_span=None) -> list:
        def run_one(index):
            return self._run_task(rdd, index, partition_func, stage_span)

        indices = list(indices)
        if pool is not None and len(indices) > 1:
            return pool.map_tasks(run_one, indices)
        return [run_one(index) for index in indices]

    def _run_task(self, rdd: RDD, index: int, partition_func,
                  stage_span=None):
        runner = self.context.process_runner
        # the stage span is the *explicit* parent: under threading this
        # runs on an executor thread whose span stack is empty
        with self.context.tracer.span("task", "task", parent=stage_span,
                                      partition=index) as span:
            if runner is not None:
                def attempt():
                    return runner.run_result(rdd, index,
                                             partition_func, span)
            else:
                def attempt():
                    return partition_func(rdd.iterator(index))
            result = run_task_with_retries(self.context, index, attempt)
            result_bytes = estimate_size(result)
            span.set(result_bytes=result_bytes)
        self.context.metrics.record_result(result_bytes)
        return result

    def materialize_partitions(self, rdd: RDD) -> list:
        """Every partition of ``rdd``, computed stage-by-stage.

        Used by :meth:`RDD.checkpoint`: pending shuffles materialize
        first (in parallel under threading), then the partitions
        themselves. No job/stage/task counters move — checkpointing is
        metered as disk I/O by the caller, exactly as before — but the
        write is timed as a stage.
        """
        pool = self._pool()
        tracer = self.context.tracer
        runner = self.context.process_runner
        self._run_stage_graph(rdd, pool, None)
        start = time.perf_counter()
        with tracer.span(rdd.name, "checkpoint",
                         num_tasks=rdd.num_partitions) as ckpt_span:
            def compute_one(index):
                with tracer.span("task", "task", parent=ckpt_span,
                                 partition=index) as task_span:
                    if runner is not None:
                        data_part = runner.run_compute(rdd, index,
                                                       task_span)
                    else:
                        data_part = list(rdd.compute(index))
                    if tracer.enabled:
                        task_span.set(
                            bytes=estimate_partition_size(data_part))
                    return data_part

            indices = list(range(rdd.num_partitions))
            if pool is not None and len(indices) > 1:
                data = pool.map_tasks(compute_one, indices)
            else:
                data = [compute_one(index) for index in indices]
        self.context.metrics.record_stage_timing(
            rdd.name, "checkpoint", time.perf_counter() - start,
            rdd.num_partitions)
        return data
