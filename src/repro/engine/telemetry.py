"""Continuous telemetry plane: sampler, time series, health, export.

The tracer (:mod:`repro.engine.tracing`) explains a job *after* it ran;
this module watches the cluster *while* it runs. A
:class:`TelemetrySampler` owned by a
:class:`~repro.engine.context.ClusterContext` (off by default —
``ClusterContext(telemetry=True)`` or ``telemetry_interval=0.25``)
periodically snapshots gauges from the existing subsystems:

- every :data:`~repro.engine.metrics.COUNTER_FIELDS` counter (stored
  cumulative; :meth:`TimeSeriesStore.rate` turns them into rate series),
- the storage ledger (``CacheManager.gauges()``: resident / spilled
  bytes and block counts, eviction pressure against the budget),
- the shared-memory plane (``SharedSegmentRegistry.gauges()``),
- the executor pool (``ExecutorPool.gauges()``: busy dispatcher
  threads, queued tasks),
- per-worker heartbeats for the process backend
  (:class:`WorkerHeartbeats`: liveness, task counts, last-task
  latency — fed by every task reply and by the crash path).

Samples land in a bounded ring-buffer :class:`TimeSeriesStore` with
absolute (``time.time``) timestamps, optionally mirrored to a rotating
JSON-lines sink (:class:`TelemetrySink`) for headless runs. On top:

- :class:`HealthMonitor` — threshold rules (ledger high-watermark,
  missed worker heartbeats, spill-rate spikes, shuffle skew from the
  tracer's job profiles) that emit structured warning events into the
  trace stream (``kind="health"`` spans), the sink, and
  ``ClusterContext.health()``.
- :class:`TelemetryServer` — a stdlib ``http.server`` thread
  (``ctx.serve_telemetry(port=...)``) serving Prometheus text
  exposition at ``/metrics``, a JSON snapshot at ``/telemetry.json``,
  and the health report at ``/health``.
- ``python -m repro top`` (:mod:`repro.engine.top`) — a live terminal
  dashboard over either the HTTP endpoint or a recorded JSONL.

Design constraints mirror the tracer's: **zero cost when disabled**
(no thread, no samples — the default), **read-only when enabled** (the
sampler only calls the subsystems' existing metered-free getters, so
job results stay byte-identical with telemetry on), and **no thread
outlives its context** (the sampler holds its context by weak
reference and an atexit guard — mirroring the shm registry sweep —
stops any sampler/server/sink still live at interpreter exit).
"""

from __future__ import annotations

import atexit
import json
import os
import threading
import time
import weakref

from collections import deque

from repro.engine.metrics import COUNTER_FIELDS

TELEMETRY_FORMAT = "repro-telemetry"
TELEMETRY_VERSION = 1

#: sampler period when ``telemetry=True`` without an explicit interval
DEFAULT_INTERVAL_S = 1.0

#: ring-buffer capacity per series (10 minutes at a 250 ms sampler)
DEFAULT_CAPACITY = 2400

#: rotate the JSONL sink past this many bytes (one ``.1`` kept)
DEFAULT_ROTATE_BYTES = 8 << 20


# ----------------------------------------------------------------------
# worker heartbeats (process backend liveness)
# ----------------------------------------------------------------------

def pid_alive(pid: int) -> bool:
    """Whether ``pid`` is a live (non-zombie) process.

    ``os.kill(pid, 0)`` alone is not enough: a SIGKILLed worker stays a
    zombie until its parent reaps it, and signalling a zombie succeeds.
    On Linux the process state in ``/proc/<pid>/stat`` disambiguates.
    """
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):  # pragma: no cover - not ours
        return True
    try:
        with open(f"/proc/{pid}/stat", "rb") as handle:
            stat = handle.read()
        # field 3 follows the parenthesized comm, which may itself
        # contain spaces and parentheses — split after the last ')'
        state = stat.rsplit(b")", 1)[1].split()[0]
        return state != b"Z"
    except (OSError, IndexError):  # pragma: no cover - non-Linux
        return True


class WorkerHeartbeats:
    """Driver-side liveness ledger for forked worker processes.

    Workers are registered when the pool forks them; every task reply
    beats its worker's entry (last-seen time, task count, last-task
    latency). :meth:`reap_dead` probes registered workers and marks the
    ones whose process is gone — called by the sampler each tick and by
    the pool's crash path *before* the respawn counter moves, so a
    missed-heartbeat health event always precedes the respawn event.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._workers = {}   # pid -> mutable row dict

    def _row(self, pid: int, now: float) -> dict:
        row = self._workers.get(pid)
        if row is None:
            row = {"pid": pid, "alive": True, "first_seen": now,
                   "last_seen": now, "tasks": 0, "last_task_s": None}
            self._workers[pid] = row
        return row

    def register(self, pids) -> None:
        now = time.time()
        with self._lock:
            for pid in pids:
                self._row(pid, now)

    def beat(self, pid: int, task_wall_s=None) -> None:
        now = time.time()
        with self._lock:
            # only registered workers beat: a late reply absorbed after
            # a crash forgot its (replaced) generation must not
            # resurrect the old pid's row — the resurrected corpse
            # would later reap as a spurious missed-heartbeat that
            # never clears
            row = self._workers.get(pid)
            if row is None:
                return
            row["alive"] = True
            row["last_seen"] = now
            row["tasks"] += 1
            if task_wall_s is not None:
                row["last_task_s"] = task_wall_s

    def mark_dead(self, pid: int) -> None:
        with self._lock:
            row = self._workers.get(pid)
            if row is not None:
                row["alive"] = False

    def forget(self, pids) -> None:
        """Drop rows for workers that were replaced by a respawn, so
        the missed-heartbeat condition clears once the pool recovers."""
        with self._lock:
            for pid in pids:
                self._workers.pop(pid, None)

    def reap_dead(self) -> list:
        """Probe live-marked workers; returns pids newly found dead."""
        with self._lock:
            candidates = [pid for pid, row in self._workers.items()
                          if row["alive"]]
        dead = [pid for pid in candidates if not pid_alive(pid)]
        with self._lock:
            for pid in dead:
                row = self._workers.get(pid)
                if row is not None:
                    row["alive"] = False
        return dead

    def rows(self) -> dict:
        """``{pid: row-copy}`` for telemetry samples and dashboards."""
        with self._lock:
            return {pid: dict(row) for pid, row in self._workers.items()}

    def alive_count(self) -> int:
        with self._lock:
            return sum(1 for row in self._workers.values()
                       if row["alive"])

    def known_count(self) -> int:
        with self._lock:
            return len(self._workers)


class NnzBalanceStats:
    """Per-partition nnz loads of the last placed sparse stage.

    The sparse execution tier (matmul's balanced shuffles,
    ``ArrayRDD.partition_by_nnz``, the graph loader) records the
    per-partition valid-cell loads its partitioner produced; the
    sampler turns the latest recording into the ``nnz.*`` gauges —
    most importantly ``nnz.imbalance``, the max/mean load ratio the
    :class:`NnzImbalance` health rule watches.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._stage = None
        self._loads = None

    def record(self, stage: str, loads) -> None:
        loads = [float(load) for load in loads]
        with self._lock:
            self._stage = str(stage)
            self._loads = loads

    def last(self):
        """``(stage, loads)`` of the latest recording, or
        ``(None, None)``."""
        with self._lock:
            loads = list(self._loads) if self._loads is not None \
                else None
            return self._stage, loads

    def gauges(self) -> dict:
        stage, loads = self.last()
        if not loads:
            return {}
        mean = sum(loads) / len(loads)
        peak = max(loads)
        return {
            "partition_max": peak,
            "partition_mean": mean,
            "imbalance": (peak / mean) if mean > 0 else 1.0,
            "partitions": len(loads),
        }

    def clear(self) -> None:
        with self._lock:
            self._stage = None
            self._loads = None


# ----------------------------------------------------------------------
# the time-series store
# ----------------------------------------------------------------------

class TimeSeriesStore:
    """Bounded ring buffers of ``(timestamp, value)`` per series name.

    Counter series hold cumulative values; :meth:`rate` differentiates
    over a trailing window. Worker rows flatten to
    ``worker.<pid>.<field>`` series so dashboards can sparkline them
    like any other gauge.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.capacity = capacity
        self._series = {}    # name -> deque[(t, value)]
        self._last_sample = None
        self._num_samples = 0
        self._lock = threading.Lock()

    def record(self, sample: dict) -> None:
        """Fold one sampler tick (``{"t", "gauges", "counters",
        "workers"}``) into the ring buffers."""
        t = sample["t"]
        flat = {}
        for name, value in sample.get("gauges", {}).items():
            flat[name] = value
        for name, value in sample.get("counters", {}).items():
            flat[f"counter.{name}"] = value
        for pid, row in sample.get("workers", {}).items():
            flat[f"worker.{pid}.alive"] = 1 if row.get("alive") else 0
            flat[f"worker.{pid}.tasks"] = row.get("tasks", 0)
            if row.get("last_task_s") is not None:
                flat[f"worker.{pid}.last_task_s"] = row["last_task_s"]
        with self._lock:
            for name, value in flat.items():
                series = self._series.get(name)
                if series is None:
                    series = deque(maxlen=self.capacity)
                    self._series[name] = series
                series.append((t, value))
            self._last_sample = sample
            self._num_samples += 1

    def names(self) -> list:
        with self._lock:
            return sorted(self._series)

    def series(self, name: str, window_s: float = None) -> list:
        """``[(t, value), ...]`` — optionally only the trailing window."""
        with self._lock:
            points = list(self._series.get(name, ()))
        if window_s is not None and points:
            cutoff = points[-1][0] - window_s
            points = [point for point in points if point[0] >= cutoff]
        return points

    def latest(self, name: str):
        with self._lock:
            series = self._series.get(name)
            return series[-1][1] if series else None

    def last_sample(self):
        with self._lock:
            return self._last_sample

    def num_samples(self) -> int:
        with self._lock:
            return self._num_samples

    def rate(self, name: str, window_s: float = 10.0) -> float:
        """Per-second delta of a cumulative series over the window."""
        points = self.series(name, window_s=window_s)
        if len(points) < 2:
            return 0.0
        (t0, v0), (t1, v1) = points[0], points[-1]
        span = t1 - t0
        return (v1 - v0) / span if span > 0 else 0.0

    def rate_series(self, name: str, window_s: float = None) -> list:
        """Point-to-point derivative of a cumulative series."""
        points = self.series(name, window_s=window_s)
        rates = []
        for (t0, v0), (t1, v1) in zip(points, points[1:]):
            span = t1 - t0
            rates.append((t1, (v1 - v0) / span if span > 0 else 0.0))
        return rates


# ----------------------------------------------------------------------
# health monitoring
# ----------------------------------------------------------------------

class HealthEvent:
    """One structured health observation."""

    __slots__ = ("t", "rule", "severity", "message", "attrs")

    def __init__(self, t, rule, severity, message, attrs):
        self.t = t
        self.rule = rule
        self.severity = severity
        self.message = message
        self.attrs = attrs

    def as_dict(self) -> dict:
        return {"t": self.t, "rule": self.rule,
                "severity": self.severity, "message": self.message,
                "attrs": dict(self.attrs)}

    @classmethod
    def from_dict(cls, record: dict) -> "HealthEvent":
        return cls(record.get("t", 0.0), record.get("rule", "?"),
                   record.get("severity", "warning"),
                   record.get("message", ""),
                   dict(record.get("attrs") or {}))

    def __repr__(self) -> str:
        return (f"HealthEvent({self.severity}:{self.rule} "
                f"{self.message!r})")


class HealthRule:
    """One threshold check, evaluated against each sample.

    Subclasses return ``[(dedup_key, message, attrs), ...]`` from
    :meth:`check` — an empty list means healthy. Events fire on the
    transition into violation; a condition that stays violated does not
    re-emit until it clears first.
    """

    name = "rule"
    severity = "warning"

    def check(self, sample, store, context) -> list:
        raise NotImplementedError


class LedgerHighWatermark(HealthRule):
    """Cache resident bytes crossed ``watermark`` of the budget."""

    name = "ledger_high_watermark"

    def __init__(self, watermark: float = 0.9):
        self.watermark = watermark

    def check(self, sample, store, context) -> list:
        gauges = sample.get("gauges", {})
        budget = gauges.get("cache.budget_bytes")
        resident = gauges.get("cache.resident_bytes", 0)
        if not budget or resident <= self.watermark * budget:
            return []
        return [(self.name,
                 f"cache ledger at {resident / budget:.0%} of its "
                 f"{budget:,} B budget",
                 {"resident_bytes": resident, "budget_bytes": budget,
                  "watermark": self.watermark})]


class SpillRateSpike(HealthRule):
    """Spill events per second exceeded ``per_second`` over the window."""

    name = "spill_rate_spike"

    def __init__(self, per_second: float = 5.0, window_s: float = 10.0):
        self.per_second = per_second
        self.window_s = window_s

    def check(self, sample, store, context) -> list:
        if store is None:   # on-demand evaluation has no time series
            return []
        rate = store.rate("counter.cache_spills", window_s=self.window_s)
        if rate <= self.per_second:
            return []
        return [(self.name,
                 f"spilling {rate:.1f} blocks/s (threshold "
                 f"{self.per_second:g}/s)",
                 {"spills_per_s": rate, "threshold": self.per_second})]


class WorkerHeartbeatMissed(HealthRule):
    """A registered worker process is gone (or silent too long)."""

    name = "worker_heartbeat_missed"

    def __init__(self, miss_after_s: float = None):
        self.miss_after_s = miss_after_s

    def check(self, sample, store, context) -> list:
        heartbeats = getattr(context, "worker_heartbeats", None)
        if heartbeats is None:
            return []
        heartbeats.reap_dead()
        violations = []
        now = sample["t"]
        for pid, row in heartbeats.rows().items():
            if not row["alive"]:
                violations.append(
                    (f"{self.name}:{pid}",
                     f"worker {pid} stopped responding",
                     {"pid": pid, "tasks": row["tasks"]}))
            elif (self.miss_after_s is not None
                    and now - row["last_seen"] > self.miss_after_s):
                violations.append(
                    (f"{self.name}:{pid}",
                     f"worker {pid} silent for "
                     f"{now - row['last_seen']:.1f}s",
                     {"pid": pid, "silent_s": now - row["last_seen"]}))
        return violations


class ShuffleSkew(HealthRule):
    """The tracer's latest job profile shows a badly skewed stage."""

    name = "shuffle_skew"

    def __init__(self, threshold: float = 4.0):
        self.threshold = threshold
        self._spans_seen = -1

    def check(self, sample, store, context) -> list:
        tracer = getattr(context, "tracer", None)
        if tracer is None or not tracer.enabled:
            return []
        spans = tracer.spans()
        if len(spans) == self._spans_seen:
            return []
        self._spans_seen = len(spans)
        profile = tracer.last_job_profile()
        if profile is None:
            return []
        violations = []
        for stage in profile.stages:
            if len(stage.task_times) >= 2 and \
                    stage.skew >= self.threshold:
                violations.append(
                    (f"{self.name}:{profile.name}:{stage.name}",
                     f"stage {stage.name!r} of job {profile.name!r} "
                     f"skewed {stage.skew:.1f}x (max/mean task time)",
                     {"job": profile.name, "stage": stage.name,
                      "skew": stage.skew}))
        return violations


class NnzImbalance(HealthRule):
    """The last placed sparse stage's partition nnz loads are skewed.

    Reads the ``nnz.imbalance`` gauge (max/mean per-partition valid
    cells recorded by the sparse execution tier) — a high ratio means
    one executor owns most of the nonzeros and will finish last no
    matter how idle the rest of the pool is.
    """

    name = "nnz_imbalance"

    def __init__(self, threshold: float = 4.0):
        self.threshold = threshold

    def check(self, sample, store, context) -> list:
        gauges = sample.get("gauges", {})
        imbalance = gauges.get("nnz.imbalance")
        if imbalance is None or imbalance < self.threshold:
            return []
        stats = getattr(context, "nnz_stats", None)
        stage, _loads = stats.last() if stats is not None \
            else (None, None)
        stage = stage or "?"
        return [(f"{self.name}:{stage}",
                 f"stage {stage!r} nnz load skewed {imbalance:.1f}x "
                 f"(max/mean partition nnz; threshold "
                 f"{self.threshold:g}x)",
                 {"stage": stage, "imbalance": imbalance,
                  "threshold": self.threshold})]


def default_rules() -> list:
    return [LedgerHighWatermark(), SpillRateSpike(),
            WorkerHeartbeatMissed(), ShuffleSkew(), NnzImbalance()]


class HealthMonitor:
    """Evaluates threshold rules; keeps a bounded structured event log.

    Owned by every :class:`~repro.engine.context.ClusterContext`
    (telemetry on or off) so fault paths — the worker pool's crash
    handler — can emit events unconditionally; the sampler drives the
    periodic rule evaluation only when telemetry is enabled. Every
    event is bridged into the trace stream as a zero-duration
    ``kind="health"`` span and into any subscribed sink.
    """

    def __init__(self, tracer=None, rules=None, max_events: int = 256):
        self.tracer = tracer
        self.rules = list(rules) if rules is not None else default_rules()
        self._events = deque(maxlen=max_events)
        self._active = set()
        self._sinks = []
        self._lock = threading.Lock()

    def configure(self, ledger_watermark=None, spill_rate_per_s=None,
                  heartbeat_miss_s=None, skew_threshold=None,
                  nnz_imbalance=None) -> None:
        """Adjust the default rules' thresholds in place."""
        for rule in self.rules:
            if ledger_watermark is not None and \
                    isinstance(rule, LedgerHighWatermark):
                rule.watermark = ledger_watermark
            if spill_rate_per_s is not None and \
                    isinstance(rule, SpillRateSpike):
                rule.per_second = spill_rate_per_s
            if heartbeat_miss_s is not None and \
                    isinstance(rule, WorkerHeartbeatMissed):
                rule.miss_after_s = heartbeat_miss_s
            if skew_threshold is not None and \
                    isinstance(rule, ShuffleSkew):
                rule.threshold = skew_threshold
            if nnz_imbalance is not None and \
                    isinstance(rule, NnzImbalance):
                rule.threshold = nnz_imbalance

    def subscribe(self, sink) -> None:
        """``sink(record_dict)`` is called for every emitted event."""
        with self._lock:
            self._sinks.append(sink)

    def unsubscribe(self, sink) -> None:
        with self._lock:
            if sink in self._sinks:
                self._sinks.remove(sink)

    def emit(self, rule: str, severity: str, message: str,
             dedup_key: str = None, **attrs) -> HealthEvent:
        """Record one event (fault paths call this directly).

        ``dedup_key`` marks the condition active so the periodic rule
        evaluation does not immediately re-emit the same violation.
        """
        event = HealthEvent(time.time(), rule, severity, message, attrs)
        with self._lock:
            self._events.append(event)
            if dedup_key is not None:
                self._active.add(dedup_key)
            sinks = list(self._sinks)
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.event(rule, "health", severity=severity,
                              message=message, **attrs)
        record = dict(event.as_dict(), type="health")
        for sink in sinks:
            try:
                sink(record)
            except Exception:  # pragma: no cover - sink must not kill us
                pass
        return event

    def evaluate(self, sample, store, context) -> list:
        """Run every rule against one sample; returns new events."""
        current = set()
        emitted = []
        for rule in self.rules:
            try:
                violations = rule.check(sample, store, context)
            except Exception:  # pragma: no cover - rule must not kill us
                continue
            for key, message, attrs in violations:
                current.add(key)
                with self._lock:
                    already = key in self._active
                if not already:
                    emitted.append(self.emit(rule.name, rule.severity,
                                             message, dedup_key=key,
                                             **attrs))
        with self._lock:
            # keep fault-path keys (not produced by any rule this tick)
            # active only while their rule still reports them; direct
            # emits use rule-shaped keys, so this clears recovered ones
            rule_names = tuple(rule.name for rule in self.rules)
            cleared = {key for key in self._active
                       if key.startswith(rule_names) and
                       key not in current}
            self._active -= cleared
        return emitted

    def evaluate_now(self, context) -> list:
        """Evaluate the rules against a fresh gauge snapshot.

        The telemetry-off path behind ``ClusterContext.health()``: no
        sampler means no periodic evaluation, so without this a
        fault-path condition (e.g. a crashed worker's missed
        heartbeat) would stay active — and the status ``warn`` —
        forever, even after the pool respawned. Rules that need the
        time-series store (spill rate) skip when it is absent.
        """
        return self.evaluate(collect_sample(context), None, context)

    def events(self) -> list:
        with self._lock:
            return list(self._events)

    def active_count(self) -> int:
        with self._lock:
            return len(self._active)

    def status(self) -> str:
        return "warn" if self.active_count() else "ok"

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self._active.clear()


class HealthReport:
    """The printable answer to ``ClusterContext.health()``."""

    def __init__(self, status: str, events, sampled: int,
                 interval_s=None):
        self.status = status
        self.events = list(events)
        self.sampled = sampled
        self.interval_s = interval_s

    def as_dict(self) -> dict:
        return {"status": self.status,
                "events": [event.as_dict() for event in self.events],
                "samples": self.sampled,
                "interval_s": self.interval_s}

    def render(self) -> str:
        lines = [f"Health: {self.status.upper()}  "
                 f"({self.sampled} samples"
                 + (f", {self.interval_s:g}s interval"
                    if self.interval_s else "")
                 + f", {len(self.events)} events)"]
        for event in self.events[-10:]:
            age = time.time() - event.t
            lines.append(f"  [{event.severity:<7}] {event.rule:<24} "
                         f"{age:6.1f}s ago  {event.message}")
        if not self.events:
            lines.append("  (no health events)")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


# ----------------------------------------------------------------------
# the JSONL sink
# ----------------------------------------------------------------------

class TelemetrySink:
    """Rotating JSON-lines telemetry log for headless runs.

    One meta line, then one line per sample and per health event. When
    the live file passes ``rotate_bytes`` it is renamed to
    ``<path>.1`` (replacing any previous rotation) and a fresh file —
    with a fresh meta line — continues the stream, so disk usage is
    bounded at roughly twice the rotation size.
    """

    def __init__(self, path, meta: dict = None,
                 rotate_bytes: int = DEFAULT_ROTATE_BYTES):
        self.path = str(path)
        self.rotate_bytes = rotate_bytes
        self._meta = dict(meta or {})
        self._lock = threading.Lock()
        self._handle = None
        self._bytes = 0
        self._open()

    def _open(self) -> None:
        self._handle = open(self.path, "w", encoding="utf-8")
        meta = dict(self._meta, type="meta", format=TELEMETRY_FORMAT,
                    version=TELEMETRY_VERSION)
        line = json.dumps(meta) + "\n"
        self._handle.write(line)
        self._bytes = len(line)

    def write(self, record: dict) -> None:
        line = json.dumps(record) + "\n"
        with self._lock:
            if self._handle is None:
                return
            if self._bytes + len(line) > self.rotate_bytes:
                self._handle.close()
                os.replace(self.path, self.path + ".1")
                self._open()
            self._handle.write(line)
            self._handle.flush()
            self._bytes += len(line)

    def flush(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
                self._handle.close()
                self._handle = None


# ----------------------------------------------------------------------
# the sampler
# ----------------------------------------------------------------------

_LIVE_SAMPLERS = weakref.WeakSet()
_LIVE_SERVERS = weakref.WeakSet()


def collect_sample(context) -> dict:
    """One read-only snapshot of every subsystem gauge on ``context``.

    Shared by the sampler's periodic tick and the on-demand rule
    evaluation behind ``ClusterContext.health()`` (which must work
    with telemetry off, where no sampler exists).
    """
    now = time.time()
    gauges = {}
    cache = getattr(context, "cache", None)
    if cache is not None:
        for name, value in cache.gauges().items():
            gauges[f"cache.{name}"] = value
    registry = getattr(context, "shm_registry", None)
    if registry is not None:
        for name, value in registry.gauges().items():
            gauges[f"shm.{name}"] = value
    pool = getattr(context, "executor_pool", None)
    if pool is not None:
        for name, value in pool.gauges().items():
            # the pool carries a few gauges it maintains on behalf of
            # other subsystems (the scheduler's stage-occupancy pair);
            # those arrive pre-namespaced and keep their own prefix
            gauges[name if "." in name else f"pool.{name}"] = value
    nnz_stats = getattr(context, "nnz_stats", None)
    if nnz_stats is not None:
        for name, value in nnz_stats.gauges().items():
            gauges[f"nnz.{name}"] = value
    heartbeats = getattr(context, "worker_heartbeats", None)
    workers = {}
    if heartbeats is not None:
        heartbeats.reap_dead()
        workers = {str(pid): row
                   for pid, row in heartbeats.rows().items()}
        gauges["workers.known"] = heartbeats.known_count()
        gauges["workers.alive"] = heartbeats.alive_count()
    return {
        "t": now,
        "up_s": 0.0,
        "gauges": gauges,
        "counters": context.metrics.snapshot().as_dict(),
        "workers": workers,
    }


class TelemetrySampler:
    """The background gauge sampler owned by a ``ClusterContext``.

    Holds its context by *weak* reference: the daemon thread can never
    keep a dropped context alive, and exits on its own once the context
    is collected. ``stop()`` takes a final sample first so short-lived
    contexts still record at least one tick.
    """

    def __init__(self, context, interval: float = DEFAULT_INTERVAL_S,
                 capacity: int = DEFAULT_CAPACITY, sink_path=None,
                 rotate_bytes: int = DEFAULT_ROTATE_BYTES):
        if interval <= 0:
            raise ValueError("telemetry interval must be positive")
        self.interval = interval
        self.store = TimeSeriesStore(capacity=capacity)
        self.started_at = time.time()
        self._context_ref = weakref.ref(context)
        self._stop = threading.Event()
        self._thread = None
        self._lock = threading.Lock()
        self.meta = {
            "backend": getattr(context, "backend", "thread"),
            "num_executors": getattr(context, "num_executors", None),
            "interval_s": interval,
            "started_at": self.started_at,
            "pid": os.getpid(),
        }
        self.sink = None
        if sink_path is not None:
            self.open_sink(sink_path, rotate_bytes=rotate_bytes)
        _LIVE_SAMPLERS.add(self)

    # -- sink -------------------------------------------------------------

    def open_sink(self, path,
                  rotate_bytes: int = DEFAULT_ROTATE_BYTES) -> None:
        """Mirror every sample and health event to a rotating JSONL."""
        self.close_sink()
        self.sink = TelemetrySink(path, meta=self.meta,
                                  rotate_bytes=rotate_bytes)
        context = self._context_ref()
        if context is not None and \
                getattr(context, "health_monitor", None) is not None:
            context.health_monitor.subscribe(self.sink.write)

    def close_sink(self) -> None:
        sink = self.sink
        if sink is None:
            return
        self.sink = None
        context = self._context_ref()
        if context is not None and \
                getattr(context, "health_monitor", None) is not None:
            context.health_monitor.unsubscribe(sink.write)
        sink.close()

    # -- lifecycle --------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        with self._lock:
            if self._thread is not None:
                return
            self._stop.clear()
            self.sample_once()
            self._thread = threading.Thread(
                target=self._loop, name="repro-telemetry", daemon=True)
            self._thread.start()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            if self._context_ref() is None:
                break
            try:
                self.sample_once()
            except Exception:  # pragma: no cover - sampling must not die
                pass

    def stop(self, final_sample: bool = True) -> None:
        """Stop the thread, take a last sample, flush and close the sink."""
        with self._lock:
            thread = self._thread
            self._thread = None
            self._stop.set()
        if thread is not None:
            thread.join(timeout=5.0)
        if final_sample and self._context_ref() is not None:
            try:
                self.sample_once()
            except Exception:  # pragma: no cover
                pass
        self.close_sink()

    # -- sampling ---------------------------------------------------------

    def sample_once(self):
        """Collect one sample; returns it (None once the context died)."""
        context = self._context_ref()
        if context is None:
            return None
        sample = collect_sample(context)
        sample["up_s"] = sample["t"] - self.started_at
        self.store.record(sample)
        sink = self.sink
        if sink is not None:
            sink.write(dict(sample, type="sample"))
        monitor = getattr(context, "health_monitor", None)
        if monitor is not None:
            monitor.evaluate(sample, self.store, context)
        return sample

    # -- snapshots --------------------------------------------------------

    def snapshot(self, series_window_s: float = None) -> dict:
        """The JSON snapshot served at ``/telemetry.json``."""
        context = self._context_ref()
        monitor = getattr(context, "health_monitor", None) \
            if context is not None else None
        sample = self.store.last_sample() or {}
        return {
            "format": TELEMETRY_FORMAT,
            "version": TELEMETRY_VERSION,
            "meta": dict(self.meta),
            "t": sample.get("t"),
            "up_s": sample.get("up_s"),
            "gauges": dict(sample.get("gauges", {})),
            "counters": dict(sample.get("counters", {})),
            "workers": {pid: dict(row) for pid, row
                        in sample.get("workers", {}).items()},
            "series": {name: [[t, value] for t, value in
                              self.store.series(
                                  name, window_s=series_window_s)]
                       for name in self.store.names()},
            "num_samples": self.store.num_samples(),
            "health": {
                "status": monitor.status() if monitor else "ok",
                "events": [event.as_dict() for event in
                           (monitor.events() if monitor else ())],
            },
        }


def snapshot_from_records(records) -> dict:
    """Rebuild a :meth:`TelemetrySampler.snapshot`-shaped dict from the
    JSONL records a :class:`TelemetrySink` wrote (the ``repro top``
    replay path)."""
    store = TimeSeriesStore()
    meta = {}
    events = []
    for record in records:
        kind = record.get("type")
        if kind == "meta":
            meta = {key: value for key, value in record.items()
                    if key not in ("type", "format", "version")}
        elif kind == "sample":
            store.record(record)
        elif kind == "health":
            events.append({key: value for key, value in record.items()
                           if key != "type"})
    sample = store.last_sample() or {}
    return {
        "format": TELEMETRY_FORMAT,
        "version": TELEMETRY_VERSION,
        "meta": meta,
        "t": sample.get("t"),
        "up_s": sample.get("up_s"),
        "gauges": dict(sample.get("gauges", {})),
        "counters": dict(sample.get("counters", {})),
        "workers": {pid: dict(row) for pid, row
                    in sample.get("workers", {}).items()},
        "series": {name: [[t, value] for t, value in store.series(name)]
                   for name in store.names()},
        "num_samples": store.num_samples(),
        "health": {"status": "warn" if events else "ok",
                   "events": events},
    }


def load_telemetry_jsonl(path) -> dict:
    """Parse a recorded telemetry JSONL into a snapshot dict."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    if records and records[0].get("type") == "meta" and \
            records[0].get("format") not in (None, TELEMETRY_FORMAT):
        raise ValueError(
            f"{path}: not a {TELEMETRY_FORMAT} log "
            f"(format={records[0].get('format')!r})")
    return snapshot_from_records(records)


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

def _format_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return f"{float(value):.10g}"


def prometheus_text(snapshot: dict, prefix: str = "spangle") -> str:
    """Render a snapshot in Prometheus text exposition format 0.0.4.

    Engine counters become ``<prefix>_<name>_total`` counters, gauges
    become ``<prefix>_<dotted_name_with_underscores>`` gauges, and
    per-worker rows become labelled series
    (``<prefix>_worker_alive{pid="..."}``).
    """
    lines = []

    def emit(name, mtype, samples, help_text=None):
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {mtype}")
        for labels, value in samples:
            label_text = ""
            if labels:
                inner = ",".join(f'{key}="{val}"'
                                 for key, val in labels.items())
                label_text = "{" + inner + "}"
            lines.append(f"{name}{label_text} {_format_value(value)}")

    for name in COUNTER_FIELDS:
        value = snapshot.get("counters", {}).get(name)
        if value is None:
            continue
        emit(f"{prefix}_{name}_total", "counter", [({}, value)],
             help_text=f"engine counter {name}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        metric = f"{prefix}_{name.replace('.', '_')}"
        emit(metric, "gauge", [({}, value)])
    workers = snapshot.get("workers", {})
    if workers:
        rows = sorted(workers.items())
        emit(f"{prefix}_worker_alive", "gauge",
             [({"pid": pid}, 1 if row.get("alive") else 0)
              for pid, row in rows],
             help_text="1 while the worker process responds")
        emit(f"{prefix}_worker_tasks_total", "counter",
             [({"pid": pid}, row.get("tasks", 0)) for pid, row in rows])
        latencies = [({"pid": pid}, row["last_task_s"])
                     for pid, row in rows
                     if row.get("last_task_s") is not None]
        if latencies:
            emit(f"{prefix}_worker_last_task_seconds", "gauge",
                 latencies)
    health = snapshot.get("health", {})
    emit(f"{prefix}_health_ok", "gauge",
         [({}, 1 if health.get("status", "ok") == "ok" else 0)],
         help_text="1 while no health rule is in violation")
    emit(f"{prefix}_health_events_total", "counter",
         [({}, len(health.get("events", ())))])
    if snapshot.get("up_s") is not None:
        emit(f"{prefix}_up_seconds", "gauge", [({}, snapshot["up_s"])])
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# the HTTP exporter
# ----------------------------------------------------------------------

class TelemetryServer:
    """A tiny stdlib HTTP thread serving the pull-based exporters.

    Routes: ``/metrics`` (Prometheus text), ``/telemetry.json`` (full
    JSON snapshot, also at ``/``), ``/health`` (health report JSON).
    Binds loopback by default; ``port=0`` picks a free port (read it
    back from :attr:`port`).
    """

    def __init__(self, sampler: TelemetrySampler, port: int = 0,
                 host: str = "127.0.0.1"):
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        sampler_ref = weakref.ref(sampler)

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args):  # noqa: ARG002 - silence
                pass

            def _send(self, body: str, content_type: str,
                      code: int = 200) -> None:
                payload = body.encode("utf-8")
                self.send_response(code)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def do_GET(self):  # noqa: N802 - http.server API
                live = sampler_ref()
                if live is None:
                    self._send("telemetry sampler is gone\n",
                               "text/plain", code=503)
                    return
                path = self.path.split("?", 1)[0]
                if path == "/metrics":
                    self._send(prometheus_text(live.snapshot()),
                               "text/plain; version=0.0.4")
                elif path in ("/", "/telemetry.json"):
                    self._send(json.dumps(live.snapshot()),
                               "application/json")
                elif path == "/health":
                    self._send(
                        json.dumps(live.snapshot()["health"]),
                        "application/json")
                else:
                    self._send("not found\n", "text/plain", code=404)

        self.sampler = sampler
        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-telemetry-http", daemon=True)
        self._thread.start()
        _LIVE_SERVERS.add(self)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stop(self) -> None:
        httpd = self._httpd
        if httpd is None:
            return
        self._httpd = None
        httpd.shutdown()
        httpd.server_close()
        self._thread.join(timeout=5.0)


def _shutdown_at_exit() -> None:  # pragma: no cover - interpreter exit
    """Mirror the shm registry's atexit sweep: no sampler thread, HTTP
    server, or open sink outlives the interpreter."""
    for server in list(_LIVE_SERVERS):
        try:
            server.stop()
        except Exception:
            pass
    for sampler in list(_LIVE_SAMPLERS):
        try:
            sampler.stop(final_sample=False)
        except Exception:
            pass


atexit.register(_shutdown_at_exit)
