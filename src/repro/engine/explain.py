"""Query-plan explanation: DAG → stages, the way Spark's UI shows them.

``explain(rdd)`` renders the stage plan a DAGScheduler would build:
narrow transformations pipeline inside a stage; every wide dependency
(a shuffle that actually moves data) starts a new one. Narrowed
shuffles — co-partitioned joins, the local-join matmul — stay inside
their stage, which makes the effect of Spangle's partitioning
optimizations directly visible in the plan.

Chunk-kernel fusion (:mod:`repro.core.plan`) is visible here too: a
compiled ChunkPlan appears as a single RDD named after its pipeline —
``fused[filter→map→mask_and]`` — where the eager path would show one
RDD hop per operator. :func:`fused_pipelines` extracts those labels.

This module renders the *physical* half of ``ArrayRDD.explain()``: the
logical tree and the rewrites applied to it live in
:mod:`repro.core.logical` / :mod:`repro.core.optimizer`; what they
lower to is the RDD graph staged here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.rdd import RDD, CoGroupedRDD, ShuffledRDD

#: engine counters these reports surface beyond the ledger lines —
#: every name must exist in metrics.COUNTER_FIELDS (drift-guarded by
#: tests/engine/test_metrics.py) so the reports, the telemetry plane,
#: and the registry agree on one source of truth
REPORT_COUNTERS = (
    "optimizer_rules_fired",
    "optimizer_chunks_pruned",
    "worker_respawns",
    "shm_bytes_mapped",
)


@dataclass
class Stage:
    """One pipelined stage: the RDDs it computes and its inputs."""

    stage_id: int
    rdds: list = field(default_factory=list)
    parent_stages: list = field(default_factory=list)

    @property
    def boundary(self) -> str:
        return self.rdds[0].name if self.rdds else "?"


def _wide_parents(rdd: RDD):
    """(narrow_parents, wide_parents) of one RDD."""
    if rdd.is_checkpointed:
        return [], []
    if isinstance(rdd, ShuffledRDD):
        parent = rdd.dependencies[0]
        if rdd.is_narrow:
            return [parent], []
        return [], [parent]
    if isinstance(rdd, CoGroupedRDD):
        narrow, wide = [], []
        for parent in rdd.dependencies:
            if rdd._parent_is_narrow(parent):
                narrow.append(parent)
            else:
                wide.append(parent)
        return narrow, wide
    return list(rdd.dependencies), []


def stage_plan(rdd: RDD) -> list:
    """Stages in execution order (result stage last)."""
    stages = []
    stage_of = {}

    def build(node: RDD) -> Stage:
        if node.rdd_id in stage_of:
            return stage_of[node.rdd_id]
        stage = Stage(stage_id=0)
        stage_of[node.rdd_id] = stage
        frontier = [node]
        while frontier:
            current = frontier.pop()
            stage.rdds.append(current)
            narrow, wide = _wide_parents(current)
            for parent in narrow:
                if parent.rdd_id not in stage_of:
                    stage_of[parent.rdd_id] = stage
                    frontier.append(parent)
            for parent in wide:
                parent_stage = build(parent)
                if parent_stage not in stage.parent_stages:
                    stage.parent_stages.append(parent_stage)
        stages.append(stage)
        return stage

    build(rdd)
    for index, stage in enumerate(stages):
        stage.stage_id = index
    return stages


def count_stages(rdd: RDD) -> int:
    return len(stage_plan(rdd))


def fused_pipelines(rdd: RDD) -> list:
    """``fused[...]`` pipeline labels in the plan, execution-stage order.

    Each label names one compiled
    :class:`~repro.core.plan.ChunkPlan` — a chain of chunk-local
    kernels the scheduler runs as a single ``map_partitions`` pass.
    """
    labels = []
    for stage in stage_plan(rdd):
        for node in reversed(stage.rdds):
            if node.name.startswith("fused["):
                labels.append(node.name)
    return labels


def stage_breakdown(stage_timings, task_times=None,
                    counters=None) -> str:
    """A printable table of executed-stage wall times.

    ``stage_timings`` is a sequence of
    :class:`~repro.engine.metrics.StageTiming` — typically
    ``MetricsRegistry.stage_timings`` or the ``stage_timings`` captured
    by ``ClusterContext.measure``. When ``task_times`` is given, a
    task-duration histogram line is appended. When ``counters`` is
    given (a :class:`~repro.engine.metrics.MetricsSnapshot` or its
    ``as_dict()``), the :data:`REPORT_COUNTERS` that moved — optimizer
    rewrites, worker respawns, shm traffic — are appended too.
    """
    if not stage_timings:
        return "(no stages executed)"
    rows = []
    total = sum(timing.wall_s for timing in stage_timings)
    for index, timing in enumerate(stage_timings):
        mean_ms = timing.wall_s / max(timing.num_tasks, 1) * 1e3
        share = timing.wall_s / total * 100 if total > 0 else 0.0
        rows.append(
            f"  stage {index:<3} {timing.kind:<10} {timing.label:<20} "
            f"{timing.wall_s * 1e3:9.2f} ms  {timing.num_tasks:4d} tasks  "
            f"{mean_ms:8.3f} ms/task  {share:5.1f}%")
    lines = ["Stage breakdown"]
    lines.extend(rows)
    lines.append(f"  total stage wall time: {total * 1e3:.2f} ms")
    if task_times:
        from repro.engine.metrics import task_time_histogram

        histogram = task_time_histogram(list(task_times), bins=8)
        buckets = "  ".join(
            f"[{lo * 1e3:.2f}-{hi * 1e3:.2f}ms]x{count}"
            for lo, hi, count in histogram if count)
        lines.append(f"  task times: {buckets}")
    if counters is not None:
        if not isinstance(counters, dict):
            counters = counters.as_dict()
        moved = [(name, counters.get(name, 0))
                 for name in REPORT_COUNTERS if counters.get(name, 0)]
        if moved:
            lines.append("  counters: " + "   ".join(
                f"{name}: {value:,}" for name, value in moved))
    return "\n".join(lines)


def memory_report(context) -> str:
    """A printable report of the context's memory tier.

    One line each for the cache ledger (resident bytes against the
    budget, block counts), the spill tier (blocks on disk and their
    encoded bytes), and the adaptive-memory counters — evictions,
    spills, reloads, and density repacking (``chunks_repacked`` /
    ``repack_bytes_saved``) — plus the logical-optimizer counters
    (``optimizer_rules_fired`` / ``optimizer_chunks_pruned``), so this
    report and the telemetry gauges read the same
    :data:`REPORT_COUNTERS`. Contexts with a shared-memory plane (the
    process backend's block-exchange tier) add a line accounting for
    shm residency: live segments and their bytes, segments created and
    bytes mapped over the context's lifetime, and worker respawns.
    """
    cache = context.cache
    counters = context.metrics.snapshot()
    budget = cache.budget_bytes
    budget_text = f"{budget:,} B" if budget is not None else "unbounded"
    lines = [
        "Memory report",
        f"  policy: {cache.eviction_policy}   budget: {budget_text}",
        f"  resident: {cache.used_bytes():,} B in "
        f"{cache.block_count()} blocks",
        f"  spilled:  {cache.spilled_bytes():,} B in "
        f"{cache.spilled_count()} blocks",
        f"  evictions: {counters.cache_evictions}   "
        f"spills: {counters.cache_spills}   "
        f"reloads: {counters.cache_reloads}",
        f"  chunks_repacked: {counters.chunks_repacked}   "
        f"repack_bytes_saved: {counters.repack_bytes_saved:,} B",
        f"  optimizer_rules_fired: {counters.optimizer_rules_fired}   "
        f"optimizer_chunks_pruned: {counters.optimizer_chunks_pruned}",
    ]
    registry = getattr(context, "shm_registry", None)
    if registry is not None:
        backend = getattr(context, "backend", "thread")
        lines.append(
            f"  backend: {backend}   shm resident: "
            f"{registry.resident_bytes():,} B in "
            f"{registry.segment_count()} segments")
        lines.append(
            f"  shm_segments_created: {counters.shm_segments_created}   "
            f"shm_bytes_mapped: {counters.shm_bytes_mapped:,} B   "
            f"worker_respawns: {counters.worker_respawns}")
    return "\n".join(lines)


def modeled_schedule(rdd: RDD) -> dict:
    """Modeled barrier vs pipelined job time for ``rdd``'s stage plan.

    Each stage is priced as its task-launch overhead
    (``cost_model.shuffle_seconds(0, num_tasks)`` — data volume is
    unknown before execution, launch overhead is not); the barrier
    scheduler pays the stages in sequence
    (:meth:`~repro.engine.costmodel.ClusterCostModel.serial_job_seconds`)
    while the pipelined scheduler pays the critical path through the
    stage DAG
    (:meth:`~repro.engine.costmodel.ClusterCostModel.pipelined_job_seconds`).
    Returns ``{"serial_s", "pipelined_s", "overlap"}``.
    """
    cost_model = rdd.context.cost_model
    stages = stage_plan(rdd)
    stage_seconds = {}
    deps = {}
    for stage in stages:
        num_tasks = stage.rdds[0].num_partitions if stage.rdds else 0
        stage_seconds[stage.stage_id] = cost_model.shuffle_seconds(
            0, num_tasks)
        deps[stage.stage_id] = [parent.stage_id
                                for parent in stage.parent_stages]
    serial_s = cost_model.serial_job_seconds(stage_seconds)
    pipelined_s = cost_model.pipelined_job_seconds(stage_seconds, deps)
    return {
        "serial_s": serial_s,
        "pipelined_s": pipelined_s,
        "overlap": serial_s / pipelined_s if pipelined_s > 0 else 1.0,
    }


def explain(rdd: RDD) -> str:
    """A printable stage plan, with the modeled schedule appended."""
    lines = []
    for stage in stage_plan(rdd):
        parents = ", ".join(
            f"stage {p.stage_id}" for p in stage.parent_stages)
        dependency = f"  <- shuffle from {parents}" if parents else ""
        lines.append(f"Stage {stage.stage_id}{dependency}")
        for node in reversed(stage.rdds):
            marker = " [cached]" if node._cached_indices or (
                node.storage_level.value != "none") else ""
            checkpoint = " [checkpoint]" if node.is_checkpointed else ""
            lines.append(
                f"  ({node.rdd_id}) {node.name}"
                f"[{node.num_partitions}]{marker}{checkpoint}")
    schedule = modeled_schedule(rdd)
    lines.append(
        f"Modeled schedule: barrier {schedule['serial_s'] * 1e3:.1f} ms, "
        f"pipelined {schedule['pipelined_s'] * 1e3:.1f} ms critical path "
        f"({schedule['overlap']:.2f}x overlap)")
    return "\n".join(lines)
