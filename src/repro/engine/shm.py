"""Shared-memory data plane for the process execution backend.

Worker processes exchange shuffle blocks and cached partitions through
``multiprocessing.shared_memory`` segments instead of pickling payloads
through the task-result pipe. The encoding is pickle protocol 5 with
out-of-band buffers: an object's pickle *head* (structure, scalars) and
its flat payload buffers (numpy arrays — the columnar RecordBatch key
and value columns, chunk payloads) are laid out side by side in one
segment, and the consumer rebuilds the object over read-only
``memoryview`` slices of the mapping — the buffers themselves are never
copied or re-serialized (the zero-copy exchange Sparkle builds its
large-memory story on).

Three handle types travel between processes:

- :class:`ShmRef` — locator of one pickled object inside a segment
  (head span + buffer spans). Shuffle map tasks replace packed
  ``BatchSegment``/``RecordBatch`` buckets with refs; the reduce side
  resolves them lazily via :func:`load_ref`.
- :class:`SpillFileHandle` — a cached block living in the spill tier;
  the worker decodes the spill file itself so the disk-read metering
  matches the serial path byte for byte.
- :class:`InlineBlockHandle` — small or shm-refusing blocks, shipped by
  value inside the task payload.

Lifecycle is owned by a driver-side :class:`SharedSegmentRegistry`:
worker-created segments are *adopted* into it from task replies,
driver-side block exports are created by it, and ``shutdown()`` unlinks
everything it knows about plus any same-prefix stragglers left in
``/dev/shm`` by workers that died mid-task. An atexit hook covers
contexts that are never shut down explicitly.

POSIX notes baked in below: ``resource_tracker`` would register a
segment on *attach* as well as on create, and its per-name cache is a
set — concurrent attach/unregister pairs from different processes can
interleave into a double-unregister that makes the tracker print
KeyError tracebacks. Our names are therefore filtered out of tracker
traffic entirely (the registry is the sole owner). And a mapping with
exported buffer views cannot ``close()`` — the atexit path neutralizes
the ``SharedMemory`` object instead and lets the OS reclaim the
mapping at process exit.
"""

from __future__ import annotations

import atexit
import itertools
import os
import pickle
import threading
import weakref

from multiprocessing import shared_memory

try:  # not available on some platforms (no-op there)
    from multiprocessing import resource_tracker
except ImportError:  # pragma: no cover
    resource_tracker = None

#: buffer alignment inside a segment; 64 covers every numpy dtype and
#: keeps vector loads on cache-line boundaries
_ALIGN = 64

#: blocks smaller than this ship inline with the task payload — a
#: segment per tiny block costs more than pickling it
SHM_BLOCK_MIN_BYTES = 4096


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


#: every segment name we create starts with this mark (registry
#: prefixes are ``spgl-<pid>-<seq>-``); the tracker filter keys on it
_NAME_MARK = "spgl-"


def _is_engine_segment(name) -> bool:
    return isinstance(name, str) and name.lstrip("/").startswith(_NAME_MARK)


def _install_tracker_filter() -> None:
    """Keep our segment names out of ``resource_tracker`` traffic.

    The tracker registers shared memory on create *and* on attach, and
    its cache is a per-name *set*: when two processes each send a
    balanced register/unregister pair for the same name, the pipe can
    deliver them as R,R,U,U — the second unregister then KeyErrors in
    the tracker process. Unregistering after the fact cannot fix that
    ordering, so segments under our mark are simply never reported; the
    driver registry is their sole owner and unlinks them itself.

    Installed at import in every process that touches this module
    (driver and forked workers alike).
    """
    if resource_tracker is None or \
            getattr(resource_tracker, "_spgl_filtered", False):
        return
    base_register = resource_tracker.register
    base_unregister = resource_tracker.unregister

    def register(name, rtype):
        if rtype == "shared_memory" and _is_engine_segment(name):
            return
        base_register(name, rtype)

    def unregister(name, rtype):
        if rtype == "shared_memory" and _is_engine_segment(name):
            return
        base_unregister(name, rtype)

    resource_tracker.register = register
    resource_tracker.unregister = unregister
    resource_tracker._spgl_filtered = True


_install_tracker_filter()


# ----------------------------------------------------------------------
# handles
# ----------------------------------------------------------------------

class ShmRef:
    """Locator of one pickled object inside a shared-memory segment."""

    __slots__ = ("segment", "head", "buffers", "nbytes")

    def __init__(self, segment: str, head, buffers, nbytes: int):
        self.segment = segment      # segment name
        self.head = head            # (offset, length) of the pickle head
        self.buffers = buffers      # ((offset, length), ...) per buffer
        self.nbytes = nbytes        # payload bytes of this object

    def __repr__(self) -> str:
        return (f"<ShmRef seg={self.segment} nbytes={self.nbytes} "
                f"buffers={len(self.buffers)}>")


class SpillFileHandle:
    """A cached block served from the driver's spill tier."""

    __slots__ = ("path", "nbytes")

    def __init__(self, path: str, nbytes: int):
        self.path = path
        self.nbytes = nbytes


class InlineBlockHandle:
    """A cached block shipped by value inside the task payload."""

    __slots__ = ("records",)

    def __init__(self, records):
        self.records = records


# ----------------------------------------------------------------------
# encoding: objects -> one segment
# ----------------------------------------------------------------------

def _encode(obj):
    """``(head_bytes, raw_buffers)`` — protocol-5 out-of-band pickle."""
    picklebuffers = []
    head = pickle.dumps(obj, protocol=5,
                        buffer_callback=picklebuffers.append)
    return head, [pb.raw() for pb in picklebuffers]


class SegmentBuilder:
    """Accumulates objects, then lays them out in one segment."""

    def __init__(self):
        self._pieces = []    # (offset, bytes-like)
        self._entries = []   # (head_span, buffer_spans, payload_bytes)
        self._size = 0

    def _append(self, piece) -> tuple:
        length = piece.nbytes if isinstance(piece, memoryview) \
            else len(piece)
        offset = self._size
        self._pieces.append((offset, piece))
        self._size = _align(offset + length)
        return offset, length

    def add(self, obj) -> int:
        """Stage ``obj``; returns its entry index."""
        head, raws = _encode(obj)
        head_span = self._append(head)
        buffer_spans = tuple(self._append(raw) for raw in raws)
        payload = head_span[1] + sum(span[1] for span in buffer_spans)
        self._entries.append((head_span, buffer_spans, payload))
        return len(self._entries) - 1

    @property
    def nbytes(self) -> int:
        return self._size

    def write(self, buf) -> None:
        for offset, piece in self._pieces:
            length = piece.nbytes if isinstance(piece, memoryview) \
                else len(piece)
            buf[offset:offset + length] = piece

    def refs(self, segment_name: str) -> list:
        return [ShmRef(segment_name, head, buffers, payload)
                for head, buffers, payload in self._entries]


#: distinguishes segments created by the same forked process image
_CREATE_SEQ = itertools.count(1)


def write_segment(prefix: str, builder: SegmentBuilder, metrics=None):
    """Create a segment under ``prefix`` holding ``builder``'s layout.

    Returns ``(name, total_bytes, refs)``. The creating process closes
    its mapping immediately — readers attach by name; the driver
    registry owns the unlink (the resource tracker never hears about
    these names, see :func:`_install_tracker_filter`).
    """
    pid = os.getpid()
    while True:
        name = f"{prefix}{pid:x}-{next(_CREATE_SEQ):x}"
        try:
            segment = shared_memory.SharedMemory(
                name=name, create=True, size=max(builder.nbytes, 1))
            break
        except FileExistsError:  # pragma: no cover - seq makes it rare
            continue
    try:
        builder.write(segment.buf)
    finally:
        segment.close()
    if metrics is not None:
        metrics.record_shm_segment()
    return name, builder.nbytes, builder.refs(name)


# ----------------------------------------------------------------------
# decoding: per-process attachment cache
# ----------------------------------------------------------------------

#: name -> SharedMemory; mappings stay open for the process lifetime so
#: zero-copy views into them remain valid however long results live
_ATTACHED = {}
_ATTACH_LOCK = threading.Lock()


def _attach(name: str, metrics=None):
    with _ATTACH_LOCK:
        segment = _ATTACHED.get(name)
        if segment is None:
            segment = shared_memory.SharedMemory(name=name)
            _ATTACHED[name] = segment
            if metrics is not None:
                metrics.record_shm_mapped(segment.size)
        return segment


def load_ref(ref: ShmRef, metrics=None):
    """Rebuild the object ``ref`` points at, zero-copy.

    The pickle head is copied (it is tiny); the payload buffers are
    read-only memoryview slices of the mapping, so numpy columns alias
    the shared segment directly.
    """
    segment = _attach(ref.segment, metrics)
    buf = segment.buf
    head_off, head_len = ref.head
    head = bytes(buf[head_off:head_off + head_len])
    views = [buf[off:off + length].toreadonly()
             for off, length in ref.buffers]
    return pickle.loads(head, buffers=views)


def resolve_segment(segment, metrics=None):
    """Pass-through for inline buckets; loads :class:`ShmRef` ones."""
    if isinstance(segment, ShmRef):
        return load_ref(segment, metrics)
    return segment


def _release_attachments() -> None:
    """Close every cached mapping; neutralize ones with live views.

    A mapping whose buffer has exported views (decoded numpy columns
    still referenced) raises BufferError on close — for those the
    SharedMemory object is defused so its ``__del__`` no-ops and the OS
    reclaims the mapping at process exit.
    """
    with _ATTACH_LOCK:
        for segment in _ATTACHED.values():
            try:
                segment.close()
            except BufferError:
                segment._buf = None
                segment._mmap = None
        _ATTACHED.clear()


def _unlink_segment(name: str) -> None:
    """Unlink ``name`` whether or not this process has it mapped."""
    with _ATTACH_LOCK:
        cached = _ATTACHED.get(name)
    if cached is not None:
        try:
            cached.unlink()
        except FileNotFoundError:
            pass
        return
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return
    try:
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - racing cleanup
        pass
    segment.close()


def leaked_segments(prefix: str) -> list:
    """Names under ``/dev/shm`` starting with ``prefix`` (tests)."""
    base = "/dev/shm"
    if not os.path.isdir(base):  # pragma: no cover - non-Linux
        return []
    return sorted(name for name in os.listdir(base)
                  if name.startswith(prefix))


# ----------------------------------------------------------------------
# driver-side segment registry
# ----------------------------------------------------------------------

_REGISTRY_SEQ = itertools.count(1)
_LIVE_REGISTRIES = weakref.WeakSet()


class SharedSegmentRegistry:
    """Owns the lifecycle of every segment a context's jobs create.

    Worker-created shuffle segments are *adopted* from task replies;
    cached-block exports are created here directly (memoized per block
    identity, so repeated jobs over the same cached RDD reuse one
    segment). ``shutdown()`` unlinks all of it and sweeps the prefix
    for segments of workers that died before reporting.
    """

    def __init__(self, metrics=None):
        self.prefix = \
            f"{_NAME_MARK}{os.getpid():x}-{next(_REGISTRY_SEQ):x}-"
        self._metrics = metrics
        self._segments = {}        # name -> nbytes
        self._block_exports = {}   # (rdd_id, index) -> (data, handle)
        self._lock = threading.Lock()
        _LIVE_REGISTRIES.add(self)

    def adopt(self, name: str, nbytes: int) -> None:
        """Take ownership of a worker-created segment."""
        with self._lock:
            self._segments[name] = nbytes

    def export_block(self, key, records, size_hint: int = None):
        """A shippable handle for one cached in-memory block.

        Large blocks go to a shared segment (memoized on the block's
        object identity — a recomputed block re-exports and the stale
        segment is unlinked); small or shm-refusing ones ship inline.
        """
        with self._lock:
            memo = self._block_exports.get(key)
            if memo is not None and memo[0] is records:
                return memo[1]
        if size_hint is not None and size_hint < SHM_BLOCK_MIN_BYTES:
            return InlineBlockHandle(records)
        try:
            builder = SegmentBuilder()
            builder.add(records)
            name, nbytes, refs = write_segment(
                self.prefix, builder, self._metrics)
        except Exception:
            # unpicklable-for-shm or segment creation failure: the task
            # payload's own pickling decides the block's fate
            return InlineBlockHandle(records)
        handle = refs[0]
        stale = None
        with self._lock:
            self._segments[name] = nbytes
            memo = self._block_exports.get(key)
            if memo is not None:
                stale = memo[1]
            self._block_exports[key] = (records, handle)
        if isinstance(stale, ShmRef):
            self.release(stale.segment)
        return handle

    def release(self, name: str) -> None:
        """Unlink one segment (idempotent)."""
        with self._lock:
            self._segments.pop(name, None)
        _unlink_segment(name)

    def segment_count(self) -> int:
        with self._lock:
            return len(self._segments)

    def resident_bytes(self) -> int:
        with self._lock:
            return sum(self._segments.values())

    def gauges(self) -> dict:
        """Live-segment count and bytes in one lock (telemetry hook)."""
        with self._lock:
            return {
                "segments": len(self._segments),
                "resident_bytes": sum(self._segments.values()),
            }

    def shutdown(self) -> None:
        """Unlink every owned segment and sweep prefix stragglers.

        The registry stays usable: later jobs may create and adopt new
        segments (mirroring the executor pool's lazy restart)."""
        with self._lock:
            names = list(self._segments)
            self._segments.clear()
            self._block_exports.clear()
        for name in names:
            _unlink_segment(name)
        # segments created by workers that died before the driver could
        # adopt them share this registry's prefix — sweep them too
        base = "/dev/shm"
        if os.path.isdir(base):
            for fname in os.listdir(base):
                if fname.startswith(self.prefix):
                    try:
                        os.unlink(os.path.join(base, fname))
                    except OSError:  # pragma: no cover - racing cleanup
                        pass


def _cleanup_at_exit() -> None:  # pragma: no cover - interpreter exit
    for registry in list(_LIVE_REGISTRIES):
        try:
            registry.shutdown()
        except Exception:
            pass
    _release_attachments()


atexit.register(_cleanup_at_exit)
