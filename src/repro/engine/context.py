"""ClusterContext: the engine's entry point (Spark's SparkContext).

Owns the simulated cluster configuration (number of executors, default
parallelism), the block cache, the metrics registry, and job execution.
Jobs run serially by default — determinism first — with an optional thread
pool for workloads dominated by numpy kernels.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager

from repro.engine.costmodel import ClusterCostModel
from repro.engine.metrics import MetricsRegistry
from repro.engine.sizing import estimate_size
from repro.engine.rdd import GeneratedRDD, ParallelCollectionRDD, RDD
from repro.engine.storage import CacheManager
from repro.errors import EngineError, TaskFailure


class ClusterContext:
    """A simulated Spark cluster in one process.

    Parameters
    ----------
    num_executors:
        Size of the simulated cluster; used as the default parallelism and
        as the worker count when ``use_threads`` is on.
    default_parallelism:
        Default partition count for :meth:`parallelize`.
    cache_budget_bytes:
        Memory budget of the block cache (None = unbounded).
    use_threads:
        Execute tasks of a job concurrently with a thread pool. numpy
        kernels release the GIL, so chunk-heavy jobs do overlap.
    """

    def __init__(self, num_executors: int = 4, default_parallelism=None,
                 cache_budget_bytes=None, use_threads: bool = False,
                 cost_model: ClusterCostModel = None,
                 task_retries: int = 3):
        if num_executors <= 0:
            raise EngineError("num_executors must be positive")
        if task_retries < 0:
            raise EngineError("task_retries must be >= 0")
        self.num_executors = num_executors
        self.default_parallelism = default_parallelism or num_executors
        self.metrics = MetricsRegistry()
        self.cache = CacheManager(self.metrics,
                                  budget_bytes=cache_budget_bytes)
        self.use_threads = use_threads
        self.cost_model = cost_model or ClusterCostModel()
        self.task_retries = task_retries
        self._rdd_counter = 0

    def _next_rdd_id(self) -> int:
        self._rdd_counter += 1
        return self._rdd_counter

    # ------------------------------------------------------------------
    # RDD creation
    # ------------------------------------------------------------------

    def parallelize(self, data, num_partitions=None, partitioner=None) -> RDD:
        """Distribute a driver-side collection."""
        if num_partitions is None:
            num_partitions = self.default_parallelism
        return ParallelCollectionRDD(self, data, num_partitions,
                                     partitioner=partitioner)

    def generate(self, num_partitions: int, func, partitioner=None) -> RDD:
        """Create an RDD whose partition ``i`` is ``func(i)``.

        The generator runs inside tasks, so synthetic datasets larger than
        driver memory never exist as a single list.
        """
        return GeneratedRDD(self, num_partitions, func,
                            partitioner=partitioner)

    def empty_rdd(self) -> RDD:
        return self.parallelize([], num_partitions=1)

    # ------------------------------------------------------------------
    # broadcast and counters
    # ------------------------------------------------------------------

    def broadcast(self, value):
        """Ship a read-only value to every executor (metered).

        In-process the value is shared by reference; the network cost a
        cluster would pay — value size × executors — is recorded so the
        cost model charges for it.
        """
        from repro.engine.broadcast import Broadcast
        from repro.engine.sizing import estimate_size as _size

        nbytes = _size(value)
        self.metrics.record_broadcast(nbytes * self.num_executors)
        return Broadcast(value, nbytes)

    def counter(self, initial=0, name: str = None):
        """A driver-visible additive counter usable inside tasks."""
        from repro.engine.broadcast import CounterAccumulator

        return CounterAccumulator(initial, name)

    # ------------------------------------------------------------------
    # job execution
    # ------------------------------------------------------------------

    def run_job(self, rdd: RDD, partition_func) -> list:
        """Apply ``partition_func`` to every partition; return the results.

        Records one job, one result stage, and one task per partition
        (shuffle map stages record themselves as they materialize).
        """
        self.metrics.record_job()
        self.metrics.record_stage()
        indices = range(rdd.num_partitions)

        def run_one(index):
            # a task gets 1 + task_retries attempts, as Spark's
            # spark.task.maxFailures does; deterministic failures
            # exhaust the attempts and surface as a TaskFailure
            last_error = None
            for attempt in range(1 + self.task_retries):
                self.metrics.record_task()
                if attempt > 0:
                    self.metrics.record_task_retry()
                try:
                    result = partition_func(rdd.iterator(index))
                except Exception as exc:  # noqa: BLE001 - retried
                    last_error = exc
                    continue
                self.metrics.record_result(estimate_size(result))
                return result
            raise TaskFailure(index, last_error) from last_error

        if self.use_threads and rdd.num_partitions > 1:
            with ThreadPoolExecutor(max_workers=self.num_executors) as pool:
                return list(pool.map(run_one, indices))
        return [run_one(index) for index in indices]

    def run_partition(self, rdd: RDD, index: int) -> list:
        """Compute a single partition (used by ``take``/``lookup``)."""
        if not 0 <= index < rdd.num_partitions:
            raise EngineError(
                f"partition index {index} out of range for {rdd!r}"
            )
        self.metrics.record_job()
        self.metrics.record_stage()
        self.metrics.record_task()
        return rdd.iterator(index)

    # ------------------------------------------------------------------
    # fault injection and measurement helpers
    # ------------------------------------------------------------------

    def fail_partition(self, rdd: RDD, index: int) -> bool:
        """Simulate losing a cached partition of ``rdd``.

        Returns whether a cached block was present to lose. Subsequent
        access transparently recomputes from lineage.
        """
        return self.cache.drop_partition(rdd.rdd_id, index)

    @contextmanager
    def measure(self):
        """Measure wall time and metric deltas for a code block.

        Yields a mutable holder; on exit the holder carries ``wall_s``,
        ``delta`` (a :class:`MetricsSnapshot`) and ``report`` (the modeled
        :class:`CostReport`).
        """
        holder = _Measurement()
        before = self.metrics.snapshot()
        start = time.perf_counter()
        try:
            yield holder
        finally:
            holder.wall_s = time.perf_counter() - start
            holder.delta = self.metrics.snapshot() - before
            holder.report = self.cost_model.report(holder.wall_s,
                                                   holder.delta)


class _Measurement:
    """Result holder for :meth:`ClusterContext.measure`."""

    wall_s = 0.0
    delta = None
    report = None
