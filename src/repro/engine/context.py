"""ClusterContext: the engine's entry point (Spark's SparkContext).

Owns the simulated cluster configuration (number of executors, default
parallelism), the block cache, the metrics registry, and job execution.
Jobs run serially by default — determinism first — with an optional thread
pool for workloads dominated by numpy kernels.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from repro.engine.costmodel import ClusterCostModel
from repro.engine.metrics import MetricsRegistry
from repro.engine.rdd import GeneratedRDD, ParallelCollectionRDD, RDD
from repro.engine.scheduler import ExecutorPool, StageScheduler
from repro.engine.storage import CacheManager
from repro.engine.tracing import Tracer
from repro.errors import EngineError


class ClusterContext:
    """A simulated Spark cluster in one process.

    Parameters
    ----------
    num_executors:
        Size of the simulated cluster; used as the default parallelism and
        as the worker count when ``use_threads`` is on.
    default_parallelism:
        Default partition count for :meth:`parallelize`.
    cache_budget_bytes:
        Memory budget of the block cache (None = unbounded).
    use_threads:
        Execute tasks of a job concurrently with a thread pool. numpy
        kernels release the GIL, so chunk-heavy jobs do overlap.
    backend:
        ``"thread"`` (default) or ``"process"``. The process backend
        runs task bodies in forked worker processes — true multi-core
        parallelism for Python-heavy kernels — exchanging shuffle
        blocks and cached chunks through ``multiprocessing``
        shared-memory segments (:mod:`repro.engine.shm`). Tasks and
        their UDF closures must be picklable
        (:mod:`repro.engine.closure` ships lambdas by value). Implies
        parallel execution; ``use_threads`` is not required.
    eviction_policy:
        ``"lru"`` (default) or ``"cost"`` — how the block cache picks
        victims when over budget. The cost-aware policy prices each
        block's bring-back (spill reload vs lineage recompute) with
        this context's cost model and evicts the cheapest per byte.
    spill_dir:
        Directory for spilled blocks (default: a private temp dir,
        removed with the context).
    repack_on_admission:
        Re-run the chunk mode policy on each cached chunk's current
        density at admission, shrinking stale encodings. Off by
        default: it rewrites explicitly forced chunk modes.
    trace:
        Record a structured span tree for every job
        (:mod:`repro.engine.tracing`). Off by default; when off, the
        instrumentation is a no-op attribute check.
    telemetry:
        Start the continuous telemetry sampler
        (:mod:`repro.engine.telemetry`): a background daemon thread
        snapshotting counters, the cache ledger, shm residency, pool
        occupancy, and worker heartbeats into a bounded time-series
        store. Off by default — no thread, zero cost.
    telemetry_interval:
        Sampler period in seconds; setting it implies
        ``telemetry=True``. Default 1.0 when only ``telemetry=True``
        is given.
    telemetry_path:
        Mirror samples and health events to a rotating JSON-lines file
        (for headless runs; replayable with ``repro top``).
    """

    def __init__(self, num_executors: int = 4, default_parallelism=None,
                 cache_budget_bytes=None, use_threads: bool = False,
                 cost_model: ClusterCostModel = None,
                 task_retries: int = 3, trace: bool = False,
                 eviction_policy: str = "lru", spill_dir=None,
                 repack_on_admission: bool = False,
                 backend: str = "thread", telemetry: bool = False,
                 telemetry_interval=None, telemetry_path=None):
        if num_executors <= 0:
            raise EngineError("num_executors must be positive")
        if task_retries < 0:
            raise EngineError("task_retries must be >= 0")
        if backend not in ("thread", "process"):
            raise EngineError(
                f"unknown backend {backend!r}: expected 'thread' or "
                f"'process'")
        self.num_executors = num_executors
        self.default_parallelism = default_parallelism or num_executors
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(enabled=trace, num_executors=num_executors)
        self.cost_model = cost_model or ClusterCostModel()
        self.cache = CacheManager(self.metrics,
                                  budget_bytes=cache_budget_bytes,
                                  tracer=self.tracer,
                                  eviction_policy=eviction_policy,
                                  cost_model=self.cost_model,
                                  spill_dir=spill_dir,
                                  repack_on_admission=repack_on_admission)
        self.use_threads = use_threads
        self.backend = backend
        self.task_retries = task_retries
        self._rdd_counter = 0
        # the executor pool is persistent: created lazily on the first
        # parallel job and reused by every job after it (Spark keeps
        # executors alive across jobs; so do we)
        self.executor_pool = ExecutorPool(num_executors)
        # the shared-memory plane: a registry of segments this context
        # created (or adopted from its workers), metered and unlinked
        # at shutdown / interpreter exit
        from repro.engine.shm import SharedSegmentRegistry

        self.shm_registry = SharedSegmentRegistry(self.metrics)
        # the health monitor and heartbeat ledger exist on every
        # context (telemetry on or off) so fault paths — the worker
        # pool's crash handler — can emit events unconditionally; they
        # must exist BEFORE the process runner forks its workers
        from repro.engine.telemetry import (
            HealthMonitor,
            NnzBalanceStats,
            TelemetrySampler,
            WorkerHeartbeats,
        )

        self.health_monitor = HealthMonitor(tracer=self.tracer)
        self.worker_heartbeats = WorkerHeartbeats()
        self.nnz_stats = NnzBalanceStats()
        self.process_runner = None
        if backend == "process":
            from repro.engine.worker import ProcessTaskRunner

            self.process_runner = ProcessTaskRunner(self)
            # fork every worker NOW, from this thread — forking later,
            # from a dispatcher thread, risks cloning held locks
            self.process_runner.ensure_started()
        self.scheduler = StageScheduler(self)
        # the telemetry plane: off by default (no sampler thread, no
        # server); an explicit interval implies telemetry
        self.telemetry_sampler = None
        self.telemetry_server = None
        if telemetry or telemetry_interval is not None \
                or telemetry_path is not None:
            self.telemetry_sampler = TelemetrySampler(
                self,
                interval=(telemetry_interval
                          if telemetry_interval is not None else 1.0),
                sink_path=telemetry_path)
            self.telemetry_sampler.start()

    @property
    def parallel(self) -> bool:
        """Whether jobs run their tasks concurrently (either backend)."""
        return self.use_threads or self.process_runner is not None

    def _next_rdd_id(self) -> int:
        self._rdd_counter += 1
        return self._rdd_counter

    # ------------------------------------------------------------------
    # RDD creation
    # ------------------------------------------------------------------

    def parallelize(self, data, num_partitions=None, partitioner=None) -> RDD:
        """Distribute a driver-side collection."""
        if num_partitions is None:
            num_partitions = self.default_parallelism
        return ParallelCollectionRDD(self, data, num_partitions,
                                     partitioner=partitioner)

    def generate(self, num_partitions: int, func, partitioner=None) -> RDD:
        """Create an RDD whose partition ``i`` is ``func(i)``.

        The generator runs inside tasks, so synthetic datasets larger than
        driver memory never exist as a single list.
        """
        return GeneratedRDD(self, num_partitions, func,
                            partitioner=partitioner)

    def empty_rdd(self) -> RDD:
        return self.parallelize([], num_partitions=1)

    # ------------------------------------------------------------------
    # broadcast and counters
    # ------------------------------------------------------------------

    def broadcast(self, value):
        """Ship a read-only value to every executor (metered).

        In-process the value is shared by reference; the network cost a
        cluster would pay — value size × executors — is recorded so the
        cost model charges for it.
        """
        from repro.engine.broadcast import Broadcast
        from repro.engine.sizing import estimate_size as _size

        nbytes = _size(value)
        self.metrics.record_broadcast(nbytes * self.num_executors)
        broadcast = Broadcast(value, nbytes)
        self.tracer.event(broadcast.label, "broadcast", bytes=nbytes,
                          shipped_bytes=nbytes * self.num_executors)
        return broadcast

    def counter(self, initial=0, name: str = None):
        """A driver-visible additive counter usable inside tasks."""
        from repro.engine.broadcast import CounterAccumulator

        return CounterAccumulator(initial, name)

    # ------------------------------------------------------------------
    # job execution
    # ------------------------------------------------------------------

    def run_job(self, rdd: RDD, partition_func) -> list:
        """Apply ``partition_func`` to every partition; return the results.

        Delegates to the stage scheduler: pending shuffle map stages
        beneath ``rdd`` materialize first (tasks in parallel when
        ``use_threads`` is on), then the result stage runs over the
        persistent executor pool. Records one job, one result stage,
        and one task per partition; shuffle map stages record
        themselves as they materialize.
        """
        return self.scheduler.run_job(rdd, partition_func)

    def run_take(self, rdd: RDD, n: int) -> list:
        """Incrementally probe partitions until ``n`` records are found.

        One job and one stage however many partitions end up probed —
        per-partition probes are tasks of the same job, as in Spark.
        """
        self.metrics.record_job()
        self.metrics.record_stage()
        taken = []
        with self.tracer.span(f"{rdd.name}:take", "job",
                              executors=self.num_executors):
            with self.tracer.span(rdd.name, "stage", stage_kind="result"):
                for index in range(rdd.num_partitions):
                    if len(taken) >= n:
                        break
                    self.metrics.record_task()
                    with self.tracer.span("task", "task", partition=index):
                        taken.extend(rdd.iterator(index))
        return taken[:n]

    def run_partition(self, rdd: RDD, index: int) -> list:
        """Compute a single partition (used by ``take``/``lookup``)."""
        if not 0 <= index < rdd.num_partitions:
            raise EngineError(
                f"partition index {index} out of range for {rdd!r}"
            )
        self.metrics.record_job()
        self.metrics.record_stage()
        self.metrics.record_task()
        with self.tracer.span(f"{rdd.name}:partition", "job",
                              executors=self.num_executors):
            with self.tracer.span(rdd.name, "stage", stage_kind="result"):
                with self.tracer.span("task", "task", partition=index):
                    return rdd.iterator(index)

    # ------------------------------------------------------------------
    # telemetry & health
    # ------------------------------------------------------------------

    def serve_telemetry(self, port: int = 0, host: str = "127.0.0.1"):
        """Serve live telemetry over HTTP; returns the server.

        Routes: ``/metrics`` (Prometheus text exposition),
        ``/telemetry.json`` (full JSON snapshot — what ``repro top``
        polls), ``/health``. Starts the sampler (at its default
        interval) if telemetry was not already on. ``port=0`` picks a
        free port — read it back from ``server.port`` / ``server.url``.
        """
        from repro.engine.telemetry import TelemetrySampler, TelemetryServer

        if self.telemetry_sampler is None:
            self.telemetry_sampler = TelemetrySampler(self)
            self.telemetry_sampler.start()
        if self.telemetry_server is None:
            self.telemetry_server = TelemetryServer(
                self.telemetry_sampler, port=port, host=host)
        return self.telemetry_server

    def health(self):
        """The current health report (works with telemetry off too —
        fault-path events are always recorded, and calling this
        evaluates the threshold rules against a fresh gauge snapshot
        even when no sampler is running, so recovered conditions
        clear)."""
        from repro.engine.telemetry import HealthReport

        sampler = self.telemetry_sampler
        if sampler is not None:
            sampler.sample_once()
        else:
            self.health_monitor.evaluate_now(self)
        return HealthReport(
            self.health_monitor.status(),
            self.health_monitor.events(),
            sampler.store.num_samples() if sampler is not None else 0,
            interval_s=sampler.interval if sampler is not None else None)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def shutdown(self) -> None:
        """Stop the executor pool, the worker processes, and unlink any
        shared-memory segments. An *idle* context remains usable: the
        next parallel job lazily restarts the pools (shared-memory
        block handles exported to workers are invalidated, so cached
        blocks re-export on the next job). Telemetry threads stop
        first — the HTTP server, then the sampler (which takes a final
        sample and flushes/closes its JSONL sink)."""
        if self.telemetry_server is not None:
            self.telemetry_server.stop()
            self.telemetry_server = None
        if self.telemetry_sampler is not None:
            self.telemetry_sampler.stop()
            self.telemetry_sampler = None
        self.executor_pool.shutdown()
        if self.process_runner is not None:
            self.process_runner.shutdown()
        self.shm_registry.shutdown()

    def __enter__(self) -> "ClusterContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # fault injection and measurement helpers
    # ------------------------------------------------------------------

    def fail_partition(self, rdd: RDD, index: int) -> bool:
        """Simulate losing a cached partition of ``rdd``.

        Returns whether a cached block was present to lose. Subsequent
        access transparently recomputes from lineage.
        """
        return self.cache.drop_partition(rdd.rdd_id, index)

    @contextmanager
    def measure(self):
        """Measure wall time and metric deltas for a code block.

        Yields a mutable holder; on exit the holder carries ``wall_s``,
        ``delta`` (a :class:`MetricsSnapshot`), ``report`` (the modeled
        :class:`CostReport`), plus the scheduler's wall-clock view of
        the block: ``stage_timings`` (per-stage wall time and task
        count), ``task_times`` (per-task durations, histogram via
        ``MetricsRegistry.task_time_histogram``), ``busy_task_s``, and
        ``utilization`` (busy executor time over ``wall ×
        num_executors``).
        """
        holder = _Measurement()
        before = self.metrics.snapshot()
        stage_mark = len(self.metrics.stage_timings)
        task_mark = len(self.metrics.task_times)
        start = time.perf_counter()
        try:
            yield holder
        finally:
            holder.wall_s = time.perf_counter() - start
            holder.delta = self.metrics.snapshot() - before
            holder.report = self.cost_model.report(holder.wall_s,
                                                   holder.delta)
            holder.stage_timings = list(
                self.metrics.stage_timings[stage_mark:])
            holder.task_times = list(self.metrics.task_times[task_mark:])
            holder.busy_task_s = sum(holder.task_times)
            if holder.wall_s > 0:
                holder.utilization = (
                    holder.busy_task_s
                    / (holder.wall_s * self.num_executors))


class _Measurement:
    """Result holder for :meth:`ClusterContext.measure`."""

    wall_s = 0.0
    delta = None
    report = None
    stage_timings = ()
    task_times = ()
    busy_task_s = 0.0
    utilization = 0.0
