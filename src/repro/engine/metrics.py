"""Execution metrics for the mini-Spark engine.

The paper's experimental story is largely about *costs that we can count*:
bytes moved through the shuffle, number of tasks scheduled, bytes spilled
to disk. The engine increments these counters as it runs; benchmarks take
snapshots before/after a job and feed the difference to the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass(frozen=True)
class MetricsSnapshot:
    """An immutable point-in-time copy of every engine counter."""

    tasks_launched: int = 0
    stages_run: int = 0
    jobs_run: int = 0
    shuffle_records: int = 0
    shuffle_bytes: int = 0
    shuffles_performed: int = 0
    disk_read_bytes: int = 0
    disk_write_bytes: int = 0
    result_bytes: int = 0
    broadcast_bytes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    recomputations: int = 0
    task_retries: int = 0

    def __sub__(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        deltas = {
            f.name: getattr(self, f.name) - getattr(other, f.name)
            for f in fields(self)
        }
        return MetricsSnapshot(**deltas)

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class MetricsRegistry:
    """Mutable counters owned by a :class:`ClusterContext`."""

    tasks_launched: int = 0
    stages_run: int = 0
    jobs_run: int = 0
    shuffle_records: int = 0
    shuffle_bytes: int = 0
    shuffles_performed: int = 0
    disk_read_bytes: int = 0
    disk_write_bytes: int = 0
    result_bytes: int = 0
    broadcast_bytes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    recomputations: int = 0
    task_retries: int = 0
    _history: list = field(default_factory=list, repr=False)

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            tasks_launched=self.tasks_launched,
            stages_run=self.stages_run,
            jobs_run=self.jobs_run,
            shuffle_records=self.shuffle_records,
            shuffle_bytes=self.shuffle_bytes,
            shuffles_performed=self.shuffles_performed,
            disk_read_bytes=self.disk_read_bytes,
            disk_write_bytes=self.disk_write_bytes,
            result_bytes=self.result_bytes,
            broadcast_bytes=self.broadcast_bytes,
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
            cache_evictions=self.cache_evictions,
            recomputations=self.recomputations,
            task_retries=self.task_retries,
        )

    def reset(self) -> None:
        for name in (
            "tasks_launched",
            "stages_run",
            "jobs_run",
            "shuffle_records",
            "shuffle_bytes",
            "shuffles_performed",
            "disk_read_bytes",
            "disk_write_bytes",
            "result_bytes",
            "broadcast_bytes",
            "cache_hits",
            "cache_misses",
            "cache_evictions",
            "recomputations",
            "task_retries",
        ):
            setattr(self, name, 0)

    def record_task(self, count: int = 1) -> None:
        self.tasks_launched += count

    def record_stage(self) -> None:
        self.stages_run += 1

    def record_job(self) -> None:
        self.jobs_run += 1

    def record_shuffle(self, records: int, size_bytes: int) -> None:
        self.shuffles_performed += 1
        self.shuffle_records += records
        self.shuffle_bytes += size_bytes

    def record_disk_read(self, size_bytes: int) -> None:
        self.disk_read_bytes += size_bytes

    def record_disk_write(self, size_bytes: int) -> None:
        self.disk_write_bytes += size_bytes

    def record_result(self, size_bytes: int) -> None:
        self.result_bytes += size_bytes

    def record_broadcast(self, size_bytes: int) -> None:
        self.broadcast_bytes += size_bytes

    def record_cache_hit(self) -> None:
        self.cache_hits += 1

    def record_cache_miss(self) -> None:
        self.cache_misses += 1

    def record_eviction(self) -> None:
        self.cache_evictions += 1

    def record_recomputation(self) -> None:
        self.recomputations += 1

    def record_task_retry(self) -> None:
        self.task_retries += 1
