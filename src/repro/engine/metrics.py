"""Execution metrics for the mini-Spark engine.

The paper's experimental story is largely about *costs that we can count*:
bytes moved through the shuffle, number of tasks scheduled, bytes spilled
to disk. The engine increments these counters as it runs; benchmarks take
snapshots before/after a job and feed the difference to the cost model.
"""

from __future__ import annotations

import threading

from dataclasses import dataclass, field, fields


@dataclass(frozen=True)
class StageTiming:
    """Wall time of one executed stage (shuffle map or result)."""

    label: str
    kind: str  # "shuffle" | "result" | "checkpoint"
    wall_s: float
    num_tasks: int

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "kind": self.kind,
            "wall_s": self.wall_s,
            "num_tasks": self.num_tasks,
        }


@dataclass(frozen=True)
class MetricsSnapshot:
    """An immutable point-in-time copy of every engine counter."""

    tasks_launched: int = 0
    stages_run: int = 0
    jobs_run: int = 0
    shuffle_records: int = 0
    shuffle_bytes: int = 0
    shuffles_performed: int = 0
    shuffle_batches: int = 0
    shuffle_batch_records: int = 0
    disk_read_bytes: int = 0
    disk_write_bytes: int = 0
    result_bytes: int = 0
    broadcast_bytes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    cache_spills: int = 0
    cache_reloads: int = 0
    chunks_repacked: int = 0
    repack_bytes_saved: int = 0
    recomputations: int = 0
    task_retries: int = 0
    kernels_fused: int = 0
    fused_chunks_avoided: int = 0
    optimizer_rules_fired: int = 0
    optimizer_chunks_pruned: int = 0
    shm_segments_created: int = 0
    shm_bytes_mapped: int = 0
    worker_respawns: int = 0

    def __sub__(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        deltas = {
            f.name: getattr(self, f.name) - getattr(other, f.name)
            for f in fields(self)
        }
        return MetricsSnapshot(**deltas)

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


#: the engine's logical counters — the single source of truth shared by
#: MetricsSnapshot (all fields) and MetricsRegistry (reset/snapshot).
#: Adding a counter means adding one field to *each* dataclass; the
#: drift-guard test asserts the two stay identical.
COUNTER_FIELDS = tuple(f.name for f in fields(MetricsSnapshot))


def task_time_histogram(task_times, bins: int = 10) -> list:
    """``(lo_s, hi_s, count)`` buckets over a list of task durations."""
    task_times = list(task_times)
    if not task_times:
        return []
    lo, hi = min(task_times), max(task_times)
    if hi <= lo:
        return [(lo, hi, len(task_times))]
    width = (hi - lo) / bins
    counts = [0] * bins
    for duration in task_times:
        slot = min(int((duration - lo) / width), bins - 1)
        counts[slot] += 1
    return [
        (lo + i * width, lo + (i + 1) * width, count)
        for i, count in enumerate(counts)
    ]


@dataclass
class MetricsRegistry:
    """Mutable counters owned by a :class:`ClusterContext`."""

    tasks_launched: int = 0
    stages_run: int = 0
    jobs_run: int = 0
    shuffle_records: int = 0
    shuffle_bytes: int = 0
    shuffles_performed: int = 0
    # columnar shuffle (repro.engine.batches): packed RecordBatches
    # shipped, and how many records rode in them (vs the tuple path)
    shuffle_batches: int = 0
    shuffle_batch_records: int = 0
    disk_read_bytes: int = 0
    disk_write_bytes: int = 0
    result_bytes: int = 0
    broadcast_bytes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    # the memory tier (repro.engine.storage): victims written to the
    # spill directory, spilled blocks decoded back on access, and chunks
    # re-encoded by the density policy on cache admission (net payload
    # bytes the repacking shed)
    cache_spills: int = 0
    cache_reloads: int = 0
    chunks_repacked: int = 0
    repack_bytes_saved: int = 0
    recomputations: int = 0
    task_retries: int = 0
    # chunk-kernel fusion (repro.core.plan): kernels compiled into fused
    # passes, and intermediate Chunk builds the eager path would have done
    kernels_fused: int = 0
    fused_chunks_avoided: int = 0
    # the logical rewrite optimizer (repro.core.optimizer): cost-gated
    # rewrite rules that actually fired at lowering time, and chunks the
    # rewritten plans prune before any task is scheduled (estimated from
    # metadata, deterministic across schedulers)
    optimizer_rules_fired: int = 0
    optimizer_chunks_pruned: int = 0
    # the process backend (repro.engine.worker / repro.engine.shm):
    # shared-memory segments created for shuffle blocks and cached
    # chunks, bytes of those segments mapped into worker/driver address
    # spaces, and worker pools respawned after a process died mid-task
    shm_segments_created: int = 0
    shm_bytes_mapped: int = 0
    worker_respawns: int = 0
    _history: list = field(default_factory=list, repr=False)
    # wall-clock observations (not part of MetricsSnapshot, which holds
    # only logical counters that must be identical between the serial
    # and threaded schedulers)
    stage_timings: list = field(default_factory=list, repr=False)
    task_times: list = field(default_factory=list, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False)

    def snapshot(self) -> MetricsSnapshot:
        with self._lock:
            return self._snapshot_locked()

    def _snapshot_locked(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            **{name: getattr(self, name) for name in COUNTER_FIELDS}
        )

    def reset(self) -> None:
        with self._lock:
            for name in COUNTER_FIELDS:
                setattr(self, name, 0)
            self.stage_timings.clear()
            self.task_times.clear()

    def record_task(self, count: int = 1) -> None:
        with self._lock:
            self.tasks_launched += count

    def record_stage(self) -> None:
        with self._lock:
            self.stages_run += 1

    def record_job(self) -> None:
        with self._lock:
            self.jobs_run += 1

    def record_shuffle(self, records: int, size_bytes: int) -> None:
        with self._lock:
            self.shuffles_performed += 1
            self.shuffle_records += records
            self.shuffle_bytes += size_bytes

    def record_shuffle_batches(self, batches: int, records: int) -> None:
        with self._lock:
            self.shuffle_batches += batches
            self.shuffle_batch_records += records

    def record_disk_read(self, size_bytes: int) -> None:
        with self._lock:
            self.disk_read_bytes += size_bytes

    def record_disk_write(self, size_bytes: int) -> None:
        with self._lock:
            self.disk_write_bytes += size_bytes

    def record_result(self, size_bytes: int) -> None:
        with self._lock:
            self.result_bytes += size_bytes

    def record_broadcast(self, size_bytes: int) -> None:
        with self._lock:
            self.broadcast_bytes += size_bytes

    def record_cache_hit(self) -> None:
        with self._lock:
            self.cache_hits += 1

    def record_cache_miss(self) -> None:
        with self._lock:
            self.cache_misses += 1

    def record_eviction(self) -> None:
        with self._lock:
            self.cache_evictions += 1

    def record_spill(self) -> None:
        with self._lock:
            self.cache_spills += 1

    def record_reload(self) -> None:
        with self._lock:
            self.cache_reloads += 1

    def record_repack(self, count: int, bytes_saved: int = 0) -> None:
        """``count`` chunks re-encoded by the density policy; positive
        ``bytes_saved`` means the new encodings are smaller."""
        with self._lock:
            self.chunks_repacked += count
            self.repack_bytes_saved += bytes_saved

    def record_recomputation(self) -> None:
        with self._lock:
            self.recomputations += 1

    def record_task_retry(self) -> None:
        with self._lock:
            self.task_retries += 1

    def record_kernels_fused(self, count: int) -> None:
        """A ChunkPlan of ``count`` stages compiled into one pass."""
        with self._lock:
            self.kernels_fused += count

    def record_fused_chunks_avoided(self, count: int) -> None:
        """Intermediate Chunk builds skipped by a fused pass."""
        with self._lock:
            self.fused_chunks_avoided += count

    def record_optimizer(self, rules_fired: int,
                         chunks_pruned: int = 0) -> None:
        """``rules_fired`` rewrite rules applied while lowering one
        logical plan; ``chunks_pruned`` chunks those rewrites eliminate
        before scheduling."""
        with self._lock:
            self.optimizer_rules_fired += rules_fired
            self.optimizer_chunks_pruned += chunks_pruned

    def record_shm_segment(self) -> None:
        """One shared-memory segment created for block exchange."""
        with self._lock:
            self.shm_segments_created += 1

    def record_shm_mapped(self, size_bytes: int) -> None:
        """A segment of ``size_bytes`` mapped into an address space."""
        with self._lock:
            self.shm_bytes_mapped += size_bytes

    def record_worker_respawn(self) -> None:
        """A worker pool replaced after a process died mid-task."""
        with self._lock:
            self.worker_respawns += 1

    def merge_counters(self, deltas: dict) -> None:
        """Fold a worker task's counter deltas into this registry.

        Only known :data:`COUNTER_FIELDS` keys are applied; a worker
        reply produced by a newer/older build cannot corrupt state.
        """
        with self._lock:
            for name, value in deltas.items():
                if name in COUNTER_FIELDS and value:
                    setattr(self, name, getattr(self, name) + value)

    # ------------------------------------------------------------------
    # wall-clock observations
    # ------------------------------------------------------------------

    def record_stage_timing(self, label: str, kind: str, wall_s: float,
                            num_tasks: int) -> None:
        with self._lock:
            self.stage_timings.append(
                StageTiming(label=label, kind=kind, wall_s=wall_s,
                            num_tasks=num_tasks))

    def record_task_time(self, seconds: float) -> None:
        with self._lock:
            self.task_times.append(seconds)

    def busy_task_seconds(self) -> float:
        """Total task compute time (sums over concurrent executors)."""
        with self._lock:
            return sum(self.task_times)

    def task_time_histogram(self, bins: int = 10, task_times=None) -> list:
        """``(lo_s, hi_s, count)`` buckets over recorded task durations.

        Delegates to the module-level :func:`task_time_histogram`;
        without an explicit ``task_times`` it buckets this registry's
        recorded durations.
        """
        if task_times is None:
            with self._lock:
                task_times = list(self.task_times)
        return task_time_histogram(task_times, bins=bins)
