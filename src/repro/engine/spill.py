"""Spill serialization: cached partitions as real on-disk bytes.

When the block cache (:mod:`repro.engine.storage`) evicts a
``MEMORY_AND_DISK`` victim, the partition is *actually* freed from RAM:
it is encoded to bytes here, written to the context's spill directory,
and decoded back on the next access. The byte counts charged to the
metrics and the cost model are the true encoded sizes.

Encoding prefers a columnar form over a pickle-per-record one. A
partition of ``(key, value)`` records whose value column matches a
registered spill codec ships as one packed buffer object; everything
else falls back to a plain pickle of the record list. ``repro.core``
registers the Chunk codec (:mod:`repro.core.chunk_codec`) without its
in-memory byte limit, so spilled chunk partitions reuse the compressed
SUPER_SPARSE mask layout on disk.

The contract mirrors the shuffle data plane's: decoding must be
**byte-identical** — ``pickle.dumps(decode(encode(records)))`` equals
``pickle.dumps(records)`` — so a reloaded block is indistinguishable
from one that never left memory.
"""

from __future__ import annotations

import pickle

from repro.engine.batches import pack_values

#: spill codecs tried in order; each ``probe(values)`` returns a packed
#: column (``unpack()`` byte-identical, ``nbytes``) or None to decline
_SPILL_CODECS = []


def register_spill_codec(probe) -> None:
    """Register ``probe(values) -> PackedValues | None`` for spill
    encoding. Higher layers register here (``repro.core`` adds the
    unbounded Chunk codec) so the engine never imports them."""
    _SPILL_CODECS.append(probe)


def _pack_column(values):
    for probe in _SPILL_CODECS:
        try:
            packed = probe(values)
        except (TypeError, ValueError, OverflowError):
            packed = None
        if packed is not None:
            return packed
    # the shuffle codecs (scalars, pairs, arrays, size-limited chunks)
    # also produce byte-identical columns; reuse them
    return pack_values(values)


def encode_block(records) -> bytes:
    """Serialize one cached partition to spill-file bytes."""
    records = list(records)
    packed = None
    if records and all(
        type(record) is tuple and len(record) == 2 for record in records
    ):
        packed = _pack_column([record[1] for record in records])
    if packed is not None:
        body = {"keys": [record[0] for record in records],
                "column": packed}
    else:
        body = {"records": records}
    return pickle.dumps(body, protocol=pickle.HIGHEST_PROTOCOL)


def decode_block(data: bytes) -> list:
    """Rebuild the partition a spill file holds, byte-identically."""
    body = pickle.loads(data)
    if "records" in body:
        return body["records"]
    return list(zip(body["keys"], body["column"].unpack()))
