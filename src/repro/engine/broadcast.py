"""Broadcast variables and driver-side accumulator counters.

Spark ships read-only values to every executor once per job through its
broadcast mechanism; Spangle's ML algorithms lean on it for the rank /
weight vectors. The engine runs in one process, so a broadcast is
physically a reference — but its *cost* is real on a cluster, so
:meth:`ClusterContext.broadcast` meters ``value_size × num_executors``
bytes into the metrics, which the cost model prices as network time.

:class:`AccumulatorParam`-style counters (Spark's ``Accumulator``, not
the array Accumulator of Section V-B) let tasks report side statistics
without a shuffle.
"""

from __future__ import annotations

import threading

from repro.errors import EngineError


class Broadcast:
    """A read-only value shipped once to every executor."""

    __slots__ = ("_value", "_destroyed", "nbytes", "label")

    def __init__(self, value, nbytes: int, label: str = None):
        self._value = value
        self._destroyed = False
        self.nbytes = nbytes
        # shown by trace spans; defaults to the payload's type name
        self.label = label or f"broadcast[{type(value).__name__}]"

    @property
    def value(self):
        if self._destroyed:
            raise EngineError("broadcast variable was destroyed")
        return self._value

    def destroy(self) -> None:
        """Release the broadcast (further access is an error)."""
        self._destroyed = True
        self._value = None

    def __repr__(self) -> str:
        state = "destroyed" if self._destroyed else f"{self.nbytes}B"
        return f"Broadcast({state})"


class CounterAccumulator:
    """A driver-visible additive counter usable from tasks.

    Thread-safe (tasks may run concurrently under ``use_threads``).

    Under ``backend="process"`` a counter captured by a task closure is
    *copied* into the worker: additions made there mutate the copy and
    do not flow back to the driver's counter. Use metrics counters (or
    an explicit reduce) for statistics that must survive the process
    boundary.
    """

    def __init__(self, initial=0, name: str = None):
        self._value = initial
        self._name = name or "counter"
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def add(self, amount) -> None:
        with self._lock:
            self._value = self._value + amount

    @property
    def value(self):
        with self._lock:
            return self._value

    def reset(self, value=0) -> None:
        with self._lock:
            self._value = value

    def __repr__(self) -> str:
        return f"CounterAccumulator({self._name}={self.value})"
