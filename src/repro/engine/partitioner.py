"""Partitioners: how keys map to partitions.

Spangle relies on both hash partitioning (the default for shuffles) and
range partitioning (used when chunk locality along an axis matters, e.g.
row-block co-location for the matmul local join).
"""

from __future__ import annotations

import bisect

from repro.errors import EngineError


class Partitioner:
    """Maps a key to a partition index in ``[0, num_partitions)``."""

    def __init__(self, num_partitions: int):
        if num_partitions <= 0:
            raise EngineError(
                f"num_partitions must be positive, got {num_partitions}"
            )
        self.num_partitions = num_partitions

    def partition(self, key) -> int:
        raise NotImplementedError

    def __eq__(self, other) -> bool:
        return (
            type(self) is type(other)
            and self.num_partitions == other.num_partitions
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.num_partitions))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.num_partitions})"


class HashPartitioner(Partitioner):
    """Partition by ``hash(key) % n``, made stable for ints.

    Python's ``hash`` of an int is the int itself (mod a large prime),
    which is exactly Spark's behaviour for integer keys and gives the
    deterministic placement that the SGD chunk-ID equation (Eq. 2 of the
    paper) exploits.
    """

    def partition(self, key) -> int:
        return hash(key) % self.num_partitions


class RangePartitioner(Partitioner):
    """Partition ordered keys into contiguous ranges.

    ``bounds`` are the *upper-exclusive* split points between partitions;
    ``len(bounds) == num_partitions - 1``. A key ``k`` goes to the first
    partition whose bound exceeds it.
    """

    def __init__(self, bounds):
        bounds = list(bounds)
        if sorted(bounds) != bounds:
            raise EngineError("range partitioner bounds must be sorted")
        super().__init__(len(bounds) + 1)
        self.bounds = bounds

    @classmethod
    def from_keys(cls, keys, num_partitions: int) -> "RangePartitioner":
        """Sample ``keys`` and build balanced range bounds."""
        ordered = sorted(set(keys))
        if num_partitions <= 1 or len(ordered) <= 1:
            return cls([])
        step = len(ordered) / num_partitions
        bounds = []
        for i in range(1, num_partitions):
            idx = min(int(i * step), len(ordered) - 1)
            bound = ordered[idx]
            if not bounds or bound > bounds[-1]:
                bounds.append(bound)
        return cls(bounds)

    def partition(self, key) -> int:
        return bisect.bisect_right(self.bounds, key)

    def __eq__(self, other) -> bool:
        return (
            type(self) is type(other)
            and self.num_partitions == other.num_partitions
            and self.bounds == other.bounds
        )

    def __hash__(self) -> int:
        return hash(("RangePartitioner", tuple(self.bounds)))


class ExplicitPartitioner(Partitioner):
    """Partition through a user-supplied function.

    Spangle's matrix multiply partitions the left operand by row-block ID
    and the right operand by column-block ID; this partitioner lets those
    layouts be expressed directly.
    """

    def __init__(self, num_partitions: int, func, tag=None):
        super().__init__(num_partitions)
        self._func = func
        self._tag = tag

    def partition(self, key) -> int:
        return self._func(key) % self.num_partitions

    def __eq__(self, other) -> bool:
        return (
            type(self) is type(other)
            and self.num_partitions == other.num_partitions
            and self._tag is not None
            and self._tag == other._tag
        )

    def __hash__(self) -> int:
        return hash(("ExplicitPartitioner", self.num_partitions, self._tag))
