"""Partitioners: how keys map to partitions.

Spangle relies on both hash partitioning (the default for shuffles) and
range partitioning (used when chunk locality along an axis matters, e.g.
row-block co-location for the matmul local join).
:class:`NnzBalancedPartitioner` adds the nnz-aware placement the sparse
execution tier uses: chunk keys pack into partitions by their valid-cell
counts instead of by count alone, so one dense block cannot serialize a
stage while the rest of the pool idles.
"""

from __future__ import annotations

import bisect
import heapq

import numpy as np

from repro.errors import EngineError

#: Python hashes ints modulo this Mersenne prime; int keys at or beyond
#: it fall back to per-record hashing
_HASH_MODULUS = (1 << 61) - 1


class Partitioner:
    """Maps a key to a partition index in ``[0, num_partitions)``."""

    def __init__(self, num_partitions: int):
        if num_partitions <= 0:
            raise EngineError(
                f"num_partitions must be positive, got {num_partitions}"
            )
        self.num_partitions = num_partitions

    def partition(self, key) -> int:
        raise NotImplementedError

    def partition_array(self, keys: "np.ndarray"):
        """Vectorized twin of :meth:`partition` for an int64 key column.

        Must agree element-wise with ``partition(key)`` for every key it
        accepts; returns None when this partitioner (or this key range)
        can only be evaluated per record — the columnar shuffle then
        falls back to the generic path.
        """
        return None

    def __eq__(self, other) -> bool:
        return (
            type(self) is type(other)
            and self.num_partitions == other.num_partitions
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.num_partitions))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.num_partitions})"


class HashPartitioner(Partitioner):
    """Partition by ``hash(key) % n``, made stable for ints.

    Python's ``hash`` of an int is the int itself (mod a large prime),
    which is exactly Spark's behaviour for integer keys and gives the
    deterministic placement that the SGD chunk-ID equation (Eq. 2 of the
    paper) exploits.
    """

    def partition(self, key) -> int:
        return hash(key) % self.num_partitions

    def partition_array(self, keys):
        if keys.size == 0:
            return np.zeros(0, dtype=np.int64)
        if (int(keys.max()) >= _HASH_MODULUS
                or int(keys.min()) <= -_HASH_MODULUS):
            # hash(k) != k once the modulus engages
            return None
        pids = keys % self.num_partitions
        minus_one = keys == -1
        if minus_one.any():
            # CPython quirk: hash(-1) == -2
            pids[minus_one] = (-2) % self.num_partitions
        return pids


class RangePartitioner(Partitioner):
    """Partition ordered keys into contiguous ranges.

    ``bounds`` are the *upper-exclusive* split points between partitions;
    ``len(bounds) == num_partitions - 1``. A key ``k`` goes to the first
    partition whose bound exceeds it.
    """

    def __init__(self, bounds):
        bounds = list(bounds)
        if sorted(bounds) != bounds:
            raise EngineError("range partitioner bounds must be sorted")
        super().__init__(len(bounds) + 1)
        self.bounds = bounds

    @classmethod
    def from_keys(cls, keys, num_partitions: int) -> "RangePartitioner":
        """Sample ``keys`` and build balanced range bounds."""
        ordered = sorted(set(keys))
        if num_partitions <= 1 or len(ordered) <= 1:
            return cls([])
        step = len(ordered) / num_partitions
        bounds = []
        for i in range(1, num_partitions):
            idx = min(int(i * step), len(ordered) - 1)
            bound = ordered[idx]
            if not bounds or bound > bounds[-1]:
                bounds.append(bound)
        return cls(bounds)

    def partition(self, key) -> int:
        return bisect.bisect_right(self.bounds, key)

    def partition_array(self, keys):
        if not self.bounds:
            return np.zeros(keys.size, dtype=np.int64)
        if not all(type(bound) is int for bound in self.bounds):
            # mixed-type comparisons (float bounds vs huge int keys)
            # may not round-trip through float64; stay per-record
            return None
        try:
            bounds = np.array(self.bounds, dtype=np.int64)
        except OverflowError:
            return None
        return np.searchsorted(bounds, keys, side="right") \
                 .astype(np.int64, copy=False)

    def __eq__(self, other) -> bool:
        return (
            type(self) is type(other)
            and self.num_partitions == other.num_partitions
            and self.bounds == other.bounds
        )

    def __hash__(self) -> int:
        return hash(("RangePartitioner", tuple(self.bounds)))


class ExplicitPartitioner(Partitioner):
    """Partition through a user-supplied function.

    Spangle's matrix multiply partitions the left operand by row-block ID
    and the right operand by column-block ID; this partitioner lets those
    layouts be expressed directly.
    """

    def __init__(self, num_partitions: int, func, tag=None,
                 array_func=None):
        super().__init__(num_partitions)
        self._func = func
        self._tag = tag
        # optional vectorized twin of func over an int64 key column
        self._array_func = array_func

    def partition(self, key) -> int:
        return self._func(key) % self.num_partitions

    def partition_array(self, keys):
        if self._array_func is None:
            return None
        try:
            out = np.asarray(self._array_func(keys), dtype=np.int64)
        except Exception:  # noqa: BLE001 - fall back per record
            return None
        if out.shape != keys.shape:
            return None
        return out % self.num_partitions

    def __eq__(self, other) -> bool:
        return (
            type(self) is type(other)
            and self.num_partitions == other.num_partitions
            and self._tag is not None
            and self._tag == other._tag
        )

    def __hash__(self) -> int:
        return hash(("ExplicitPartitioner", self.num_partitions, self._tag))


class NnzBalancedPartitioner(Partitioner):
    """Place known keys so per-partition nnz is balanced, not key count.

    Built from per-key weights (a chunk's valid-cell count, a
    contraction group's pair count) via :meth:`from_weights`: greedy
    longest-processing-time packing assigns the heaviest key to the
    currently lightest partition, which bounds the max/mean load ratio
    the way chunk-count placement cannot on skewed (power-law) inputs.
    Keys outside the assignment — records created after the stats were
    taken — fall back to hash placement, so the partitioner stays total.

    Equality is by assignment content: two instances packed from the
    same weights compare equal, which keeps the engine's
    same-partitioner fast paths (``partition_by`` no-op, narrow joins)
    intact across plan barriers.
    """

    def __init__(self, num_partitions: int, assignment: dict):
        super().__init__(num_partitions)
        keys = np.fromiter((int(k) for k in assignment), dtype=np.int64,
                           count=len(assignment))
        pids = np.fromiter((int(v) for v in assignment.values()),
                           dtype=np.int64, count=len(assignment))
        if pids.size and (pids.min() < 0
                          or pids.max() >= num_partitions):
            raise EngineError(
                f"assignment targets outside [0, {num_partitions})"
            )
        order = np.argsort(keys)
        self._keys = keys[order]
        self._pids = pids[order]
        if self._keys.size and np.any(np.diff(self._keys) == 0):
            raise EngineError("duplicate keys in nnz assignment")
        self._digest = hash((num_partitions, self._keys.tobytes(),
                             self._pids.tobytes()))

    @classmethod
    def from_weights(cls, weights: dict, num_partitions: int
                     ) -> "NnzBalancedPartitioner":
        """Greedy LPT packing of ``{key: weight}`` into partitions.

        Deterministic: keys sort by (weight desc, key asc) and ties in
        load break toward the lowest partition index.
        """
        heap = [(0.0, pid) for pid in range(num_partitions)]
        assignment = {}
        for key in sorted(weights, key=lambda k: (-weights[k], k)):
            load, pid = heapq.heappop(heap)
            assignment[int(key)] = pid
            heapq.heappush(heap,
                           (load + max(float(weights[key]), 0.0), pid))
        return cls(num_partitions, assignment)

    def partition_loads(self, weights: dict) -> np.ndarray:
        """Per-partition total weight under this assignment (for the
        ``nnz_imbalance`` telemetry gauge)."""
        loads = np.zeros(self.num_partitions)
        for key, weight in weights.items():
            loads[self.partition(key)] += float(weight)
        return loads

    def partition(self, key) -> int:
        if self._keys.size and isinstance(key, (int, np.integer)):
            slot = int(np.searchsorted(self._keys, key))
            if slot < self._keys.size and self._keys[slot] == key:
                return int(self._pids[slot])
        return hash(key) % self.num_partitions

    def partition_array(self, keys):
        if keys.size == 0:
            return np.zeros(0, dtype=np.int64)
        if (int(keys.max()) >= _HASH_MODULUS
                or int(keys.min()) <= -_HASH_MODULUS):
            # the hash fallback diverges from ``key % n`` out there
            return None
        pids = keys % self.num_partitions
        minus_one = keys == -1
        if minus_one.any():
            # CPython quirk: hash(-1) == -2
            pids[minus_one] = (-2) % self.num_partitions
        if self._keys.size:
            slots = np.searchsorted(self._keys, keys)
            slots_clipped = np.minimum(slots, self._keys.size - 1)
            known = self._keys[slots_clipped] == keys
            pids[known] = self._pids[slots_clipped[known]]
        return pids.astype(np.int64, copy=False)

    def __getstate__(self):
        return (self.num_partitions, self._keys, self._pids)

    def __setstate__(self, state):
        self.num_partitions, self._keys, self._pids = state
        self._digest = hash((self.num_partitions, self._keys.tobytes(),
                             self._pids.tobytes()))

    def __eq__(self, other) -> bool:
        return (
            type(self) is type(other)
            and self.num_partitions == other.num_partitions
            and self._digest == other._digest
            and np.array_equal(self._keys, other._keys)
            and np.array_equal(self._pids, other._pids)
        )

    def __hash__(self) -> int:
        return self._digest

    def __repr__(self) -> str:
        return (f"NnzBalancedPartitioner({self.num_partitions}, "
                f"keys={self._keys.size})")
