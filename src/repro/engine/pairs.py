"""Pair-RDD operations: the key-value half of the RDD API.

ArrayRDD inherits PairRDD in the paper (every record is
``(chunk_id, chunk)``), so these operations carry all of Spangle's data
movement. Everything funnels through :class:`ShuffledRDD` /
:class:`CoGroupedRDD`, which skip the shuffle when the inputs are already
co-partitioned — the mechanism behind the paper's local-join optimization.

Shuffles materialize stage-parallel: the
:class:`~repro.engine.scheduler.StageScheduler` runs one map task per
parent partition (concurrently under ``use_threads``), each building its
own per-reducer buckets, merged once in parent-partition order so every
operation below returns byte-identical results in serial and threaded
execution.
"""

from __future__ import annotations

from repro.engine.partitioner import HashPartitioner, Partitioner, RangePartitioner
from repro.engine.rdd import (
    RDD,
    CoGroupedRDD,
    ShuffledRDD,
    _append_value,
    _extend_list,
    _first_element,
    _identity,
    _singleton_list,
)


# module-level task callables: these ship across the process boundary
# by qualified name (see the note in repro.engine.rdd)

def _emit_inner(groups):
    left_values, right_values = groups
    return [(lv, rv) for lv in left_values for rv in right_values]


def _emit_left_outer(groups):
    left_values, right_values = groups
    if not right_values:
        return [(lv, None) for lv in left_values]
    return [(lv, rv) for lv in left_values for rv in right_values]


def _emit_full_outer(groups):
    left_values, right_values = groups
    if not left_values:
        return [(None, rv) for rv in right_values]
    if not right_values:
        return [(lv, None) for lv in left_values]
    return [(lv, rv) for lv in left_values for rv in right_values]


def _sort_partition(part):
    return sorted(part, key=_first_element)


def _default_partitioner(rdd: RDD, partitioner) -> Partitioner:
    if partitioner is not None:
        return partitioner
    if rdd.partitioner is not None:
        return rdd.partitioner
    return HashPartitioner(rdd.num_partitions)


def combine_by_key(rdd: RDD, create_combiner, merge_value, merge_combiners,
                   partitioner=None, map_side_combine=True,
                   combine_kernel=None) -> RDD:
    """Generic shuffle-based aggregation (Spark's ``combineByKey``).

    ``combine_kernel`` ("sum" | "min" | "max") opts the shuffle into
    the vectorized columnar combine; declaring it promises that
    ``create_combiner`` is the identity and that both merge functions
    equal the kernel's scalar fold (see :class:`ShuffledRDD`).
    """
    partitioner = _default_partitioner(rdd, partitioner)
    return ShuffledRDD(rdd, partitioner, create_combiner, merge_value,
                       merge_combiners, map_side_combine=map_side_combine,
                       combine_kernel=combine_kernel)


def partition_by(rdd: RDD, partitioner: Partitioner) -> RDD:
    """Redistribute records so equal keys land in the same partition.

    A no-op (identity RDD, no shuffle) when the RDD already has an equal
    partitioner.
    """
    if rdd.partitioner is not None and rdd.partitioner == partitioner:
        return rdd
    grouped = ShuffledRDD(rdd, partitioner, _singleton_list,
                          _append_value, _extend_list,
                          map_side_combine=False)
    flattened = grouped.flat_map_values(_identity)
    flattened.partitioner = partitioner
    return flattened.rename("partition_by")


def cogroup(rdds, partitioner=None) -> RDD:
    """Group two or more pair-RDDs by key."""
    rdds = list(rdds)
    if partitioner is None:
        for rdd in rdds:
            if rdd.partitioner is not None:
                partitioner = rdd.partitioner
                break
    if partitioner is None:
        partitioner = HashPartitioner(
            max(rdd.num_partitions for rdd in rdds)
        )
    return CoGroupedRDD(rdds, partitioner)


def join(left: RDD, right: RDD, partitioner=None) -> RDD:
    """Inner join: ``(key, (left_value, right_value))`` per match pair."""
    grouped = cogroup([left, right], partitioner)
    return grouped.flat_map_values(_emit_inner).rename("join")


def left_outer_join(left: RDD, right: RDD, partitioner=None) -> RDD:
    """``(key, (left_value, right_value_or_None))``."""
    grouped = cogroup([left, right], partitioner)
    return grouped.flat_map_values(
        _emit_left_outer).rename("left_outer_join")


def full_outer_join(left: RDD, right: RDD, partitioner=None) -> RDD:
    """``(key, (left_or_None, right_or_None))`` covering both sides.

    This is what Spangle's *or-join* rides on: a cell valid on either
    side survives.
    """
    grouped = cogroup([left, right], partitioner)
    return grouped.flat_map_values(
        _emit_full_outer).rename("full_outer_join")


def sort_by_key(rdd: RDD, num_partitions=None) -> RDD:
    """Range-partition by key and sort within partitions."""
    if num_partitions is None:
        num_partitions = rdd.num_partitions
    sample = rdd.keys().collect()
    partitioner = RangePartitioner.from_keys(sample, num_partitions)
    repartitioned = partition_by(rdd, partitioner)
    return repartitioned.map_partitions(
        _sort_partition,
        preserves_partitioning=True,
    ).rename("sort_by_key")
