"""Structured tracing: the span tree behind every job.

The paper's evaluation is a story about *where time and bytes go* —
shuffle volume, chunk-mode choices, rank-query costs. Flat counters
(:mod:`repro.engine.metrics`) answer "how much"; this module answers
"where": a :class:`Tracer` owned by the
:class:`~repro.engine.context.ClusterContext` records a span tree —
job → stage → task — plus annotated spans for shuffle materialization,
checkpoints, broadcasts, cache traffic (hits/misses, and the memory
tier's ``cache_spill`` / ``cache_reload`` / ``cache_repack`` /
``cache_evict`` events with their in-memory and on-disk byte counts),
and compiled ChunkPlan passes (whose attributes carry kernel labels,
chunk modes, payload bytes, repack counts, and the bitmask rank-query
counts from :func:`repro.bitmask.rank_counts`).

Design constraints, in order:

- **Zero cost when disabled.** ``ClusterContext(trace=False)`` is the
  default; every instrumentation site starts with one attribute check
  and a disabled ``span()`` call returns a shared no-op object without
  allocating.
- **Cheap when enabled.** Spans use monotonic clocks
  (``time.perf_counter``), land in per-thread buffers, and are flushed
  into the shared list under a single lock (when a buffer fills, or on
  :meth:`Tracer.spans`).
- **Deterministic structure.** The *logical* span tree — names, kinds,
  parent edges, and non-timing attributes — is identical between the
  serial and threaded schedulers; only timings and span-id numbering
  differ. :func:`logical_tree` canonicalizes a span list for exactly
  that comparison.

Every finished job folds into a :class:`JobProfile`: critical-path
length, an executor-utilization timeline, task-skew statistics,
per-stage byte/record attribution, and per-chunk-mode attribution.
Exporters write a JSON-lines event log (:func:`export_jsonl`, replayed
by the ``repro trace`` CLI) and Chrome's ``chrome://tracing``
``trace_event`` format (:func:`export_chrome_trace`).
"""

from __future__ import annotations

import itertools
import json
import threading
import time

#: span kinds, from the coarse to the annotated; "health" spans are
#: zero-duration warning events bridged in by the telemetry plane's
#: HealthMonitor (repro.engine.telemetry)
SPAN_KINDS = ("job", "stage", "task", "shuffle", "checkpoint",
              "broadcast", "cache", "plan", "health")

#: kinds that behave like an executed stage in a profile/breakdown
STAGE_LIKE_KINDS = ("stage", "shuffle", "checkpoint")

#: per-thread buffers flush into the shared list at this size
_FLUSH_AT = 256

#: buckets in a JobProfile's executor-utilization timeline
_TIMELINE_BUCKETS = 12


class Span:
    """One timed, attributed node of the trace tree."""

    __slots__ = ("span_id", "parent_id", "name", "kind", "start_s",
                 "end_s", "thread", "attrs")

    def __init__(self, span_id, parent_id, name, kind, start_s,
                 thread, attrs):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.start_s = start_s
        self.end_s = start_s
        self.thread = thread
        self.attrs = attrs

    @property
    def wall_s(self) -> float:
        return self.end_s - self.start_s

    def set(self, **attrs) -> None:
        """Attach (or overwrite) attributes on the live span."""
        self.attrs.update(attrs)

    def as_dict(self) -> dict:
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "thread": self.thread,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "Span":
        span = cls(record["id"], record["parent"], record["name"],
                   record["kind"], record["start_s"], record["thread"],
                   dict(record.get("attrs") or {}))
        span.end_s = record["end_s"]
        return span

    def __repr__(self) -> str:
        return (f"Span({self.kind}:{self.name} id={self.span_id} "
                f"parent={self.parent_id} wall={self.wall_s * 1e3:.3f}ms)")


class _NullSpan:
    """The shared do-nothing span handed out by a disabled tracer."""

    __slots__ = ()

    def set(self, **attrs) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _SpanHandle:
    """Context-manager wrapper pairing ``Tracer.start``/``finish``."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer, span):
        self._tracer = tracer
        self._span = span

    def set(self, **attrs) -> None:
        self._span.set(**attrs)

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc) -> bool:
        self._tracer.finish(self._span)
        return False


class _ThreadState:
    """Per-thread tracer state: the open-span stack and a buffer of
    finished spans (flushed into the shared list under one lock)."""

    __slots__ = ("thread", "stack", "buffer")

    def __init__(self, thread: str):
        self.thread = thread
        self.stack = []
        self.buffer = []


class Tracer:
    """Records a span tree for every job run on a context.

    Disabled (the default) it is a handful of attribute checks; enabled
    it appends finished :class:`Span` objects to per-thread buffers and
    merges them under ``_lock``. Parenting is implicit through a
    thread-local stack of open spans; tasks dispatched to executor
    threads pass their stage span as an explicit ``parent``.
    """

    def __init__(self, enabled: bool = False, num_executors: int = None):
        self.enabled = enabled
        self.num_executors = num_executors
        self._ids = itertools.count(1)
        self._spans = []
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._states = []

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def _state(self) -> _ThreadState:
        state = getattr(self._tls, "state", None)
        if state is None:
            state = _ThreadState(threading.current_thread().name)
            self._tls.state = state
            with self._lock:
                self._states.append(state)
        return state

    def current_span(self):
        """The innermost open span on this thread (None outside one)."""
        if not self.enabled:
            return None
        stack = self._state().stack
        return stack[-1] if stack else None

    def start(self, name: str, kind: str, parent=None, detached=False,
              **attrs):
        """Open a span; returns it (or :data:`NULL_SPAN` when disabled).

        ``parent`` overrides the implicit thread-local parent — required
        for task spans, which open on executor threads whose stacks do
        not contain the driver-side stage span.

        ``detached`` spans never join the thread-local stack: the
        pipelined scheduler keeps several stage spans open on the driver
        thread at once, and stacking them would make each look like the
        previous one's child. Detached spans do not become the implicit
        parent of anything; give their children an explicit ``parent``.
        """
        if not self.enabled:
            return NULL_SPAN
        state = self._state()
        if parent is None and state.stack:
            parent = state.stack[-1]
        parent_id = parent.span_id if isinstance(parent, Span) else None
        span = Span(next(self._ids), parent_id, name, kind,
                    time.perf_counter(), state.thread, attrs)
        if not detached:
            state.stack.append(span)
        return span

    def finish(self, span) -> None:
        """Close a span opened by :meth:`start`."""
        if span is NULL_SPAN or not isinstance(span, Span):
            return
        span.end_s = time.perf_counter()
        state = self._state()
        if span in state.stack:
            # discard any child spans an error path abandoned above us,
            # so the stack cannot poison later parenting
            while state.stack[-1] is not span:
                state.stack.pop()
            state.stack.pop()
        state.buffer.append(span)
        if len(state.buffer) >= _FLUSH_AT:
            with self._lock:
                self._spans.extend(state.buffer)
            state.buffer.clear()

    def span(self, name: str, kind: str, parent=None, detached=False,
             **attrs):
        """``with tracer.span(...) as span:`` — start/finish paired."""
        if not self.enabled:
            return NULL_SPAN
        return _SpanHandle(self, self.start(name, kind, parent=parent,
                                            detached=detached, **attrs))

    def event(self, name: str, kind: str, parent=None, **attrs) -> None:
        """A zero-duration annotation under the current span."""
        if not self.enabled:
            return
        self.finish(self.start(name, kind, parent=parent, **attrs))

    def adopt_spans(self, records, parent=None) -> None:
        """Graft spans recorded by a worker-process tracer into this one.

        Each record is a ``Span.as_dict()`` payload shipped back in a
        task reply. Spans get fresh ids from this tracer; parent edges
        internal to the batch are remapped, and batch roots are
        re-parented under ``parent`` (the driver-side task span) so the
        logical tree matches a task that ran in-process.
        ``perf_counter`` timestamps transfer unchanged: workers are
        forked on the same host, and ``CLOCK_MONOTONIC`` is
        system-wide, so worker and driver clocks share an epoch.
        """
        if not self.enabled or not records:
            return
        parent_id = parent.span_id if isinstance(parent, Span) else None
        id_map = {}
        adopted = []
        for record in records:
            span = Span.from_dict(record)
            old_id = span.span_id
            span.span_id = next(self._ids)
            id_map[old_id] = span.span_id
            adopted.append((span, record.get("parent")))
        for span, old_parent in adopted:
            if old_parent is not None and old_parent in id_map:
                span.parent_id = id_map[old_parent]
            else:
                span.parent_id = parent_id
        with self._lock:
            self._spans.extend(span for span, _old in adopted)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def spans(self) -> list:
        """All finished spans, id-ordered (flushes thread buffers)."""
        with self._lock:
            for state in self._states:
                if state.buffer:
                    self._spans.extend(state.buffer)
                    state.buffer.clear()
            return sorted(self._spans, key=lambda s: s.span_id)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            for state in self._states:
                state.buffer.clear()

    def job_profiles(self) -> list:
        """One :class:`JobProfile` per finished job span, in order."""
        return profiles_from_spans(self.spans(),
                                   num_executors=self.num_executors)

    def last_job_profile(self):
        profiles = self.job_profiles()
        return profiles[-1] if profiles else None

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def export_jsonl(self, path: str) -> None:
        export_jsonl(self.spans(), path,
                     num_executors=self.num_executors)

    def export_chrome_trace(self, path: str) -> None:
        export_chrome_trace(self.spans(), path)


# ----------------------------------------------------------------------
# logical tree (the serial == threaded determinism contract)
# ----------------------------------------------------------------------

#: span attributes that carry wall-clock observations, not logic — the
#: pipelined scheduler stamps stage readiness/launch times on stage
#: spans, and those (like start_s/end_s) legitimately differ run to run
_TIMING_ATTRS = frozenset({"ready_at", "launched_at"})


def _logical_attrs(span: Span) -> tuple:
    """Attributes that must match between scheduler modes.

    Everything the engine records is logical (bytes, records, counts);
    values are rendered with ``repr`` so heterogeneous types sort.
    Wall-clock attributes (:data:`_TIMING_ATTRS`) are erased alongside
    span timings.
    """
    return tuple(sorted(
        (key, repr(value)) for key, value in span.attrs.items()
        if key not in _TIMING_ATTRS))


def logical_tree(spans, exclude_kinds=frozenset({"cache"})) -> tuple:
    """Canonical nested form of a span list, timings and ids erased.

    Two runs of the same job — serial and threaded — must produce equal
    logical trees: same names, kinds, parent edges, and attributes,
    whatever order the executor pool finished tasks in. Children are
    sorted by their own canonical form, so completion order is
    irrelevant.

    ``cache`` annotations are excluded by default: two tasks racing for
    the same uncached block both record a miss under threading where
    the serial run records one miss and one hit — a real scheduling
    difference, not a logical one (the compute-lock still guarantees
    the block is computed once).
    """
    spans = [span for span in spans if span.kind not in exclude_kinds]
    children = {}
    by_id = {span.span_id: span for span in spans}
    roots = []
    for span in spans:
        if span.parent_id is not None and span.parent_id in by_id:
            children.setdefault(span.parent_id, []).append(span)
        else:
            roots.append(span)

    def node(span: Span) -> tuple:
        kids = tuple(sorted(
            node(child) for child in children.get(span.span_id, ())))
        return (span.kind, span.name, _logical_attrs(span), kids)

    return tuple(sorted(node(root) for root in roots))


# ----------------------------------------------------------------------
# job profiles
# ----------------------------------------------------------------------

class StageProfile:
    """Aggregated view of one stage-like span and its task children."""

    __slots__ = ("name", "kind", "wall_s", "num_tasks", "task_times",
                 "records", "bytes")

    def __init__(self, name, kind, wall_s, num_tasks, task_times,
                 records, nbytes):
        self.name = name
        self.kind = kind
        self.wall_s = wall_s
        self.num_tasks = num_tasks
        self.task_times = task_times
        self.records = records
        self.bytes = nbytes

    @property
    def max_task_s(self) -> float:
        return max(self.task_times) if self.task_times else 0.0

    @property
    def mean_task_s(self) -> float:
        if not self.task_times:
            return 0.0
        return sum(self.task_times) / len(self.task_times)

    @property
    def skew(self) -> float:
        """max/mean task time — 1.0 is perfectly balanced."""
        mean = self.mean_task_s
        return self.max_task_s / mean if mean > 0 else 1.0

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "wall_s": self.wall_s,
            "num_tasks": self.num_tasks,
            "max_task_s": self.max_task_s,
            "mean_task_s": self.mean_task_s,
            "skew": self.skew,
            "records": self.records,
            "bytes": self.bytes,
        }


class JobProfile:
    """Everything a finished job's span tree says about it."""

    def __init__(self, job_span, stages, critical_path_s, critical_path,
                 utilization_timeline, chunk_modes, rank_queries,
                 num_executors):
        self.job_span = job_span
        self.stages = stages
        self.critical_path_s = critical_path_s
        self.critical_path = critical_path
        self.utilization_timeline = utilization_timeline
        self.chunk_modes = chunk_modes
        self.rank_queries = rank_queries
        self.num_executors = num_executors

    @property
    def name(self) -> str:
        return self.job_span.name

    @property
    def wall_s(self) -> float:
        return self.job_span.wall_s

    @property
    def busy_task_s(self) -> float:
        return sum(sum(stage.task_times) for stage in self.stages)

    @property
    def utilization(self) -> float:
        denominator = self.wall_s * max(self.num_executors or 1, 1)
        return self.busy_task_s / denominator if denominator > 0 else 0.0

    def as_dict(self) -> dict:
        return {
            "job": self.name,
            "wall_s": self.wall_s,
            "num_executors": self.num_executors,
            "utilization": self.utilization,
            "stages": [stage.as_dict() for stage in self.stages],
            "critical_path_s": self.critical_path_s,
            "critical_path": self.critical_path,
            "utilization_timeline": self.utilization_timeline,
            "chunk_modes": self.chunk_modes,
            "rank_queries": self.rank_queries,
        }

    def render(self) -> str:
        """The ``stage_breakdown``-style report, grown three sections:
        critical path, chunk-mode attribution, and rank queries."""
        from repro.engine.explain import stage_breakdown
        from repro.engine.metrics import StageTiming

        timings = [
            StageTiming(label=stage.name, kind=stage.kind,
                        wall_s=stage.wall_s, num_tasks=stage.num_tasks)
            for stage in self.stages
        ]
        task_times = [
            duration for stage in self.stages
            for duration in stage.task_times
        ]
        lines = [
            f"Job {self.name!r} — wall {self.wall_s * 1e3:.2f} ms, "
            f"{self.num_executors or '?'} executors, "
            f"utilization {self.utilization * 100:.0f}%",
            stage_breakdown(timings, task_times),
        ]
        if self.critical_path:
            hops = " -> ".join(self.critical_path)
            lines.append(
                f"  critical path: {self.critical_path_s * 1e3:.2f} ms "
                f"({hops})")
        skewed = [stage for stage in self.stages if stage.task_times]
        if skewed:
            worst = max(skewed, key=lambda stage: stage.skew)
            lines.append(
                f"  task skew: worst stage {worst.name!r} "
                f"max/mean = {worst.skew:.2f}")
        moved = [stage for stage in self.stages
                 if stage.records or stage.bytes]
        for stage in moved:
            lines.append(
                f"  {stage.kind} {stage.name!r}: "
                f"{stage.records:,} records / {stage.bytes:,} bytes")
        if self.chunk_modes:
            parts = ", ".join(
                f"{mode} {stats['chunks']} chunks / "
                f"{stats['payload_bytes']:,} B"
                for mode, stats in sorted(self.chunk_modes.items()))
            lines.append(f"  chunk modes: {parts}")
        if any(self.rank_queries.values()):
            parts = ", ".join(
                f"{name} {count:,}"
                for name, count in sorted(self.rank_queries.items())
                if count)
            lines.append(f"  rank queries: {parts}")
        if self.utilization_timeline:
            cells = " ".join(
                f"{int(round(util * 100)):3d}"
                for _offset, util in self.utilization_timeline)
            lines.append(f"  utilization timeline (%): {cells}")
        return "\n".join(lines)


def _utilization_timeline(job_span, task_spans, num_executors,
                          buckets: int = _TIMELINE_BUCKETS) -> list:
    """``(offset_s, utilization)`` buckets over the job's duration."""
    wall = job_span.wall_s
    if wall <= 0 or not task_spans:
        return []
    width = wall / buckets
    busy = [0.0] * buckets
    for span in task_spans:
        lo = span.start_s - job_span.start_s
        hi = span.end_s - job_span.start_s
        first = max(0, min(buckets - 1, int(lo / width)))
        last = max(0, min(buckets - 1, int(hi / width)))
        for index in range(first, last + 1):
            bucket_lo = index * width
            bucket_hi = bucket_lo + width
            overlap = min(hi, bucket_hi) - max(lo, bucket_lo)
            if overlap > 0:
                busy[index] += overlap
    denominator = width * max(num_executors or 1, 1)
    return [
        (round(index * width, 9), min(busy[index] / denominator, 1.0))
        for index in range(buckets)
    ]


def _descendants(span_id, children) -> list:
    out = []
    frontier = list(children.get(span_id, ()))
    while frontier:
        span = frontier.pop()
        out.append(span)
        frontier.extend(children.get(span.span_id, ()))
    return out


def profiles_from_spans(spans, num_executors=None) -> list:
    """Fold a span list into one :class:`JobProfile` per job span.

    Works identically on live tracer output and on spans re-loaded from
    a JSON-lines event log — the ``repro trace`` CLI is exactly this
    function over :func:`load_jsonl`.
    """
    spans = sorted(spans, key=lambda span: span.span_id)
    children = {}
    for span in spans:
        if span.parent_id is not None:
            children.setdefault(span.parent_id, []).append(span)

    profiles = []
    for job in spans:
        if job.kind != "job":
            continue
        executors = job.attrs.get("executors", num_executors)
        stage_spans = [
            span for span in children.get(job.span_id, ())
            if span.kind in STAGE_LIKE_KINDS
        ]
        stage_spans.sort(key=lambda span: span.start_s)
        stages = []
        critical_path_s = 0.0
        critical_path = []
        all_tasks = []
        for stage_span in stage_spans:
            tasks = [span for span in children.get(stage_span.span_id, ())
                     if span.kind == "task"]
            tasks.sort(key=lambda span: span.attrs.get("partition", 0))
            all_tasks.extend(tasks)
            records = stage_span.attrs.get("records", 0)
            nbytes = stage_span.attrs.get("bytes", 0)
            if not records:
                records = sum(task.attrs.get("records", 0)
                              for task in tasks)
            if not nbytes:
                nbytes = sum(task.attrs.get("bytes", 0) +
                             task.attrs.get("result_bytes", 0)
                             for task in tasks)
            stages.append(StageProfile(
                stage_span.name, stage_span.kind, stage_span.wall_s,
                len(tasks) or stage_span.attrs.get("num_tasks", 0),
                [task.wall_s for task in tasks], records, nbytes))
            if tasks:
                slowest = max(tasks, key=lambda span: span.wall_s)
                critical_path_s += slowest.wall_s
                critical_path.append(
                    f"{stage_span.name}/task"
                    f"[{slowest.attrs.get('partition', '?')}]")
            else:
                critical_path_s += stage_span.wall_s
                critical_path.append(stage_span.name)

        chunk_modes = {}
        rank_queries = {}
        for span in _descendants(job.span_id, children):
            if span.kind != "plan":
                continue
            for mode in ("dense", "sparse", "super_sparse"):
                count = span.attrs.get(f"chunks_{mode}", 0)
                nbytes = span.attrs.get(f"payload_bytes_{mode}", 0)
                if count or nbytes:
                    stats = chunk_modes.setdefault(
                        mode, {"chunks": 0, "payload_bytes": 0})
                    stats["chunks"] += count
                    stats["payload_bytes"] += nbytes
            for name, value in span.attrs.items():
                if name.endswith("_rank"):
                    rank_queries[name] = rank_queries.get(name, 0) + value

        profiles.append(JobProfile(
            job, stages, critical_path_s, critical_path,
            _utilization_timeline(job, all_tasks, executors),
            chunk_modes, rank_queries, executors))
    return profiles


# ----------------------------------------------------------------------
# exporters and the event-log loader
# ----------------------------------------------------------------------

TRACE_FORMAT = "repro-trace"
TRACE_VERSION = 1


def export_jsonl(spans, path: str, num_executors=None) -> None:
    """Write a JSON-lines event log: one meta line, one line per span."""
    with open(path, "w", encoding="utf-8") as handle:
        meta = {"type": "meta", "format": TRACE_FORMAT,
                "version": TRACE_VERSION}
        if num_executors is not None:
            meta["num_executors"] = num_executors
        handle.write(json.dumps(meta) + "\n")
        for span in spans:
            record = span.as_dict()
            record["type"] = "span"
            handle.write(json.dumps(record) + "\n")


def load_jsonl(path: str):
    """``(meta, spans)`` from an event log written by :func:`export_jsonl`."""
    meta = {}
    spans = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("type") == "meta":
                meta = record
            elif record.get("type") == "span":
                spans.append(Span.from_dict(record))
    return meta, spans


def export_chrome_trace(spans, path: str) -> None:
    """Write Chrome's ``trace_event`` JSON (load via chrome://tracing
    or https://ui.perfetto.dev): complete ("X") events with
    microsecond timestamps, one tid per engine thread."""
    spans = sorted(spans, key=lambda span: span.span_id)
    origin = min((span.start_s for span in spans), default=0.0)
    tids = {}
    events = []
    for span in spans:
        tid = tids.setdefault(span.thread, len(tids) + 1)
        events.append({
            "name": f"{span.kind}:{span.name}",
            "cat": span.kind,
            "ph": "X",
            "ts": round((span.start_s - origin) * 1e6, 3),
            "dur": round(max(span.wall_s, 0.0) * 1e6, 3),
            "pid": 1,
            "tid": tid,
            "args": dict(span.attrs),
        })
    for thread, tid in tids.items():
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": thread},
        })
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"traceEvents": events,
                   "displayTimeUnit": "ms"}, handle, indent=1)
