"""A from-scratch mini-Spark: the execution substrate Spangle runs on.

The paper builds Spangle on Apache Spark. This package reimplements the
slice of Spark that Spangle needs, in pure Python:

- :class:`~repro.engine.context.ClusterContext` — entry point; owns the
  simulated executors, the cache, and the metrics registry.
- :class:`~repro.engine.rdd.RDD` — lazy, lineage-tracked, partitioned
  collections with narrow transformations and actions.
- pair-RDD operations (:mod:`repro.engine.pairs`) — ``reduce_by_key``,
  ``join``, ``cogroup``... implemented over a real shuffle with byte
  accounting.
- :mod:`repro.engine.storage` — block cache with a running byte
  ledger, pluggable eviction (LRU or cost-aware), real compressed
  spill to disk, and density-adaptive chunk repacking on admission.
- :mod:`repro.engine.lineage` — fault injection and lineage-based
  recomputation.
- :mod:`repro.engine.costmodel` — converts measured metrics (shuffle
  bytes, task counts, disk I/O) into a modeled cluster execution time so
  benchmarks can report cluster-scale comparisons from in-process runs.
- :mod:`repro.engine.tracing` — structured span tracing (job → stage →
  task plus shuffle/cache/checkpoint/broadcast/plan annotations), job
  profiles, and JSON-lines / Chrome-trace exporters.
- :mod:`repro.engine.batches` — the columnar shuffle data plane: packed
  :class:`~repro.engine.batches.RecordBatch` shuffle blocks, vectorized
  partitioning, and reduceat-style combine kernels, byte-identical to
  the per-record path (``disable_columnar`` switches back).
- :mod:`repro.engine.worker` — the process execution backend
  (``ClusterContext(backend="process")``): forked worker processes run
  task bodies for true multi-core parallelism, with tasks serialized by
  :mod:`repro.engine.closure` (lambdas ship by value) and shuffle
  blocks / cached chunks exchanged zero-copy through
  ``multiprocessing`` shared memory (:mod:`repro.engine.shm`).
- :mod:`repro.engine.telemetry` — the continuous telemetry plane
  (``ClusterContext(telemetry=True)``): a background sampler feeding a
  bounded time-series store, threshold-rule health monitoring, and
  Prometheus / JSON / JSONL exporters (``ctx.serve_telemetry()``);
  :mod:`repro.engine.top` renders it as the ``repro top`` dashboard.
"""

from repro.engine.batches import (
    RecordBatch,
    columnar_enabled,
    disable_columnar,
    enable_columnar,
)
from repro.engine.context import ClusterContext
from repro.engine.costmodel import ClusterCostModel, CostReport
from repro.engine.explain import memory_report
from repro.engine.metrics import MetricsRegistry, MetricsSnapshot, StageTiming
from repro.engine.partitioner import (
    HashPartitioner,
    NnzBalancedPartitioner,
    Partitioner,
    RangePartitioner,
)
from repro.engine.rdd import RDD
from repro.engine.scheduler import (
    ExecutorPool,
    StageScheduler,
    disable_pipelining,
    enable_pipelining,
    pipelining_enabled,
)
from repro.engine.storage import (
    CacheManager,
    CostAwareEviction,
    LRUEviction,
    StorageLevel,
)
from repro.engine.telemetry import (
    HealthMonitor,
    HealthReport,
    TelemetrySampler,
    TelemetryServer,
    TimeSeriesStore,
    WorkerHeartbeats,
    prometheus_text,
)
from repro.engine.tracing import JobProfile, Span, Tracer

__all__ = [
    "CacheManager",
    "ClusterContext",
    "ClusterCostModel",
    "CostAwareEviction",
    "CostReport",
    "ExecutorPool",
    "HealthMonitor",
    "HealthReport",
    "LRUEviction",
    "HashPartitioner",
    "NnzBalancedPartitioner",
    "JobProfile",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Partitioner",
    "RangePartitioner",
    "RDD",
    "RecordBatch",
    "Span",
    "StageScheduler",
    "StageTiming",
    "StorageLevel",
    "TelemetrySampler",
    "TelemetryServer",
    "TimeSeriesStore",
    "Tracer",
    "WorkerHeartbeats",
    "columnar_enabled",
    "disable_columnar",
    "disable_pipelining",
    "enable_columnar",
    "enable_pipelining",
    "memory_report",
    "pipelining_enabled",
    "prometheus_text",
]
