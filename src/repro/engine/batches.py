"""Packed shuffle blocks: the columnar shuffle data plane.

Spangle moves chunk-granularity data — flat payload + bitmask buffers —
yet the generic shuffle buckets one Python tuple at a time. This module
provides the packed alternative: a :class:`RecordBatch` ships a whole
bucket as ``(key_array, value_payload_buffer, offsets, bitmask_words)``
with exact ``nbytes`` accounting, and the combine kernels fold values on
sorted key runs in one numpy pass.

The contract is strict: everything here must be **byte-identical** to
the generic per-record path (the dict-based combine/merge in
``engine/rdd.py``) — same record order, same Python value types, same
float bits. Packing therefore refuses anything it cannot reproduce
exactly and returns ``None``, which callers treat as "fall back to the
tuple path":

- keys pack only when every key is a plain ``int`` (``bool`` and numpy
  scalars would unpack as a different type) small enough that
  ``hash(k) == k`` (the ``2**61 - 1`` modulus never engages);
- values pack only for uniform plain floats, plain ints, 2-tuples of
  scalars, same-dtype numpy arrays, or registered codecs (chunks —
  registered by ``repro.core`` so the engine layer stays core-free);
- array-backed codecs additionally refuse once the mean payload per
  record reaches :data:`VALUE_PACK_BYTE_LIMIT`: packing copies the
  payload (concatenate, bucket gather, unpack), which pays off only
  while per-record framing overhead dominates — large buffers travel
  faster as plain Python references;
- the float-sum kernel uses ``np.add.at`` (unbuffered, applied in index
  order) rather than ``reduceat`` because numpy's pairwise summation
  re-associates float adds; min/max refuse NaN (numpy propagates it,
  Python's ``min`` does not); int sums refuse magnitudes that could
  overflow int64 where Python would promote to bignum.

``disable_columnar()`` routes every shuffle back through the generic
tuple path (standalone or as a context manager), mirroring
``repro.plan.disable_fusion``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ArrayValues",
    "BatchSegment",
    "PairValues",
    "RecordBatch",
    "ScalarValues",
    "VALUE_PACK_BYTE_LIMIT",
    "columnar_enabled",
    "combine_runs",
    "disable_columnar",
    "enable_columnar",
    "group_indices_by_partition",
    "pack_int_keys",
    "pack_values",
    "register_value_codec",
]


# ----------------------------------------------------------------------
# columnar switch
# ----------------------------------------------------------------------

class _ColumnarToggle:
    """Flips the global columnar-shuffle switch; restores the prior
    state when used as a context manager."""

    def __init__(self, enabled: bool):
        self._previous = _STATE["enabled"]
        _STATE["enabled"] = enabled

    def __enter__(self) -> "_ColumnarToggle":
        return self

    def __exit__(self, *exc) -> bool:
        _STATE["enabled"] = self._previous
        return False


_STATE = {"enabled": True}


def columnar_enabled() -> bool:
    """Whether shuffles attempt the packed columnar path (True) or
    always bucket per record."""
    return _STATE["enabled"]


def enable_columnar() -> _ColumnarToggle:
    """Turn the columnar shuffle on (the default). Usable as ``with``."""
    return _ColumnarToggle(True)


def disable_columnar() -> _ColumnarToggle:
    """Escape hatch: bucket and combine one record at a time. Usable
    standalone or as a ``with`` block that restores the previous
    setting on exit."""
    return _ColumnarToggle(False)


# ----------------------------------------------------------------------
# key column
# ----------------------------------------------------------------------

#: Python hashes ints modulo this Mersenne prime; keys at or beyond it
#: no longer satisfy ``hash(k) == k`` and must take the generic path.
HASH_MODULUS = (1 << 61) - 1


def pack_int_keys(records):
    """The int64 key column of ``records``, or None when keys don't pack.

    Only plain ``int`` keys qualify: ``bool`` is a subclass but would
    unpack as ``1``/``0``, and numpy scalars would unpack as plain ints
    — either breaks byte-identity with the generic path.
    """
    if not records:
        return None
    if not all(type(record[0]) is int for record in records):
        return None
    try:
        return np.fromiter((record[0] for record in records),
                           dtype=np.int64, count=len(records))
    except OverflowError:
        return None


# ----------------------------------------------------------------------
# packed value columns
# ----------------------------------------------------------------------

class ScalarValues:
    """A column of uniform plain floats or plain ints."""

    __slots__ = ("data", "pykind")

    def __init__(self, data: np.ndarray, pykind: str):
        self.data = data
        self.pykind = pykind    # "float" | "int"

    def __len__(self) -> int:
        return self.data.size

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def unpack(self) -> list:
        # float64/int64 tolist() reproduces the original Python scalars
        # bit for bit
        return self.data.tolist()

    def gather(self, idx: np.ndarray) -> "ScalarValues":
        return ScalarValues(self.data[idx], self.pykind)


class PairValues:
    """A column of uniform 2-tuples of scalars, e.g. ``(offset, value)``
    cell records from the ingest pipeline."""

    __slots__ = ("first", "second")

    def __init__(self, first: ScalarValues, second: ScalarValues):
        self.first = first
        self.second = second

    def __len__(self) -> int:
        return len(self.first)

    @property
    def nbytes(self) -> int:
        return self.first.nbytes + self.second.nbytes

    def unpack(self) -> list:
        return list(zip(self.first.unpack(), self.second.unpack()))

    def gather(self, idx: np.ndarray) -> "PairValues":
        return PairValues(self.first.gather(idx), self.second.gather(idx))


class ArrayValues:
    """A column of same-dtype numpy arrays, stored as one flat payload
    buffer plus per-record lengths/shapes (matmul partial blocks,
    gradient vectors, ...)."""

    __slots__ = ("data", "lengths", "shapes", "offsets")

    def __init__(self, data: np.ndarray, lengths: np.ndarray,
                 shapes: np.ndarray):
        self.data = data            # 1-D concatenation of raveled arrays
        self.lengths = lengths      # int64, one entry per record
        self.shapes = shapes        # int64 (n_records, ndim)
        offsets = np.zeros(lengths.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        self.offsets = offsets

    def __len__(self) -> int:
        return self.lengths.size

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes + self.lengths.nbytes
                   + self.shapes.nbytes)

    def unpack(self) -> list:
        out = []
        data, offsets, shapes = self.data, self.offsets, self.shapes
        for i in range(self.lengths.size):
            arr = data[offsets[i]:offsets[i + 1]].copy()
            out.append(arr.reshape(tuple(shapes[i])))
        return out

    def gather(self, idx: np.ndarray) -> "ArrayValues":
        lengths = self.lengths[idx]
        total = int(lengths.sum())
        new_offsets = np.zeros(lengths.size, dtype=np.int64)
        np.cumsum(lengths[:-1], out=new_offsets[1:])
        flat = (np.repeat(self.offsets[idx] - new_offsets, lengths)
                + np.arange(total, dtype=np.int64))
        return ArrayValues(self.data[flat], lengths, self.shapes[idx])


def _probe_scalars(values):
    kind = type(values[0])
    if kind is float:
        if not all(type(v) is float for v in values):
            return None
        data = np.fromiter(values, dtype=np.float64, count=len(values))
        return ScalarValues(data, "float")
    if kind is int:
        if not all(type(v) is int for v in values):
            return None
        data = np.fromiter(values, dtype=np.int64, count=len(values))
        return ScalarValues(data, "int")
    return None


_SCALAR_DTYPES = {float: np.float64, int: np.int64}
_SCALAR_KINDS = {float: "float", int: "int"}


def _probe_pairs(values):
    first = values[0]
    if type(first) is not tuple or len(first) != 2:
        return None
    kind_a, kind_b = type(first[0]), type(first[1])
    if kind_a not in _SCALAR_DTYPES or kind_b not in _SCALAR_DTYPES:
        return None
    if not all(type(v) is tuple and len(v) == 2
               and type(v[0]) is kind_a and type(v[1]) is kind_b
               for v in values):
        return None
    col_a = np.fromiter((v[0] for v in values),
                        dtype=_SCALAR_DTYPES[kind_a], count=len(values))
    col_b = np.fromiter((v[1] for v in values),
                        dtype=_SCALAR_DTYPES[kind_b], count=len(values))
    return PairValues(ScalarValues(col_a, _SCALAR_KINDS[kind_a]),
                      ScalarValues(col_b, _SCALAR_KINDS[kind_b]))


#: mean payload bytes per record at which array-backed codecs stop
#: packing. Packing copies the payload three times (concatenate, bucket
#: gather, unpack); that only beats the generic path while per-record
#: framing overhead dominates. Past this point the buffers themselves
#: dominate and shipping them as Python references is free.
VALUE_PACK_BYTE_LIMIT = 4096


def _probe_arrays(values):
    first = values[0]
    if type(first) is not np.ndarray:
        return None
    dtype, ndim = first.dtype, first.ndim
    if dtype.hasobject or ndim == 0:
        return None
    for v in values:
        if (type(v) is not np.ndarray or v.dtype != dtype
                or v.ndim != ndim):
            return None
        if ndim > 1 and not v.flags.c_contiguous:
            # a raveled copy would unpickle C-ordered; the original may
            # not — refuse rather than risk a byte mismatch
            return None
    total_bytes = dtype.itemsize * sum(v.size for v in values)
    if total_bytes >= VALUE_PACK_BYTE_LIMIT * len(values):
        return None
    data = np.concatenate([v.ravel() for v in values]) if values else None
    lengths = np.fromiter((v.size for v in values), dtype=np.int64,
                          count=len(values))
    shapes = np.array([v.shape for v in values], dtype=np.int64)
    return ArrayValues(data, lengths, shapes)


#: probes tried in order by :func:`pack_values`; each self-selects on
#: the first value's type, so ordering does not affect which one wins
_VALUE_CODECS = [_probe_scalars, _probe_pairs, _probe_arrays]


def register_value_codec(probe) -> None:
    """Register ``probe(values) -> PackedValues | None``.

    Used by higher layers (``repro.core`` registers the Chunk codec) so
    the engine never imports them. A probe must return an object with
    the ``PackedValues`` interface: ``__len__``, ``nbytes``,
    ``unpack()`` (byte-identical Python values, in order) and
    ``gather(idx)``.
    """
    _VALUE_CODECS.append(probe)


def pack_values(values):
    """Pack a value column through the first matching codec, or None."""
    if not values:
        return None
    for probe in _VALUE_CODECS:
        try:
            packed = probe(values)
        except (TypeError, ValueError, OverflowError):
            packed = None
        if packed is not None:
            return packed
    return None


# ----------------------------------------------------------------------
# record batches
# ----------------------------------------------------------------------

class RecordBatch:
    """One shuffle bucket in columnar form: an int64 key column plus a
    packed value column, with exact byte accounting."""

    __slots__ = ("keys", "values")

    def __init__(self, keys: np.ndarray, values):
        self.keys = keys
        self.values = values

    def __len__(self) -> int:
        return int(self.keys.size)

    @property
    def nbytes(self) -> int:
        return int(self.keys.nbytes) + self.values.nbytes

    def records(self) -> list:
        """The original ``(key, value)`` tuples, byte-identical."""
        return list(zip(self.keys.tolist(), self.values.unpack()))

    def __repr__(self) -> str:
        return (f"<RecordBatch n={len(self)} "
                f"values={type(self.values).__name__} "
                f"nbytes={self.nbytes}>")


class BatchSegment:
    """A RecordBatch plus the map-side-combine flag, as stored in a
    reducer's bucket by :class:`~repro.engine.rdd.ShuffledRDD`."""

    __slots__ = ("batch", "combined")

    def __init__(self, batch: RecordBatch, combined: bool):
        self.batch = batch
        self.combined = combined

    @property
    def nbytes(self) -> int:
        return self.batch.nbytes


def pack_records(records):
    """``records`` as one RecordBatch, or None when either column
    refuses (see the module docstring for the exact rules)."""
    keys = pack_int_keys(records)
    if keys is None:
        return None
    values = pack_values([record[1] for record in records])
    if values is None:
        return None
    return RecordBatch(keys, values)


# ----------------------------------------------------------------------
# vectorized grouping and combine kernels
# ----------------------------------------------------------------------

def group_indices_by_partition(pids: np.ndarray, num_partitions: int):
    """Per-reducer record indices, preserving record order within each.

    One stable argsort replaces ``num_records`` Python-level
    ``partition(key)`` calls; the per-bucket index arrays slice the
    packed columns directly.
    """
    order = np.argsort(pids, kind="stable")
    counts = np.bincount(pids, minlength=num_partitions)
    bounds = np.zeros(num_partitions + 1, dtype=np.int64)
    np.cumsum(counts, out=bounds[1:])
    return [order[bounds[t]:bounds[t + 1]]
            for t in range(num_partitions)]


#: largest |value| * count product allowed for the vectorized int sum;
#: beyond it int64 could wrap where Python promotes to bignum
_INT_SUM_LIMIT = 1 << 62


def combine_runs(keys: np.ndarray, data: np.ndarray, kernel: str):
    """Fold equal keys with ``kernel`` ("sum" | "min" | "max").

    Returns ``(keys, data)`` with one entry per distinct key, in the
    key's **first appearance** order — exactly the insertion order of
    the generic dict combine — or None when bit-identity can't be
    guaranteed (NaN under min/max, int64 overflow risk).

    Float sums run through ``np.add.at``: unbuffered, applied in index
    order, so every accumulator sees the same sequence of IEEE adds as
    the sequential Python fold. ``reduceat`` is only used where
    re-association is exact (ints, min/max).
    """
    if keys.size == 0:
        return keys, data
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    sorted_data = data[order]
    boundary = np.empty(sorted_keys.size, dtype=bool)
    boundary[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=boundary[1:])
    starts = np.nonzero(boundary)[0]
    if kernel == "sum":
        if sorted_data.dtype.kind == "i":
            magnitude = max(abs(int(sorted_data.max())),
                            abs(int(sorted_data.min())))
            if magnitude * sorted_data.size >= _INT_SUM_LIMIT:
                return None
            combined = np.add.reduceat(sorted_data, starts)
        else:
            combined = sorted_data[starts].copy()
            rest = ~boundary
            run_ids = np.cumsum(boundary) - 1
            np.add.at(combined, run_ids[rest], sorted_data[rest])
    elif kernel in ("min", "max"):
        if sorted_data.dtype.kind == "f" and np.isnan(sorted_data).any():
            return None
        ufunc = np.minimum if kernel == "min" else np.maximum
        combined = ufunc.reduceat(sorted_data, starts)
    else:
        return None
    # restore first-appearance order, matching the generic dict combine
    first_index = order[starts]
    appearance = np.argsort(first_index, kind="stable")
    return sorted_keys[starts][appearance], combined[appearance]


#: kernels understood by :func:`combine_runs`; ``combine_kernel=``
#: arguments are validated against this set
COMBINE_KERNELS = ("sum", "min", "max")
