"""Modeled cluster time from measured engine metrics.

The reproduction runs in one process, so raw wall-clock misses the two
costs that dominate the paper's cluster experiments: network transfer
during shuffles and task scheduling overhead (plus disk I/O for the
SciDB-style baseline). The cost model converts the engine's exact byte
and task counts into a modeled time:

    modeled = wall_clock
            + shuffle_bytes / network_bandwidth
            + tasks * task_overhead
            + (disk_read + disk_write) / disk_bandwidth

Defaults approximate the paper's testbed: 1 GbE (~117 MB/s effective),
7200 RPM HDDs (~150 MB/s sequential), and Spark's well-known ~5-10 ms
per-task launch overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.metrics import MetricsSnapshot


@dataclass(frozen=True)
class CostReport:
    """Breakdown of a modeled execution time, in seconds."""

    wall_clock_s: float
    network_s: float
    scheduling_s: float
    disk_s: float

    @property
    def modeled_s(self) -> float:
        return (
            self.wall_clock_s + self.network_s
            + self.scheduling_s + self.disk_s
        )

    def as_dict(self) -> dict:
        return {
            "wall_clock_s": self.wall_clock_s,
            "network_s": self.network_s,
            "scheduling_s": self.scheduling_s,
            "disk_s": self.disk_s,
            "modeled_s": self.modeled_s,
        }


class ClusterCostModel:
    """Turns a metrics delta plus wall time into a :class:`CostReport`.

    The same rates also price individual cache blocks for the
    cost-aware eviction policy (:mod:`repro.engine.storage`): what
    bringing a block back would cost, either by reloading its spill
    file or by recomputing it through its lineage.
    """

    def __init__(self, network_bandwidth_bytes_s: float = 117e6,
                 disk_bandwidth_bytes_s: float = 150e6,
                 task_overhead_s: float = 0.005,
                 recompute_bandwidth_bytes_s: float = 1e9,
                 dense_flops_s: float = 2e10,
                 coo_pairs_s: float = 8e6,
                 csr_pairs_s: float = 8e7,
                 scatter_ops_s: float = 2e9):
        self.network_bandwidth_bytes_s = network_bandwidth_bytes_s
        self.disk_bandwidth_bytes_s = disk_bandwidth_bytes_s
        self.task_overhead_s = task_overhead_s
        # effective in-memory production rate of one lineage level:
        # recomputing a block re-runs roughly depth passes over its bytes
        self.recompute_bandwidth_bytes_s = recompute_bandwidth_bytes_s
        # matmul kernel rates: BLAS multiply-adds, partial-product
        # pairs emitted by the per-k COO join loop vs the vectorized
        # CSR expansion, and scattered row-updates of the CSR×dense
        # kernel. The COO/dense ratio is calibrated so the derived
        # density gate reproduces the legacy SPARSE_KERNEL_THRESHOLD
        # (0.02) when nothing overrides it: sqrt(8e6 / 2e10) == 0.02.
        self.dense_flops_s = dense_flops_s
        self.coo_pairs_s = coo_pairs_s
        self.csr_pairs_s = csr_pairs_s
        self.scatter_ops_s = scatter_ops_s

    # ------------------------------------------------------------------
    # per-block rates (cost-aware eviction)
    # ------------------------------------------------------------------

    # ------------------------------------------------------------------
    # logical-plan pricing (the rewrite optimizer)
    # ------------------------------------------------------------------
    # The optimizer (repro.core.optimizer) prices candidate plans before
    # any task runs, so these helpers work from *estimates*: bytes that
    # would flow through a plan node and the density of the chunks
    # carrying them. They intentionally share the rates used everywhere
    # else in the model, so "cheaper here" means cheaper on the same
    # modeled cluster the benchmarks report.

    def scan_seconds(self, nbytes: int, density: float = 1.0) -> float:
        """Modeled time for one chunk-local pass over ``nbytes``.

        ``density`` scales the dense byte count down to the payload a
        sparse chunk actually stores (a 1%-dense SPARSE chunk scans ~1%
        of the cells a DENSE chunk would). Clamped to [0, 1]; zero bytes
        cost zero.
        """
        if nbytes <= 0:
            return 0.0
        density = min(max(float(density), 0.0), 1.0)
        return nbytes * density / self.recompute_bandwidth_bytes_s

    def shuffle_seconds(self, nbytes: int, num_tasks: int = 0) -> float:
        """Modeled time to move ``nbytes`` through a shuffle.

        The bytes cross the network once; ``num_tasks`` adds the
        per-task launch overhead of the reduce side. Zero bytes with
        zero tasks cost zero.
        """
        transfer = max(int(nbytes), 0) / self.network_bandwidth_bytes_s
        return transfer + max(int(num_tasks), 0) * self.task_overhead_s

    def serial_job_seconds(self, stage_seconds: dict) -> float:
        """Modeled job time when stages run one at a time behind
        barriers (``disable_pipelining()``): the sum over stages.

        ``stage_seconds`` maps a stage key to its modeled seconds; the
        keys only need to match the ``deps`` mapping handed to
        :meth:`pipelined_job_seconds`.
        """
        return float(sum(stage_seconds.values()))

    def pipelined_job_seconds(self, stage_seconds: dict,
                              deps: dict) -> float:
        """Modeled job time under the pipelined scheduler: the critical
        path through the stage DAG — the heaviest dependency chain —
        instead of the barrier scheduler's sum-of-stages.

        ``stage_seconds`` maps a stage key to its modeled seconds and
        ``deps`` maps a stage key to the keys it depends on (absent
        keys depend on nothing). A stage can start the moment its last
        dependency finishes and independent stages overlap perfectly,
        so each stage's modeled finish time is its own cost plus the
        latest dependency finish; the job takes as long as the latest
        stage. Equals :meth:`serial_job_seconds` for a pure chain,
        and the max over stages for fully independent ones.
        """
        memo = {}

        def finish_time(key):
            if key in memo:
                return memo[key]
            memo[key] = 0.0  # cycle guard: a revisit contributes nothing
            upstream = max(
                (finish_time(dep) for dep in deps.get(key, ())),
                default=0.0)
            memo[key] = float(stage_seconds.get(key, 0.0)) + upstream
            return memo[key]

        return max((finish_time(key) for key in stage_seconds),
                   default=0.0)

    def sparse_kernel_threshold(self) -> float:
        """Density below which sparse partial products beat BLAS.

        Equating the pair-join cost ``dₐ·d_b·m·k·n / coo_pairs_s`` with
        the dense cost ``m·k·n / dense_flops_s`` at equal operand
        densities gives ``d = sqrt(coo_pairs_s / dense_flops_s)`` —
        0.02 at the default rates, i.e. the legacy
        ``SPARSE_KERNEL_THRESHOLD`` falls out of the model instead of
        being hard-coded.
        """
        return float(np.sqrt(self.coo_pairs_s / self.dense_flops_s))

    def scatter_kernel_threshold(self) -> float:
        """Density below which the one-sided CSR×dense scatter kernel
        beats the dense kernel: ``scatter_ops_s / dense_flops_s``
        (0.1 at the default rates)."""
        return float(self.scatter_ops_s / self.dense_flops_s)

    def matmul_kernel_seconds(self, m: float, k: float, n: float,
                              density_left: float, density_right: float,
                              kind: str) -> float:
        """Modeled compute seconds for one ``(m×k) @ (k×n)`` product.

        ``kind`` is the representation pair: ``"dense"`` (BLAS),
        ``"coo"`` (per-k join loop), ``"csr"`` (vectorized CSR×CSR when
        both sides qualify, CSR×dense scatter when only one does).
        Sparse kinds price the expected partial-product pairs
        ``nnzₐ·nnz_b / k`` plus one pass to build the index structure.
        """
        da = min(max(float(density_left), 0.0), 1.0)
        db = min(max(float(density_right), 0.0), 1.0)
        if kind == "dense":
            return m * k * n / self.dense_flops_s
        nnz_a = da * m * k
        nnz_b = db * k * n
        pairs = nnz_a * nnz_b / max(k, 1.0)
        setup = (nnz_a + nnz_b) / self.scatter_ops_s
        if kind == "coo":
            return pairs / self.coo_pairs_s + setup
        if kind == "csr":
            gate = self.sparse_kernel_threshold()
            if da < gate and db < gate:
                return pairs / self.csr_pairs_s + setup
            # one-sided: scatter the sparse side's rows over the
            # dense side's columns
            sparse_nnz = nnz_a if da <= db else nnz_b
            width = n if da <= db else m
            return sparse_nnz * width / self.scatter_ops_s + setup
        raise ValueError(f"unknown matmul kernel kind {kind!r}")

    def skewed_stage_seconds(self, compute_s: float,
                             imbalance: float) -> float:
        """Wall time of a parallel stage whose per-partition load ratio
        (max/mean) is ``imbalance``: the busiest executor finishes last,
        so perfectly divisible work stretches by exactly that factor."""
        return compute_s * max(float(imbalance), 1.0)

    def reload_seconds(self, nbytes: int) -> float:
        """Modeled time to read a spilled block back from disk."""
        return nbytes / self.disk_bandwidth_bytes_s

    def spill_seconds(self, nbytes: int) -> float:
        """Modeled time to write a victim block to disk."""
        return nbytes / self.disk_bandwidth_bytes_s

    def recompute_seconds(self, nbytes: int, lineage_depth: int,
                          shuffle_depth: int) -> float:
        """Modeled time to rebuild a block from its lineage.

        Each lineage level is one pass over the block's bytes; every
        wide dependency below it additionally moves the bytes across
        the network and launches tasks.
        """
        compute = lineage_depth * nbytes / self.recompute_bandwidth_bytes_s
        shuffle = shuffle_depth * (nbytes / self.network_bandwidth_bytes_s
                                   + self.task_overhead_s)
        return compute + shuffle

    def report(self, wall_clock_s: float,
               delta: MetricsSnapshot) -> CostReport:
        # both shuffled data and task results returned to the driver
        # cross the network on a real cluster
        network_s = (
            (delta.shuffle_bytes + delta.result_bytes
             + delta.broadcast_bytes)
            / self.network_bandwidth_bytes_s
        )
        scheduling_s = delta.tasks_launched * self.task_overhead_s
        disk_s = (
            (delta.disk_read_bytes + delta.disk_write_bytes)
            / self.disk_bandwidth_bytes_s
        )
        return CostReport(
            wall_clock_s=wall_clock_s,
            network_s=network_s,
            scheduling_s=scheduling_s,
            disk_s=disk_s,
        )
