"""Spark (COO) baseline: a matrix as an RDD of (i, j, value) triples.

This is the hand-rolled coordinate-format matrix the paper benchmarks as
"Spark (COO)". Its character: ideal for hyper-sparse data (it stores
exactly the non-zeros and nothing else), but matrix multiplication joins
on the contraction index and materializes one record per *scalar*
partial product — the record count explodes with density, which is why
the paper sees COO survive Hardesty (6.4e-7 dense) yet fail Mouse
(0.014 dense).
"""

from __future__ import annotations

import numpy as np

from repro.errors import OutOfMemoryError, ShapeMismatchError
from repro.matrix.vector import SpangleVector


class SparkCOOMatrix:
    """A distributed COO matrix with join-based multiplication."""

    name = "Spark (COO)"

    def __init__(self, context, rdd, shape):
        self.context = context
        self.rdd = rdd
        self.shape = tuple(shape)

    @classmethod
    def from_coo(cls, context, rows, cols, values, shape,
                 num_partitions=None) -> "SparkCOOMatrix":
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if num_partitions is None:
            num_partitions = context.default_parallelism
        triples = list(zip(rows.tolist(), cols.tolist(),
                           values.tolist()))
        return cls(context,
                   context.parallelize(triples, num_partitions), shape)

    def nnz(self) -> int:
        return self.rdd.count()

    def memory_bytes(self) -> int:
        # 8 bytes each for row, col, value per stored entry
        return self.nnz() * 24

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------

    def dot_vector(self, vector: SpangleVector) -> SpangleVector:
        if vector.size != self.shape[1]:
            raise ShapeMismatchError(
                f"matrix has {self.shape[1]} columns, vector has "
                f"{vector.size}")
        n_rows = self.shape[0]
        data = vector.data

        def partials(part):
            partial = np.zeros(n_rows)
            for i, j, v in part:
                partial[i] += v * data[j]
            return [partial]

        pieces = self.rdd.map_partitions(partials).collect()
        out = np.zeros(n_rows)
        for piece in pieces:
            out += piece
        return SpangleVector(out, "col")

    def vector_dot(self, vector: SpangleVector) -> SpangleVector:
        if vector.size != self.shape[0]:
            raise ShapeMismatchError(
                f"matrix has {self.shape[0]} rows, vector has "
                f"{vector.size}")
        n_cols = self.shape[1]
        data = vector.data

        def partials(part):
            partial = np.zeros(n_cols)
            for i, j, v in part:
                partial[j] += v * data[i]
            return [partial]

        pieces = self.rdd.map_partitions(partials).collect()
        out = np.zeros(n_cols)
        for piece in pieces:
            out += piece
        return SpangleVector(out, "row")

    def _estimate_join_records(self, other: "SparkCOOMatrix") -> int:
        """Expected scalar partial products of the contraction join.

        With nnz_l entries spread over K contraction values and nnz_r
        likewise, the join emits roughly nnz_l * nnz_r / K records.
        """
        k = self.shape[1]
        return max(1, (self.nnz() * other.nnz()) // max(k, 1))

    def multiply(self, other: "SparkCOOMatrix",
                 max_intermediate_records: int = 50_000_000
                 ) -> "SparkCOOMatrix":
        """Join on the contraction index; one record per scalar product.

        Raises :class:`OutOfMemoryError` when the estimated intermediate
        record count exceeds the executor budget — COO's density wall.
        """
        if self.shape[1] != other.shape[0]:
            raise ShapeMismatchError(
                f"cannot multiply {self.shape} by {other.shape}")
        estimated = self._estimate_join_records(other)
        if estimated > max_intermediate_records:
            raise OutOfMemoryError(
                "Spark COO executors (join intermediates)",
                estimated * 24, max_intermediate_records * 24)
        left_by_k = self.rdd.map(lambda t: (t[1], (t[0], t[2])))
        right_by_k = other.rdd.map(lambda t: (t[0], (t[1], t[2])))
        joined = left_by_k.join(right_by_k)
        products = joined.map(
            lambda kv: ((kv[1][0][0], kv[1][1][0]),
                        kv[1][0][1] * kv[1][1][1]))
        summed = products.reduce_by_key(lambda a, b: a + b)
        triples = summed.map(lambda kv: (kv[0][0], kv[0][1], kv[1])) \
                        .filter(lambda t: t[2] != 0)
        return SparkCOOMatrix(self.context, triples,
                              (self.shape[0], other.shape[1]))

    def gram(self, max_intermediate_records: int = 50_000_000
             ) -> "SparkCOOMatrix":
        """MᵀM by self-joining on the row index (pairs per row explode)."""
        estimated = max(
            1, (self.nnz() * self.nnz()) // max(self.shape[0], 1))
        if estimated > max_intermediate_records:
            raise OutOfMemoryError(
                "Spark COO executors (gram intermediates)",
                estimated * 24, max_intermediate_records * 24)
        by_row = self.rdd.map(lambda t: (t[0], (t[1], t[2])))
        joined = by_row.join(by_row)
        products = joined.map(
            lambda kv: ((kv[1][0][0], kv[1][1][0]),
                        kv[1][0][1] * kv[1][1][1]))
        summed = products.reduce_by_key(lambda a, b: a + b)
        triples = summed.map(lambda kv: (kv[0][0], kv[0][1], kv[1])) \
                        .filter(lambda t: t[2] != 0)
        return SparkCOOMatrix(self.context, triples,
                              (self.shape[1], self.shape[1]))

    def to_numpy(self) -> np.ndarray:
        out = np.zeros(self.shape)
        for i, j, v in self.rdd.collect():
            out[i, j] += v
        return out
