"""SciSpark-style baseline: dense array tiles in an RDD.

The paper's characterization (Sections VII-B, VIII): SciSpark

- loads NetCDF data **densely** and only then splits it — so it needs
  memory proportional to the *logical* array size, failing on data that
  a sparse representation would fit;
- keeps tiles dense for the rest of the pipeline — shuffles carry full
  tiles, null cells included (it marks nulls with NaN);
- exposes few array operations (users hand-roll queries over tiles);
- provides no distributed matrix multiplication.

This class mirrors those decisions over our engine so Fig. 7 and Fig. 10
measure the same trade-offs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import OutOfMemoryError, SpangleError
from repro.matrix.vector import SpangleVector


class UnsupportedOperation(SpangleError):
    """The baseline system genuinely lacks this operation."""


class SciSparkSystem:
    """Dense-tile RDD processing in SciSpark's style."""

    name = "SciSpark"

    def __init__(self, context, driver_memory_bytes: int = None):
        self.context = context
        self.driver_memory_bytes = driver_memory_bytes

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------

    def load_scenes(self, scenes, tile_shape=(128, 128)):
        """Load a list of 2-D scenes (NaN = null) as dense tiles.

        SciSpark materializes the dense arrays up front; if the dense
        footprint exceeds the driver budget, ingest fails — the paper's
        "it can fail to load data before distribution".
        """
        dense_bytes = sum(
            int(np.prod(scene.shape)) * 8 for scene in scenes)
        if self.driver_memory_bytes is not None \
                and dense_bytes > self.driver_memory_bytes:
            raise OutOfMemoryError("SciSpark driver", dense_bytes,
                                   self.driver_memory_bytes)
        records = []
        for scene_id, scene in enumerate(scenes):
            scene = np.asarray(scene, dtype=np.float64)
            rows, cols = scene.shape
            for r0 in range(0, rows, tile_shape[0]):
                for c0 in range(0, cols, tile_shape[1]):
                    tile = scene[r0:r0 + tile_shape[0],
                                 c0:c0 + tile_shape[1]].copy()
                    records.append(
                        ((scene_id, r0, c0), tile))
        return self.context.parallelize(
            records, self.context.default_parallelism)

    # ------------------------------------------------------------------
    # hand-rolled query operations (the paper implemented these
    # against SciSpark's limited API)
    # ------------------------------------------------------------------

    @staticmethod
    def _tile_in_range(key, tile, lo, hi):
        _scene, r0, c0 = key
        rows, cols = tile.shape
        if r0 + rows <= lo[0] or r0 > hi[0]:
            return None
        if c0 + cols <= lo[1] or c0 > hi[1]:
            return None
        r_lo = max(lo[0] - r0, 0)
        r_hi = min(hi[0] - r0 + 1, rows)
        c_lo = max(lo[1] - c0, 0)
        c_hi = min(hi[1] - c0 + 1, cols)
        return tile[r_lo:r_hi, c_lo:c_hi]

    def select_range(self, tiles, lo, hi):
        """Subarray by scanning every dense tile (no chunk-ID pruning)."""

        def clip(record):
            key, tile = record
            region = self._tile_in_range(key, tile, lo, hi)
            if region is None or region.size == 0:
                return []
            return [(key, region)]

        return tiles.flat_map(clip)

    def filter_cells(self, tiles, predicate):
        """Mark failing cells NaN — tiles stay dense."""

        def apply(record):
            key, tile = record
            out = tile.copy()
            with np.errstate(invalid="ignore"):
                keep = predicate(out) & ~np.isnan(out)
            out[~keep] = np.nan
            return key, out

        return tiles.map(apply)

    def aggregate_mean(self, tiles) -> float:
        """Global mean of non-NaN cells."""
        def stats(part):
            total = 0.0
            count = 0
            for _key, tile in part:
                mask = ~np.isnan(tile)
                total += float(tile[mask].sum())
                count += int(mask.sum())
            return [(total, count)]

        pieces = tiles.map_partitions(stats).collect()
        total = sum(p[0] for p in pieces)
        count = sum(p[1] for p in pieces)
        return total / count if count else float("nan")

    def regrid_mean(self, tiles, grid: int):
        """Average over grid x grid windows.

        SciSpark has no overlap support: boundary windows need cells
        from neighbouring tiles, so whole dense tiles are shuffled to be
        re-assembled per scene before regridding.
        """
        def by_scene(record):
            (scene, r0, c0), tile = record
            return scene, (r0, c0, tile)

        def regrid(pieces):
            rows = max(r0 + t.shape[0] for r0, _c0, t in pieces)
            cols = max(c0 + t.shape[1] for _r0, c0, t in pieces)
            scene = np.full((rows, cols), np.nan)
            for r0, c0, tile in pieces:
                scene[r0:r0 + tile.shape[0],
                      c0:c0 + tile.shape[1]] = tile
            out_rows = rows // grid
            out_cols = cols // grid
            trimmed = scene[:out_rows * grid, :out_cols * grid]
            blocks = trimmed.reshape(out_rows, grid, out_cols, grid)
            mask = ~np.isnan(blocks)
            sums = np.where(mask, blocks, 0.0).sum(axis=(1, 3))
            counts = mask.sum(axis=(1, 3))
            with np.errstate(invalid="ignore", divide="ignore"):
                return np.where(counts > 0, sums / counts, np.nan)

        return tiles.map(by_scene).group_by_key().map_values(regrid)

    def count_matching(self, tiles, predicate) -> int:
        def count(part):
            total = 0
            for _key, tile in part:
                with np.errstate(invalid="ignore"):
                    total += int(
                        (predicate(tile) & ~np.isnan(tile)).sum())
            return [total]

        return sum(tiles.map_partitions(count).collect())

    def density_windows(self, tiles, window: int, min_count: int) -> int:
        """Count windows with more than ``min_count`` observations.

        Same full-scene reassembly shuffle as regrid (no overlap
        support).
        """
        def by_scene(record):
            (scene, r0, c0), tile = record
            return scene, (r0, c0, tile)

        def windows(pieces):
            rows = max(r0 + t.shape[0] for r0, _c0, t in pieces)
            cols = max(c0 + t.shape[1] for _r0, c0, t in pieces)
            scene = np.full((rows, cols), np.nan)
            for r0, c0, tile in pieces:
                scene[r0:r0 + tile.shape[0],
                      c0:c0 + tile.shape[1]] = tile
            valid = ~np.isnan(scene)
            out_rows = rows // window
            out_cols = cols // window
            counts = valid[:out_rows * window, :out_cols * window] \
                .reshape(out_rows, window, out_cols, window) \
                .sum(axis=(1, 3))
            return int((counts > min_count).sum())

        return sum(
            tiles.map(by_scene).group_by_key()
            .map_values(windows).values().collect()
        )

    # ------------------------------------------------------------------
    # linear algebra (dense blocks; no distributed matmul)
    # ------------------------------------------------------------------

    def load_matrix(self, dense, block_shape=(128, 128)):
        """A matrix as dense blocks — zeros stored explicitly."""
        dense = np.asarray(dense, dtype=np.float64)
        records = []
        rows, cols = dense.shape
        for r0 in range(0, rows, block_shape[0]):
            for c0 in range(0, cols, block_shape[1]):
                records.append(
                    ((r0, c0),
                     dense[r0:r0 + block_shape[0],
                           c0:c0 + block_shape[1]].copy()))
        return _SciSparkMatrix(self, records, dense.shape)

    def matrix_from_coo(self, rows, cols, values, shape,
                        block_shape=(128, 128),
                        memory_budget_bytes: int = None):
        """Densify a sparse matrix (SciSpark manages data as dense).

        Refuses when the dense footprint exceeds the budget — the Fig. 10
        "x" marks for the larger matrices.
        """
        dense_bytes = int(shape[0]) * int(shape[1]) * 8
        budget = memory_budget_bytes or self.driver_memory_bytes
        if budget is not None and dense_bytes > budget:
            raise OutOfMemoryError("SciSpark executors", dense_bytes,
                                   budget)
        dense = np.zeros(shape)
        dense[np.asarray(rows), np.asarray(cols)] = np.asarray(values)
        return self.load_matrix(dense, block_shape)


class _SciSparkMatrix:
    """Dense block matrix with only local linear algebra."""

    def __init__(self, system: SciSparkSystem, records, shape):
        self.system = system
        self.shape = shape
        self.rdd = system.context.parallelize(
            records, system.context.default_parallelism)

    def memory_bytes(self) -> int:
        return self.rdd.map(lambda kv: kv[1].nbytes).fold(
            0, lambda a, b: a + b)

    def dot_vector(self, vector: SpangleVector) -> SpangleVector:
        n_rows = self.shape[0]
        data = vector.data

        def partials(part):
            partial = np.zeros(n_rows)
            for (r0, c0), block in part:
                partial[r0:r0 + block.shape[0]] += \
                    block @ data[c0:c0 + block.shape[1]]
            return [partial]

        pieces = self.rdd.map_partitions(partials).collect()
        out = np.zeros(n_rows)
        for piece in pieces:
            out += piece
        return SpangleVector(out, "col")

    def vector_dot(self, vector: SpangleVector) -> SpangleVector:
        n_cols = self.shape[1]
        data = vector.data

        def partials(part):
            partial = np.zeros(n_cols)
            for (r0, c0), block in part:
                partial[c0:c0 + block.shape[1]] += \
                    data[r0:r0 + block.shape[0]] @ block
            return [partial]

        pieces = self.rdd.map_partitions(partials).collect()
        out = np.zeros(n_cols)
        for piece in pieces:
            out += piece
        return SpangleVector(out, "row")

    def multiply(self, other):
        raise UnsupportedOperation(
            "SciSpark does not provide distributed matrix multiplication"
        )

    def gram(self):
        raise UnsupportedOperation(
            "SciSpark does not provide distributed matrix multiplication"
        )
