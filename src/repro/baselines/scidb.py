"""SciDB-style baseline: a disk-based chunked array store.

The paper's characterization: SciDB

- is a from-scratch C++ MPP array database — fast scans, and it *pushes
  queries down* so only the chunks a query touches are read from disk;
- is **disk-based**: every operator reads chunks from disk, and large
  intermediate results (matmul temporaries) spill back to disk;
- has no special structures for sparse arrays (chunks store a cell list
  but scans pay for the whole chunk read);
- is therefore competitive on scan-shaped queries (Q1/Q3/Q4) and slow on
  compute-heavy ones (Q2/Q5) and on huge matrix products.

Chunks live as real ``.npy`` files in a temp directory; reads and writes
are metered into the engine metrics so the cost model charges disk time.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

import numpy as np

from repro.errors import SpangleError
from repro.matrix.vector import SpangleVector


class SciDBTimeout(SpangleError):
    """The operation exceeded the bench's bounded time."""


class SciDBSystem:
    """A miniature disk-backed array store with query pushdown."""

    name = "SciDB"

    def __init__(self, context, storage_dir=None, num_instances: int = None):
        self.context = context
        self.num_instances = num_instances or context.num_executors
        if storage_dir is None:
            self._tempdir = tempfile.mkdtemp(prefix="scidb-repro-")
            self.storage_dir = Path(self._tempdir)
        else:
            self._tempdir = None
            self.storage_dir = Path(storage_dir)
            self.storage_dir.mkdir(parents=True, exist_ok=True)
        self._arrays = {}

    def close(self) -> None:
        if self._tempdir is not None:
            shutil.rmtree(self._tempdir, ignore_errors=True)

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        self.close()

    # ------------------------------------------------------------------
    # storage
    # ------------------------------------------------------------------

    def _write_chunk(self, array: str, key, data: np.ndarray) -> None:
        path = self.storage_dir / f"{array}__{key}.npy"
        np.save(path, data)
        self.context.metrics.record_disk_write(int(data.nbytes))

    def _read_chunk(self, array: str, key) -> np.ndarray:
        path = self.storage_dir / f"{array}__{key}.npy"
        data = np.load(path)
        self.context.metrics.record_disk_read(int(data.nbytes))
        return data

    def store_scenes(self, name: str, scenes, chunk_shape=(128, 128)):
        """Chunk 2-D scenes (NaN = null) into the on-disk store."""
        keys = []
        for scene_id, scene in enumerate(scenes):
            scene = np.asarray(scene, dtype=np.float64)
            rows, cols = scene.shape
            for r0 in range(0, rows, chunk_shape[0]):
                for c0 in range(0, cols, chunk_shape[1]):
                    key = f"{scene_id}_{r0}_{c0}"
                    self._write_chunk(
                        name, key,
                        scene[r0:r0 + chunk_shape[0],
                              c0:c0 + chunk_shape[1]])
                    keys.append((scene_id, r0, c0))
        self._arrays[name] = {
            "keys": keys, "chunk_shape": chunk_shape, "kind": "raster"}
        return name

    def _chunks_in_range(self, name: str, lo, hi):
        """Query pushdown: select chunk keys by coordinates, no reads."""
        info = self._arrays[name]
        ch, cw = info["chunk_shape"]
        for scene_id, r0, c0 in info["keys"]:
            if lo is not None:
                if r0 + ch <= lo[0] or r0 > hi[0]:
                    continue
                if c0 + cw <= lo[1] or c0 > hi[1]:
                    continue
            yield scene_id, r0, c0

    def _clip(self, chunk, r0, c0, lo, hi):
        if lo is None:
            return chunk
        rows, cols = chunk.shape
        r_lo = max(lo[0] - r0, 0)
        r_hi = min(hi[0] - r0 + 1, rows)
        c_lo = max(lo[1] - c0, 0)
        c_hi = min(hi[1] - c0 + 1, cols)
        return chunk[r_lo:r_hi, c_lo:c_hi]

    # ------------------------------------------------------------------
    # queries (AFL-style operators)
    # ------------------------------------------------------------------

    def aggregate_mean(self, name: str, lo=None, hi=None,
                       predicate=None) -> float:
        """avg() over a between()/filter() pushdown plan."""
        total = 0.0
        count = 0
        for scene_id, r0, c0 in self._chunks_in_range(name, lo, hi):
            chunk = self._read_chunk(name, f"{scene_id}_{r0}_{c0}")
            region = self._clip(chunk, r0, c0, lo, hi)
            mask = ~np.isnan(region)
            if predicate is not None:
                with np.errstate(invalid="ignore"):
                    mask &= predicate(region)
            total += float(region[mask].sum())
            count += int(mask.sum())
        return total / count if count else float("nan")

    def count_matching(self, name: str, predicate, lo=None,
                       hi=None) -> int:
        total = 0
        for scene_id, r0, c0 in self._chunks_in_range(name, lo, hi):
            chunk = self._read_chunk(name, f"{scene_id}_{r0}_{c0}")
            region = self._clip(chunk, r0, c0, lo, hi)
            with np.errstate(invalid="ignore"):
                total += int((predicate(region)
                              & ~np.isnan(region)).sum())
        return total

    def regrid_mean(self, name: str, grid: int, lo=None, hi=None):
        """regrid(): the compute-heavy operator the paper finds slow.

        SciDB reshapes each chunk from disk and merges boundary windows
        through an intermediate result array that is written back to
        disk (temporary data), then re-read for the final pass.
        """
        partials = {}
        for scene_id, r0, c0 in self._chunks_in_range(name, lo, hi):
            chunk = self._read_chunk(name, f"{scene_id}_{r0}_{c0}")
            region = self._clip(chunk, r0, c0, lo, hi)
            rows, cols = region.shape
            # accumulate (sum, count) per output window — boundary
            # windows spanning chunks meet in the temp array
            mask = ~np.isnan(region)
            sums = np.where(mask, region, 0.0)
            for out_r in range((rows + grid - 1) // grid):
                for out_c in range((cols + grid - 1) // grid):
                    window_sum = sums[out_r * grid:(out_r + 1) * grid,
                                      out_c * grid:(out_c + 1) * grid]
                    window_mask = mask[out_r * grid:(out_r + 1) * grid,
                                       out_c * grid:(out_c + 1) * grid]
                    key = (scene_id, r0 // grid + out_r,
                           c0 // grid + out_c)
                    s, n = partials.get(key, (0.0, 0))
                    partials[key] = (s + float(window_sum.sum()),
                                     n + int(window_mask.sum()))
        # temporary result spilled to disk, as SciDB does for
        # intermediate arrays larger than its chunk cache
        temp = np.array([[s, n] for s, n in partials.values()])
        if temp.size:
            self._write_chunk(name, "regrid_tmp", temp)
            self._read_chunk(name, "regrid_tmp")
        return {
            key: (s / n if n else float("nan"))
            for key, (s, n) in partials.items()
        }

    def density_windows(self, name: str, window: int, min_count: int,
                        lo=None, hi=None) -> int:
        counts = {}
        for scene_id, r0, c0 in self._chunks_in_range(name, lo, hi):
            chunk = self._read_chunk(name, f"{scene_id}_{r0}_{c0}")
            region = self._clip(chunk, r0, c0, lo, hi)
            mask = ~np.isnan(region)
            rows, cols = region.shape
            for out_r in range((rows + window - 1) // window):
                for out_c in range((cols + window - 1) // window):
                    key = (scene_id, r0 // window + out_r,
                           c0 // window + out_c)
                    counts[key] = counts.get(key, 0) + int(
                        mask[out_r * window:(out_r + 1) * window,
                             out_c * window:(out_c + 1) * window].sum())
        return sum(1 for n in counts.values() if n > min_count)

    # ------------------------------------------------------------------
    # linear algebra (disk-resident blocks, temp spills)
    # ------------------------------------------------------------------

    def store_matrix(self, name: str, rows, cols, values, shape,
                     block: int = 256):
        """Store a sparse matrix as dense on-disk blocks.

        SciDB has no dedicated sparse structures: a block is written
        dense (the paper's 'not entirely designed to store sparse
        arrays').
        """
        rows = np.asarray(rows)
        cols = np.asarray(cols)
        values = np.asarray(values, dtype=np.float64)
        keys = []
        order = np.lexsort((cols // block, rows // block))
        rows, cols, values = rows[order], cols[order], values[order]
        block_ids = (rows // block) * (10 ** 9) + cols // block
        boundaries = np.nonzero(np.diff(block_ids))[0] + 1
        starts = np.concatenate([[0], boundaries]) if block_ids.size \
            else []
        ends = np.concatenate([boundaries, [block_ids.size]]) \
            if block_ids.size else []
        for start, end in zip(starts, ends):
            br = int(rows[start]) // block
            bc = int(cols[start]) // block
            dense = np.zeros((min(block, shape[0] - br * block),
                              min(block, shape[1] - bc * block)))
            dense[rows[start:end] - br * block,
                  cols[start:end] - bc * block] = values[start:end]
            self._write_chunk(name, f"b{br}_{bc}", dense)
            keys.append((br, bc))
        self._arrays[name] = {
            "keys": keys, "block": block, "shape": tuple(shape),
            "kind": "matrix"}
        return name

    def matrix_memory_bytes(self, name: str) -> int:
        info = self._arrays[name]
        total = 0
        for path in self.storage_dir.glob(f"{name}__b*.npy"):
            total += path.stat().st_size
        return total

    def dot_vector(self, name: str, vector: SpangleVector) -> SpangleVector:
        info = self._arrays[name]
        block = info["block"]
        out = np.zeros(info["shape"][0])
        for br, bc in info["keys"]:
            dense = self._read_chunk(name, f"b{br}_{bc}")
            out[br * block:br * block + dense.shape[0]] += \
                dense @ vector.data[bc * block:bc * block
                                    + dense.shape[1]]
        return SpangleVector(out, "col")

    def vector_dot(self, name: str, vector: SpangleVector) -> SpangleVector:
        info = self._arrays[name]
        block = info["block"]
        out = np.zeros(info["shape"][1])
        for br, bc in info["keys"]:
            dense = self._read_chunk(name, f"b{br}_{bc}")
            out[bc * block:bc * block + dense.shape[1]] += \
                vector.data[br * block:br * block
                            + dense.shape[0]] @ dense
        return SpangleVector(out, "row")

    def multiply(self, left: str, right: str, out: str,
                 max_temp_bytes: int = None) -> str:
        """spgemm(): block matmul with disk-resident temporaries.

        Every partial product is written to disk and re-read for the
        gather — the disk traffic that makes SciDB's big matmuls slow
        and, past ``max_temp_bytes``, abandoned (the paper's 'did not
        complete in the bounded time').
        """
        left_info = self._arrays[left]
        right_info = self._arrays[right]
        block = left_info["block"]
        if right_info["block"] != block:
            raise SpangleError("block size mismatch")
        right_by_k = {}
        for br, bc in right_info["keys"]:
            right_by_k.setdefault(br, []).append(bc)
        temp_bytes = 0
        partial_keys = {}
        serial = 0
        for br, bc in left_info["keys"]:
            a = self._read_chunk(left, f"b{br}_{bc}")
            for out_c in right_by_k.get(bc, ()):
                b = self._read_chunk(right, f"b{bc}_{out_c}")
                partial = a @ b
                if not partial.any():
                    continue
                temp_key = f"tmp{serial}"
                serial += 1
                self._write_chunk(out, temp_key, partial)
                temp_bytes += int(partial.nbytes)
                if max_temp_bytes is not None \
                        and temp_bytes > max_temp_bytes:
                    raise SciDBTimeout(
                        f"spgemm temp data exceeded "
                        f"{max_temp_bytes} bytes"
                    )
                partial_keys.setdefault((br, out_c), []).append(temp_key)
        keys = []
        for (br, out_c), temps in partial_keys.items():
            total = None
            for temp_key in temps:
                partial = self._read_chunk(out, temp_key)
                total = partial if total is None else total + partial
            self._write_chunk(out, f"b{br}_{out_c}", total)
            keys.append((br, out_c))
        self._arrays[out] = {
            "keys": keys, "block": block,
            "shape": (left_info["shape"][0], right_info["shape"][1]),
            "kind": "matrix"}
        return out

    def matrix_to_numpy(self, name: str) -> np.ndarray:
        info = self._arrays[name]
        block = info["block"]
        out = np.zeros(info["shape"])
        for br, bc in info["keys"]:
            dense = self._read_chunk(name, f"b{br}_{bc}")
            out[br * block:br * block + dense.shape[0],
                bc * block:bc * block + dense.shape[1]] = dense
        return out
