"""Comparison systems re-implemented over the same engine substrate.

The paper evaluates Spangle against SciSpark, RasterFrames, and SciDB on
raster queries (Fig. 7); Spark (COO), MLlib (CSC), and SciSpark on
matrix kernels (Fig. 10); Spark and GraphX on PageRank (Fig. 11); and
MLlib on logistic regression (Table III). Each baseline here reproduces
the *architectural choices* the paper attributes to that system — dense
array management, driver-side ingest, disk-backed chunks, COO joins,
per-superstep triplet joins — so the benchmarks expose the same
trade-offs without the original JVM code.
"""

from repro.baselines.graphx import GraphXPageRank
from repro.baselines.mllib import LogisticRegressionMLlib, MLlibRowMatrix
from repro.baselines.rasterframes import RasterFramesSystem
from repro.baselines.scidb import SciDBSystem
from repro.baselines.scispark import SciSparkSystem
from repro.baselines.spark_coo import SparkCOOMatrix
from repro.baselines.spark_pagerank import SparkPageRank

__all__ = [
    "GraphXPageRank",
    "LogisticRegressionMLlib",
    "MLlibRowMatrix",
    "RasterFramesSystem",
    "SciDBSystem",
    "SciSparkSystem",
    "SparkCOOMatrix",
    "SparkPageRank",
]
