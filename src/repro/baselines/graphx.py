"""GraphX-style baseline: Pregel message passing over Vertex/Edge RDDs.

The paper's Fig. 11 characterization: GraphX keeps a VertexRDD and an
EdgeRDD and builds a tripletRDD each superstep to route messages — a
join of the rank vector against the (cached, large) edge set, followed
by an aggregate-by-destination shuffle. It is the fastest system on
small graphs, but each iteration creates fresh RDDs whose lineage and
cache pressure grow with the iteration count, and on the largest graph
(Twitter) this costs it the win.

The implementation is vectorized per edge partition (numpy), so its
constant factors are honest relative to Spangle's bincount kernels; the
per-iteration shuffle of messages is real and metered.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ShapeMismatchError


@dataclass
class GraphXResult:
    ranks: np.ndarray
    iterations: int
    iteration_times_s: list = field(default_factory=list)

    @property
    def total_time_s(self) -> float:
        return sum(self.iteration_times_s)


class GraphXPageRank:
    """PageRank via per-superstep triplet joins."""

    name = "GraphX"

    def __init__(self, context, num_partitions=None):
        self.context = context
        self.num_partitions = num_partitions \
            or context.default_parallelism

    def load_edges(self, edges, num_vertices: int):
        """Partition the edge set (cached, as GraphX caches EdgeRDD)."""
        edges = np.asarray(edges, dtype=np.int64)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ShapeMismatchError("edges must be an (m, 2) array")
        per = -(-edges.shape[0] // self.num_partitions)
        records = []
        for p in range(self.num_partitions):
            slab = edges[p * per:(p + 1) * per]
            if slab.size:
                records.append((slab[:, 0].copy(), slab[:, 1].copy()))
        edge_rdd = self.context.parallelize(
            records, max(len(records), 1)).cache()
        edge_rdd.count()
        out_degrees = np.bincount(edges[:, 0], minlength=num_vertices) \
                        .astype(np.float64)
        return edge_rdd, out_degrees

    def run(self, edges, num_vertices: int, damping: float = 0.85,
            max_iterations: int = 20) -> GraphXResult:
        edge_rdd, out_degrees = self.load_edges(edges, num_vertices)
        with np.errstate(divide="ignore"):
            inv_deg = np.where(out_degrees > 0, 1.0 / out_degrees, 0.0)
        ranks = np.full(num_vertices, 1.0 / num_vertices)
        teleport = (1.0 - damping) / num_vertices
        times = []
        for _step in range(max_iterations):
            start = time.perf_counter()
            contribution = ranks * inv_deg

            # triplet stage: every edge partition joins the rank vector
            # and emits one message per edge, shuffled by destination
            # vertex partition
            def messages(part):
                out = []
                for src, dst in part:
                    values = contribution[src]
                    # pre-aggregate within the partition per dst block,
                    # then emit (dst_partition, (dst_ids, sums)) messages
                    order = np.argsort(dst, kind="stable")
                    d_sorted = dst[order]
                    v_sorted = values[order]
                    uniq, starts = np.unique(d_sorted,
                                             return_index=True)
                    sums = np.add.reduceat(v_sorted, starts)
                    target = uniq % self.num_partitions
                    for t in np.unique(target):
                        mask = target == t
                        out.append((int(t), (uniq[mask], sums[mask])))
                return out

            gathered = edge_rdd.map_partitions(messages) \
                               .group_by_key().collect()
            new_ranks = np.full(num_vertices, teleport)
            for _partition, groups in gathered:
                for dst_ids, sums in groups:
                    new_ranks[dst_ids] += damping * sums
            ranks = new_ranks
            times.append(time.perf_counter() - start)
        return GraphXResult(ranks=ranks, iterations=max_iterations,
                            iteration_times_s=times)
