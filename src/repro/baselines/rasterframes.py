"""RasterFrames-style baseline: a DataFrame of raster tiles.

The paper's characterization: RasterFrames

- reads rasters **in the master node** and spreads tiles to workers
  (driver-side ingest — a scalability ceiling);
- compresses sparse tiles (it keeps a cell-type with no-data encoding,
  so memory is closer to the valid-cell count than SciSpark's);
- must pre-grid tiles to the target grid when regridding — which makes
  Q2 fast (no reshaping at query time) but the layout inflexible for
  other operators;
- supports range geometry but (per the paper) untrusted for
  correctness; we implement it correctly and only inherit the
  architecture.
"""

from __future__ import annotations

import numpy as np

from repro.errors import OutOfMemoryError


class _Tile:
    """A tile row of the frame: compressed cells + no-data mask."""

    __slots__ = ("scene", "r0", "c0", "shape", "offsets", "values")

    def __init__(self, scene, r0, c0, shape, offsets, values):
        self.scene = scene
        self.r0 = r0
        self.c0 = c0
        self.shape = shape
        self.offsets = offsets
        self.values = values

    @property
    def nbytes(self) -> int:
        return int(self.offsets.nbytes + self.values.nbytes)

    def dense(self) -> np.ndarray:
        out = np.full(self.shape, np.nan)
        out.ravel()[self.offsets] = self.values
        return out


class RasterFramesSystem:
    """Tile-dataframe processing in RasterFrames' style."""

    name = "RasterFrames"

    def __init__(self, context, driver_memory_bytes: int = None):
        self.context = context
        self.driver_memory_bytes = driver_memory_bytes

    def load_scenes(self, scenes, tile_shape=(128, 128)):
        """Driver-side ingest: all scenes pass through the master.

        Fails when the scenes (dense, as read from TIFF) exceed the
        driver budget — the paper's "reads them in the master node".
        """
        dense_bytes = sum(
            int(np.prod(scene.shape)) * 8 for scene in scenes)
        if self.driver_memory_bytes is not None \
                and dense_bytes > self.driver_memory_bytes:
            raise OutOfMemoryError("RasterFrames driver", dense_bytes,
                                   self.driver_memory_bytes)
        rows_out = []
        for scene_id, scene in enumerate(scenes):
            scene = np.asarray(scene, dtype=np.float64)
            rows, cols = scene.shape
            for r0 in range(0, rows, tile_shape[0]):
                for c0 in range(0, cols, tile_shape[1]):
                    region = scene[r0:r0 + tile_shape[0],
                                   c0:c0 + tile_shape[1]]
                    mask = ~np.isnan(region)
                    if not mask.any():
                        continue
                    flat = np.nonzero(mask.ravel())[0].astype(np.int64)
                    rows_out.append(_Tile(
                        scene_id, r0, c0, region.shape, flat,
                        region.ravel()[flat].copy()))
        return self.context.parallelize(
            rows_out, self.context.default_parallelism)

    # ------------------------------------------------------------------
    # dataframe-style operations
    # ------------------------------------------------------------------

    def select_range(self, frame, lo, hi):
        """Keep cells inside the box (tile-level filter + cell clip)."""

        def clip(tile):
            if tile.r0 + tile.shape[0] <= lo[0] or tile.r0 > hi[0]:
                return []
            if tile.c0 + tile.shape[1] <= lo[1] or tile.c0 > hi[1]:
                return []
            local_rows = tile.offsets // tile.shape[1] + tile.r0
            local_cols = tile.offsets % tile.shape[1] + tile.c0
            keep = (
                (local_rows >= lo[0]) & (local_rows <= hi[0])
                & (local_cols >= lo[1]) & (local_cols <= hi[1])
            )
            if not keep.any():
                return []
            return [_Tile(tile.scene, tile.r0, tile.c0, tile.shape,
                          tile.offsets[keep], tile.values[keep])]

        return frame.flat_map(clip)

    def filter_cells(self, frame, predicate):
        def apply(tile):
            keep = predicate(tile.values)
            if not keep.any():
                return []
            return [_Tile(tile.scene, tile.r0, tile.c0, tile.shape,
                          tile.offsets[keep], tile.values[keep])]

        return frame.flat_map(apply)

    def aggregate_mean(self, frame) -> float:
        def stats(part):
            total = 0.0
            count = 0
            for tile in part:
                total += float(tile.values.sum())
                count += tile.values.size
            return [(total, count)]

        pieces = frame.map_partitions(stats).collect()
        total = sum(p[0] for p in pieces)
        count = sum(p[1] for p in pieces)
        return total / count if count else float("nan")

    def count_cells(self, frame) -> int:
        return frame.map(lambda tile: tile.values.size).fold(
            0, lambda a, b: a + b)

    def regrid_mean(self, frame, grid: int):
        """Regrid with tiles already aligned to the target grid.

        RasterFrames fits the tile size to the grid at load time, so
        each tile regrids independently — no reshaping, no shuffle.
        The caller must have loaded with ``tile_shape`` divisible by
        ``grid`` (the inflexibility the paper notes).
        """

        def regrid(tile):
            dense = tile.dense()
            rows, cols = dense.shape
            out_rows = rows // grid
            out_cols = cols // grid
            if out_rows == 0 or out_cols == 0:
                return []
            blocks = dense[:out_rows * grid, :out_cols * grid] \
                .reshape(out_rows, grid, out_cols, grid)
            mask = ~np.isnan(blocks)
            sums = np.where(mask, blocks, 0.0).sum(axis=(1, 3))
            counts = mask.sum(axis=(1, 3))
            with np.errstate(invalid="ignore", divide="ignore"):
                means = np.where(counts > 0, sums / counts, np.nan)
            return [((tile.scene, tile.r0 // grid, tile.c0 // grid),
                     means)]

        return frame.flat_map(regrid)

    def density_windows(self, frame, window: int, min_count: int) -> int:
        """Window counts, tile-aligned (same pre-gridding assumption)."""

        def windows(tile):
            valid = np.zeros(tile.shape, dtype=bool)
            valid.ravel()[tile.offsets] = True
            rows, cols = tile.shape
            out_rows = rows // window
            out_cols = cols // window
            if out_rows == 0 or out_cols == 0:
                return 0
            counts = valid[:out_rows * window, :out_cols * window] \
                .reshape(out_rows, window, out_cols, window) \
                .sum(axis=(1, 3))
            return int((counts > min_count).sum())

        return frame.map(windows).fold(0, lambda a, b: a + b)

    def memory_bytes(self, frame) -> int:
        return frame.map(lambda tile: tile.nbytes).fold(
            0, lambda a, b: a + b)
