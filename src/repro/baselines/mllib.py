"""MLlib-style baseline: CSC-row matrices and pre-canned logistic regression.

Two pieces, mirroring what the paper benchmarks as "MLlib (CSC)":

- :class:`MLlibRowMatrix` — a distributed matrix of compressed sparse
  rows (MLlib's RowMatrix of SparseVectors). Matrix-vector products are
  cheap; ``Mᵀ M`` accumulates dense f×f outer products *on the driver*
  (exactly MLlib's computeGramianMatrix), which dies when f is large.
- :class:`LogisticRegressionMLlib` — full-batch gradient descent with
  driver-side weight aggregation. Its ingest path densifies feature
  vectors per-partition with a driver/executor memory ceiling; the two
  larger Table III datasets exceed it ("MLlib fails to ingest...
  incurring out of heap memory").
"""

from __future__ import annotations

import time

import numpy as np

from repro.errors import OutOfMemoryError, ShapeMismatchError
from repro.matrix.vector import SpangleVector
from repro.ml.sgd import _sigmoid


class MLlibRowMatrix:
    """RDD of (row_index, (col_indices, values)) sparse rows."""

    name = "MLlib (CSC)"

    def __init__(self, context, rdd, shape):
        self.context = context
        self.rdd = rdd
        self.shape = tuple(shape)

    @classmethod
    def from_coo(cls, context, rows, cols, values, shape,
                 num_partitions=None) -> "MLlibRowMatrix":
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        order = np.argsort(rows, kind="stable")
        rows, cols, values = rows[order], cols[order], values[order]
        boundaries = np.nonzero(np.diff(rows))[0] + 1
        starts = np.concatenate([[0], boundaries]) if rows.size else []
        ends = np.concatenate([boundaries, [rows.size]]) if rows.size \
            else []
        records = [
            (int(rows[s]), (cols[s:e].copy(), values[s:e].copy()))
            for s, e in zip(starts, ends)
        ]
        if num_partitions is None:
            num_partitions = context.default_parallelism
        return cls(context,
                   context.parallelize(records, num_partitions), shape)

    def nnz(self) -> int:
        return self.rdd.map(lambda kv: kv[1][0].size).fold(
            0, lambda a, b: a + b)

    def memory_bytes(self) -> int:
        return self.nnz() * 16 + self.rdd.count() * 8

    def dot_vector(self, vector: SpangleVector) -> SpangleVector:
        if vector.size != self.shape[1]:
            raise ShapeMismatchError(
                f"matrix has {self.shape[1]} columns, vector has "
                f"{vector.size}")
        n_rows = self.shape[0]
        data = vector.data

        def partials(part):
            partial = np.zeros(n_rows)
            for row, (cols, vals) in part:
                partial[row] = float(vals @ data[cols])
            return [partial]

        pieces = self.rdd.map_partitions(partials).collect()
        out = np.zeros(n_rows)
        for piece in pieces:
            out += piece
        return SpangleVector(out, "col")

    def vector_dot(self, vector: SpangleVector) -> SpangleVector:
        if vector.size != self.shape[0]:
            raise ShapeMismatchError(
                f"matrix has {self.shape[0]} rows, vector has "
                f"{vector.size}")
        n_cols = self.shape[1]
        data = vector.data

        def partials(part):
            partial = np.zeros(n_cols)
            for row, (cols, vals) in part:
                np.add.at(partial, cols, vals * data[row])
            return [partial]

        pieces = self.rdd.map_partitions(partials).collect()
        out = np.zeros(n_cols)
        for piece in pieces:
            out += piece
        return SpangleVector(out, "row")

    def gram(self, driver_memory_bytes: int = 2 * 1024 ** 3
             ) -> np.ndarray:
        """``Mᵀ M`` as MLlib's computeGramianMatrix: a dense f×f result
        accumulated per partition and merged at the driver.

        Raises :class:`OutOfMemoryError` when the dense Gramian exceeds
        the driver budget (the paper's 2 GB driver) — the Fig. 10 "x".
        """
        f = self.shape[1]
        gram_bytes = f * f * 8
        if gram_bytes > driver_memory_bytes:
            raise OutOfMemoryError("MLlib driver (Gramian)", gram_bytes,
                                   driver_memory_bytes)

        def partials(part):
            local = np.zeros((f, f))
            for _row, (cols, vals) in part:
                local[np.ix_(cols, cols)] += np.outer(vals, vals)
            return [local]

        pieces = self.rdd.map_partitions(partials).collect()
        out = np.zeros((f, f))
        for piece in pieces:
            out += piece
        return out


class LogisticRegressionMLlib:
    """Full-batch LR with dense driver-side aggregation (MLlib style)."""

    name = "MLlib"

    def __init__(self, step_size: float = 0.6, tolerance: float = 1e-4,
                 max_iterations: int = 200,
                 driver_memory_bytes: int = 2 * 1024 ** 3,
                 executor_memory_bytes: int = 10 * 1024 ** 3):
        self.step_size = step_size
        self.tolerance = tolerance
        self.max_iterations = max_iterations
        self.driver_memory_bytes = driver_memory_bytes
        self.executor_memory_bytes = executor_memory_bytes
        self.weights = None
        self.iteration_times_s = []

    def ingest(self, context, rows, cols, values, labels,
               num_features: int, num_partitions=None):
        """Build the training RDD, with MLlib's memory behaviour.

        MLlib's LabeledPoint pipeline caches *dense-gradient-sized*
        working state per feature dimension on the driver, and densifies
        aggregation buffers per partition on executors; datasets whose
        dense dimension or cached footprint exceeds the heap fail here.
        """
        rows = np.asarray(rows, dtype=np.int64)
        labels = np.asarray(labels, dtype=np.float64)
        # MLlib standardizes features at ingest with dense per-feature
        # summarizers (mean/variance/count/... ~ 7 arrays of f doubles);
        # the driver merges two of them at a time, so its peak is
        # ~2 x 56 bytes per feature — this is what breaks the wide
        # KDD datasets while URL squeaks through
        summarizer_peak = 2 * num_features * 56
        if summarizer_peak > self.driver_memory_bytes:
            raise OutOfMemoryError("MLlib driver (feature summarizer)",
                                   summarizer_peak,
                                   self.driver_memory_bytes)
        # executors hold a dense aggregation buffer per task plus the
        # cached dataset partition
        if num_partitions is None:
            num_partitions = context.default_parallelism
        cached_bytes = int(np.asarray(values).size) * 16 \
            + labels.size * 8
        per_executor = (cached_bytes // max(context.num_executors, 1)
                        + num_features * 8 * 2)
        if per_executor > self.executor_memory_bytes:
            raise OutOfMemoryError("MLlib executor", per_executor,
                                   self.executor_memory_bytes)
        matrix = MLlibRowMatrix.from_coo(
            context, rows, cols, values,
            (labels.size, num_features), num_partitions)
        return matrix, labels

    def fit(self, matrix: MLlibRowMatrix, labels: np.ndarray
            ) -> "LogisticRegressionMLlib":
        """Full-batch gradient descent (every row, every iteration)."""
        f = matrix.shape[1]
        n = labels.size
        x = np.zeros(f)
        self.iteration_times_s = []
        for _step in range(self.max_iterations):
            start = time.perf_counter()
            z = matrix.dot_vector(SpangleVector(x, "col")).data
            error = _sigmoid(z) - labels
            grad = matrix.vector_dot(
                SpangleVector(error, "row")).data
            new_x = x - (self.step_size / n) * grad
            residual = float(np.abs(new_x - x).max())
            x = new_x
            self.iteration_times_s.append(time.perf_counter() - start)
            if residual < self.tolerance:
                break
        self.weights = x
        return self

    def accuracy(self, matrix: MLlibRowMatrix,
                 labels: np.ndarray) -> float:
        z = matrix.dot_vector(SpangleVector(self.weights, "col")).data
        predicted = _sigmoid(z) >= 0.5
        return float((predicted == (labels >= 0.5)).mean())
