"""Plain-Spark PageRank: the Learning-Spark pairs implementation.

The paper's "Spark" series in Fig. 11 is the textbook RDD PageRank
([39]): a cached ``links`` RDD of (vertex, [out-neighbours]) joined with
a ``ranks`` RDD each iteration, contributions flat-mapped and reduced by
key. Every iteration shuffles one record per *edge* (no vectorized
pre-aggregation like GraphX's), which is why the paper finds it a bit
slower than both GraphX and Spangle.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.engine import HashPartitioner


@dataclass
class SparkPageRankResult:
    ranks: np.ndarray
    iterations: int
    iteration_times_s: list = field(default_factory=list)

    @property
    def total_time_s(self) -> float:
        return sum(self.iteration_times_s)


class SparkPageRank:
    """The classic (vertex, neighbours) join-per-iteration PageRank."""

    name = "Spark"

    def __init__(self, context, num_partitions=None):
        self.context = context
        self.num_partitions = num_partitions \
            or context.default_parallelism

    def run(self, edges, num_vertices: int, damping: float = 0.85,
            max_iterations: int = 20) -> SparkPageRankResult:
        edges = np.asarray(edges, dtype=np.int64)
        partitioner = HashPartitioner(self.num_partitions)
        adjacency = {}
        for src, dst in edges:
            adjacency.setdefault(int(src), []).append(int(dst))
        links = self.context.parallelize(
            list(adjacency.items()), self.num_partitions
        ).partition_by(partitioner).cache()
        links.count()

        ranks = links.map_values(lambda _nbrs: 1.0 / num_vertices)
        ranks.partitioner = links.partitioner
        teleport = (1.0 - damping) / num_vertices
        times = []
        received = {}
        for _step in range(max_iterations):
            start = time.perf_counter()
            joined = links.join(ranks, partitioner=partitioner)

            def contributions(pair):
                neighbours, rank = pair
                share = rank / len(neighbours)
                return [(dst, share) for dst in neighbours]

            contribs = joined.flat_map_values(contributions) \
                             .map(lambda kv: kv[1])
            summed = contribs.reduce_by_key(lambda a, b: a + b,
                                            partitioner=partitioner)
            # a left outer join keeps source vertices that received no
            # contributions this round (rank = teleport), which the
            # textbook implementation silently drops
            ranks = links.left_outer_join(summed,
                                          partitioner=partitioner) \
                .map_values(lambda pair: damping * (pair[1] or 0.0)
                            + teleport)
            ranks.partitioner = partitioner
            received = dict(summed.collect())
            times.append(time.perf_counter() - start)

        # dangling vertices never join (no out-links) but still absorb
        # rank: finalize every vertex from the last contribution sums
        out = np.full(num_vertices, teleport)
        for vertex, total in received.items():
            out[vertex] = damping * total + teleport
        return SparkPageRankResult(ranks=out,
                                   iterations=max_iterations,
                                   iteration_times_s=times)
