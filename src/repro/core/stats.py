"""Distributed statistics over the valid cells of an ArrayRDD.

Interactive analysis (the paper's declared use case) starts with
``describe()``: one pass computes count/mean/std/min/max via a
mergeable moment state (Chan et al.'s pairwise update). Histograms are
a bincount per chunk plus one merge; quantiles are estimated from a
uniform cell sample.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.array_rdd import ArrayRDD
from repro.errors import ArrayError


@dataclass(frozen=True)
class Description:
    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
        }


def _merge_moments(a, b):
    """Merge two (count, mean, m2, min, max) moment states."""
    count_a, mean_a, m2_a, min_a, max_a = a
    count_b, mean_b, m2_b, min_b, max_b = b
    if count_a == 0:
        return b
    if count_b == 0:
        return a
    count = count_a + count_b
    delta = mean_b - mean_a
    mean = mean_a + delta * count_b / count
    m2 = m2_a + m2_b + delta * delta * count_a * count_b / count
    return (count, mean, m2, min(min_a, min_b), max(max_a, max_b))


def describe(array: ArrayRDD) -> Description:
    """Count, mean, population std, min, max — one distributed pass."""

    def per_partition(part):
        state = (0, 0.0, 0.0, np.inf, -np.inf)
        for _chunk_id, chunk in part:
            values = chunk.values().astype(np.float64)
            if values.size == 0:
                continue
            mean = float(values.mean())
            local = (values.size, mean,
                     float(((values - mean) ** 2).sum()),
                     float(values.min()), float(values.max()))
            state = _merge_moments(state, local)
        return [state]

    states = array.rdd.map_partitions(per_partition).collect()
    merged = (0, 0.0, 0.0, np.inf, -np.inf)
    for state in states:
        merged = _merge_moments(merged, state)
    count, mean, m2, minimum, maximum = merged
    if count == 0:
        return Description(0, float("nan"), float("nan"),
                           float("nan"), float("nan"))
    return Description(count, mean, float(np.sqrt(m2 / count)),
                       minimum, maximum)


def histogram(array: ArrayRDD, bins: int = 10,
              value_range=None) -> tuple:
    """``(counts, edges)`` like numpy's, over the valid cells.

    ``value_range=None`` runs a first pass for the min/max (exactly
    numpy's behaviour).
    """
    if bins <= 0:
        raise ArrayError("bins must be positive")
    if value_range is None:
        summary = describe(array)
        if summary.count == 0:
            return np.zeros(bins, dtype=np.int64), \
                np.linspace(0.0, 1.0, bins + 1)
        value_range = (summary.minimum, summary.maximum)
    lo, hi = float(value_range[0]), float(value_range[1])
    if hi <= lo:
        hi = lo + 1.0
    edges = np.linspace(lo, hi, bins + 1)

    def per_partition(part):
        counts = np.zeros(bins, dtype=np.int64)
        for _chunk_id, chunk in part:
            values = chunk.values()
            if values.size:
                counts += np.histogram(values, bins=edges)[0]
        return [counts]

    pieces = array.rdd.map_partitions(per_partition).collect()
    total = np.zeros(bins, dtype=np.int64)
    for piece in pieces:
        total += piece
    return total, edges


def approx_quantiles(array: ArrayRDD, quantiles,
                     sample_fraction: float = 0.1,
                     seed: int = 0) -> np.ndarray:
    """Quantile estimates from a uniform sample of valid cells.

    ``sample_fraction=1.0`` computes exact quantiles (all cells are
    collected — use only on result-sized arrays).
    """
    quantiles = np.atleast_1d(np.asarray(quantiles, dtype=np.float64))
    if ((quantiles < 0) | (quantiles > 1)).any():
        raise ArrayError("quantiles must lie in [0, 1]")
    if not 0 < sample_fraction <= 1:
        raise ArrayError("sample_fraction must be in (0, 1]")

    def sample(index, part):
        rng = np.random.default_rng(seed * 100_003 + index)
        out = []
        for _chunk_id, chunk in part:
            values = chunk.values()
            if values.size == 0:
                continue
            if sample_fraction >= 1.0:
                out.append(values)
            else:
                keep = rng.random(values.size) < sample_fraction
                if keep.any():
                    out.append(values[keep])
        if not out:
            return []
        return [np.concatenate(out)]

    pieces = array.rdd.map_partitions_with_index(sample).collect()
    if not pieces:
        return np.full(quantiles.size, np.nan)
    pooled = np.concatenate(pieces)
    return np.quantile(pooled, quantiles)
