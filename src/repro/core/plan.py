"""ChunkPlan: a fused chunk-kernel operator layer (the plan algebra).

Every narrow ArrayRDD operator — ``map_values``, ``filter``,
``subarray``, scalar arithmetic — is a chunk-local rewrite of
``(payload, bitmask)``. Executed eagerly, a chain of k such operators
re-encodes every chunk k times: decode offsets/values, transform, pack a
fresh bitmask, build a fresh :class:`~repro.core.chunk.Chunk`. This
module replaces that with a tiny logical plan: operators *append a
kernel* to a pending :class:`ChunkPlan`, and when an action (or a wide
operator, or ``cache()``) forces evaluation the whole chain compiles to
**one** ``map_partitions`` pass — one decode, one kernel pipeline over
plain offset/value vectors, one encode per surviving chunk.

The contract is strict: a compiled plan is byte-identical to the eager
path in all three chunk modes. Kernels therefore replicate the eager
operators' mode policy exactly — ``map_values`` preserves the input
mode, ``filter``/``mask_and`` re-apply :func:`choose_mode` on the new
density — and the final encode goes through the same
:func:`~repro.core.chunk._build_from_bools` construction the eager
operators use.

Fusion can be turned off globally with :func:`disable_fusion` (also a
context manager), which routes every operator back through the original
eager per-chunk code path.
"""

from __future__ import annotations

import numpy as np

from repro.bitmask.popcount import rank_counts
from repro.core import mapper
from repro.core.chunk import Chunk, ChunkMode, choose_mode, \
    _build_from_bools
from repro.engine.worker import register_task_state
from repro.errors import ArrayError

__all__ = [
    "ChunkPlan",
    "ChunkSource",
    "DropEmpty",
    "ElementwiseSource",
    "FilterKernel",
    "FoldedScalarKernel",
    "MapValuesKernel",
    "MaskAndKernel",
    "MaskApplySource",
    "RepackKernel",
    "ScalarOpKernel",
    "disable_fusion",
    "enable_fusion",
    "fusion_enabled",
]


# ----------------------------------------------------------------------
# fusion switch
# ----------------------------------------------------------------------

class _FusionToggle:
    """Flips the global fusion switch; restores the prior state when
    used as a context manager."""

    def __init__(self, enabled: bool):
        self._previous = _STATE["enabled"]
        _STATE["enabled"] = enabled

    def __enter__(self) -> "_FusionToggle":
        return self

    def __exit__(self, *exc) -> bool:
        _STATE["enabled"] = self._previous
        return False


_STATE = {"enabled": True}


def _capture_fusion():
    return _STATE["enabled"]


def _apply_fusion(value):
    _STATE["enabled"] = value


# ship the fusion toggle to worker processes alongside each task, so a
# ``with disable_fusion():`` block on the driver governs the workers too
register_task_state("fusion", _capture_fusion, _apply_fusion)


def fusion_enabled() -> bool:
    """Whether operators build ChunkPlans (True) or run eagerly."""
    return _STATE["enabled"]


def enable_fusion() -> _FusionToggle:
    """Turn kernel fusion on (the default). Usable as ``with`` block."""
    return _FusionToggle(True)


def disable_fusion() -> _FusionToggle:
    """Escape hatch: run every operator through the eager per-chunk
    path. Usable standalone or as a ``with`` block that restores the
    previous setting on exit."""
    return _FusionToggle(False)


# ----------------------------------------------------------------------
# kernel state: one chunk decoded to plain vectors
# ----------------------------------------------------------------------

class KernelState:
    """A chunk mid-pipeline: ascending valid offsets + aligned values.

    ``rebuilt`` tracks whether any kernel changed the chunk (if not, the
    original ``chunk`` object is passed through untouched, exactly like
    the eager operators do). ``eager_builds`` counts how many
    intermediate Chunk constructions the eager path would have performed
    for the same record — the fusion savings counter.
    """

    __slots__ = ("num_cells", "offsets", "values", "mode", "chunk",
                 "rebuilt", "dropped", "eager_builds", "repacked")

    def __init__(self, num_cells, offsets, values, mode, chunk=None):
        self.num_cells = num_cells
        self.offsets = offsets
        self.values = values
        self.mode = mode
        self.chunk = chunk
        self.rebuilt = False
        self.dropped = False
        self.eager_builds = 0
        self.repacked = 0


def _encode(state: KernelState) -> Chunk:
    """Pack a rebuilt state into a Chunk — the single encode of the
    fused pass, via the same construction the eager operators use."""
    keep = np.zeros(state.num_cells, dtype=bool)
    keep[state.offsets] = True
    return _build_from_bools(state.num_cells, keep, state.values,
                             state.mode)


# ----------------------------------------------------------------------
# sources: how a record enters the kernel pipeline
# ----------------------------------------------------------------------

class ChunkSource:
    """Default source: the record value is already a Chunk."""

    #: shown in the fused pipeline label (None = invisible pass-through)
    label = None

    def begin(self, chunk_id, chunk) -> KernelState:
        return KernelState(chunk.num_cells, chunk.indices(),
                           chunk.values(), chunk.mode, chunk=chunk)


class MaskApplySource(ChunkSource):
    """Source for ``(Chunk, Bitmask)`` join pairs: MaskRDD reconciliation.

    Replicates :meth:`Chunk.and_mask` — including its return-self
    fast path when the mask removes nothing — but leaves the result
    decoded so downstream kernels fuse into the same pass.
    """

    label = "apply_mask"

    def begin(self, chunk_id, pair) -> KernelState:
        chunk, other_mask = pair
        if other_mask.num_bits != chunk.num_cells:
            raise ArrayError(
                f"mask length {other_mask.num_bits} != chunk cells "
                f"{chunk.num_cells}"
            )
        flat = chunk.flat_mask()
        combined = flat & other_mask
        if combined == flat:       # nothing was masked out
            return ChunkSource.begin(self, chunk_id, chunk)
        keep = combined.to_bools()
        density = combined.count() / chunk.num_cells \
            if chunk.num_cells else 0.0
        if chunk.mode is ChunkMode.DENSE:
            compact = chunk.payload[keep]
        else:
            compact = chunk.payload[keep[chunk.indices()]]
        state = KernelState(chunk.num_cells, combined.indices(), compact,
                            choose_mode(density))
        state.rebuilt = True
        state.eager_builds = 1
        return state


class ElementwiseSource(ChunkSource):
    """Source for joined chunk pairs: the merge step of ``combine``.

    Replicates :meth:`Chunk.elementwise` (and-join: AND the bitmasks,
    compute only surviving pairs; or-join: OR the bitmasks with ``fill``
    standing in for missing cells) but keeps the result decoded so
    trailing kernels — ``DropEmpty``, a nonzero filter, scalar ops —
    run in the same pass.
    """

    def __init__(self, op, how: str, fill, num_cells: int, dtype):
        self.op = op
        self.how = how
        self.fill = fill
        self.num_cells = num_cells
        self.dtype = dtype
        self.label = f"combine_{how}"

    def begin(self, chunk_id, pair) -> KernelState:
        left, right = pair
        if left is None:
            left = Chunk.empty(self.num_cells, dtype=self.dtype)
        if right is None:
            right = Chunk.empty(self.num_cells, dtype=self.dtype)
        if left.num_cells != right.num_cells:
            raise ArrayError(
                f"chunk size mismatch: {left.num_cells} vs "
                f"{right.num_cells}"
            )
        left_mask = left.flat_mask()
        right_mask = right.flat_mask()
        if self.how == "and":
            combined = left_mask & right_mask
            offsets = combined.indices()
            result = self.op(left._values_at_offsets(offsets),
                             right._values_at_offsets(offsets))
        else:
            combined = left_mask | right_mask
            offsets = combined.indices()
            result = self.op(left.to_dense(self.fill)[offsets],
                             right.to_dense(self.fill)[offsets])
        density = offsets.size / left.num_cells if left.num_cells else 0.0
        state = KernelState(left.num_cells, offsets, result,
                            choose_mode(density))
        state.rebuilt = True
        state.eager_builds = 1
        return state


# ----------------------------------------------------------------------
# kernels: one chunk-local operator each
# ----------------------------------------------------------------------

class MapValuesKernel:
    """Vectorized function over the valid values; mode is preserved."""

    label = "map"

    def __init__(self, func):
        self.func = func

    def apply(self, chunk_id, state: KernelState) -> None:
        new_values = np.asarray(self.func(state.values))
        if new_values.shape != state.values.shape:
            raise ArrayError(
                "map_values function must preserve the value count"
            )
        state.values = new_values
        state.rebuilt = True
        state.eager_builds += 1


class ScalarOpKernel:
    """Scalar arithmetic (``a * 2``, ``2 ** a``, ...) as a fusable kernel."""

    def __init__(self, op, scalar, reflected: bool = False,
                 name: str = None):
        self.op = op
        self.scalar = scalar
        self.reflected = reflected
        self.label = f"scalar_{name or getattr(op, '__name__', 'op')}"

    def apply(self, chunk_id, state: KernelState) -> None:
        if self.reflected:
            new_values = np.asarray(self.op(self.scalar, state.values))
        else:
            new_values = np.asarray(self.op(state.values, self.scalar))
        if new_values.shape != state.values.shape:
            raise ArrayError(
                "map_values function must preserve the value count"
            )
        state.values = new_values
        state.rebuilt = True
        state.eager_builds += 1


class FoldedScalarKernel:
    """Several adjacent scalar ops applied in one kernel dispatch.

    ``stages`` is a tuple of ``(op, scalar, reflected, name)`` applied
    strictly in order — the same arithmetic sequence the individual
    :class:`ScalarOpKernel` chain would perform, so the fold is
    bit-identical; it only saves the per-kernel dispatch and shape
    checks between stages. Produced by the logical optimizer's
    adjacent-scalar folding rule.
    """

    def __init__(self, stages):
        self.stages = tuple(stages)
        names = "+".join(stage[3] for stage in self.stages)
        self.label = f"fold[{names}]"

    def apply(self, chunk_id, state: KernelState) -> None:
        values = state.values
        for op, scalar, reflected, _name in self.stages:
            if reflected:
                values = op(scalar, values)
            else:
                values = op(values, scalar)
        new_values = np.asarray(values)
        if new_values.shape != state.values.shape:
            raise ArrayError(
                "map_values function must preserve the value count"
            )
        state.values = new_values
        state.rebuilt = True
        state.eager_builds += len(self.stages)


class FilterKernel:
    """Invalidate cells failing a vectorized predicate; re-applies the
    density policy and drops chunks left empty."""

    label = "filter"

    def __init__(self, predicate):
        self.predicate = predicate

    def apply(self, chunk_id, state: KernelState) -> None:
        keep = np.asarray(self.predicate(state.values), dtype=bool)
        if keep.shape != state.values.shape:
            raise ArrayError(
                "filter predicate must return one bool per value")
        density = int(keep.sum()) / state.num_cells \
            if state.num_cells else 0.0
        state.offsets = state.offsets[keep]
        state.values = state.values[keep]
        state.mode = choose_mode(density)
        state.rebuilt = True
        state.eager_builds += 1
        if state.offsets.size == 0:
            state.dropped = True


class MaskAndKernel:
    """Subarray restriction: AND with the virtual bitmask of a box.

    Chunk-ID pruning happens first (a metadata check, no scan), chunks
    fully inside the box pass through untouched, and — like the eager
    :meth:`Chunk.and_mask` — a chunk whose cells all survive is not
    rebuilt.
    """

    label = "mask_and"

    def __init__(self, meta, lo, hi):
        self.meta = meta
        self.lo = lo
        self.hi = hi
        self.wanted = frozenset(mapper.chunk_ids_in_range(meta, lo, hi))

    def apply(self, chunk_id, state: KernelState) -> None:
        if chunk_id not in self.wanted:
            state.dropped = True
            return
        if mapper.chunk_fully_inside(self.meta, chunk_id, self.lo,
                                     self.hi):
            return
        inside = mapper.range_mask_for_chunk(self.meta, chunk_id,
                                             self.lo, self.hi)
        keep = inside[state.offsets]
        if keep.all():             # nothing was masked out
            return
        count = int(keep.sum())
        density = count / state.num_cells if state.num_cells else 0.0
        state.offsets = state.offsets[keep]
        state.values = state.values[keep]
        state.mode = choose_mode(density)
        state.rebuilt = True
        state.eager_builds += 1
        if state.offsets.size == 0:
            state.dropped = True


class RepackKernel:
    """Re-apply the density policy to each chunk's *current* density.

    The plan-level form of :meth:`Chunk.repack`: upstream kernels (a
    filter, a mask AND) may leave a chunk far from the mode it was
    built in; this kernel retargets the encode without an extra pass —
    it only flips ``state.mode``, so in a fused pipeline repacking is
    free. Chunks already in the policy's mode pass through untouched.
    """

    label = "repack"

    def apply(self, chunk_id, state: KernelState) -> None:
        if state.num_cells == 0:
            return
        target = choose_mode(state.offsets.size / state.num_cells)
        if target is state.mode:
            return
        state.mode = target
        state.rebuilt = True
        state.eager_builds += 1
        state.repacked += 1


class DropEmpty:
    """Drop chunks with no valid cell (the memory-reduction policy).

    Compiled with ``preserves_partitioning=True`` — the plan-level
    answer to the eager path's trailing ``.filter(valid_count > 0)``.
    """

    label = "drop_empty"

    def apply(self, chunk_id, state: KernelState) -> None:
        if state.offsets.size == 0:
            state.dropped = True


# ----------------------------------------------------------------------
# the plan
# ----------------------------------------------------------------------

_CHUNK_SOURCE = ChunkSource()


class _CompiledPlanPass:
    """The lowered form of a plan: one callable running the whole
    kernel chain over a partition.

    A module-level class (not a closure) so compiled passes pickle by
    construction when a task ships to a worker process. The driver-side
    tracer and metrics references are dropped from the pickled state
    (``__getstate__``) and the worker's context-binding walk re-attaches
    its own via :meth:`bind_engine_context`, so per-pass counters and
    ``plan`` spans flow through the worker's registries and merge back
    with the task reply.
    """

    def __init__(self, source, kernels, labels, pipeline, tracer,
                 metrics):
        self.source = source
        self.kernels = kernels
        self.labels = labels
        self.pipeline = pipeline
        self.tracer = tracer
        self.metrics = metrics

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["tracer"] = None
        state["metrics"] = None
        return state

    def bind_engine_context(self, context) -> None:
        self.tracer = getattr(context, "tracer", None)
        self.metrics = getattr(context, "metrics", None)

    def __call__(self, _index, part):
        source = self.source
        kernels = self.kernels
        metrics = self.metrics
        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled
        if tracing:
            span = tracer.start(self.pipeline, "plan", partition=_index,
                                kernels=list(self.labels))
            ranks_before = rank_counts()
        chunks_in = 0
        chunk_ids = []
        mode_counts = {}
        mode_bytes = {}
        avoided = 0
        repacked = 0
        for chunk_id, value in part:
            chunks_in += 1
            if tracing:
                chunk_ids.append(chunk_id)
            state = source.begin(chunk_id, value)
            for kernel in kernels:
                kernel.apply(chunk_id, state)
                if state.dropped:
                    break
            repacked += state.repacked
            if state.dropped:
                avoided += state.eager_builds
                continue
            if state.rebuilt:
                avoided += state.eager_builds - 1
                out = chunk_id, _encode(state)
            else:
                avoided += state.eager_builds
                out = chunk_id, state.chunk
            if tracing:
                mode = out[1].mode.value
                mode_counts[mode] = mode_counts.get(mode, 0) + 1
                mode_bytes[mode] = (mode_bytes.get(mode, 0)
                                    + int(out[1].payload.nbytes))
            yield out
        if metrics is not None and avoided:
            metrics.record_fused_chunks_avoided(avoided)
        if metrics is not None and repacked:
            metrics.record_repack(repacked)
        if tracing:
            chunks_out = sum(mode_counts.values())
            attrs = {"chunks_in": chunks_in,
                     "chunks_out": chunks_out,
                     "chunk_builds_avoided": avoided,
                     "chunk_ids": [list(cid) if isinstance(cid, tuple)
                                   else cid for cid in chunk_ids]}
            if repacked:
                attrs["chunks_repacked"] = repacked
            for mode, count in mode_counts.items():
                attrs[f"chunks_{mode}"] = count
                attrs[f"payload_bytes_{mode}"] = mode_bytes[mode]
            ranks_after = rank_counts()
            for name, before in ranks_before.items():
                delta = ranks_after[name] - before
                if delta:
                    attrs[name] = delta
            span.set(**attrs)
            tracer.finish(span)


class ChunkPlan:
    """An immutable chain of chunk kernels over an optional source.

    ``then(kernel)`` extends the chain (returning a new plan);
    ``compile(base_rdd, metrics)`` lowers the whole chain to a single
    ``map_partitions`` pass named after its pipeline
    (``fused[filter→map→mask_and]``), so the scheduler runs the chain
    as one task per partition and ``explain`` shows the fusion.
    """

    __slots__ = ("source", "kernels")

    def __init__(self, source: ChunkSource = None, kernels=()):
        self.source = source if source is not None else _CHUNK_SOURCE
        self.kernels = tuple(kernels)

    @classmethod
    def identity(cls) -> "ChunkPlan":
        return cls()

    @property
    def is_identity(self) -> bool:
        return self.source is _CHUNK_SOURCE and not self.kernels

    def then(self, kernel) -> "ChunkPlan":
        return ChunkPlan(self.source, self.kernels + (kernel,))

    def stage_labels(self) -> list:
        labels = [self.source.label] if self.source.label else []
        labels.extend(kernel.label for kernel in self.kernels)
        return labels

    def label(self) -> str:
        labels = self.stage_labels()
        if len(labels) == 1:
            return labels[0]
        return "fused[" + "→".join(labels) + "]"

    def compile(self, base_rdd, metrics=None):
        """Lower the plan to one narrow ``map_partitions`` pass.

        When the owning context traces, every executed pass opens a
        ``plan`` span under the running task, annotated with the fused
        kernel labels, per-chunk-mode output counts and payload bytes,
        and the bitmask rank queries the pass issued (a thread-local
        before/after diff of :func:`repro.bitmask.rank_counts`, so the
        attribution is exact even under the threaded scheduler).
        """
        if self.is_identity:
            return base_rdd
        labels = self.stage_labels()
        if metrics is not None and len(labels) >= 2:
            metrics.record_kernels_fused(len(labels))
        run = _CompiledPlanPass(self.source, self.kernels, labels,
                                self.label(),
                                getattr(base_rdd.context, "tracer", None),
                                metrics)
        compiled = base_rdd.map_partitions_with_index(
            run, preserves_partitioning=True)
        return compiled.rename(self.label())

    def __repr__(self) -> str:
        return f"ChunkPlan({self.label() if not self.is_identity else 'id'})"
