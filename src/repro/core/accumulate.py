"""The distributed Accumulator (Section V-B): running accumulation
along an axis of an ArrayRDD.

"If there are cells involved in separate chunks in a direction, the
value of a previous cell must be computed with the next cell" — chunks
along the axis form *strips* that must agree on carries at their
boundaries. Two execution modes, as the paper describes:

- **sync** — strips advance one chunk-step at a time; every step is a
  separate job whose carries feed the next (a barrier per boundary).
- **async** — one parallel pass computes every chunk's internal prefix
  and per-strip totals; the driver runs an exclusive scan over the tiny
  totals; a second parallel pass adds each chunk's offset. For an
  associative operator the result is exact — two barriers total.

Invalid cells pass the running value through and stay invalid.
"""

from __future__ import annotations

import numpy as np

from repro.core import mapper
from repro.core.array_rdd import ArrayRDD
from repro.core.chunk import Chunk
from repro.errors import ArrayError

_OPS = {
    "sum": (np.add, 0.0),
    "prod": (np.multiply, 1.0),
    "min": (np.minimum, np.inf),
    "max": (np.maximum, -np.inf),
}


def _resolve_op(op):
    if isinstance(op, str):
        try:
            return _OPS[op]
        except KeyError:
            raise ArrayError(
                f"unknown accumulation op {op!r}; have {sorted(_OPS)}"
            ) from None
    if isinstance(op, tuple) and len(op) == 2:
        return op
    raise ArrayError(
        "op must be a name or a (ufunc, identity) pair"
    )


def _strip_key(meta, chunk_id: int, axis: int):
    """(cross-axis grid coords, position along the axis)."""
    grid = mapper.chunk_coords_from_id(meta, chunk_id)
    cross = tuple(g for a, g in enumerate(grid) if a != axis)
    return cross, grid[axis]


def _chunk_prefix(meta, chunk, axis, ufunc, identity):
    """Internal prefix over one chunk; returns (prefix, valid, total)."""
    shape = meta.chunk_shape
    dense = chunk.to_dense(0).reshape(shape, order="F")
    valid = chunk.valid_bools().reshape(shape, order="F")
    filled = np.where(valid, dense, identity)
    prefix = ufunc.accumulate(filled.astype(np.float64), axis=axis)
    total = np.take(prefix, -1, axis=axis)
    return prefix, valid, total


def _rebuild(prefix, valid):
    return Chunk.from_dense(prefix.ravel(order="F"),
                            valid.ravel(order="F"))


def accumulate_axis(array: ArrayRDD, axis, op="sum",
                    mode: str = "async") -> ArrayRDD:
    """Running accumulation along ``axis``; returns a new ArrayRDD."""
    meta = array.meta
    if isinstance(axis, str):
        axis = meta.dim_index(axis)
    if not 0 <= axis < meta.ndim:
        raise ArrayError(f"axis {axis} out of range for {meta.ndim}-D")
    ufunc, identity = _resolve_op(op)
    if mode == "async":
        return _accumulate_async(array, axis, ufunc, identity)
    if mode == "sync":
        return _accumulate_sync(array, axis, ufunc, identity)
    raise ArrayError(f"unknown accumulator mode {mode!r}")


def _accumulate_async(array, axis, ufunc, identity):
    meta = array.meta

    # phase 1 (parallel): internal prefixes + per-chunk strip totals
    def internal(part):
        for chunk_id, chunk in part:
            prefix, valid, total = _chunk_prefix(meta, chunk, axis,
                                                 ufunc, identity)
            yield chunk_id, (prefix, valid, total)

    staged = array.rdd.map_partitions(internal,
                                      preserves_partitioning=True) \
                      .cache()

    # phase 2 (driver): exclusive scan of the tiny per-chunk totals
    totals = staged.map(
        lambda kv: (kv[0], kv[1][2])).collect()
    strips = {}
    for chunk_id, total in totals:
        cross, position = _strip_key(meta, chunk_id, axis)
        strips.setdefault(cross, []).append((position, chunk_id, total))
    offsets = {}
    for cross, members in strips.items():
        members.sort()
        carry = None
        for _position, chunk_id, total in members:
            if carry is not None:
                offsets[chunk_id] = carry
                carry = ufunc(carry, total)
            else:
                carry = total

    # phase 3 (parallel): add offsets, rebuild chunks
    offsets_broadcast = array.context.broadcast(offsets)

    def apply_offsets(pair):
        chunk_id, (prefix, valid, _total) = pair
        offset = offsets_broadcast.value.get(chunk_id)
        if offset is not None:
            prefix = ufunc(prefix, np.expand_dims(offset, axis))
        return chunk_id, _rebuild(prefix, valid)

    out = staged.map(apply_offsets)
    out.partitioner = array.rdd.partitioner
    result = ArrayRDD(out, meta, array.context).materialize()
    staged.unpersist()
    return result


def _accumulate_sync(array, axis, ufunc, identity):
    """One job per chunk-step along the axis (a barrier per boundary)."""
    meta = array.meta
    steps = meta.chunk_grid[axis]
    carries = {}
    finished = []
    for step in range(steps):
        step_carries = dict(carries)

        def advance(part, step=step, step_carries=step_carries):
            for chunk_id, chunk in part:
                _cross, position = _strip_key(meta, chunk_id, axis)
                if position != step:
                    continue
                prefix, valid, total = _chunk_prefix(
                    meta, chunk, axis, ufunc, identity)
                cross, _position = _strip_key(meta, chunk_id, axis)
                carry = step_carries.get(cross)
                if carry is not None:
                    prefix = ufunc(prefix, np.expand_dims(carry, axis))
                    total = ufunc(total, carry)
                yield chunk_id, (_rebuild(prefix, valid), total, cross)

        produced = array.rdd.map_partitions(advance).collect()
        carries = dict(carries)
        for chunk_id, (chunk, total, cross) in produced:
            finished.append((chunk_id, chunk))
            carries[cross] = total
    return ArrayRDD.from_chunks(array.context, finished, meta,
                                array.rdd.num_partitions)
