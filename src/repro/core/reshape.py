"""Layout transformations: re-chunking and axis permutation.

Chunk geometry is a first-class performance knob in the paper (all of
Fig. 8/9 is about it), so a production array system needs to *change*
it: :func:`rechunk` redistributes cells into a new chunk interval, and
:func:`permute_axes` reorders dimensions (the general form of the
matrix transpose). Both move cells through one shuffle keyed by the
destination chunk ID; all coordinate arithmetic is vectorized.
"""

from __future__ import annotations

import numpy as np

from repro.core import mapper
from repro.core.array_rdd import ArrayRDD
from repro.core.chunk import Chunk
from repro.core.metadata import ArrayMetadata
from repro.engine import HashPartitioner
from repro.errors import ArrayError, MetadataError


def _shuffle_cells(array: ArrayRDD, new_meta: ArrayMetadata,
                   coord_transform=None,
                   num_partitions=None) -> ArrayRDD:
    """Move every valid cell to its chunk under ``new_meta``.

    ``coord_transform(coords_matrix) -> coords_matrix`` optionally maps
    old global coordinates to new ones (identity for rechunk).
    """
    old_meta = array.meta
    if num_partitions is None:
        num_partitions = array.rdd.num_partitions
    cells_per_chunk = new_meta.cells_per_chunk

    def emit(part):
        for chunk_id, chunk in part:
            offsets = chunk.indices()
            if offsets.size == 0:
                continue
            coords = mapper.coords_for_offsets_array(old_meta, chunk_id,
                                                     offsets)
            if coord_transform is not None:
                coords = coord_transform(coords)
            new_ids = mapper.chunk_ids_for_coords_array(new_meta, coords)
            new_offsets = mapper.local_offsets_for_coords_array(new_meta,
                                                                coords)
            values = chunk.values()
            order = np.argsort(new_ids, kind="stable")
            new_ids = new_ids[order]
            new_offsets = new_offsets[order]
            values = values[order]
            boundaries = np.nonzero(np.diff(new_ids))[0] + 1
            starts = np.concatenate([[0], boundaries])
            ends = np.concatenate([boundaries, [new_ids.size]])
            for start, end in zip(starts, ends):
                yield (int(new_ids[start]),
                       (new_offsets[start:end], values[start:end]))

    partitioner = HashPartitioner(num_partitions)

    def build(pieces):
        offsets = np.concatenate([p[0] for p in pieces])
        values = np.concatenate([p[1] for p in pieces])
        return Chunk.from_sparse(cells_per_chunk, offsets, values)

    chunks = array.rdd.map_partitions(emit) \
        .group_by_key(partitioner=partitioner) \
        .map_values(build)
    chunks.partitioner = partitioner
    return ArrayRDD(chunks, new_meta, array.context)


def rechunk(array: ArrayRDD, new_chunk_shape,
            num_partitions=None) -> ArrayRDD:
    """Redistribute an array into a new chunk interval.

    One shuffle; cell values and validity are preserved exactly. Use it
    to move between scan-friendly large chunks and update-friendly
    small ones (the Fig. 8/9 trade-off).
    """
    new_chunk_shape = tuple(int(c) for c in new_chunk_shape)
    if len(new_chunk_shape) != array.meta.ndim:
        raise MetadataError(
            f"chunk shape arity {len(new_chunk_shape)} != "
            f"array arity {array.meta.ndim}"
        )
    new_meta = ArrayMetadata(array.meta.shape, new_chunk_shape,
                             starts=array.meta.starts,
                             dim_names=array.meta.dim_names,
                             dtype=array.meta.dtype,
                             attribute=array.meta.attribute)
    if new_meta.chunk_shape == array.meta.chunk_shape:
        return array
    return _shuffle_cells(array, new_meta,
                          num_partitions=num_partitions)


def permute_axes(array: ArrayRDD, order,
                 num_partitions=None) -> ArrayRDD:
    """Reorder dimensions (``order`` = new-axis → old-axis, à la numpy).

    ``permute_axes(m, (1, 0))`` is the distributed transpose.
    """
    order = tuple(int(a) for a in order)
    meta = array.meta
    if sorted(order) != list(range(meta.ndim)):
        raise ArrayError(
            f"order must be a permutation of 0..{meta.ndim - 1}, "
            f"got {order}"
        )
    new_meta = ArrayMetadata(
        tuple(meta.shape[a] for a in order),
        tuple(meta.chunk_shape[a] for a in order),
        starts=tuple(meta.starts[a] for a in order),
        dim_names=tuple(meta.dim_names[a] for a in order),
        dtype=meta.dtype,
        attribute=meta.attribute,
    )

    def transform(coords):
        return coords[:, list(order)]

    return _shuffle_cells(array, new_meta, coord_transform=transform,
                          num_partitions=num_partitions)
