"""SpangleDataset: multi-attribute arrays as a column store (Section III-A).

Each attribute maps to its own ArrayRDD; the dataset optionally shares a
MaskRDD. With the MaskRDD enabled (the default), Filter and Subarray
transform only the mask — evaluation reconciles attributes lazily. With
it disabled, every operator eagerly rewrites every attribute, which is
the expensive path Fig. 9b quantifies.

Both paths reconcile through :meth:`MaskRDD.apply_to`, which builds a
:class:`~repro.core.plan.ChunkPlan` (a ``MaskApplySource`` + drop-empty
kernel). Lazily, the per-attribute restriction therefore fuses with any
chunk-local operators the caller chains after :meth:`evaluate`; eagerly,
``materialize()`` collapses the same plan in a single pass per chunk.
"""

from __future__ import annotations

from repro.core.array_rdd import ArrayRDD
from repro.core.mask_rdd import MaskRDD
from repro.errors import AttributeMismatchError, ShapeMismatchError


class SpangleDataset:
    """A named collection of co-dimensional attributes."""

    def __init__(self, attributes: dict, mask: MaskRDD = None,
                 use_mask_rdd: bool = True, _pristine: bool = None):
        if not attributes:
            raise AttributeMismatchError("dataset needs >= 1 attribute")
        first = next(iter(attributes.values()))
        for name, arr in attributes.items():
            if arr.meta.shape != first.meta.shape \
                    or arr.meta.chunk_shape != first.meta.chunk_shape:
                raise ShapeMismatchError(
                    f"attribute {name!r} geometry differs from the rest"
                )
        self.attributes = dict(attributes)
        self.context = first.context
        self.use_mask_rdd = use_mask_rdd
        if use_mask_rdd and mask is None:
            # initial global view: a cell is valid when every attribute
            # carries data for it (the "global positions of null values"
            # of Section III-B-1); built lazily — no job runs here
            mask = MaskRDD.from_array_rdd(first)
            for arr in attributes.values():
                if arr is first:
                    continue
                mask = mask.and_(MaskRDD.from_array_rdd(arr))
        self.mask = mask if use_mask_rdd else None
        # pristine: no filter/subarray has constrained the mask yet, so
        # evaluation can skip the reconcile join entirely
        if _pristine is None:
            _pristine = True
        self._pristine = _pristine

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def attribute_names(self) -> list:
        return sorted(self.attributes)

    @property
    def meta(self):
        return next(iter(self.attributes.values())).meta

    def attribute(self, name: str) -> ArrayRDD:
        try:
            return self.attributes[name]
        except KeyError:
            raise AttributeMismatchError(
                f"no attribute {name!r}; have {self.attribute_names}"
            ) from None

    # ------------------------------------------------------------------
    # operators
    # ------------------------------------------------------------------

    def filter(self, attr: str, predicate) -> "SpangleDataset":
        """Filter on one attribute; the condition constrains all of them.

        MaskRDD path: one mask transformation, attributes untouched.
        Eager path: the passing-mask is joined into *every* attribute now.
        """
        anchor = self.attribute(attr)
        if self.use_mask_rdd:
            new_mask = self.mask.filter_on(anchor, predicate)
            return SpangleDataset(self.attributes, mask=new_mask,
                                  use_mask_rdd=True, _pristine=False)
        # eager path (Fig. 9b's "without MaskRDD"): collect every
        # attribute's mask, AND them all, and rewrite every attribute
        # now — the rewritten attributes are materialized immediately
        # (that is what "evaluated eagerly" means)
        combined = self._eager_global_mask().filter_on(anchor, predicate)
        new_attrs = {
            name: combined.apply_to(arr).materialize()
            for name, arr in self.attributes.items()
        }
        return SpangleDataset(new_attrs, use_mask_rdd=False)

    def _eager_global_mask(self) -> MaskRDD:
        """AND of every attribute's bitmask, computed now (no laziness)."""
        attrs = list(self.attributes.values())
        mask = MaskRDD.from_array_rdd(attrs[0])
        for arr in attrs[1:]:
            mask = mask.and_(MaskRDD.from_array_rdd(arr))
        return mask

    def subarray(self, lo, hi) -> "SpangleDataset":
        """Range-restrict the dataset (all attributes)."""
        if self.use_mask_rdd:
            if self._pristine and len(self.attributes) == 1:
                # single-attribute pushdown: restricting the attribute
                # directly is the same plan minus the reconcile join
                name, arr = next(iter(self.attributes.items()))
                return SpangleDataset({name: arr.subarray(lo, hi)},
                                      use_mask_rdd=True)
            return SpangleDataset(self.attributes,
                                  mask=self.mask.subarray(lo, hi),
                                  use_mask_rdd=True, _pristine=False)
        combined = self._eager_global_mask().subarray(lo, hi)
        new_attrs = {
            name: combined.apply_to(arr).materialize()
            for name, arr in self.attributes.items()
        }
        return SpangleDataset(new_attrs, use_mask_rdd=False)

    def join(self, other: "SpangleDataset", how: str = "and") -> "SpangleDataset":
        """Combine two datasets' attributes over shared dimensions.

        The result carries the union of the attribute sets (Section
        V-A-3); validity is the AND (and-join) or OR (or-join) of the two
        masks.
        """
        overlap = set(self.attributes) & set(other.attributes)
        if overlap:
            raise AttributeMismatchError(
                f"attribute name clash in join: {sorted(overlap)}"
            )
        attrs = {**self.attributes, **other.attributes}
        if self.use_mask_rdd and other.use_mask_rdd:
            mask = self.mask.and_(other.mask) if how == "and" \
                else self.mask.or_(other.mask)
            return SpangleDataset(attrs, mask=mask, use_mask_rdd=True,
                                  _pristine=False)
        return SpangleDataset(attrs, use_mask_rdd=False)

    def with_attribute(self, name: str, array: ArrayRDD
                       ) -> "SpangleDataset":
        """Add a co-dimensional attribute (column-store append).

        The new attribute joins under the dataset's *current* mask: any
        filters already applied constrain it too.
        """
        if name in self.attributes:
            raise AttributeMismatchError(
                f"attribute {name!r} already exists"
            )
        first = next(iter(self.attributes.values()))
        if array.meta.shape != first.meta.shape \
                or array.meta.chunk_shape != first.meta.chunk_shape:
            raise ShapeMismatchError(
                f"attribute {name!r} geometry differs from the dataset"
            )
        attrs = {**self.attributes, name: array}
        if self.use_mask_rdd:
            return SpangleDataset(attrs, mask=self.mask,
                                  use_mask_rdd=True,
                                  _pristine=self._pristine)
        return SpangleDataset(attrs, use_mask_rdd=False)

    def drop_attribute(self, name: str) -> "SpangleDataset":
        """Remove an attribute column; the mask is untouched."""
        if name not in self.attributes:
            raise AttributeMismatchError(
                f"no attribute {name!r}; have {self.attribute_names}"
            )
        if len(self.attributes) == 1:
            raise AttributeMismatchError(
                "cannot drop the only attribute"
            )
        attrs = {k: v for k, v in self.attributes.items() if k != name}
        if self.use_mask_rdd:
            return SpangleDataset(attrs, mask=self.mask,
                                  use_mask_rdd=True,
                                  _pristine=self._pristine)
        return SpangleDataset(attrs, use_mask_rdd=False)

    def derive(self, name: str, source: str, func) -> "SpangleDataset":
        """Compute a new attribute from an existing one, cell-wise."""
        derived = self.attribute(source).map_values(func)
        derived.meta = derived.meta.with_attribute(name)
        return self.with_attribute(name, derived)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------

    def evaluate(self, attr: str) -> ArrayRDD:
        """Reconcile one attribute with the dataset's pending mask.

        The result carries a pending mask-apply plan: chunk-local
        operators chained onto it fuse with the reconciliation itself.
        """
        arr = self.attribute(attr)
        if self.use_mask_rdd and not self._pristine:
            return self.mask.apply_to(arr)
        return arr

    def evaluate_all(self) -> dict:
        """Reconcile every attribute (the expensive eager step)."""
        return {name: self.evaluate(name) for name in self.attributes}

    def aggregate(self, attr: str, aggregator="avg"):
        return self.evaluate(attr).aggregate(aggregator)

    def count_valid(self, attr: str) -> int:
        return self.evaluate(attr).count_valid()

    def __repr__(self) -> str:
        mask = "MaskRDD" if self.use_mask_rdd else "eager"
        return (
            f"SpangleDataset(attrs={self.attribute_names}, mode={mask})"
        )
