"""General N-dimensional window aggregation.

The raster benchmark's regrid (Q2) and density (Q5) queries are
instances of one operator: tile the array with axis-aligned windows,
fold every window's valid cells through an Aggregator, and emit the
result as a *new array* whose cell (w₀, w₁, ...) holds window
(w₀, w₁, ...)'s aggregate — downsampling with any reduction.

Windows never need halo exchange: each chunk computes partial states
for the windows it intersects, and a reduce merges partials of windows
that straddle chunk boundaries.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core import mapper
from repro.core.aggregates import combine_kernel_for, resolve_aggregator
from repro.core.array_rdd import ArrayRDD
from repro.core.metadata import ArrayMetadata
from repro.errors import ArrayError


def window_aggregate(array: ArrayRDD, window_shape, aggregator="avg",
                     result_chunk_shape=None) -> ArrayRDD:
    """Aggregate over tiling windows; returns the downsampled array.

    ``window_shape`` gives the window extent per axis (an entry of 1
    passes that axis through). Only windows containing at least one
    valid cell materialize.
    """
    meta = array.meta
    window_shape = tuple(int(w) for w in window_shape)
    if len(window_shape) != meta.ndim:
        raise ArrayError(
            f"need {meta.ndim} window extents, got {len(window_shape)}"
        )
    if any(w <= 0 for w in window_shape):
        raise ArrayError(f"window extents must be positive: "
                         f"{window_shape}")
    agg = resolve_aggregator(aggregator)

    out_shape = tuple(
        math.ceil(size / w) for size, w in zip(meta.shape, window_shape))
    if result_chunk_shape is None:
        result_chunk_shape = tuple(
            max(1, math.ceil(c / w))
            for c, w in zip(meta.chunk_shape, window_shape))
    out_meta = ArrayMetadata(
        out_shape, result_chunk_shape, dim_names=meta.dim_names,
        dtype=np.float64,
        attribute=f"{agg.name}_{meta.attribute}")

    def partials(part):
        for chunk_id, chunk in part:
            offsets = chunk.indices()
            if offsets.size == 0:
                continue
            coords = mapper.coords_for_offsets_array(meta, chunk_id,
                                                     offsets)
            window_coords = np.empty_like(coords)
            for axis in range(meta.ndim):
                window_coords[:, axis] = (
                    (coords[:, axis] - meta.starts[axis])
                    // window_shape[axis]
                )
            values = chunk.values()
            keys = window_coords[:, 0].astype(np.int64)
            for axis in range(1, meta.ndim):
                keys = keys * out_shape[axis] + window_coords[:, axis]
            order = np.argsort(keys, kind="stable")
            keys = keys[order]
            values = values[order]
            window_coords = window_coords[order]
            boundaries = np.nonzero(np.diff(keys))[0] + 1
            starts = np.concatenate([[0], boundaries])
            ends = np.concatenate([boundaries, [keys.size]])
            for start, end in zip(starts, ends):
                state = agg.accumulate(agg.initialize(),
                                       values[start:end])
                # the linear window id is already computed: shuffle on
                # it so the columnar path vectorizes the merge
                yield int(keys[start]), state

    def decode(record):
        key, value = record
        coords = [0] * len(out_shape)
        for axis in range(len(out_shape) - 1, -1, -1):
            key, remainder = divmod(key, out_shape[axis])
            coords[axis] = remainder
        return tuple(coords), value

    merged = array.rdd.map_partitions(partials) \
        .reduce_by_key(agg.merge,
                       combine_kernel=combine_kernel_for(agg)) \
        .map_values(agg.evaluate) \
        .filter(lambda kv: kv[1] is not None) \
        .map(decode)

    from repro.core.ingest import array_rdd_from_cell_rdd

    return array_rdd_from_cell_rdd(array.context, merged, out_meta,
                                   array.rdd.num_partitions)


def window_counts(array: ArrayRDD, window_shape) -> ArrayRDD:
    """Observation counts per window (the Q5 primitive)."""
    return window_aggregate(array, window_shape, "count")


def regrid(array: ArrayRDD, window_shape) -> ArrayRDD:
    """Mean-downsample onto a coarser grid (the Q2 primitive)."""
    return window_aggregate(array, window_shape, "avg")
