"""Logical array plans: the algebra above the ChunkPlan kernel layer.

ChunkPlan (:mod:`repro.core.plan`) fuses chunk-local kernels in whatever
order the user wrote them; nothing *reorders*. This module adds the
missing logical layer: ArrayRDD / MaskRDD / matrix operators *record*
:class:`LogicalOp` DAG nodes instead of eagerly appending kernels or
building RDDs. When an action forces evaluation, the recorded tree is
(optionally) rewritten by the cost-based optimizer
(:mod:`repro.core.optimizer`) and then **lowered** right back onto
today's physical layer — ChunkPlan kernels for the chunk-local nodes,
engine joins / partition_by / the matmul machinery for the wide ones —
so the executor, fusion, the columnar shuffle, and all three backends
are untouched.

The lowering contract is strict: with the optimizer disabled, lowering a
recorded tree produces *exactly* the RDD graph and ChunkPlans the
pre-logical operators built, so every byte-identity guarantee of the
kernel layer carries over unchanged.

Layer map::

    user operators          ->  LogicalOp DAG        (this module)
    cost-based rewrites     ->  repro.core.optimizer
    chunk-local lowering    ->  repro.core.plan       (ChunkPlan kernels)
    wide lowering           ->  repro.engine          (joins, shuffles)
"""

from __future__ import annotations

import numpy as np

from repro.core import mapper
from repro.core.plan import (
    ChunkPlan,
    DropEmpty,
    ElementwiseSource,
    FilterKernel,
    FoldedScalarKernel,
    MapValuesKernel,
    MaskAndKernel,
    MaskApplySource,
    RepackKernel,
    ScalarOpKernel,
)

__all__ = [
    "AggregateOp",
    "ElementwiseOp",
    "Estimate",
    "FilterOp",
    "FoldedScalarOp",
    "LogicalOp",
    "MapOp",
    "MaskApplyOp",
    "MatmulOp",
    "RawPlanOp",
    "RepackOp",
    "ScalarOp",
    "ShuffleOp",
    "SourceOp",
    "SubarrayOp",
    "estimate",
    "lower_to_rdd",
    "render_tree",
    "subtree_partitioner",
]

#: assumed fraction of cells surviving a value predicate when no better
#: statistic is available (the classic Selinger default)
DEFAULT_FILTER_SELECTIVITY = 0.5


# ----------------------------------------------------------------------
# nodes
# ----------------------------------------------------------------------

class LogicalOp:
    """One node of a logical array plan.

    ``children`` is the tuple of upstream logical nodes; ``meta`` is the
    :class:`~repro.core.metadata.ArrayMetadata` of the node's output.
    Nodes are immutable: rewrites build new trees.
    """

    name = "op"
    children = ()
    #: True when the node never changes which cells are valid — a
    #: validity-only consumer (count_valid) can skip it entirely
    value_only = False

    @property
    def meta(self):
        return self.children[0].meta

    def describe(self) -> str:
        return self.name

    def with_children(self, children) -> "LogicalOp":
        raise NotImplementedError


class SourceOp(LogicalOp):
    """Leaf: a concrete ``(chunk_id, Chunk)`` RDD already in the engine.

    ``valid_counts`` — per-chunk valid-cell counts captured at creation
    time (``from_numpy`` knows them for free) — feed the optimizer's
    density-aware cost estimates; ``None`` means unknown.
    """

    name = "source"

    def __init__(self, rdd, meta, valid_counts=None):
        self.rdd = rdd
        self._meta = meta
        self.valid_counts = valid_counts

    @property
    def meta(self):
        return self._meta

    def describe(self) -> str:
        known = (f" chunks={len(self.valid_counts)}"
                 if self.valid_counts is not None else "")
        return (f"source[shape={self._meta.shape} "
                f"chunk={self._meta.chunk_shape}{known}]")

    def with_children(self, children) -> "SourceOp":
        return self


class RawPlanOp(LogicalOp):
    """An opaque, pre-built ChunkPlan over a source (compat shim).

    Produced when an :class:`~repro.core.array_rdd.ArrayRDD` is
    constructed with an explicit ``plan=``; the optimizer treats it as a
    black box.
    """

    name = "raw_plan"

    def __init__(self, child, chunk_plan):
        self.children = (child,)
        self.chunk_plan = chunk_plan

    def describe(self) -> str:
        return f"raw[{self.chunk_plan.label()}]"

    def with_children(self, children) -> "RawPlanOp":
        return RawPlanOp(children[0], self.chunk_plan)


class MapOp(LogicalOp):
    """``map_values``: vectorized function over every valid value."""

    name = "map"
    value_only = True

    def __init__(self, child, func):
        self.children = (child,)
        self.func = func

    def describe(self) -> str:
        return f"map[{getattr(self.func, '__name__', 'fn')}]"

    def with_children(self, children) -> "MapOp":
        return MapOp(children[0], self.func)


class ScalarOp(LogicalOp):
    """Scalar arithmetic (``a * 2``, ``2 ** a``, ...)."""

    name = "scalar"
    value_only = True

    def __init__(self, child, op, scalar, reflected=False, opname=None):
        self.children = (child,)
        self.op = op
        self.scalar = scalar
        self.reflected = reflected
        self.opname = opname or getattr(op, "__name__", "op")

    def describe(self) -> str:
        return f"scalar[{self.opname} {self.scalar!r}]"

    def with_children(self, children) -> "ScalarOp":
        return ScalarOp(children[0], self.op, self.scalar,
                        self.reflected, self.opname)


class FoldedScalarOp(LogicalOp):
    """Adjacent scalar ops folded into one kernel application.

    ``stages`` is a tuple of ``(op, scalar, reflected, opname)`` applied
    in order — the arithmetic sequence is preserved exactly, so the
    result is bit-identical to the unfolded chain; only the per-kernel
    dispatch overhead is saved.
    """

    name = "scalar_fold"
    value_only = True

    def __init__(self, child, stages):
        self.children = (child,)
        self.stages = tuple(stages)

    def describe(self) -> str:
        ops = "+".join(stage[3] for stage in self.stages)
        return f"scalar_fold[{ops}]"

    def with_children(self, children) -> "FoldedScalarOp":
        return FoldedScalarOp(children[0], self.stages)


class FilterOp(LogicalOp):
    """Invalidate cells whose value fails a vectorized predicate."""

    name = "filter"

    def __init__(self, child, predicate):
        self.children = (child,)
        self.predicate = predicate

    def describe(self) -> str:
        return f"filter[{getattr(self.predicate, '__name__', 'pred')}]"

    def with_children(self, children) -> "FilterOp":
        return FilterOp(children[0], self.predicate)


class SubarrayOp(LogicalOp):
    """Restrict to the closed coordinate box ``[lo, hi]`` (Fig. 4a)."""

    name = "subarray"

    def __init__(self, child, lo, hi):
        self.children = (child,)
        self.lo = tuple(int(c) for c in lo)
        self.hi = tuple(int(c) for c in hi)
        # validates the box now (call-site error timing) and feeds the
        # optimizer's pruning estimates — a pure metadata computation
        self.wanted = frozenset(
            mapper.chunk_ids_in_range(self.meta, self.lo, self.hi))

    def describe(self) -> str:
        pruned = self.meta.num_chunks - len(self.wanted)
        note = f" prunes {pruned}/{self.meta.num_chunks}" if pruned else ""
        return f"subarray[{self.lo}..{self.hi}{note}]"

    def cell_fraction(self) -> float:
        """Fraction of the array's cells inside the (clamped) box."""
        meta = self.meta
        inside = 1
        for axis in range(meta.ndim):
            lo = max(self.lo[axis], meta.starts[axis])
            hi = min(self.hi[axis], meta.ends[axis] - 1)
            if lo > hi:
                return 0.0
            inside *= hi - lo + 1
        return inside / meta.num_cells if meta.num_cells else 0.0

    def with_children(self, children) -> "SubarrayOp":
        return SubarrayOp(children[0], self.lo, self.hi)


class RepackOp(LogicalOp):
    """Re-apply the chunk density-mode policy."""

    name = "repack"
    value_only = True

    def __init__(self, child):
        self.children = (child,)

    def with_children(self, children) -> "RepackOp":
        return RepackOp(children[0])


class ShuffleOp(LogicalOp):
    """Redistribute chunk records under an explicit partitioner."""

    name = "shuffle"
    value_only = True

    def __init__(self, child, partitioner):
        self.children = (child,)
        self.partitioner = partitioner

    def describe(self) -> str:
        return (f"shuffle[{type(self.partitioner).__name__}:"
                f"{self.partitioner.num_partitions}]")

    def with_children(self, children) -> "ShuffleOp":
        return ShuffleOp(children[0], self.partitioner)


class ElementwiseOp(LogicalOp):
    """Cell-wise combination of two co-dimensional arrays (a join)."""

    def __init__(self, left, right, op, how, fill, meta):
        self.children = (left, right)
        self.op = op
        self.how = how
        self.fill = fill
        self._meta = meta
        self.name = f"elementwise_{how}"

    @property
    def meta(self):
        return self._meta

    def describe(self) -> str:
        opname = getattr(self.op, "__name__", "op")
        return f"elementwise[{opname} how={self.how}]"

    def with_children(self, children) -> "ElementwiseOp":
        return ElementwiseOp(children[0], children[1], self.op,
                             self.how, self.fill, self._meta)


class MaskApplyOp(LogicalOp):
    """Reconcile an attribute with a MaskRDD (one AND per chunk)."""

    name = "apply_mask"

    def __init__(self, child, mask):
        self.children = (child,)
        self.mask = mask        # a MaskRDD handle (driver-side only)

    def describe(self) -> str:
        return "apply_mask"

    def with_children(self, children) -> "MaskApplyOp":
        return MaskApplyOp(children[0], self.mask)


class MatmulExecPlan:
    """Physical choices the optimizer attached to a :class:`MatmulOp`.

    ``kernel`` is the forced block-pair representation (``"dense"`` /
    ``"coo"`` / ``"csr"``); ``balance`` swaps the k-shuffle and gather
    hash partitioners for nnz-balanced ones built from ``k_weights``
    and ``gather_weights`` (per-key modeled work, measured from the
    operands' per-chunk valid counts). The two imbalance figures are
    the max/mean gather load ratios hash vs balanced placement would
    produce — what the cost gate compared, and what ``explain``
    surfaces.
    """

    __slots__ = ("kernel", "balance", "k_weights", "gather_weights",
                 "imbalance_hash", "imbalance_nnz")

    def __init__(self, kernel, balance, k_weights, gather_weights,
                 imbalance_hash=1.0, imbalance_nnz=1.0):
        self.kernel = kernel
        self.balance = balance
        self.k_weights = k_weights
        self.gather_weights = gather_weights
        self.imbalance_hash = imbalance_hash
        self.imbalance_nnz = imbalance_nnz

    def describe(self) -> str:
        placement = (
            f"nnz-balanced skew {self.imbalance_hash:.2f}"
            f"->{self.imbalance_nnz:.2f}" if self.balance else "hash"
        )
        return f"kernel={self.kernel} placement={placement}"


class MatmulOp(LogicalOp):
    """Distributed block matrix multiply of two SpangleMatrix operands.

    The operands stay driver-side matrix handles; their own pending
    logical plans lower when this node does. ``operands_restricted``
    marks that the pushdown rule already narrowed the operand sides, so
    a fixpoint rewrite loop fires it at most once. ``exec_plan`` is the
    optimizer's :class:`MatmulExecPlan` (kernel + placement), or None
    for the density-gated default path.
    """

    name = "matmul"

    def __init__(self, left, right, local_join, meta,
                 operands_restricted=False, exec_plan=None):
        self.left = left
        self.right = right
        self.local_join = local_join
        self._meta = meta
        self.operands_restricted = operands_restricted
        self.exec_plan = exec_plan

    @property
    def meta(self):
        return self._meta

    @property
    def children(self):
        return (self.left.array._logical, self.right.array._logical)

    def describe(self) -> str:
        kind = "local_join" if self.local_join else "shuffled"
        note = " operands_restricted" if self.operands_restricted else ""
        plan = (f" {self.exec_plan.describe()}"
                if self.exec_plan is not None else "")
        return (f"matmul[{kind} {self.left.shape}x{self.right.shape}"
                f"{note}{plan}]")

    def with_children(self, children) -> "MatmulOp":
        return self


class AggregateOp(LogicalOp):
    """A terminal aggregation consumer (explain / rule matching only).

    ``kind`` is the aggregator name, or ``"count_valid"`` — the
    validity-only consumer the mask-only rewrite targets.
    """

    name = "aggregate"

    def __init__(self, child, kind):
        self.children = (child,)
        self.kind = kind

    def describe(self) -> str:
        return f"aggregate[{self.kind}]"

    def with_children(self, children) -> "AggregateOp":
        return AggregateOp(children[0], self.kind)


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------

def render_tree(node: LogicalOp, indent: int = 0) -> str:
    """Indented one-line-per-node rendering of a logical tree."""
    lines = [("  " * indent) + node.describe()]
    for child in node.children:
        lines.append(render_tree(child, indent + 1))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# statistics: per-node output estimates for the cost model
# ----------------------------------------------------------------------

class Estimate:
    """Estimated shape of one node's output stream.

    ``chunks`` — surviving chunk records; ``valid`` — estimated valid
    cells across them; ``per_chunk`` — optional exact per-chunk valid
    counts (kept while ops preserve per-chunk validity structure,
    dropped once an estimate-only op intervenes). ``density`` and
    ``payload_bytes`` derive from those.
    """

    __slots__ = ("chunks", "valid", "meta", "per_chunk")

    def __init__(self, chunks, valid, meta, per_chunk=None):
        self.chunks = max(float(chunks), 0.0)
        self.valid = max(float(valid), 0.0)
        self.meta = meta
        self.per_chunk = per_chunk

    @property
    def density(self) -> float:
        cells = self.chunks * self.meta.cells_per_chunk
        return min(self.valid / cells, 1.0) if cells else 0.0

    @property
    def dense_bytes(self) -> float:
        """Payload bytes if every surviving chunk were DENSE."""
        return (self.chunks * self.meta.cells_per_chunk
                * self.meta.dtype.itemsize)

    @property
    def payload_bytes(self) -> float:
        """Estimated bytes actually stored (density-scaled payloads
        plus one bitmask word stream per chunk)."""
        mask_bytes = self.chunks * self.meta.cells_per_chunk / 8.0
        return self.dense_bytes * self.density + mask_bytes


def estimate(node: LogicalOp) -> Estimate:
    """Recursive output estimate for one logical node."""
    if isinstance(node, SourceOp):
        meta = node.meta
        if node.valid_counts is not None:
            per_chunk = dict(node.valid_counts)
            return Estimate(len(per_chunk), sum(per_chunk.values()),
                            meta, per_chunk)
        return Estimate(meta.num_chunks,
                        meta.num_chunks * meta.cells_per_chunk, meta)
    if isinstance(node, MatmulOp):
        meta = node.meta
        left = estimate(node.children[0])
        right = estimate(node.children[1])
        # a cell of the product is nonzero unless all k contributions
        # vanish: P(nonzero) = 1 - (1 - da·db)^k at independent operand
        # densities (1.0 when both operands are dense or unknown)
        k_dim = max(int(node.left.shape[1]), 1)
        hit = min(left.density * right.density, 1.0)
        out_density = 1.0 - (1.0 - hit) ** k_dim
        return Estimate(meta.num_chunks,
                        meta.num_chunks * meta.cells_per_chunk
                        * min(max(out_density, 0.0), 1.0),
                        meta)
    child = estimate(node.children[0])
    if isinstance(node, (MapOp, ScalarOp, FoldedScalarOp, RepackOp,
                         ShuffleOp, RawPlanOp, AggregateOp)):
        return child
    if isinstance(node, FilterOp):
        return Estimate(child.chunks,
                        child.valid * DEFAULT_FILTER_SELECTIVITY,
                        node.meta)
    if isinstance(node, SubarrayOp):
        meta = node.meta
        chunk_frac = (len(node.wanted) / meta.num_chunks
                      if meta.num_chunks else 0.0)
        cell_frac = node.cell_fraction()
        if child.per_chunk is not None:
            survivors = {cid: count
                         for cid, count in child.per_chunk.items()
                         if cid in node.wanted}
            # the box keeps cell_frac of the array; scale the surviving
            # chunks' counts by the box's share of *their* region
            keep = min(cell_frac / chunk_frac, 1.0) if chunk_frac else 0.0
            survivors = {cid: count * keep
                         for cid, count in survivors.items()}
            return Estimate(len(survivors), sum(survivors.values()),
                            meta, survivors)
        return Estimate(child.chunks * chunk_frac,
                        child.valid * cell_frac, meta)
    if isinstance(node, MaskApplyOp):
        return Estimate(child.chunks, child.valid, node.meta)
    if isinstance(node, ElementwiseOp):
        left = child
        right = estimate(node.children[1])
        if node.how == "and":
            chunks = min(left.chunks, right.chunks)
            valid = min(left.valid, right.valid)
        else:
            chunks = max(left.chunks, right.chunks)
            valid = min(left.valid + right.valid,
                        chunks * node.meta.cells_per_chunk)
        return Estimate(chunks, valid, node.meta)
    return child


def subtree_partitioner(node: LogicalOp):
    """The partitioner the lowered subtree's output will carry, or None.

    Used to decide statically whether a join will be narrow: chunk-local
    nodes preserve their child's partitioner, shuffles impose their own,
    joins adopt the left (engine cogroup semantics), matmul output is
    hash-placed by :func:`repro.matrix.multiply._assemble`.
    """
    if isinstance(node, SourceOp):
        return node.rdd.partitioner
    if isinstance(node, ShuffleOp):
        return node.partitioner
    if isinstance(node, MatmulOp):
        return None
    if isinstance(node, ElementwiseOp):
        left = subtree_partitioner(node.children[0])
        if left is not None:
            return left
        return subtree_partitioner(node.children[1])
    if node.children:
        return subtree_partitioner(node.children[0])
    return None


# ----------------------------------------------------------------------
# lowering: logical tree -> (RDD, pending ChunkPlan)
# ----------------------------------------------------------------------

def _kernel_for(node: LogicalOp):
    """The ChunkPlan kernel implementing one chunk-local node."""
    if isinstance(node, MapOp):
        return MapValuesKernel(node.func)
    if isinstance(node, FilterOp):
        return FilterKernel(node.predicate)
    if isinstance(node, ScalarOp):
        return ScalarOpKernel(node.op, node.scalar,
                              reflected=node.reflected, name=node.opname)
    if isinstance(node, FoldedScalarOp):
        return FoldedScalarKernel(node.stages)
    if isinstance(node, SubarrayOp):
        return MaskAndKernel(node.meta, node.lo, node.hi)
    if isinstance(node, RepackOp):
        return RepackKernel()
    raise TypeError(f"no kernel lowering for {type(node).__name__}")


_CHUNK_LOCAL = (MapOp, FilterOp, ScalarOp, FoldedScalarOp, SubarrayOp,
                RepackOp)


def lower_to_rdd(node: LogicalOp, context, metrics=None):
    """Lower a logical tree to a concrete chunk RDD.

    Chunk-local chains become pending ChunkPlans compiled into single
    fused ``map_partitions`` passes — exactly the plans the pre-logical
    operators built — and wide nodes become the same engine joins /
    shuffles they always were. ``metrics=None`` lowers silently (used by
    ``explain`` so inspection does not bump fusion counters).
    """
    rdd, pending = _lower(node, context, metrics, {})
    if pending.is_identity:
        return rdd
    return pending.compile(rdd, metrics)


def _lower(node, context, metrics, memo):
    key = id(node)
    if key in memo:
        return memo[key]
    result = _lower_uncached(node, context, metrics, memo)
    memo[key] = result
    return result


def _compile(rdd, pending, metrics):
    if pending.is_identity:
        return rdd
    return pending.compile(rdd, metrics)


def _lower_uncached(node, context, metrics, memo):
    if isinstance(node, SourceOp):
        return node.rdd, ChunkPlan.identity()
    if isinstance(node, RawPlanOp):
        rdd, pending = _lower(node.children[0], context, metrics, memo)
        rdd = _compile(rdd, pending, metrics)
        return rdd, node.chunk_plan
    if isinstance(node, _CHUNK_LOCAL):
        rdd, pending = _lower(node.children[0], context, metrics, memo)
        return rdd, pending.then(_kernel_for(node))
    if isinstance(node, ShuffleOp):
        rdd, pending = _lower(node.children[0], context, metrics, memo)
        rdd = _compile(rdd, pending, metrics)
        return rdd.partition_by(node.partitioner), ChunkPlan.identity()
    if isinstance(node, ElementwiseOp):
        left, left_pending = _lower(node.children[0], context, metrics,
                                    memo)
        right, right_pending = _lower(node.children[1], context,
                                      metrics, memo)
        left = _compile(left, left_pending, metrics)
        right = _compile(right, right_pending, metrics)
        if node.how == "and":
            joined = left.join(right)
        else:
            joined = left.full_outer_join(right)
        source = ElementwiseSource(node.op, node.how, node.fill,
                                   node.meta.cells_per_chunk,
                                   node.meta.dtype)
        return joined, ChunkPlan(source, (DropEmpty(),))
    if isinstance(node, MaskApplyOp):
        array, pending = _lower(node.children[0], context, metrics, memo)
        array = _compile(array, pending, metrics)
        joined = array.join(node.mask.rdd)
        return joined, ChunkPlan(MaskApplySource(), (DropEmpty(),))
    if isinstance(node, MatmulOp):
        from repro.matrix.multiply import lower_matmul

        return lower_matmul(node, context), ChunkPlan.identity()
    if isinstance(node, AggregateOp):
        return _lower(node.children[0], context, metrics, memo)
    raise TypeError(f"cannot lower {type(node).__name__}")


# ----------------------------------------------------------------------
# helpers shared with the operators
# ----------------------------------------------------------------------

def valid_counts_from_records(records) -> dict:
    """Per-chunk valid counts for driver-side record lists."""
    return {cid: int(chunk.valid_count) for cid, chunk in records}


def boxes_intersect(meta, box_a, box_b):
    """Intersection of two closed boxes, or None when empty."""
    lo = tuple(max(a, b) for a, b in zip(box_a[0], box_b[0]))
    hi = tuple(min(a, b) for a, b in zip(box_a[1], box_b[1]))
    if any(a > b for a, b in zip(lo, hi)):
        return None
    return lo, hi


def is_numeric_scalar(value) -> bool:
    return np.isscalar(value)
