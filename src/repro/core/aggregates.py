"""The Aggregator framework and Accumulator (Section V-B).

An :class:`Aggregator` is the paper's four-function abstraction:

1. ``initialize()`` — per-chunk state with a default value;
2. ``accumulate(state, values)`` — fold a chunk's valid values in;
3. ``merge(a, b)`` — combine states across chunks;
4. ``evaluate(state)`` — produce the final result.

``accumulate`` receives the *vector* of valid values so built-in
aggregates stay numpy-fast; a scalar-at-a-time user function can be
wrapped with :func:`scalar_aggregator`.

The :class:`Accumulator` implements running (prefix) accumulation along
an axis in the synchronous and asynchronous flavours the paper
describes: synchronous walks chunk slabs one boundary step at a time
(one synchronization per step); asynchronous lets every chunk scan
internally first and then applies cross-chunk offsets in a single
adjustment pass.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ArrayError


class Aggregator:
    """Base class; subclass or use the builtins below."""

    name = "aggregator"

    def initialize(self):
        raise NotImplementedError

    def accumulate(self, state, values: np.ndarray):
        raise NotImplementedError

    def merge(self, state_a, state_b):
        raise NotImplementedError

    def evaluate(self, state):
        return state


class SumAggregator(Aggregator):
    name = "sum"

    def initialize(self):
        return 0.0

    def accumulate(self, state, values):
        return state + float(values.sum())

    def merge(self, a, b):
        return a + b


class CountAggregator(Aggregator):
    name = "count"

    def initialize(self):
        return 0

    def accumulate(self, state, values):
        return state + int(values.size)

    def merge(self, a, b):
        return a + b


class MinAggregator(Aggregator):
    name = "min"

    def initialize(self):
        return None

    def accumulate(self, state, values):
        if values.size == 0:
            return state
        low = float(values.min())
        return low if state is None else min(state, low)

    def merge(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        return min(a, b)


class MaxAggregator(Aggregator):
    name = "max"

    def initialize(self):
        return None

    def accumulate(self, state, values):
        if values.size == 0:
            return state
        high = float(values.max())
        return high if state is None else max(state, high)

    def merge(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        return max(a, b)


class AvgAggregator(Aggregator):
    """Average via a (sum, count) state pair."""

    name = "avg"

    def initialize(self):
        return (0.0, 0)

    def accumulate(self, state, values):
        return (state[0] + float(values.sum()), state[1] + int(values.size))

    def merge(self, a, b):
        return (a[0] + b[0], a[1] + b[1])

    def evaluate(self, state):
        total, count = state
        return total / count if count else None


def scalar_aggregator(name, initialize, accumulate_one, merge,
                      evaluate=None):
    """Build an Aggregator from a scalar-at-a-time user function.

    This is the user-defined-function abstraction of Section V-B: the
    caller supplies the four functions and never sees vectors.
    """

    class _UserAggregator(Aggregator):
        def initialize(self):
            return initialize()

        def accumulate(self, state, values):
            for value in values:
                state = accumulate_one(state, value)
            return state

        def merge(self, a, b):
            return merge(a, b)

        def evaluate(self, state):
            return evaluate(state) if evaluate is not None else state

        def __reduce__(self):
            # the class is function-local, so pickling rebuilds the
            # aggregator from its user functions instead (the task
            # pickler ships lambdas among them by value)
            return (scalar_aggregator,
                    (name, initialize, accumulate_one, merge, evaluate))

    _UserAggregator.name = name
    return _UserAggregator()


BUILTIN_AGGREGATORS = {
    "sum": SumAggregator,
    "count": CountAggregator,
    "min": MinAggregator,
    "max": MaxAggregator,
    "avg": AvgAggregator,
}


#: builtin aggregators whose ``merge`` is exactly one of the engine's
#: vectorized combine kernels; exact types only — a subclass may
#: override ``merge`` and break the kernel contract
_KERNEL_AGGREGATORS = {
    SumAggregator: "sum",
    CountAggregator: "sum",
    MinAggregator: "min",
    MaxAggregator: "max",
}


def combine_kernel_for(agg):
    """The engine ``combine_kernel`` matching ``agg.merge``, or None.

    Declaring a kernel lets the columnar shuffle fold states in one
    numpy pass; it is only valid when ``merge`` equals the kernel's
    scalar fold for every state that packs (min/max states of ``None``
    simply refuse to pack and fall back per record).
    """
    return _KERNEL_AGGREGATORS.get(type(agg))


def resolve_aggregator(agg) -> Aggregator:
    """Accept an Aggregator instance or a builtin name."""
    if isinstance(agg, Aggregator):
        return agg
    if isinstance(agg, str):
        try:
            return BUILTIN_AGGREGATORS[agg]()
        except KeyError:
            raise ArrayError(
                f"unknown aggregator {agg!r}; builtins are "
                f"{sorted(BUILTIN_AGGREGATORS)}"
            ) from None
    raise ArrayError(f"expected Aggregator or name, got {type(agg)}")


class Accumulator:
    """Prefix accumulation along one axis (Section V-B).

    Operates on the dense (values, valid) representation of an array,
    chunked along ``axis`` with interval ``chunk_interval``. Returns the
    running ``op``-prefix over valid cells (invalid cells pass the
    running value through unchanged and stay invalid).

    ``mode="sync"`` processes one chunk-slab at a time in axis order,
    synchronizing at every chunk boundary — ``num_sync_steps`` counts
    those barriers. ``mode="async"`` lets all chunks accumulate
    internally (one parallel step), then fixes up chunk offsets with a
    single exclusive scan over per-chunk totals. For associative ``op``
    the async result is exact; the cost difference (many barriers vs
    two) is what the paper's sync/async distinction is about.
    """

    def __init__(self, op=np.add, identity=0.0):
        self.op = op
        self.identity = identity
        self.num_sync_steps = 0

    def run(self, values: np.ndarray, valid: np.ndarray, axis: int,
            chunk_interval: int, mode: str = "sync") -> np.ndarray:
        if values.shape != valid.shape:
            raise ArrayError("values and valid must have the same shape")
        if not 0 <= axis < values.ndim:
            raise ArrayError(f"axis {axis} out of range")
        if chunk_interval <= 0:
            raise ArrayError("chunk_interval must be positive")
        if mode == "sync":
            return self._run_sync(values, valid, axis, chunk_interval)
        if mode == "async":
            return self._run_async(values, valid, axis, chunk_interval)
        raise ArrayError(f"unknown accumulator mode {mode!r}")

    def _masked(self, values, valid):
        filled = np.where(valid, values, self.identity)
        return filled

    def _run_sync(self, values, valid, axis, chunk_interval):
        self.num_sync_steps = 0
        filled = self._masked(values, valid)
        out = np.empty_like(filled, dtype=np.float64)
        length = values.shape[axis]
        carry = None
        for start in range(0, length, chunk_interval):
            stop = min(start + chunk_interval, length)
            slab = np.take(filled, range(start, stop), axis=axis)
            prefix = self.op.accumulate(slab, axis=axis, dtype=np.float64)
            if carry is not None:
                prefix = self.op(prefix, np.expand_dims(carry, axis))
            index = [slice(None)] * values.ndim
            index[axis] = slice(start, stop)
            out[tuple(index)] = prefix
            carry = np.take(prefix, -1, axis=axis)
            self.num_sync_steps += 1
        return out

    def _run_async(self, values, valid, axis, chunk_interval):
        self.num_sync_steps = 2  # one parallel scan + one adjustment
        filled = self._masked(values, valid)
        out = np.empty_like(filled, dtype=np.float64)
        length = values.shape[axis]
        totals = []
        # phase 1: every chunk scans internally (parallel in spirit)
        for start in range(0, length, chunk_interval):
            stop = min(start + chunk_interval, length)
            slab = np.take(filled, range(start, stop), axis=axis)
            prefix = self.op.accumulate(slab, axis=axis, dtype=np.float64)
            index = [slice(None)] * values.ndim
            index[axis] = slice(start, stop)
            out[tuple(index)] = prefix
            totals.append(np.take(prefix, -1, axis=axis))
        # phase 2: one exclusive scan of chunk totals, added back
        carry = None
        for block, start in enumerate(range(0, length, chunk_interval)):
            if block == 0:
                carry = totals[0]
                continue
            stop = min(start + chunk_interval, length)
            index = [slice(None)] * values.ndim
            index[axis] = slice(start, stop)
            out[tuple(index)] = self.op(out[tuple(index)],
                                        np.expand_dims(carry, axis))
            carry = self.op(carry, totals[block])
        return out
