"""The mapper: Algorithm 1 and its inverses (Section III-C).

Translates between the logical layout (global coordinates) and the
physical layout (chunk IDs plus payload offsets). The conventions follow
Algorithm 1 exactly: dimension 0 varies fastest in the chunk-ID
numbering, and the same fastest-first order is used for the local offset
of a cell inside its chunk.

Everything has a vectorized twin (suffix ``_array``) operating on an
``(n, ndim)`` coordinate matrix, used by ingest and the query operators.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.core.metadata import ArrayMetadata
from repro.errors import CoordinateError


def chunk_id_for_coords(meta: ArrayMetadata, coords) -> int:
    """Algorithm 1: compute a chunk ID from global coordinates."""
    coords = meta.check_coords(coords)
    chunk_id = 0
    length = 1
    for axis in range(meta.ndim):
        pos = coords[axis] - meta.starts[axis]
        chunk_id += (pos // meta.chunk_shape[axis]) * length
        length *= meta.chunk_grid[axis]
    return chunk_id


def chunk_coords_from_id(meta: ArrayMetadata, chunk_id: int) -> tuple:
    """Inverse of Algorithm 1: chunk-grid coordinates of a chunk ID."""
    if not 0 <= chunk_id < meta.num_chunks:
        raise CoordinateError(
            f"chunk id {chunk_id} out of range [0, {meta.num_chunks})"
        )
    grid_coords = []
    remaining = chunk_id
    for grid_size in meta.chunk_grid:
        grid_coords.append(remaining % grid_size)
        remaining //= grid_size
    return tuple(grid_coords)


def chunk_id_from_chunk_coords(meta: ArrayMetadata, grid_coords) -> int:
    """Chunk ID from chunk-grid coordinates."""
    chunk_id = 0
    length = 1
    for axis, g in enumerate(grid_coords):
        if not 0 <= g < meta.chunk_grid[axis]:
            raise CoordinateError(
                f"chunk grid coord {g} out of range on axis {axis}"
            )
        chunk_id += g * length
        length *= meta.chunk_grid[axis]
    return chunk_id


def chunk_origin(meta: ArrayMetadata, chunk_id: int) -> tuple:
    """Global coordinates of the first cell of a chunk."""
    grid = chunk_coords_from_id(meta, chunk_id)
    return tuple(
        start + g * interval
        for start, g, interval in zip(meta.starts, grid, meta.chunk_shape)
    )


def local_offset(meta: ArrayMetadata, coords) -> int:
    """Payload offset of a cell inside its chunk (dimension 0 fastest)."""
    coords = meta.check_coords(coords)
    offset = 0
    length = 1
    for axis in range(meta.ndim):
        pos = coords[axis] - meta.starts[axis]
        offset += (pos % meta.chunk_shape[axis]) * length
        length *= meta.chunk_shape[axis]
    return offset


def coords_for_offset(meta: ArrayMetadata, chunk_id: int,
                      offset: int) -> tuple:
    """Global coordinates of the cell at ``offset`` in chunk ``chunk_id``.

    May produce coordinates beyond the array boundary for the padding
    cells of an edge chunk; callers treating those as valid is a bug the
    bitmask already prevents.
    """
    origin = chunk_origin(meta, chunk_id)
    coords = []
    remaining = offset
    for axis in range(meta.ndim):
        coords.append(origin[axis] + remaining % meta.chunk_shape[axis])
        remaining //= meta.chunk_shape[axis]
    return tuple(coords)


def in_bounds_mask_for_chunk(meta: ArrayMetadata,
                             chunk_id: int) -> np.ndarray:
    """Boolean array over a chunk's cells: inside the array boundary?

    All-true except for edge chunks, whose padding cells are forever
    invalid.
    """
    origin = chunk_origin(meta, chunk_id)
    grids = np.meshgrid(
        *[
            np.arange(origin[axis], origin[axis] + meta.chunk_shape[axis])
            for axis in range(meta.ndim)
        ],
        indexing="ij",
    )
    inside = np.ones(meta.chunk_shape, dtype=bool)
    for axis in range(meta.ndim):
        inside &= grids[axis] < meta.ends[axis]
    # local offset order is dimension-0-fastest == Fortran ravel
    return inside.ravel(order="F")


# ----------------------------------------------------------------------
# vectorized twins
# ----------------------------------------------------------------------

def chunk_ids_for_coords_array(meta: ArrayMetadata,
                               coords: np.ndarray) -> np.ndarray:
    """Vectorized Algorithm 1 over an ``(n, ndim)`` coordinate matrix."""
    coords = np.asarray(coords, dtype=np.int64)
    if coords.ndim != 2 or coords.shape[1] != meta.ndim:
        raise CoordinateError(
            f"expected an (n, {meta.ndim}) coordinate matrix, got "
            f"shape {coords.shape}"
        )
    chunk_ids = np.zeros(coords.shape[0], dtype=np.int64)
    length = 1
    for axis in range(meta.ndim):
        pos = coords[:, axis] - meta.starts[axis]
        chunk_ids += (pos // meta.chunk_shape[axis]) * length
        length *= meta.chunk_grid[axis]
    return chunk_ids


def local_offsets_for_coords_array(meta: ArrayMetadata,
                                   coords: np.ndarray) -> np.ndarray:
    """Vectorized local offsets over an ``(n, ndim)`` coordinate matrix."""
    coords = np.asarray(coords, dtype=np.int64)
    offsets = np.zeros(coords.shape[0], dtype=np.int64)
    length = 1
    for axis in range(meta.ndim):
        pos = coords[:, axis] - meta.starts[axis]
        offsets += (pos % meta.chunk_shape[axis]) * length
        length *= meta.chunk_shape[axis]
    return offsets


def coords_for_offsets_array(meta: ArrayMetadata, chunk_id: int,
                             offsets: np.ndarray) -> np.ndarray:
    """Vectorized inverse: ``(n, ndim)`` global coords for payload offsets."""
    offsets = np.asarray(offsets, dtype=np.int64)
    origin = chunk_origin(meta, chunk_id)
    out = np.empty((offsets.size, meta.ndim), dtype=np.int64)
    remaining = offsets.copy()
    for axis in range(meta.ndim):
        out[:, axis] = origin[axis] + remaining % meta.chunk_shape[axis]
        remaining //= meta.chunk_shape[axis]
    return out


# ----------------------------------------------------------------------
# range queries
# ----------------------------------------------------------------------

def chunk_ids_in_range(meta: ArrayMetadata, lo, hi) -> list:
    """Chunk IDs whose box intersects the closed coordinate box [lo, hi].

    ``lo``/``hi`` are global top-left and bottom-right corners, the way
    Subarray takes them (Section V-A-1).
    """
    lo = tuple(int(c) for c in lo)
    hi = tuple(int(c) for c in hi)
    if len(lo) != meta.ndim or len(hi) != meta.ndim:
        raise CoordinateError(
            f"range corners must have {meta.ndim} coordinates"
        )
    if any(a > b for a, b in zip(lo, hi)):
        raise CoordinateError(f"empty range: lo={lo} > hi={hi}")
    axis_ranges = []
    for axis in range(meta.ndim):
        clamped_lo = max(lo[axis], meta.starts[axis])
        clamped_hi = min(hi[axis], meta.ends[axis] - 1)
        if clamped_lo > clamped_hi:
            return []
        first = (clamped_lo - meta.starts[axis]) // meta.chunk_shape[axis]
        last = (clamped_hi - meta.starts[axis]) // meta.chunk_shape[axis]
        axis_ranges.append(range(first, last + 1))
    ids = []
    for grid_coords in itertools.product(*axis_ranges):
        ids.append(chunk_id_from_chunk_coords(meta, grid_coords))
    return sorted(ids)


def chunk_fully_inside(meta: ArrayMetadata, chunk_id: int, lo, hi) -> bool:
    """Is the chunk's whole box inside the closed range [lo, hi]?

    Pure integer arithmetic — lets Subarray skip building the virtual
    bitmask (it would be all-ones) for interior chunks.
    """
    origin = chunk_origin(meta, chunk_id)
    for axis in range(meta.ndim):
        if origin[axis] < lo[axis]:
            return False
        # the chunk's last *in-bounds* cell along this axis
        last = min(origin[axis] + meta.chunk_shape[axis],
                   meta.ends[axis]) - 1
        if last > hi[axis]:
            return False
    return True


def range_mask_for_chunk(meta: ArrayMetadata, chunk_id: int,
                         lo, hi) -> np.ndarray:
    """Boolean array over a chunk's cells: inside the closed box [lo, hi]?

    This is the *virtual bitmask* of Fig. 4a — Subarray ANDs it with the
    chunk's own bitmask.
    """
    origin = chunk_origin(meta, chunk_id)
    grids = np.meshgrid(
        *[
            np.arange(origin[axis], origin[axis] + meta.chunk_shape[axis])
            for axis in range(meta.ndim)
        ],
        indexing="ij",
    )
    inside = np.ones(meta.chunk_shape, dtype=bool)
    for axis in range(meta.ndim):
        inside &= (grids[axis] >= lo[axis]) & (grids[axis] <= hi[axis])
    return inside.ravel(order="F")
