"""Chunks: payload + bitmask in three storage modes (Sections III-B, IV-A).

A chunk holds the cells of one block of the array:

- **DENSE** — the payload stores every cell (invalid cells hold a fill
  value); the bitmask marks validity; access by offset is O(1).
- **SPARSE** — invalid cells are physically dropped; a cell's payload
  slot is the *rank* of its bit in the flat bitmask.
- **SUPER_SPARSE** — like sparse, but the bitmask itself is the
  two-level :class:`HierarchicalBitmask`, eliding all-zero words.

Mode selection (:func:`choose_mode`) follows the paper's policy: no
compression when the chunk is mostly valid, flat-bitmask compression for
ordinary sparse data, and the hierarchical bitmask when so few cells are
valid that the flat bitmask would dominate the chunk's footprint.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.bitmask import Bitmask, HierarchicalBitmask
from repro.errors import ArrayError, ModeError


class ChunkMode(enum.Enum):
    DENSE = "dense"
    SPARSE = "sparse"
    SUPER_SPARSE = "super_sparse"


#: density at or above which compression stops paying for itself
DENSE_THRESHOLD = 0.5
#: density below which the hierarchical bitmask usually wins
SUPER_SPARSE_THRESHOLD = 1.0 / 256.0


def choose_mode(density: float) -> ChunkMode:
    """Pick a storage mode from the fraction of valid cells."""
    if density >= DENSE_THRESHOLD:
        return ChunkMode.DENSE
    if density < SUPER_SPARSE_THRESHOLD:
        return ChunkMode.SUPER_SPARSE
    return ChunkMode.SPARSE


class Chunk:
    """One block of an array: values for the valid cells plus their mask.

    Construct through :meth:`from_dense` (values + validity) or
    :meth:`from_sparse` (valid offsets + values); the constructor itself
    is the low-level path that trusts its arguments.
    """

    __slots__ = ("mode", "payload", "mask", "num_cells")

    def __init__(self, mode: ChunkMode, payload: np.ndarray, mask,
                 num_cells: int):
        self.mode = mode
        self.payload = payload
        self.mask = mask
        self.num_cells = num_cells

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_dense(cls, values, valid=None, mode: ChunkMode = None) -> "Chunk":
        """Build a chunk from a full value array and a validity mask.

        ``valid=None`` means every cell is valid. ``mode=None`` applies
        the density policy.
        """
        values = np.asarray(values).ravel()
        if valid is None:
            valid = np.ones(values.size, dtype=bool)
        else:
            valid = np.asarray(valid, dtype=bool).ravel()
            if valid.size != values.size:
                raise ArrayError(
                    f"validity length {valid.size} != value length "
                    f"{values.size}"
                )
        num_cells = values.size
        density = float(valid.sum()) / num_cells if num_cells else 0.0
        if mode is None:
            mode = choose_mode(density)
        if mode is ChunkMode.DENSE:
            payload = values.copy()
            payload[~valid] = 0
            return cls(mode, payload, Bitmask.from_bools(valid), num_cells)
        if mode is ChunkMode.SPARSE:
            return cls(mode, values[valid].copy(),
                       Bitmask.from_bools(valid), num_cells)
        if mode is ChunkMode.SUPER_SPARSE:
            return cls(mode, values[valid].copy(),
                       HierarchicalBitmask.from_bools(valid), num_cells)
        raise ModeError(f"unknown chunk mode {mode!r}")

    @classmethod
    def from_sparse(cls, num_cells: int, offsets, values,
                    mode: ChunkMode = None) -> "Chunk":
        """Build a chunk from valid offsets and their values.

        Offsets must be unique; they are sorted into payload order.
        """
        offsets = np.asarray(offsets, dtype=np.int64).ravel()
        values = np.asarray(values).ravel()
        if offsets.size != values.size:
            raise ArrayError(
                f"{offsets.size} offsets but {values.size} values"
            )
        if offsets.size and (offsets.min() < 0
                             or offsets.max() >= num_cells):
            raise ArrayError(
                f"offsets out of range [0, {num_cells})"
            )
        order = np.argsort(offsets, kind="stable")
        offsets = offsets[order]
        values = values[order]
        if offsets.size > 1 and (np.diff(offsets) == 0).any():
            raise ArrayError("duplicate offsets in sparse chunk input")
        density = offsets.size / num_cells if num_cells else 0.0
        if mode is None:
            mode = choose_mode(density)
        if mode is ChunkMode.DENSE:
            dense = np.zeros(num_cells, dtype=values.dtype)
            dense[offsets] = values
            valid = np.zeros(num_cells, dtype=bool)
            valid[offsets] = True
            return cls(mode, dense, Bitmask.from_bools(valid), num_cells)
        if mode is ChunkMode.SPARSE:
            return cls(mode, values.copy(),
                       Bitmask.from_indices(num_cells, offsets), num_cells)
        if mode is ChunkMode.SUPER_SPARSE:
            flat = Bitmask.from_indices(num_cells, offsets)
            return cls(mode, values.copy(),
                       HierarchicalBitmask.from_bitmask(flat), num_cells)
        raise ModeError(f"unknown chunk mode {mode!r}")

    @classmethod
    def empty(cls, num_cells: int, dtype=np.float64) -> "Chunk":
        return cls.from_sparse(num_cells, [], np.array([], dtype=dtype))

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    @property
    def valid_count(self) -> int:
        if self.mode is ChunkMode.DENSE:
            return self.mask.count()
        return self.payload.size

    @property
    def density(self) -> float:
        if self.num_cells == 0:
            return 0.0
        return self.valid_count / self.num_cells

    @property
    def dtype(self):
        return self.payload.dtype

    @property
    def nbytes(self) -> int:
        """In-memory footprint: payload plus (possibly compressed) mask."""
        return int(self.payload.nbytes) + int(self.mask.nbytes)

    def flat_mask(self) -> Bitmask:
        """The validity mask as a flat :class:`Bitmask`, whatever the mode."""
        if isinstance(self.mask, HierarchicalBitmask):
            return self.mask.to_bitmask()
        return self.mask

    def valid_bools(self) -> np.ndarray:
        return self.flat_mask().to_bools()

    def indices(self) -> np.ndarray:
        """Offsets of valid cells, ascending (payload order)."""
        return self.flat_mask().indices()

    # ------------------------------------------------------------------
    # cell access
    # ------------------------------------------------------------------

    def get(self, offset: int, rank_strategy: str = "milestone"):
        """Value at ``offset``, or None when the cell is invalid.

        Dense chunks index the payload directly; compressed chunks pay a
        rank query on the bitmask — this asymmetry is exactly what Fig. 8
        measures.
        """
        if not 0 <= offset < self.num_cells:
            raise ArrayError(
                f"offset {offset} out of range [0, {self.num_cells})"
            )
        if self.mode is ChunkMode.DENSE:
            if not self.mask.get(offset):
                return None
            return self.payload[offset]
        if not self.mask.get(offset):
            return None
        if isinstance(self.mask, HierarchicalBitmask):
            slot = self.mask.rank(offset)
        else:
            slot = self.mask.rank(offset, rank_strategy)
        return self.payload[slot]

    def values(self) -> np.ndarray:
        """Values of the valid cells, in offset order."""
        if self.mode is ChunkMode.DENSE:
            return self.payload[self.valid_bools()]
        return self.payload

    def to_dense(self, fill=0) -> np.ndarray:
        """Full cell array with ``fill`` in the invalid slots."""
        if self.mode is ChunkMode.DENSE:
            if fill == 0:
                return self.payload.copy()
            out = self.payload.copy()
            out[~self.valid_bools()] = fill
            return out
        out = np.full(self.num_cells, fill, dtype=self.payload.dtype)
        out[self.indices()] = self.payload
        return out

    def iter_cells(self):
        """Yield ``(offset, value)`` for valid cells, ascending offset."""
        for offset, value in zip(self.indices(), self.values()):
            yield int(offset), value

    # ------------------------------------------------------------------
    # transformation
    # ------------------------------------------------------------------

    def convert(self, mode: ChunkMode) -> "Chunk":
        """Re-encode in another storage mode (contents unchanged)."""
        if mode is self.mode:
            return self
        return Chunk.from_sparse(self.num_cells, self.indices(),
                                 self.values(), mode=mode)

    def to_mode(self, mode: ChunkMode) -> "Chunk":
        """Alias for :meth:`convert` (the cache admission API)."""
        return self.convert(mode)

    def repack(self) -> tuple:
        """Re-run the density policy on the *current* density.

        Returns ``(chunk, changed)``: the chunk re-encoded in the mode
        :func:`choose_mode` now picks (``self`` untouched when the mode
        already matches). Filters shrink validity without changing the
        encoding, so a chunk built DENSE can drift far below
        :data:`DENSE_THRESHOLD`; repacking realizes the compression the
        policy would have chosen had the chunk been built at this
        density.
        """
        target = choose_mode(self.density)
        if target is self.mode:
            return self, False
        return self.convert(target), True

    def recompress(self) -> "Chunk":
        """Re-apply the density policy (after filters shrink validity)."""
        return self.repack()[0]

    def map_values(self, func, mode: ChunkMode = None) -> "Chunk":
        """Apply a vectorized function to the valid values only."""
        new_values = np.asarray(func(self.values()))
        if new_values.shape != self.values().shape:
            raise ArrayError(
                "map_values function must preserve the value count"
            )
        return Chunk.from_sparse(self.num_cells, self.indices(), new_values,
                                 mode=mode or self.mode)

    def filter(self, predicate, mode: ChunkMode = None) -> "Chunk":
        """Keep valid cells where ``predicate(values)`` is True.

        ``predicate`` receives the vector of valid values and returns a
        boolean vector; failing cells become invalid (their bits drop to
        zero and, in compressed modes, their payload slots vanish).
        """
        values = self.values()
        keep = np.asarray(predicate(values), dtype=bool)
        if keep.shape != values.shape:
            raise ArrayError("filter predicate must return one bool per value")
        if mode is None:
            density = int(keep.sum()) / self.num_cells \
                if self.num_cells else 0.0
            mode = choose_mode(density)
        keep_cells = np.zeros(self.num_cells, dtype=bool)
        keep_cells[self.indices()[keep]] = True
        return _build_from_bools(self.num_cells, keep_cells,
                                 values[keep], mode)

    def and_mask(self, other_mask: Bitmask, mode: ChunkMode = None) -> "Chunk":
        """Restrict validity to ``mask AND other_mask`` (Fig. 4a/4b).

        This is how Subarray's virtual bitmask and the MaskRDD are applied
        to an attribute. The bitmask AND itself is one word-level
        operation; rebuilding the payload is a single gather.
        """
        if other_mask.num_bits != self.num_cells:
            raise ArrayError(
                f"mask length {other_mask.num_bits} != chunk cells "
                f"{self.num_cells}"
            )
        combined = self.flat_mask() & other_mask
        if combined == self.flat_mask():
            return self            # nothing was masked out
        keep = combined.to_bools()
        if mode is None:
            density = combined.count() / self.num_cells \
                if self.num_cells else 0.0
            mode = choose_mode(density)
        if self.mode is ChunkMode.DENSE:
            compact = self.payload[keep]
        else:
            # payload order == ascending offsets, so indexing the keep
            # mask by the valid offsets selects the surviving slots
            compact = self.payload[keep[self.indices()]]
        return _build_from_bools(self.num_cells, keep, compact, mode)

    def _values_at_offsets(self, offsets: np.ndarray) -> np.ndarray:
        """Values at the given valid offsets (all must be valid)."""
        if self.mode is ChunkMode.DENSE:
            return self.payload[offsets]
        own = self.indices()
        slots = np.searchsorted(own, offsets)
        return self.payload[slots]

    # ------------------------------------------------------------------
    # binary operations
    # ------------------------------------------------------------------

    def elementwise(self, other: "Chunk", op, how: str = "and",
                    fill=0) -> "Chunk":
        """Combine two chunks cell-by-cell.

        ``how="and"`` keeps cells valid on *both* sides (the bitwise-AND
        fast path of Fig. 5 — invalid pairs are never computed);
        ``how="or"`` keeps cells valid on either side, with ``fill``
        standing in for the missing operand.
        """
        if other.num_cells != self.num_cells:
            raise ArrayError(
                f"chunk size mismatch: {self.num_cells} vs "
                f"{other.num_cells}"
            )
        left_mask = self.flat_mask()
        right_mask = other.flat_mask()
        if how == "and":
            combined = left_mask & right_mask
            offsets = combined.indices()
            left_values = self._values_at_offsets(offsets)
            right_values = other._values_at_offsets(offsets)
            result = op(left_values, right_values)
            return Chunk.from_sparse(self.num_cells, offsets, result)
        if how == "or":
            combined = left_mask | right_mask
            offsets = combined.indices()
            left_dense = self.to_dense(fill)
            right_dense = other.to_dense(fill)
            result = op(left_dense[offsets], right_dense[offsets])
            return Chunk.from_sparse(self.num_cells, offsets, result)
        raise ArrayError(f"unknown join mode {how!r}; use 'and' or 'or'")

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Chunk)
            and self.num_cells == other.num_cells
            and np.array_equal(self.indices(), other.indices())
            and np.allclose(self.values().astype(np.float64),
                            other.values().astype(np.float64))
        )

    def __repr__(self) -> str:
        return (
            f"Chunk(mode={self.mode.value}, cells={self.num_cells}, "
            f"valid={self.valid_count}, {self.nbytes}B)"
        )


def chunk_exact_size(obj) -> int:
    """Exact resident bytes of a :class:`Chunk`, or None for other types.

    Unlike :attr:`Chunk.nbytes` (payload + advertised mask bytes), this
    also counts the lazily built milestone rank caches and the
    hierarchical mask's stored prefix array — every array the chunk
    actually pins in memory. Registered with the engine's size
    estimator (:func:`repro.engine.sizing.register_sizer`) so cache
    budgets and eviction scores see true footprints.
    """
    if type(obj) is not Chunk:
        return None
    mask = obj.mask
    total = int(obj.payload.nbytes)
    if isinstance(mask, HierarchicalBitmask):
        total += int(mask._upper.words.nbytes)
        total += int(mask._stored_words.nbytes)
        total += int(mask._stored_prefix.nbytes)
        if mask._upper._milestones is not None:
            total += mask._upper._milestones.nbytes
    else:
        total += int(mask.words.nbytes)
        if mask._milestones is not None:
            total += mask._milestones.nbytes
    return total


def repack_records(records):
    """Density-repack every chunk in a cached partition.

    The block cache's admission repacker
    (:func:`repro.engine.storage.register_repacker`): handles bare
    Chunk records and ``(key, Chunk)`` pairs — the shapes ArrayRDD
    partitions actually take. Returns ``(new_records, chunks_repacked,
    bytes_saved)``, or None when no chunk changed mode (the partition
    is admitted as-is and no counters move). ``bytes_saved`` is the net
    exact-size reduction, so the cache ledger shrinks by the same
    amount the counter reports.
    """
    out = None
    count = 0
    saved = 0
    for i, record in enumerate(records):
        if type(record) is Chunk:
            new, changed = record.repack()
            if changed:
                if out is None:
                    out = list(records)
                saved += chunk_exact_size(record) - chunk_exact_size(new)
                out[i] = new
                count += 1
        elif (type(record) is tuple and len(record) == 2
              and type(record[1]) is Chunk):
            new, changed = record[1].repack()
            if changed:
                if out is None:
                    out = list(records)
                saved += (chunk_exact_size(record[1])
                          - chunk_exact_size(new))
                out[i] = (record[0], new)
                count += 1
    if count == 0:
        return None
    return out, count, saved


def _build_from_bools(num_cells: int, keep: np.ndarray,
                      compact_values: np.ndarray,
                      mode: ChunkMode) -> Chunk:
    """Fast chunk construction from a keep-mask and compacted values.

    Skips the sorting/validation of :meth:`Chunk.from_sparse` — callers
    guarantee ``compact_values`` is in ascending-offset order and
    ``keep`` has exactly that many set bits.
    """
    if mode is ChunkMode.DENSE:
        payload = np.zeros(num_cells, dtype=compact_values.dtype)
        payload[keep] = compact_values
        return Chunk(mode, payload, Bitmask.from_bools(keep), num_cells)
    if mode is ChunkMode.SPARSE:
        return Chunk(mode, compact_values, Bitmask.from_bools(keep),
                     num_cells)
    return Chunk(ChunkMode.SUPER_SPARSE, compact_values,
                 HierarchicalBitmask.from_bools(keep), num_cells)
