"""Cost-based rewrite optimizer over logical array plans.

Sits between the recorded :mod:`repro.core.logical` tree and its
lowering to ChunkPlan kernels / engine RDDs. Each rewrite rule proposes
a transformed subtree and keeps it only when the
:class:`~repro.engine.costmodel.ClusterCostModel` prices the candidate
strictly cheaper — scans via :meth:`scan_seconds` fed with the
per-chunk density statistics the estimates carry, data movement via
:meth:`shuffle_seconds`. Rules therefore never fire on plans they
cannot improve, and the escape hatch :func:`disable` (mirroring
``repro.plan.disable_fusion``) turns the whole layer off.

Rule catalog
------------
- ``fold_scalars`` — adjacent scalar ops collapse into one
  :class:`~repro.core.plan.FoldedScalarKernel` dispatch (bit-exact: the
  arithmetic sequence is preserved).
- ``merge_subarrays`` — nested boxes intersect into one restriction.
- ``subarray_before_scalar`` — a restriction hoists above scalar
  arithmetic so it prunes before computing (scalar ops are strictly
  element-wise, so the swap is exact; arbitrary ``map_values`` /
  ``filter`` callables may be vector-dependent and are never reordered).
- ``push_below_shuffle`` — subarray/filter move below a shuffle; the
  chunk records they see are identical, but pruned/filtered chunks no
  longer cross the network.
- ``subarray_into_elementwise`` — a restriction over a join restricts
  both operands instead (exact for and/or joins: the box commutes with
  the bitmask AND/OR and the per-cell op).
- ``subarray_into_matmul`` — a restriction over a matmul additionally
  restricts the operand sides at *block* granularity (left to the row
  blocks covering the box, right to the column blocks), so surviving
  blocks pass through bit-identical — kernel selection and summation
  order never change — while pruned blocks skip the operand shuffles.
- ``mask_only_aggregate`` — a validity-only consumer (``count_valid``)
  over value-only ops and restrictions skips every value kernel and
  counts straight off the bitmasks (the MaskRDD trick, generalized).
- ``matmul_sparse_execution`` — a matmul over operands with exact
  per-chunk stats gets a :class:`~repro.core.logical.MatmulExecPlan`:
  the cheapest priced block kernel (dense / COO / CSR) and, when it
  lowers the modeled gather skew, nnz-balanced shuffle placement in
  place of hash.
"""

from __future__ import annotations

import operator as _operator

from repro.core import mapper
from repro.core import plan as plan_mod
from repro.core.logical import (
    ElementwiseOp,
    FilterOp,
    FoldedScalarOp,
    MapOp,
    MaskApplyOp,
    MatmulOp,
    RepackOp,
    ScalarOp,
    ShuffleOp,
    SourceOp,
    SubarrayOp,
    boxes_intersect,
    estimate,
    subtree_partitioner,
)

__all__ = [
    "disable",
    "enable",
    "enabled",
    "lower_count_valid",
    "optimize",
    "plan_cost",
]

#: safety valve: rules fired per optimize() call (cost gating already
#: guarantees termination; this bounds pathological trees)
MAX_FIRINGS = 64


# ----------------------------------------------------------------------
# optimizer switch (mirrors repro.core.plan's fusion toggle)
# ----------------------------------------------------------------------

class _OptimizerToggle:
    """Flips the rewrite switch; restores the prior state when used as
    a context manager."""

    def __init__(self, on: bool):
        self._previous = _STATE["enabled"]
        _STATE["enabled"] = on

    def __enter__(self) -> "_OptimizerToggle":
        return self

    def __exit__(self, *exc) -> bool:
        _STATE["enabled"] = self._previous
        return False


_STATE = {"enabled": True}


def enabled() -> bool:
    """Whether lowering runs the rewrite rules (True by default)."""
    return _STATE["enabled"]


def enable() -> _OptimizerToggle:
    """Turn the rewrite optimizer on (the default)."""
    return _OptimizerToggle(True)


def disable() -> _OptimizerToggle:
    """Escape hatch: lower recorded plans exactly as written. Usable
    standalone or as a ``with`` block restoring the previous setting."""
    return _OptimizerToggle(False)


# ----------------------------------------------------------------------
# plan pricing
# ----------------------------------------------------------------------

_CHUNK_LOCAL = (MapOp, ScalarOp, FoldedScalarOp, FilterOp, SubarrayOp,
                RepackOp)


def _node_cost(node, model) -> float:
    """Modeled seconds to execute one node given its inputs."""
    if isinstance(node, SourceOp):
        return 0.0
    if isinstance(node, _CHUNK_LOCAL):
        child = estimate(node.children[0])
        return model.scan_seconds(child.dense_bytes, child.density)
    if isinstance(node, ShuffleOp):
        child = estimate(node.children[0])
        return model.shuffle_seconds(child.payload_bytes,
                                     node.partitioner.num_partitions)
    if isinstance(node, ElementwiseOp):
        left = estimate(node.children[0])
        right = estimate(node.children[1])
        cost = (model.scan_seconds(left.dense_bytes, left.density)
                + model.scan_seconds(right.dense_bytes, right.density))
        left_part = subtree_partitioner(node.children[0])
        right_part = subtree_partitioner(node.children[1])
        if left_part is None or right_part is None \
                or left_part != right_part:
            cost += model.shuffle_seconds(
                left.payload_bytes + right.payload_bytes,
                left.chunks + right.chunks)
        return cost
    if isinstance(node, MaskApplyOp):
        child = estimate(node.children[0])
        cost = model.scan_seconds(child.dense_bytes, child.density)
        mask_part = getattr(node.mask, "partitioner", None)
        child_part = subtree_partitioner(node.children[0])
        if mask_part is None or child_part is None \
                or mask_part != child_part:
            cost += model.shuffle_seconds(child.payload_bytes,
                                          child.chunks)
        return cost
    if isinstance(node, MatmulOp):
        from repro.matrix.multiply import matmul_stage_seconds

        left = estimate(node.children[0])
        right = estimate(node.children[1])
        cost = model.scan_seconds(left.dense_bytes + right.dense_bytes,
                                  max(left.density, right.density))
        if not node.local_join:
            cost += model.shuffle_seconds(
                left.payload_bytes + right.payload_bytes,
                left.chunks + right.chunks)
        # the partial-product stage itself: kernel kind and placement
        # skew, from the exec plan when one is attached, otherwise the
        # gated-auto default under hash placement
        cost += matmul_stage_seconds(node, model)
        out = estimate(node)
        return cost + model.shuffle_seconds(out.payload_bytes,
                                            out.chunks)
    # unknown nodes (RawPlanOp, AggregateOp): price as one pass
    if node.children:
        child = estimate(node.children[0])
        return model.scan_seconds(child.dense_bytes, child.density)
    return 0.0


def plan_cost(node, model) -> float:
    """Total modeled seconds to execute a logical subtree."""
    return _node_cost(node, model) + sum(
        plan_cost(child, model) for child in node.children)


def _scanned_chunks(node) -> float:
    """Estimated chunk records flowing into operators across a tree —
    the before/after difference is the ``chunks_pruned`` metric."""
    if isinstance(node, SourceOp):
        return 0.0
    total = 0.0
    for child in node.children:
        total += estimate(child).chunks + _scanned_chunks(child)
    return total


# ----------------------------------------------------------------------
# rewrite rules — each returns a candidate subtree or None
# ----------------------------------------------------------------------

def _rule_fold_scalars(node):
    if not isinstance(node, ScalarOp):
        return None
    child = node.children[0]
    stage = (node.op, node.scalar, node.reflected, node.opname)
    if isinstance(child, ScalarOp):
        stages = ((child.op, child.scalar, child.reflected,
                   child.opname), stage)
    elif isinstance(child, FoldedScalarOp):
        stages = child.stages + (stage,)
    else:
        return None
    return FoldedScalarOp(child.children[0], stages)


def _rule_merge_subarrays(node):
    if not isinstance(node, SubarrayOp):
        return None
    inner = node.children[0]
    if not isinstance(inner, SubarrayOp):
        return None
    box = boxes_intersect(node.meta, (node.lo, node.hi),
                          (inner.lo, inner.hi))
    if box is None:
        # an empty box is not representable as a SubarrayOp; leave the
        # pair in place (both kernels prune everything anyway)
        return None
    return SubarrayOp(inner.children[0], box[0], box[1])


def _rule_subarray_before_scalar(node):
    # only scalar arithmetic is hoisted past: those kernels are strictly
    # element-wise by construction. map_values/filter take arbitrary
    # vectorized callables that may depend on the whole value vector,
    # so reordering them is unsound.
    if not isinstance(node, SubarrayOp):
        return None
    child = node.children[0]
    if not isinstance(child, (ScalarOp, FoldedScalarOp)):
        return None
    pushed = SubarrayOp(child.children[0], node.lo, node.hi)
    return child.with_children((pushed,))


def _rule_push_below_shuffle(node):
    if not isinstance(node, (SubarrayOp, FilterOp)):
        return None
    child = node.children[0]
    if not isinstance(child, ShuffleOp):
        return None
    pushed = node.with_children((child.children[0],))
    return ShuffleOp(pushed, child.partitioner)


def _rule_subarray_into_elementwise(node):
    if not isinstance(node, SubarrayOp):
        return None
    child = node.children[0]
    if not isinstance(child, ElementwiseOp):
        return None
    left = SubarrayOp(child.children[0], node.lo, node.hi)
    right = SubarrayOp(child.children[1], node.lo, node.hi)
    return child.with_children((left, right))


def _rule_subarray_below_mask_apply(node):
    if not isinstance(node, SubarrayOp):
        return None
    child = node.children[0]
    if not isinstance(child, MaskApplyOp):
        return None
    pushed = SubarrayOp(child.children[0], node.lo, node.hi)
    return MaskApplyOp(pushed, child.mask)


def _block_aligned_range(lo, hi, start, size, interval):
    """Clamp ``[lo, hi]`` to the axis and widen it to block boundaries.

    Returns None when the clamped range is empty. Widening is what keeps
    the matmul pushdown byte-identical: every surviving operand block is
    *fully inside* its restriction box, so it passes through the
    subarray kernel untouched — densities, kernel selection, and
    floating-point summation order never change.
    """
    end = start + size - 1
    lo = max(int(lo), start)
    hi = min(int(hi), end)
    if lo > hi:
        return None
    lo_block = (lo - start) // interval
    hi_block = (hi - start) // interval
    return (start + lo_block * interval,
            min(start + (hi_block + 1) * interval - 1, end))


def _rule_subarray_into_matmul(node):
    if not isinstance(node, SubarrayOp):
        return None
    child = node.children[0]
    if not isinstance(child, MatmulOp) or child.operands_restricted:
        return None
    from repro.matrix.matrix import SpangleMatrix

    left, right = child.left, child.right
    rows = _block_aligned_range(
        node.lo[0], node.hi[0], left.meta.starts[0],
        left.meta.shape[0], left.meta.chunk_shape[0])
    cols = _block_aligned_range(
        node.lo[1], node.hi[1], right.meta.starts[1],
        right.meta.shape[1], right.meta.chunk_shape[1])
    if rows is None or cols is None:
        return None
    new_left = SpangleMatrix(left.array.subarray(
        (rows[0], left.meta.starts[1]),
        (rows[1], left.meta.ends[1] - 1)))
    new_right = SpangleMatrix(right.array.subarray(
        (right.meta.starts[0], cols[0]),
        (right.meta.ends[0] - 1, cols[1])))
    restricted = MatmulOp(new_left, new_right, child.local_join,
                          child.meta, operands_restricted=True,
                          exec_plan=child.exec_plan)
    return SubarrayOp(restricted, node.lo, node.hi)


def _rule_matmul_sparse_execution(node):
    # attach a MatmulExecPlan (kernel kind + nnz-balanced placement)
    # when the operands carry exact per-chunk stats; the cost gate
    # keeps it only when the priced kernel/skew beats the gated-auto
    # default under hash placement
    if not isinstance(node, MatmulOp) or node.exec_plan is not None:
        return None
    from repro.matrix.multiply import plan_matmul_execution

    return plan_matmul_execution(node)


#: (name, rule) in application order — cheap structural simplifications
#: first, then the pushdowns they enable
RULES = (
    ("merge_subarrays", _rule_merge_subarrays),
    ("fold_scalars", _rule_fold_scalars),
    ("subarray_before_scalar", _rule_subarray_before_scalar),
    ("push_below_shuffle", _rule_push_below_shuffle),
    ("subarray_into_elementwise", _rule_subarray_into_elementwise),
    ("subarray_below_mask_apply", _rule_subarray_below_mask_apply),
    ("subarray_into_matmul", _rule_subarray_into_matmul),
    ("matmul_sparse_execution", _rule_matmul_sparse_execution),
)


# ----------------------------------------------------------------------
# the rewriter
# ----------------------------------------------------------------------

def optimize(node, context):
    """Rewrite a logical tree under the context's cost model.

    Returns ``(tree, rules_fired, chunks_pruned)`` — the (possibly
    unchanged) tree, the names of rules that fired in order, and the
    estimated reduction in chunk records flowing through operators.
    """
    model = context.cost_model
    fired = []
    budget = {"remaining": MAX_FIRINGS}
    before = _scanned_chunks(node)
    rewritten = _rewrite(node, model, fired, budget)
    if not fired:
        return node, [], 0
    pruned = max(0, int(round(before - _scanned_chunks(rewritten))))
    return rewritten, fired, pruned


def maybe_optimize(node, context):
    """:func:`optimize` when the optimizer is enabled; identity when
    not."""
    if not enabled():
        return node, [], 0
    return optimize(node, context)


def _rewrite(node, model, fired, budget):
    # MatmulOp operands are driver-side matrix handles whose own logical
    # trees optimize at their own lowering; SourceOps are leaves
    if isinstance(node, (SourceOp, MatmulOp)):
        rebuilt = node
    else:
        children = tuple(_rewrite(child, model, fired, budget)
                         for child in node.children)
        if all(new is old for new, old
               in zip(children, node.children)):
            rebuilt = node
        else:
            rebuilt = node.with_children(children)
    if budget["remaining"] <= 0:
        return rebuilt
    old_cost = None
    for name, rule in RULES:
        candidate = rule(rebuilt)
        if candidate is None:
            continue
        if old_cost is None:
            old_cost = plan_cost(rebuilt, model)
        if plan_cost(candidate, model) >= old_cost:
            continue
        fired.append(name)
        budget["remaining"] -= 1
        # a rewrite can expose new opportunities both below (pushed
        # nodes meet new children) and at this position (another rule
        # now matches) — re-run the rewriter on the candidate
        return _rewrite(candidate, model, fired, budget)
    return rebuilt


# ----------------------------------------------------------------------
# mask-only aggregation (the consumer-driven rewrite)
# ----------------------------------------------------------------------

class _MaskOnlyCount:
    """Counts a chunk's valid cells under box restrictions — reading
    only bitmask structure, never the values.

    A module-level class so process-backend tasks pickle it by
    reference. ``boxes`` apply in recorded order; chunk-ID pruning uses
    the intersection of their wanted sets.
    """

    __slots__ = ("meta", "boxes", "wanted")

    def __init__(self, meta, boxes):
        self.meta = meta
        self.boxes = tuple(boxes)
        wanted = None
        for lo, hi in self.boxes:
            ids = frozenset(mapper.chunk_ids_in_range(meta, lo, hi))
            wanted = ids if wanted is None else (wanted & ids)
        self.wanted = wanted

    def __getstate__(self):
        return (self.meta, self.boxes, self.wanted)

    def __setstate__(self, state):
        self.meta, self.boxes, self.wanted = state

    def __call__(self, record):
        chunk_id, chunk = record
        if self.wanted is not None and chunk_id not in self.wanted:
            return 0
        offsets = None
        for lo, hi in self.boxes:
            if mapper.chunk_fully_inside(self.meta, chunk_id, lo, hi):
                continue
            inside = mapper.range_mask_for_chunk(self.meta, chunk_id,
                                                 lo, hi)
            if offsets is None:
                offsets = chunk.indices()
            offsets = offsets[inside[offsets]]
        if offsets is None:
            return int(chunk.valid_count)
        return int(offsets.size)


#: logical ops a validity-only consumer can skip outright: they never
#: change which cells are valid (shuffles merely move whole records)
_VALUE_ONLY = (MapOp, ScalarOp, FoldedScalarOp, RepackOp, ShuffleOp)


def lower_count_valid(node, context):
    """Mask-only evaluation of ``count_valid`` over a logical tree.

    When every op between the consumer and the source either preserves
    validity (map/scalar/repack/shuffle) or is a box restriction, the
    count comes straight off the source bitmasks — no value kernel, no
    shuffle, no join. Returns the count, or None when the tree has an
    op (filter, elementwise, mask apply, matmul) whose validity effect
    requires real evaluation.
    """
    if not (enabled() and plan_mod.fusion_enabled()):
        return None
    boxes = []
    skipped = 0
    current = node
    while not isinstance(current, SourceOp):
        if isinstance(current, _VALUE_ONLY):
            skipped += 1
            current = current.children[0]
            continue
        if isinstance(current, SubarrayOp):
            boxes.append((current.lo, current.hi))
            current = current.children[0]
            continue
        return None
    if not boxes and not skipped:
        return None            # nothing to save; use the normal path
    counter = _MaskOnlyCount(current.meta, boxes)
    total = current.rdd.map(counter).fold(0, _operator.add)
    pruned = 0
    if counter.wanted is not None:
        pruned = current.meta.num_chunks - len(counter.wanted)
    context.metrics.record_optimizer(1, pruned)
    return int(total)
