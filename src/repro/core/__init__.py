"""Spangle's array data model: metadata, chunks, ArrayRDD, MaskRDD.

This is the paper's primary contribution (Sections III–V): a
multi-dimensional array is described by :class:`ArrayMetadata`, cut into
:class:`Chunk` objects (payload + bitmask) identified by chunk IDs
(Algorithm 1, :mod:`repro.core.mapper`), and distributed as an
:class:`ArrayRDD`. Multi-attribute arrays are column stores
(:class:`SpangleDataset`) sharing a lazily-evaluated :class:`MaskRDD`.
Chunk-local operators accumulate on a :class:`ChunkPlan`
(:mod:`repro.core.plan`) and execute as one fused pass per chunk.
"""

from repro.core import chunk_codec
from repro.core.aggregates import (
    Aggregator,
    AvgAggregator,
    CountAggregator,
    MaxAggregator,
    MinAggregator,
    SumAggregator,
)
from repro.core.array_rdd import ArrayRDD
from repro.core.chunk import Chunk, ChunkMode
from repro.core.dataset import SpangleDataset
from repro.core.mask_rdd import MaskRDD
from repro.core.metadata import ArrayMetadata
from repro.core.plan import (
    ChunkPlan,
    disable_fusion,
    enable_fusion,
    fusion_enabled,
)

# teach the engine's columnar shuffle to pack Chunk values; the engine
# layer itself never imports core
chunk_codec.register()

__all__ = [
    "Aggregator",
    "ArrayMetadata",
    "ArrayRDD",
    "AvgAggregator",
    "Chunk",
    "ChunkMode",
    "ChunkPlan",
    "CountAggregator",
    "MaskRDD",
    "MaxAggregator",
    "MinAggregator",
    "SpangleDataset",
    "SumAggregator",
    "disable_fusion",
    "enable_fusion",
    "fusion_enabled",
]
