"""Spangle's array data model: metadata, chunks, ArrayRDD, MaskRDD.

This is the paper's primary contribution (Sections III–V): a
multi-dimensional array is described by :class:`ArrayMetadata`, cut into
:class:`Chunk` objects (payload + bitmask) identified by chunk IDs
(Algorithm 1, :mod:`repro.core.mapper`), and distributed as an
:class:`ArrayRDD`. Multi-attribute arrays are column stores
(:class:`SpangleDataset`) sharing a lazily-evaluated :class:`MaskRDD`.
Operators record :class:`~repro.core.logical.LogicalOp` trees
(:mod:`repro.core.logical`); at evaluation the cost-based rewrite
optimizer (:mod:`repro.core.optimizer`) reorders them where the cluster
cost model says it pays, and lowering compiles chunk-local chains onto
a :class:`ChunkPlan` (:mod:`repro.core.plan`) executing as one fused
pass per chunk.
"""

from repro.core import chunk_codec
from repro.core.chunk import chunk_exact_size, repack_records
from repro.core.aggregates import (
    Aggregator,
    AvgAggregator,
    CountAggregator,
    MaxAggregator,
    MinAggregator,
    SumAggregator,
)
from repro.core.array_rdd import ArrayRDD
from repro.core.chunk import Chunk, ChunkMode
from repro.core.dataset import SpangleDataset
from repro.core.mask_rdd import MaskRDD
from repro.core.metadata import ArrayMetadata
from repro.core.plan import (
    ChunkPlan,
    disable_fusion,
    enable_fusion,
    fusion_enabled,
)

# teach the engine's columnar shuffle to pack Chunk values; the engine
# layer itself never imports core
chunk_codec.register()

# the same inversion for the memory tier: exact chunk sizes for cache
# budgets, the unbounded chunk codec for spill files, and the density
# repacker for cache admission
from repro.engine.sizing import register_sizer as _register_sizer
from repro.engine.spill import (
    register_spill_codec as _register_spill_codec,
)
from repro.engine.storage import (
    register_repacker as _register_repacker,
)

_register_sizer(chunk_exact_size)
_register_spill_codec(chunk_codec.probe_chunks_for_spill)
_register_repacker(repack_records)

__all__ = [
    "Aggregator",
    "ArrayMetadata",
    "ArrayRDD",
    "AvgAggregator",
    "Chunk",
    "ChunkMode",
    "ChunkPlan",
    "CountAggregator",
    "MaskRDD",
    "MaxAggregator",
    "MinAggregator",
    "SpangleDataset",
    "SumAggregator",
    "disable_fusion",
    "enable_fusion",
    "fusion_enabled",
]
