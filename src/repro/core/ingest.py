"""Ingest pipeline: cell records → chunks → ArrayRDD (Section III-A).

Spangle ingests data (CSV, NetCDF) by assigning every cell a chunk ID
(Algorithm 1), grouping cells with equal IDs, and building payloads and
bitmasks — all as one pipeline. Empty chunks are never created.

The cell-record form is ``(coords_tuple, value)``.
"""

from __future__ import annotations

import numpy as np

from repro.core import mapper
from repro.core.array_rdd import ArrayRDD
from repro.core.chunk import Chunk
from repro.core.metadata import ArrayMetadata
from repro.engine import HashPartitioner
from repro.errors import IngestError


# module-level task callables: tasks ship these to worker processes by
# qualified name instead of serializing closure cells (see the note in
# repro.engine.rdd)

class _AssignChunkIds:
    """Map one partition of cell records to ``(chunk_id, (offset, value))``."""

    __slots__ = ("meta",)

    def __init__(self, meta):
        self.meta = meta

    def __call__(self, part):
        meta = self.meta
        part = list(part)
        if not part:
            return
        coords = np.array([record[0] for record in part], dtype=np.int64)
        if coords.ndim != 2 or coords.shape[1] != meta.ndim:
            raise IngestError(
                f"expected {meta.ndim}-d coordinates, got shape "
                f"{coords.shape}"
            )
        values = np.array([record[1] for record in part])
        chunk_ids = mapper.chunk_ids_for_coords_array(meta, coords)
        offsets = mapper.local_offsets_for_coords_array(meta, coords)
        if values.dtype != object:
            # plain Python scalars, so the shuffle's columnar path can
            # pack the (offset, value) pairs into one record batch
            values = values.tolist()
        for chunk_id, offset, value in zip(chunk_ids, offsets, values):
            yield int(chunk_id), (int(offset), value)


class _BuildChunk:
    """Assemble one chunk from its grouped ``(offset, value)`` pairs."""

    __slots__ = ("meta",)

    def __init__(self, meta):
        self.meta = meta

    def __call__(self, pairs):
        offsets = np.fromiter((p[0] for p in pairs), dtype=np.int64,
                              count=len(pairs))
        values = np.array([p[1] for p in pairs], dtype=self.meta.dtype)
        return Chunk.from_sparse(self.meta.cells_per_chunk, offsets,
                                 values)


def array_rdd_from_cell_rdd(context, cell_rdd, meta: ArrayMetadata,
                            num_partitions=None) -> ArrayRDD:
    """Build an ArrayRDD from an engine RDD of ``(coords, value)`` records.

    The pipeline maps each record to ``(chunk_id, (offset, value))``,
    shuffles by chunk ID, and assembles one chunk per group — the
    map-then-reduce creation path of Section III-A.
    """
    if num_partitions is None:
        num_partitions = context.default_parallelism
    partitioner = HashPartitioner(num_partitions)
    chunks = (
        cell_rdd.map_partitions(_AssignChunkIds(meta))
        .group_by_key(partitioner=partitioner)
        .map_values(_BuildChunk(meta))
    )
    chunks.partitioner = partitioner
    return ArrayRDD(chunks, meta, context)


def array_rdd_from_records(context, records, meta: ArrayMetadata,
                           num_partitions=None) -> ArrayRDD:
    """Driver-side convenience: ingest an iterable of ``(coords, value)``."""
    if num_partitions is None:
        num_partitions = context.default_parallelism
    cell_rdd = context.parallelize(list(records), num_partitions)
    return array_rdd_from_cell_rdd(context, cell_rdd, meta, num_partitions)


def generate_array_rdd(context, meta: ArrayMetadata, partition_cells,
                       num_partitions: int) -> ArrayRDD:
    """Ingest from a generator: ``partition_cells(i)`` yields cell records.

    Large synthetic datasets use this so they are born distributed and
    never pass through the driver as one list.
    """
    cell_rdd = context.generate(num_partitions, partition_cells)
    return array_rdd_from_cell_rdd(context, cell_rdd, meta, num_partitions)
