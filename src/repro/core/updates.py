"""Cell updates: upserting records into an existing ArrayRDD.

Arrays evolve — new observations arrive, bad retrievals are corrected,
regions are re-processed. RDDs are immutable, so an update produces a
new ArrayRDD; the machinery routes the incoming cells to their chunks
(Algorithm 1), joins them against the existing chunks, and resolves
conflicts per cell:

- ``"replace"`` — the incoming value wins;
- ``"keep"`` — the existing value wins (insert-only);
- ``"sum"`` — values add (accumulation ingest);
- a callable ``resolver(old_values, new_values) -> values``.

Cells can also be *deleted* (made null) by region or predicate.
"""

from __future__ import annotations

import numpy as np

from repro.core import mapper
from repro.core.array_rdd import ArrayRDD
from repro.core.chunk import Chunk
from repro.engine import HashPartitioner
from repro.errors import ArrayError


def _resolve_resolver(how):
    if callable(how):
        return how
    if how == "replace":
        return lambda _old, new: new
    if how == "keep":
        return lambda old, _new: old
    if how == "sum":
        return lambda old, new: old + new
    raise ArrayError(
        f"unknown resolver {how!r}; use 'replace'/'keep'/'sum' or a "
        f"callable"
    )


def merge_cells(array: ArrayRDD, records, how="replace",
                fill=0.0) -> ArrayRDD:
    """Upsert ``(coords, value)`` records into an array.

    New cells become valid; cells present on both sides go through the
    resolver. Returns a new ArrayRDD over the same metadata.
    """
    resolver = _resolve_resolver(how)
    meta = array.meta
    records = list(records)
    cells_per_chunk = meta.cells_per_chunk
    if not records:
        return array

    coords = np.array([record[0] for record in records], dtype=np.int64)
    for row in coords:
        meta.check_coords(tuple(int(c) for c in row))
    values = np.array([record[1] for record in records],
                      dtype=np.float64)
    chunk_ids = mapper.chunk_ids_for_coords_array(meta, coords)
    offsets = mapper.local_offsets_for_coords_array(meta, coords)
    order = np.argsort(chunk_ids, kind="stable")
    chunk_ids = chunk_ids[order]
    offsets = offsets[order]
    values = values[order]
    updates = {}
    boundaries = np.nonzero(np.diff(chunk_ids))[0] + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [chunk_ids.size]])
    for start, end in zip(starts, ends):
        chunk_offsets = offsets[start:end]
        chunk_values = values[start:end]
        if np.unique(chunk_offsets).size != chunk_offsets.size:
            raise ArrayError("duplicate coordinates in one update batch")
        updates[int(chunk_ids[start])] = (chunk_offsets, chunk_values)

    num_partitions = array.rdd.num_partitions
    partitioner = array.rdd.partitioner \
        or HashPartitioner(num_partitions)
    update_rdd = array.context.parallelize(
        list(updates.items()), num_partitions, partitioner=partitioner)
    update_rdd.partitioner = partitioner
    placed = array.rdd.partition_by(partitioner)

    def apply_updates(pair):
        existing, incoming = pair
        if not incoming:
            return existing[0]
        upd_offsets, upd_values = incoming[0]
        if not existing:
            return Chunk.from_sparse(cells_per_chunk, upd_offsets,
                                     upd_values)
        chunk = existing[0]
        dense = chunk.to_dense(fill)
        valid = chunk.valid_bools()
        both = valid[upd_offsets]
        resolved = upd_values.copy()
        if both.any():
            resolved[both] = resolver(dense[upd_offsets[both]],
                                      upd_values[both])
        dense[upd_offsets] = resolved
        valid[upd_offsets] = True
        return Chunk.from_dense(dense, valid)

    merged = placed.cogroup(update_rdd, partitioner=partitioner) \
        .map_values(apply_updates) \
        .filter(lambda kv: kv[1].valid_count > 0)
    merged.partitioner = partitioner
    return ArrayRDD(merged, meta, array.context)


def delete_region(array: ArrayRDD, lo, hi) -> ArrayRDD:
    """Invalidate every cell inside the closed box [lo, hi]."""
    from repro.bitmask import Bitmask

    meta = array.meta
    affected = set(mapper.chunk_ids_in_range(meta, lo, hi))

    def erase(index, part):
        for chunk_id, chunk in part:
            if chunk_id not in affected:
                yield chunk_id, chunk
                continue
            inside = mapper.range_mask_for_chunk(meta, chunk_id, lo, hi)
            keep_mask = Bitmask.from_bools(~inside)
            remaining = chunk.and_mask(keep_mask)
            if remaining.valid_count > 0:
                yield chunk_id, remaining

    out = array.rdd.map_partitions_with_index(
        erase, preserves_partitioning=True)
    return ArrayRDD(out, meta, array.context)


def delete_where(array: ArrayRDD, predicate) -> ArrayRDD:
    """Invalidate cells whose value satisfies ``predicate(values)``."""
    return array.filter(lambda xs: ~np.asarray(predicate(xs),
                                               dtype=bool))
