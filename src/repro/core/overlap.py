"""Overlap (ghost cells) for stencil operators (Section III-A).

Operators that combine a cell with its neighbours (regridding, blurring,
density windows) need cells from adjacent chunks at chunk boundaries.
Spangle's *overlap* ships each chunk a halo of depth ``d`` from its
neighbours once, so the stencil itself runs without shuffling whole
chunks: only thin boundary slabs move.

:func:`stencil` is the user-facing entry point: the function receives
the chunk expanded by the halo — ``(values, valid)`` ndarrays of shape
``chunk_shape + 2*depth`` per axis — and returns new values (and
optionally validity) for the *core* region.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.core import mapper
from repro.core.array_rdd import ArrayRDD
from repro.core.chunk import Chunk
from repro.errors import ArrayError


def _chunk_as_ndarray(meta, chunk):
    values = chunk.to_dense(0).reshape(meta.chunk_shape, order="F")
    valid = chunk.valid_bools().reshape(meta.chunk_shape, order="F")
    return values, valid


def _normalize_depth(meta, depth):
    """Per-axis halo depths; an int applies to every axis."""
    if isinstance(depth, int):
        depths = (depth,) * meta.ndim
    else:
        depths = tuple(int(d) for d in depth)
        if len(depths) != meta.ndim:
            raise ArrayError(
                f"need {meta.ndim} per-axis depths, got {len(depths)}"
            )
    if all(d <= 0 for d in depths):
        raise ArrayError(f"overlap depth must be positive: {depths}")
    for axis, d in enumerate(depths):
        if d < 0 or d > meta.chunk_shape[axis]:
            raise ArrayError(
                f"overlap depth {d} invalid for chunk interval "
                f"{meta.chunk_shape[axis]} on axis {axis}"
            )
    return depths


def _halo_slices(meta, offsets, depths, side: str):
    """Slices of the slab exchanged for a neighbour offset vector.

    ``side="source"`` — region of *our* chunk the neighbour needs;
    ``side="target"`` — where it lands in the neighbour's expanded array.
    """
    slices = []
    for axis, o in enumerate(offsets):
        size = meta.chunk_shape[axis]
        depth = depths[axis]
        if side == "source":
            if o == 1:
                slices.append(slice(size - depth, size))
            elif o == -1:
                slices.append(slice(0, depth))
            else:
                slices.append(slice(0, size))
        else:
            if o == 1:
                slices.append(slice(0, depth))
            elif o == -1:
                slices.append(slice(size + depth, size + 2 * depth))
            else:
                slices.append(slice(depth, size + depth))
    return tuple(slices)


def expanded_chunks(array_rdd: ArrayRDD, depth: int):
    """RDD of ``(chunk_id, (expanded_values, expanded_valid))``.

    Only halo slabs are shuffled; each chunk's own body joins in through
    the (narrow, when co-partitioned) cogroup with the original RDD.
    """
    meta = array_rdd.meta
    depths = _normalize_depth(meta, depth)
    ndim = meta.ndim
    # no halos are exchanged along axes whose depth is zero
    axis_choices = [
        (-1, 0, 1) if depths[axis] > 0 else (0,)
        for axis in range(ndim)
    ]
    neighbour_offsets = [
        o for o in itertools.product(*axis_choices) if any(o)
    ]

    def emit_halos(part):
        for chunk_id, chunk in part:
            grid = mapper.chunk_coords_from_id(meta, chunk_id)
            values, valid = _chunk_as_ndarray(meta, chunk)
            for offsets in neighbour_offsets:
                target_grid = tuple(
                    g + o for g, o in zip(grid, offsets))
                if any(
                    not 0 <= t < meta.chunk_grid[axis]
                    for axis, t in enumerate(target_grid)
                ):
                    continue
                src = _halo_slices(meta, offsets, depths, "source")
                slab_valid = valid[src]
                if not slab_valid.any():
                    continue
                target_id = mapper.chunk_id_from_chunk_coords(
                    meta, target_grid)
                # a slab sent to the neighbour at offset +1 arrives at the
                # receiver's low-side halo: placement is keyed by the
                # sender's offset vector as-is (see _halo_slices)
                yield target_id, (offsets, values[src].copy(),
                                  slab_valid.copy())

    halos = array_rdd.rdd.map_partitions(emit_halos)
    grouped = array_rdd.rdd.cogroup(halos,
                                    partitioner=array_rdd.rdd.partitioner)
    expanded_shape = tuple(
        s + 2 * d for s, d in zip(meta.chunk_shape, depths))

    def assemble(pair):
        own_chunks, slabs = pair
        values = np.zeros(expanded_shape, dtype=meta.dtype)
        valid = np.zeros(expanded_shape, dtype=bool)
        if own_chunks:
            core_values, core_valid = _chunk_as_ndarray(meta, own_chunks[0])
            core = tuple(
                slice(d, d + s)
                for d, s in zip(depths, meta.chunk_shape))
            values[core] = core_values
            valid[core] = core_valid
        for sender_offsets, slab_values, slab_valid in slabs:
            dst = _halo_slices(meta, sender_offsets, depths, "target")
            values[dst] = slab_values
            valid[dst] = slab_valid
        return values, valid

    out = grouped.map_values(assemble)
    out.partitioner = grouped.partitioner
    return out


def stencil(array_rdd: ArrayRDD, func, depth: int) -> ArrayRDD:
    """Apply a windowed function with halo exchange.

    ``func(expanded_values, expanded_valid, depths)`` returns either
    ``core_values`` or ``(core_values, core_valid)`` for the chunk's core
    region (shape == ``chunk_shape``). Cells that were invalid stay
    invalid unless the function returns an explicit validity.

    ``depth`` may be an int (every axis) or a per-axis tuple; a zero
    entry exchanges no halo along that axis (e.g. independent images
    stacked on a time axis).
    """
    meta = array_rdd.meta
    depths = _normalize_depth(meta, depth)
    core = tuple(
        slice(d, d + s) for d, s in zip(depths, meta.chunk_shape))

    def apply_stencil(pair):
        values, valid = pair
        result = func(values, valid, depths)
        if isinstance(result, tuple):
            new_values, new_valid = result
        else:
            new_values, new_valid = result, valid[core]
        new_values = np.asarray(new_values)
        if new_values.shape != meta.chunk_shape:
            raise ArrayError(
                f"stencil function returned shape {new_values.shape}, "
                f"expected {meta.chunk_shape}"
            )
        return Chunk.from_dense(new_values.ravel(order="F"),
                                np.asarray(new_valid,
                                           dtype=bool).ravel(order="F"))

    chunks = expanded_chunks(array_rdd, depth) \
        .map_values(apply_stencil) \
        .filter(lambda kv: kv[1].valid_count > 0)
    chunks.partitioner = array_rdd.rdd.partitioner
    return ArrayRDD(chunks, meta, array_rdd.context)


def mean_stencil(window):
    """A ready-made stencil: mean of the valid cells in a window.

    ``window`` is the half-width (the overlap depth) — an int or a
    per-axis tuple matching the depth passed to :func:`stencil`.
    """

    def func(values, valid, depths):
        if isinstance(depths, int):
            depths = (depths,) * values.ndim
        filled = np.where(valid, values, 0.0)
        sums = _box_sum(filled, depths)
        counts = _box_sum(valid.astype(np.float64), depths)
        core = tuple(
            slice(d, values.shape[a] - d) if d else slice(None)
            for a, d in enumerate(depths)
        )
        with np.errstate(invalid="ignore", divide="ignore"):
            means = np.where(counts[core] > 0,
                             sums[core] / counts[core], 0.0)
        return means, valid[core] & (counts[core] > 0)

    return func


def _box_sum(array: np.ndarray, radii) -> np.ndarray:
    """Sum over a centered box with per-axis half-widths.

    Separable moving sum via cumulative sums — O(n) per axis. A radius
    of zero leaves that axis untouched.
    """
    if isinstance(radii, int):
        radii = (radii,) * array.ndim
    out = array.astype(np.float64)
    for axis, radius in enumerate(radii):
        if radius == 0 or array.shape[axis] == 1:
            continue
        padded = np.concatenate(
            [
                np.zeros(_shape_with(out.shape, axis, radius + 1)),
                out,
                np.zeros(_shape_with(out.shape, axis, radius)),
            ],
            axis=axis,
        )
        csum = np.cumsum(padded, axis=axis)
        upper = np.take(
            csum,
            range(2 * radius + 1, 2 * radius + 1 + array.shape[axis]),
            axis=axis,
        )
        lower = np.take(csum, range(0, array.shape[axis]), axis=axis)
        out = upper - lower
    return out


def _shape_with(shape, axis, size):
    out = list(shape)
    out[axis] = size
    return tuple(out)
