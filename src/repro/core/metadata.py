"""Array metadata: the logical description of a Spangle array.

The paper (Section III-C) keeps, per array: the starting and ending
points of every dimension, the chunk interval, and the data types. The
mapper uses this to translate between the logical layout (coordinates)
and the physical layout (chunk IDs + payload offsets).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import CoordinateError, MetadataError


@dataclass(frozen=True)
class ArrayMetadata:
    """Immutable geometry of one array (or one attribute of a dataset).

    Parameters
    ----------
    shape:
        Number of cells along each dimension.
    chunk_shape:
        Chunk interval along each dimension. Edge chunks are *logically*
        full-size; cells past the array boundary are permanently invalid,
        so payload offset arithmetic stays uniform.
    starts:
        Global coordinate of the first cell per dimension (defaults to
        zeros). Raster data often starts at nonzero lat/lon indices.
    dim_names:
        Optional axis names (``("x", "y", "time")``).
    dtype:
        Cell dtype (numpy dtype-like). Defaults to float64.
    attribute:
        Name of the attribute this array stores, for column-store
        bookkeeping.
    """

    shape: tuple
    chunk_shape: tuple
    starts: tuple = None
    dim_names: tuple = None
    dtype: object = np.float64
    attribute: str = "value"

    def __post_init__(self):
        shape = tuple(int(s) for s in self.shape)
        chunk_shape = tuple(int(c) for c in self.chunk_shape)
        object.__setattr__(self, "shape", shape)
        object.__setattr__(self, "chunk_shape", chunk_shape)
        if not shape:
            raise MetadataError("array must have at least one dimension")
        if len(chunk_shape) != len(shape):
            raise MetadataError(
                f"chunk_shape arity {len(chunk_shape)} != "
                f"shape arity {len(shape)}"
            )
        if any(s <= 0 for s in shape):
            raise MetadataError(f"dimensions must be positive: {shape}")
        if any(c <= 0 for c in chunk_shape):
            raise MetadataError(
                f"chunk intervals must be positive: {chunk_shape}"
            )
        starts = self.starts
        if starts is None:
            starts = (0,) * len(shape)
        starts = tuple(int(s) for s in starts)
        if len(starts) != len(shape):
            raise MetadataError(
                f"starts arity {len(starts)} != shape arity {len(shape)}"
            )
        object.__setattr__(self, "starts", starts)
        dim_names = self.dim_names
        if dim_names is None:
            dim_names = tuple(f"dim{i}" for i in range(len(shape)))
        dim_names = tuple(dim_names)
        if len(dim_names) != len(shape):
            raise MetadataError(
                f"dim_names arity {len(dim_names)} != shape arity "
                f"{len(shape)}"
            )
        if len(set(dim_names)) != len(dim_names):
            raise MetadataError(f"duplicate dimension names: {dim_names}")
        object.__setattr__(self, "dim_names", dim_names)
        object.__setattr__(self, "dtype", np.dtype(self.dtype))

    # ------------------------------------------------------------------
    # derived geometry
    # ------------------------------------------------------------------

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def num_cells(self) -> int:
        return int(np.prod(self.shape))

    @property
    def chunk_grid(self) -> tuple:
        """Number of chunks along each dimension."""
        return tuple(
            math.ceil(size / interval)
            for size, interval in zip(self.shape, self.chunk_shape)
        )

    @property
    def num_chunks(self) -> int:
        return int(np.prod(self.chunk_grid))

    @property
    def cells_per_chunk(self) -> int:
        """Logical cell count of every chunk (edge chunks included)."""
        return int(np.prod(self.chunk_shape))

    @property
    def ends(self) -> tuple:
        """Exclusive global end coordinate per dimension."""
        return tuple(s + n for s, n in zip(self.starts, self.shape))

    def dim_index(self, name: str) -> int:
        try:
            return self.dim_names.index(name)
        except ValueError:
            raise MetadataError(
                f"unknown dimension {name!r}; have {self.dim_names}"
            ) from None

    # ------------------------------------------------------------------
    # validation and derivation
    # ------------------------------------------------------------------

    def check_coords(self, coords) -> tuple:
        """Validate global coordinates; returns them as a tuple of ints."""
        coords = tuple(int(c) for c in coords)
        if len(coords) != self.ndim:
            raise CoordinateError(
                f"expected {self.ndim} coordinates, got {len(coords)}"
            )
        for axis, (c, start, end) in enumerate(
                zip(coords, self.starts, self.ends)):
            if not start <= c < end:
                raise CoordinateError(
                    f"coordinate {c} out of range [{start}, {end}) "
                    f"on axis {axis} ({self.dim_names[axis]})"
                )
        return coords

    def with_attribute(self, attribute: str) -> "ArrayMetadata":
        return ArrayMetadata(self.shape, self.chunk_shape, self.starts,
                             self.dim_names, self.dtype, attribute)

    def with_dtype(self, dtype) -> "ArrayMetadata":
        return ArrayMetadata(self.shape, self.chunk_shape, self.starts,
                             self.dim_names, dtype, self.attribute)

    def transposed(self) -> "ArrayMetadata":
        """Reverse every per-dimension tuple.

        This is the whole trick behind the paper's *opt2* (Section VI-C):
        transposing a vector touches metadata only, never the payload.
        """
        return ArrayMetadata(
            self.shape[::-1], self.chunk_shape[::-1], self.starts[::-1],
            self.dim_names[::-1], self.dtype, self.attribute,
        )

    def describe(self) -> str:
        dims = ", ".join(
            f"{name}[{start}:{end}:{interval}]"
            for name, start, end, interval in zip(
                self.dim_names, self.starts, self.ends, self.chunk_shape)
        )
        return (
            f"{self.attribute}<{self.dtype}>({dims}) "
            f"chunks={self.chunk_grid}"
        )
