"""The Chunk value codec for the columnar shuffle.

Spangle's shuffle traffic is mostly ``(chunk_id, Chunk)`` records, and a
Chunk is already columnar inside: a flat payload buffer plus bitmask
words. This codec teaches :mod:`repro.engine.batches` to ship a whole
bucket of chunks as four buffers — payload concatenation, mask-word
concatenation, per-record modes, and per-record cell counts — instead of
a Python object per chunk.

Registered from ``repro.core.__init__`` via
:func:`repro.engine.batches.register_value_codec`, so the engine layer
never imports core.

Byte-identity rules (unpacked chunks must pickle identically to the
originals):

- payloads must be 1-D, share one dtype, and hold no Python objects;
- a mask whose milestone rank cache has been populated is refused —
  the rebuilt mask would pickle with a fresh (empty) cache;
- SUPER_SPARSE masks ship compressed: the record's word run is the
  upper-level words followed by the stored non-zero lower words, and
  the hierarchical mask is rebuilt exactly (prefix counts are
  deterministic in the constructor).

Like every array-backed codec, packing refuses once the mean bytes per
chunk reach :data:`repro.engine.batches.VALUE_PACK_BYTE_LIMIT` — big
chunks move faster as references than as copied buffers.
"""

from __future__ import annotations

import numpy as np

from repro.bitmask import Bitmask, HierarchicalBitmask
from repro.bitmask.popcount import WORD_BITS
from repro.core.chunk import Chunk, ChunkMode
from repro.engine.batches import (
    VALUE_PACK_BYTE_LIMIT,
    ArrayValues,
    register_value_codec,
)

#: wire codes for ChunkMode, indexed by the uint8 stored per record
_MODES = (ChunkMode.DENSE, ChunkMode.SPARSE, ChunkMode.SUPER_SPARSE)
_MODE_CODES = {mode: code for code, mode in enumerate(_MODES)}


def _flat_column(arrays) -> ArrayValues:
    """A column of 1-D same-dtype arrays as one ArrayValues buffer."""
    data = np.concatenate(arrays)
    lengths = np.fromiter((a.size for a in arrays), dtype=np.int64,
                          count=len(arrays))
    return ArrayValues(data, lengths, lengths[:, None])


class ChunkValues:
    """A packed column of :class:`Chunk` values."""

    __slots__ = ("modes", "num_cells", "payload", "words", "upper_lengths")

    def __init__(self, modes: np.ndarray, num_cells: np.ndarray,
                 payload: ArrayValues, words: ArrayValues,
                 upper_lengths: np.ndarray):
        self.modes = modes                  # uint8 wire codes
        self.num_cells = num_cells          # int64
        self.payload = payload              # one flat value buffer
        self.words = words                  # one flat uint64 buffer
        self.upper_lengths = upper_lengths  # int64; 0 for flat masks

    def __len__(self) -> int:
        return self.modes.size

    @property
    def nbytes(self) -> int:
        return int(self.modes.nbytes + self.num_cells.nbytes
                   + self.upper_lengths.nbytes) \
            + self.payload.nbytes + self.words.nbytes

    def unpack(self) -> list:
        payloads = self.payload.unpack()
        word_runs = self.words.unpack()
        out = []
        for i in range(self.modes.size):
            mode = _MODES[self.modes[i]]
            cells = int(self.num_cells[i])
            run = word_runs[i]
            if mode is ChunkMode.SUPER_SPARSE:
                split = int(self.upper_lengths[i])
                upper_bits = (cells + WORD_BITS - 1) // WORD_BITS
                mask = HierarchicalBitmask(
                    cells, Bitmask(upper_bits, run[:split].copy()),
                    run[split:])
            else:
                mask = Bitmask(cells, run)
            out.append(Chunk(mode, payloads[i], mask, cells))
        return out

    def gather(self, idx: np.ndarray) -> "ChunkValues":
        return ChunkValues(self.modes[idx], self.num_cells[idx],
                           self.payload.gather(idx),
                           self.words.gather(idx),
                           self.upper_lengths[idx])


def _mask_words(chunk: Chunk):
    """``(word_run, upper_length)`` for one chunk's mask, or None when
    the mask cannot be rebuilt byte-identically."""
    mask = chunk.mask
    if chunk.mode is ChunkMode.SUPER_SPARSE:
        if type(mask) is not HierarchicalBitmask:
            return None
        upper = mask._upper
        if upper._milestones is not None:
            return None
        return (np.concatenate([upper.words, mask._stored_words]),
                upper.words.size)
    if type(mask) is not Bitmask:
        return None
    if mask._milestones is not None:
        return None
    return mask.words, 0


def probe_chunks(values, byte_limit=VALUE_PACK_BYTE_LIMIT):
    """``ChunkValues`` for a uniform column of chunks, or None.

    ``byte_limit`` is the mean-bytes-per-chunk refusal threshold;
    ``None`` packs unconditionally (the spill path wants exactly that —
    a spilled partition is large by definition, and on disk a copied
    compressed buffer always beats pickled objects).
    """
    first = values[0]
    if type(first) is not Chunk:
        return None
    dtype = first.payload.dtype
    if dtype.hasobject:
        return None
    modes = np.empty(len(values), dtype=np.uint8)
    num_cells = np.empty(len(values), dtype=np.int64)
    upper_lengths = np.zeros(len(values), dtype=np.int64)
    payloads = []
    word_runs = []
    total_bytes = 0
    for i, chunk in enumerate(values):
        if type(chunk) is not Chunk:
            return None
        payload = chunk.payload
        if (type(payload) is not np.ndarray or payload.dtype != dtype
                or payload.ndim != 1):
            return None
        packed_mask = _mask_words(chunk)
        if packed_mask is None:
            return None
        run, upper_length = packed_mask
        modes[i] = _MODE_CODES[chunk.mode]
        num_cells[i] = chunk.num_cells
        upper_lengths[i] = upper_length
        payloads.append(payload)
        word_runs.append(run)
        total_bytes += payload.nbytes + run.nbytes
    if (byte_limit is not None
            and total_bytes >= byte_limit * len(values)):
        return None
    return ChunkValues(modes, num_cells, _flat_column(payloads),
                       _flat_column(word_runs), upper_lengths)


def probe_chunks_for_spill(values):
    """The spill-path probe: the chunk codec with no byte limit."""
    return probe_chunks(values, byte_limit=None)


class OffsetChunkValues:
    """A packed column of offset-encoded chunks.

    An :class:`~repro.matrix.offsets.OffsetArrayChunk` is two flat
    arrays plus a cell count, so a bucket of them ships as three
    buffers. Rebuilding goes through the constructor: the offsets are
    already sorted, the stable argsort is the identity, and the rebuilt
    chunk pickles identically to the original.
    """

    __slots__ = ("num_cells", "offsets", "payload")

    def __init__(self, num_cells: np.ndarray, offsets: ArrayValues,
                 payload: ArrayValues):
        self.num_cells = num_cells      # int64
        self.offsets = offsets          # one flat int64 buffer
        self.payload = payload          # one flat value buffer

    def __len__(self) -> int:
        return self.num_cells.size

    @property
    def nbytes(self) -> int:
        return int(self.num_cells.nbytes) + self.offsets.nbytes \
            + self.payload.nbytes

    def unpack(self) -> list:
        chunk_type = _STATE["offset_type"]
        offset_runs = self.offsets.unpack()
        payloads = self.payload.unpack()
        return [chunk_type(int(self.num_cells[i]), offset_runs[i],
                           payloads[i])
                for i in range(self.num_cells.size)]

    def gather(self, idx: np.ndarray) -> "OffsetChunkValues":
        return OffsetChunkValues(self.num_cells[idx],
                                 self.offsets.gather(idx),
                                 self.payload.gather(idx))


def probe_offset_chunks(values, byte_limit=VALUE_PACK_BYTE_LIMIT):
    """``OffsetChunkValues`` for a uniform offset-chunk column, or None.

    Inert until :func:`register_offset_chunks` installs the concrete
    chunk type (the matrix layer owns it; this module never imports up).
    """
    chunk_type = _STATE["offset_type"]
    if chunk_type is None or type(values[0]) is not chunk_type:
        return None
    dtype = values[0].payload.dtype
    if dtype.hasobject:
        return None
    num_cells = np.empty(len(values), dtype=np.int64)
    offset_runs = []
    payloads = []
    total_bytes = 0
    for i, chunk in enumerate(values):
        if type(chunk) is not chunk_type:
            return None
        payload = chunk.payload
        if (type(payload) is not np.ndarray or payload.dtype != dtype
                or payload.ndim != 1):
            return None
        num_cells[i] = chunk.num_cells
        offset_runs.append(chunk.indices())
        payloads.append(payload)
        total_bytes += payload.nbytes + chunk.indices().nbytes
    if (byte_limit is not None
            and total_bytes >= byte_limit * len(values)):
        return None
    return OffsetChunkValues(num_cells, _flat_column(offset_runs),
                             _flat_column(payloads))


def probe_offset_chunks_for_spill(values):
    """The spill-path probe: the offset codec with no byte limit."""
    return probe_offset_chunks(values, byte_limit=None)


def register() -> None:
    """Idempotently register the chunk codec with the engine."""
    if not _STATE["registered"]:
        register_value_codec(probe_chunks)
        _STATE["registered"] = True


def register_offset_chunks(chunk_type) -> None:
    """Install the OffsetArrayChunk type and register its codec.

    Called by :mod:`repro.matrix.offsets` at import, mirroring how
    ``repro.core.__init__`` registers the Chunk codec — the dependency
    points upward, never from here into the matrix layer.
    """
    _STATE["offset_type"] = chunk_type
    if not _STATE["offset_registered"]:
        from repro.engine.spill import register_spill_codec

        register_value_codec(probe_offset_chunks)
        register_spill_codec(probe_offset_chunks_for_spill)
        _STATE["offset_registered"] = True


_STATE = {"registered": False, "offset_registered": False,
          "offset_type": None}
