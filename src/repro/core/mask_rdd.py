"""MaskRDD: the hidden, lazily-evaluated global validity mask.

Section III-B-1 of the paper: with more than one attribute, keeping every
attribute's bitmask consistent after each Filter/Subarray is expensive.
The MaskRDD records the *global* validity instead; operators transform
only the MaskRDD (cheap — one small RDD of bitmasks), and attributes are
reconciled on demand with a single AND per chunk.

Box restrictions are recorded, not executed: ``subarray`` appends to a
pending box list and reading :attr:`rdd` lowers the whole list as one
chunk-ID-pruning pass (so five chained subarrays cost one traversal,
with their wanted-sets intersected up front). ``apply_to`` records a
logical :class:`~repro.core.logical.MaskApplyOp` on the target array,
which lets the optimizer push later restrictions below the
reconciliation join.

The with/without-MaskRDD performance gap is the paper's Fig. 9b.
"""

from __future__ import annotations

import numpy as np

from repro.bitmask import Bitmask
from repro.core import mapper
from repro.core import plan as plan_mod
from repro.core.metadata import ArrayMetadata
from repro.errors import ShapeMismatchError


class _RestrictMasks:
    """One pass applying every pending box to a partition of masks.

    A module-level class (pickled by reference when tasks ship to
    worker processes). Chunk-ID pruning uses the intersection of the
    boxes' wanted-sets — a chunk outside *any* box is skipped without
    touching its bitmask; boxes then AND in recorded order, exactly as
    the chained eager restrictions would.
    """

    __slots__ = ("meta", "boxes", "wanted")

    def __init__(self, meta, boxes):
        self.meta = meta
        self.boxes = tuple(boxes)
        wanted = None
        for lo, hi in self.boxes:
            ids = frozenset(mapper.chunk_ids_in_range(meta, lo, hi))
            wanted = ids if wanted is None else (wanted & ids)
        self.wanted = wanted if wanted is not None else frozenset()

    def __getstate__(self):
        return (self.meta, self.boxes, self.wanted)

    def __setstate__(self, state):
        self.meta, self.boxes, self.wanted = state

    def __call__(self, index, part):
        for chunk_id, mask in part:
            if chunk_id not in self.wanted:
                continue
            for lo, hi in self.boxes:
                if mapper.chunk_fully_inside(self.meta, chunk_id, lo,
                                             hi):
                    continue
                virtual = Bitmask.from_bools(
                    mapper.range_mask_for_chunk(self.meta, chunk_id,
                                                lo, hi))
                mask = mask & virtual
            if mask.any():
                yield chunk_id, mask


class MaskRDD:
    """An RDD of ``(chunk_id, Bitmask)`` describing valid cells globally."""

    def __init__(self, rdd, meta: ArrayMetadata, context, boxes=()):
        self._base_rdd = rdd
        self._boxes = tuple(boxes)
        self._compiled = None
        self.meta = meta
        self.context = context

    @property
    def rdd(self):
        """The mask RDD with every pending box restriction lowered in."""
        if not self._boxes:
            return self._base_rdd
        if self._compiled is None:
            self._compiled = self._base_rdd.map_partitions_with_index(
                _RestrictMasks(self.meta, self._boxes),
                preserves_partitioning=True)
        return self._compiled

    @rdd.setter
    def rdd(self, value):
        self._base_rdd = value
        self._boxes = ()
        self._compiled = None

    @property
    def partitioner(self):
        """Partitioner of the lowered mask (restrictions preserve it)."""
        return self._base_rdd.partitioner

    # ------------------------------------------------------------------
    # creation
    # ------------------------------------------------------------------

    @classmethod
    def from_array_rdd(cls, array_rdd) -> "MaskRDD":
        """Initial mask: exactly the validity of one attribute."""
        masks = array_rdd.rdd.map_values(lambda chunk: chunk.flat_mask())
        return cls(masks, array_rdd.meta, array_rdd.context)

    @classmethod
    def full(cls, context, meta: ArrayMetadata,
             num_partitions=None) -> "MaskRDD":
        """All in-bounds cells valid."""
        records = []
        for chunk_id in range(meta.num_chunks):
            inside = mapper.in_bounds_mask_for_chunk(meta, chunk_id)
            records.append((chunk_id, Bitmask.from_bools(inside)))
        if num_partitions is None:
            num_partitions = context.default_parallelism
        from repro.engine import HashPartitioner

        partitioner = HashPartitioner(num_partitions)
        rdd = context.parallelize(records, num_partitions,
                                  partitioner=partitioner)
        rdd.partitioner = partitioner
        return cls(rdd, meta, context)

    def _with_rdd(self, rdd) -> "MaskRDD":
        return MaskRDD(rdd, self.meta, self.context)

    # ------------------------------------------------------------------
    # mask transformations (all lazy, all cheap)
    # ------------------------------------------------------------------

    def subarray(self, lo, hi) -> "MaskRDD":
        """AND with the virtual bitmask of a coordinate box (Fig. 4a).

        Recorded lazily: the box joins the pending list and lowers with
        the rest in one pass when the mask is read. The box itself is
        validated now (call-site error timing).
        """
        mapper.chunk_ids_in_range(self.meta, lo, hi)
        if plan_mod.fusion_enabled():
            return MaskRDD(self._base_rdd, self.meta, self.context,
                           boxes=self._boxes + ((tuple(lo), tuple(hi)),))
        return self._with_rdd(self.rdd.map_partitions_with_index(
            _RestrictMasks(self.meta, ((tuple(lo), tuple(hi)),)),
            preserves_partitioning=True))

    def filter_on(self, array_rdd, predicate) -> "MaskRDD":
        """AND with the cells of ``array_rdd`` passing ``predicate``.

        Fig. 4b: evaluate the filter once against the chosen attribute,
        flip the failing bits in the MaskRDD, and leave every other
        attribute untouched until evaluation time.
        """
        if array_rdd.meta.shape != self.meta.shape:
            raise ShapeMismatchError(
                "filter attribute has a different shape from the mask"
            )

        def to_mask(chunk):
            keep = np.asarray(predicate(chunk.values()), dtype=bool)
            kept_offsets = chunk.indices()[keep]
            return Bitmask.from_indices(chunk.num_cells, kept_offsets)

        passing = array_rdd.rdd.map_values(to_mask)
        joined = self.rdd.join(passing)
        combined = joined.map_values(lambda pair: pair[0] & pair[1]) \
                         .filter(lambda kv: kv[1].any())
        combined.partitioner = joined.partitioner
        return self._with_rdd(combined)

    def and_(self, other: "MaskRDD") -> "MaskRDD":
        """Cell-wise AND of two masks (and-join of Fig. 4c)."""
        self._check_compatible(other)
        joined = self.rdd.join(other.rdd)
        out = joined.map_values(lambda pair: pair[0] & pair[1]) \
                    .filter(lambda kv: kv[1].any())
        return self._with_rdd(out)

    def or_(self, other: "MaskRDD") -> "MaskRDD":
        """Cell-wise OR of two masks (or-join of Fig. 4c)."""
        self._check_compatible(other)
        joined = self.rdd.full_outer_join(other.rdd)

        def merge(pair):
            left, right = pair
            if left is None:
                return right
            if right is None:
                return left
            return left | right

        return self._with_rdd(joined.map_values(merge))

    def _check_compatible(self, other: "MaskRDD") -> None:
        if other.meta.shape != self.meta.shape \
                or other.meta.chunk_shape != self.meta.chunk_shape:
            raise ShapeMismatchError(
                "mask geometry mismatch: "
                f"{self.meta.describe()} vs {other.meta.describe()}"
            )

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------

    def apply_to(self, array_rdd):
        """Reconcile an attribute with this mask (the on-demand step).

        Joins attribute chunks with mask chunks and ANDs; attribute
        chunks with no surviving cell — or no mask entry at all — are
        dropped.

        With fusion enabled the reconciliation is recorded as a logical
        :class:`~repro.core.logical.MaskApplyOp`; at lowering the AND
        becomes a :class:`~repro.core.plan.MaskApplySource`, so it and
        any chunk-local operators applied to the result (a dataset's
        per-attribute restriction + filter chains) run as one fused
        pass per chunk — and the optimizer can push a later subarray
        below the join.
        """
        from repro.core.array_rdd import ArrayRDD
        from repro.core.logical import MaskApplyOp

        if plan_mod.fusion_enabled():
            node = MaskApplyOp(array_rdd._logical, self)
            return ArrayRDD(None, array_rdd.meta, array_rdd.context,
                            logical=node)
        joined = array_rdd.rdd.join(self.rdd)
        out = joined.map_values(
            lambda pair: pair[0].and_mask(pair[1])
        ).filter(lambda kv: kv[1].valid_count > 0)
        out.partitioner = joined.partitioner
        return ArrayRDD(out, array_rdd.meta, array_rdd.context)

    def count_valid(self) -> int:
        return self.rdd.map(lambda kv: kv[1].count()).fold(
            0, lambda a, b: a + b)

    def cache(self) -> "MaskRDD":
        self.rdd.cache()
        return self

    def explain(self) -> str:
        """Render the pending restrictions and the physical plan —
        without compiling anything into the mask's state."""
        from repro.engine import explain as explain_mod

        lines = ["Logical plan:",
                 f"  mask[shape={self.meta.shape} "
                 f"chunk={self.meta.chunk_shape}]"]
        for lo, hi in self._boxes:
            lines.append(f"    subarray[{lo}..{hi}]")
        if self._boxes:
            lowered = self._base_rdd.map_partitions_with_index(
                _RestrictMasks(self.meta, self._boxes),
                preserves_partitioning=True)
        else:
            lowered = self._base_rdd
        lines.append("Physical plan:")
        lines.append(explain_mod.explain(lowered))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"MaskRDD({self.meta.describe()})"
