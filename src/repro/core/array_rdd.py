"""ArrayRDD: a distributed array as an RDD of (chunk_id, Chunk) records.

The paper's central abstraction (Section III-B). An ArrayRDD inherits the
pair-RDD contract from the engine — fault tolerance, lazy evaluation,
partitioning — and adds the array operators of Section V: Subarray,
Filter, Join (via :meth:`combine`), the Aggregator framework, and the
matrix layer (package :mod:`repro.matrix`) builds on it.

Empty chunks are never materialized: any operation that leaves a chunk
with zero valid cells drops the record entirely, which is the paper's
memory-reduction policy.

Operators do not touch the engine eagerly: they *record*
:class:`~repro.core.logical.LogicalOp` nodes. Reading :attr:`rdd` —
which every action and wide operator does — is the plan barrier: the
recorded tree is rewritten by the cost-based optimizer
(:mod:`repro.core.optimizer`, unless disabled) and lowered back to
ChunkPlan kernel chains (compiled into single fused ``map_partitions``
passes) and engine joins/shuffles. ``cache()`` and ``materialize()``
are plan barriers too: they collapse the pending tree so the cached
data is the computed result. The eager per-chunk path is preserved
verbatim behind :func:`repro.core.plan.disable_fusion`; ``explain()``
renders the logical/optimized/physical plans without compiling
anything into the array's state.
"""

from __future__ import annotations

import numpy as np

from repro.bitmask import Bitmask
from repro.core import mapper
from repro.core import plan as plan_mod
from repro.core.aggregates import combine_kernel_for, resolve_aggregator
from repro.core.chunk import Chunk, ChunkMode
from repro.core.logical import (
    ElementwiseOp,
    FilterOp,
    MapOp,
    RawPlanOp,
    RepackOp,
    ScalarOp,
    ShuffleOp,
    SourceOp,
    SubarrayOp,
    lower_to_rdd,
    render_tree,
    valid_counts_from_records,
)
from repro.core.metadata import ArrayMetadata
from repro.engine import HashPartitioner
from repro.errors import ArrayError, ShapeMismatchError


# ----------------------------------------------------------------------
# module-level task callables
# ----------------------------------------------------------------------
# The eager (fusion-disabled) operator path used to build its per-chunk
# transforms as local closures. Local closures ship to worker processes
# by value — workable, but heavy — and the repack closure captured the
# ClusterContext, which cannot cross a process boundary at all. These
# wrappers are module-level, so tasks pickle them by reference; each
# exposes the wrapped user callable as ``func`` so the worker's
# context-binding walk recurses through it (see repro.engine.rdd).

class _MapChunkValues:
    """Eager ``map_values``: vectorized function over one chunk."""

    __slots__ = ("func",)

    def __init__(self, func):
        self.func = func

    def __call__(self, chunk):
        return chunk.map_values(self.func)


class _FilterChunk:
    """Eager ``filter``: vectorized predicate over one chunk."""

    __slots__ = ("func",)

    def __init__(self, predicate):
        self.func = predicate

    def __call__(self, chunk):
        return chunk.filter(self.func)


class _BoundScalarOp:
    """Eager scalar arithmetic: ``op(values, scalar)`` (or reflected)."""

    __slots__ = ("func", "scalar", "reflected")

    def __init__(self, op, scalar, reflected):
        self.func = op
        self.scalar = scalar
        self.reflected = reflected

    def __call__(self, values):
        if self.reflected:
            return self.func(self.scalar, values)
        return self.func(values, self.scalar)


class _RepackOne:
    """Eager ``repack``: re-choose one chunk's mode, counting changes.

    Records conversions through whichever engine context the task runs
    under: the driver's metrics in-process, the worker's metrics (merged
    back with the task reply) under ``backend="process"``. The metrics
    handle is dropped from the pickled state and re-attached by the
    worker's context-binding walk.
    """

    def __init__(self, metrics):
        self.metrics = metrics

    def __getstate__(self) -> dict:
        return {"metrics": None}

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def bind_engine_context(self, context) -> None:
        self.metrics = getattr(context, "metrics", None)

    def __call__(self, chunk):
        new, changed = chunk.repack()
        if changed and self.metrics is not None:
            self.metrics.record_repack(1)
        return new


class _RestrictToBox:
    """Eager ``subarray``: chunk-ID pruning + bitmask AND per partition."""

    __slots__ = ("meta", "lo", "hi", "wanted")

    def __init__(self, meta, lo, hi):
        self.meta = meta
        self.lo = lo
        self.hi = hi
        self.wanted = frozenset(mapper.chunk_ids_in_range(meta, lo, hi))

    def __call__(self, index, part):
        for chunk_id, chunk in part:
            if chunk_id not in self.wanted:
                continue
            if mapper.chunk_fully_inside(self.meta, chunk_id, self.lo,
                                         self.hi):
                yield chunk_id, chunk
                continue
            virtual = Bitmask.from_bools(
                mapper.range_mask_for_chunk(self.meta, chunk_id,
                                            self.lo, self.hi)
            )
            restricted = chunk.and_mask(virtual)
            if restricted.valid_count > 0:
                yield chunk_id, restricted


class _MergeAnd:
    """Eager and-join merge of one joined chunk pair."""

    __slots__ = ("func",)

    def __init__(self, op):
        self.func = op

    def __call__(self, pair):
        left, right = pair
        return left.elementwise(right, self.func, how="and")


class _MergeOr:
    """Eager or-join merge; ``fill`` stands in for a missing side."""

    __slots__ = ("func", "cells", "dtype", "fill")

    def __init__(self, op, cells, dtype, fill):
        self.func = op
        self.cells = cells
        self.dtype = dtype
        self.fill = fill

    def __call__(self, pair):
        left, right = pair
        if left is None:
            left = Chunk.empty(self.cells, dtype=self.dtype)
        if right is None:
            right = Chunk.empty(self.cells, dtype=self.dtype)
        return left.elementwise(right, self.func, how="or",
                                fill=self.fill)


class _ChunkAggregate:
    """Map side of ``aggregate``: one partial state per partition."""

    __slots__ = ("agg",)

    def __init__(self, agg):
        self.agg = agg

    def __call__(self, part):
        agg = self.agg
        state = agg.initialize()
        for _chunk_id, chunk in part:
            state = agg.accumulate(state, chunk.values())
        return [state]


class _GroupPartials:
    """Map side of ``aggregate_by``: per-group partial states per chunk."""

    __slots__ = ("meta", "axes", "agg", "axis_sizes", "axis_starts",
                 "linear_keys")

    def __init__(self, meta, axes, agg, axis_sizes, axis_starts,
                 linear_keys):
        self.meta = meta
        self.axes = axes
        self.agg = agg
        self.axis_sizes = axis_sizes
        self.axis_starts = axis_starts
        self.linear_keys = linear_keys

    def __call__(self, part):
        meta = self.meta
        agg = self.agg
        axes = self.axes
        for chunk_id, chunk in part:
            offsets = chunk.indices()
            if offsets.size == 0:
                continue
            coords = mapper.coords_for_offsets_array(meta, chunk_id,
                                                     offsets)
            labels = coords[:, list(axes)]
            values = chunk.values()
            order = np.lexsort(labels.T[::-1])
            labels = labels[order]
            values = values[order]
            if self.linear_keys:
                encoded = np.zeros(labels.shape[0], dtype=np.int64)
                for j, (size, base) in enumerate(
                        zip(self.axis_sizes, self.axis_starts)):
                    encoded = encoded * size + (labels[:, j] - base)
            boundaries = np.ones(labels.shape[0], dtype=bool)
            boundaries[1:] = (labels[1:] != labels[:-1]).any(axis=1)
            group_starts = np.nonzero(boundaries)[0]
            group_ends = np.append(group_starts[1:], labels.shape[0])
            for start, end in zip(group_starts, group_ends):
                state = agg.accumulate(agg.initialize(),
                                       values[start:end])
                if self.linear_keys:
                    yield int(encoded[start]), state
                else:
                    yield tuple(labels[start]), state


class _DecodeGroupKey:
    """Reduce side of ``aggregate_by``: mixed-radix key → coordinates."""

    __slots__ = ("axis_sizes", "axis_starts")

    def __init__(self, axis_sizes, axis_starts):
        self.axis_sizes = axis_sizes
        self.axis_starts = axis_starts

    def __call__(self, record):
        key, value = record
        sizes = self.axis_sizes
        coords = [0] * len(sizes)
        for j in range(len(sizes) - 1, -1, -1):
            key, remainder = divmod(key, sizes[j])
            coords[j] = remainder + self.axis_starts[j]
        return tuple(coords), value


def _has_valid_cells(kv) -> bool:
    return kv[1].valid_count > 0


def _chunk_valid_count(kv) -> int:
    return kv[1].valid_count


def _partition_valid_count(records) -> list:
    """One total of valid cells per partition (for nnz_by_partition)."""
    return [sum(chunk.valid_count for _cid, chunk in records)]


def _chunk_nbytes(kv) -> int:
    return kv[1].nbytes


class ArrayRDD:
    """A lazily-evaluated, chunked, distributed array."""

    def __init__(self, rdd, meta: ArrayMetadata, context, plan=None,
                 logical=None):
        if logical is not None:
            self._logical = logical
        else:
            source = SourceOp(rdd, meta)
            if plan is not None and not plan.is_identity:
                # compat: an explicit pre-built ChunkPlan rides along as
                # an opaque node the optimizer will not reorder
                self._logical = RawPlanOp(source, plan)
            else:
                self._logical = source
        self._compiled = None
        self.meta = meta
        self.context = context

    @property
    def rdd(self):
        """The underlying chunk RDD, with the recorded plan lowered in.

        Accessing this is the plan barrier: actions, wide operators and
        external consumers all read it. The recorded logical tree is
        rewritten by the cost-based optimizer (when enabled), then
        lowered — chunk-local chains compile to one fused
        ``map_partitions`` pass each — and the result is memoized, so
        repeat actions reuse the same compiled RDD and its cache
        entries.
        """
        node = self._logical
        if isinstance(node, SourceOp):
            return node.rdd
        if self._compiled is None:
            from repro.core import optimizer as optimizer_mod

            metrics = self.context.metrics
            node, fired, pruned = optimizer_mod.maybe_optimize(
                node, self.context)
            if fired:
                metrics.record_optimizer(len(fired), pruned)
            self._compiled = lower_to_rdd(node, self.context, metrics)
        return self._compiled

    @rdd.setter
    def rdd(self, value):
        self._logical = SourceOp(value, self.meta)
        self._compiled = None

    # ------------------------------------------------------------------
    # creation
    # ------------------------------------------------------------------

    @classmethod
    def from_numpy(cls, context, array, chunk_shape, valid=None,
                   num_partitions=None, mode: ChunkMode = None,
                   starts=None, dim_names=None,
                   attribute="value") -> "ArrayRDD":
        """Chunk a driver-side numpy array into an ArrayRDD.

        ``valid`` marks which cells carry real data (None = all). Cells
        with NaN values are additionally treated as null, matching the
        paper's NaN discussion in Section II-B.
        """
        array = np.asarray(array)
        meta = ArrayMetadata(array.shape, chunk_shape, starts=starts,
                             dim_names=dim_names, dtype=array.dtype,
                             attribute=attribute)
        if valid is None:
            valid = np.ones(array.shape, dtype=bool)
        else:
            valid = np.asarray(valid, dtype=bool)
            if valid.shape != array.shape:
                raise ShapeMismatchError(
                    f"valid shape {valid.shape} != array shape "
                    f"{array.shape}"
                )
        if np.issubdtype(array.dtype, np.floating):
            valid = valid & ~np.isnan(array)
        records = []
        for chunk_id in range(meta.num_chunks):
            chunk = _chunk_from_region(meta, chunk_id, array, valid, mode)
            if chunk is not None:
                records.append((chunk_id, chunk))
        return cls._distribute(context, records, meta, num_partitions)

    @classmethod
    def _distribute(cls, context, records, meta,
                    num_partitions=None) -> "ArrayRDD":
        if num_partitions is None:
            num_partitions = context.default_parallelism
        partitioner = HashPartitioner(num_partitions)
        rdd = context.parallelize(records, num_partitions,
                                  partitioner=partitioner)
        rdd.partitioner = partitioner
        out = cls(rdd, meta, context)
        # driver-side creation knows every chunk's valid count for free;
        # the optimizer's density-aware cost estimates feed on them
        out._logical = SourceOp(rdd, meta,
                                valid_counts_from_records(records))
        return out

    @classmethod
    def from_chunks(cls, context, chunk_records, meta,
                    num_partitions=None) -> "ArrayRDD":
        """Wrap explicit ``(chunk_id, Chunk)`` records."""
        records = [(cid, c) for cid, c in chunk_records
                   if c.valid_count > 0]
        return cls._distribute(context, records, meta, num_partitions)

    def _with_rdd(self, rdd, meta=None) -> "ArrayRDD":
        return ArrayRDD(rdd, meta or self.meta, self.context)

    def _with_logical(self, node) -> "ArrayRDD":
        """Record one more logical node (no RDD is built yet)."""
        return ArrayRDD(None, self.meta, self.context, logical=node)

    def _collapse(self):
        """Force the recorded plan into a concrete RDD (a plan barrier).

        After this, subsequent operators chain off the lowered RDD —
        required before ``cache()`` so the cached partitions hold the
        computed chunks, not the pre-plan input.
        """
        rdd = self.rdd
        if not isinstance(self._logical, SourceOp):
            self._logical = SourceOp(rdd, self.meta)
            self._compiled = None
        return rdd

    # ------------------------------------------------------------------
    # basic actions
    # ------------------------------------------------------------------

    def num_chunks_materialized(self) -> int:
        return self.rdd.count()

    def count_valid(self) -> int:
        from repro.core import optimizer as optimizer_mod

        # mask-only evaluation: when the recorded tree only moves,
        # restricts, or arithmetically transforms values, the count
        # comes straight off the source bitmasks
        fast = optimizer_mod.lower_count_valid(self._logical,
                                               self.context)
        if fast is not None:
            return fast
        return self.rdd.map(_chunk_valid_count).fold(
            0, lambda a, b: a + b
        )

    def memory_bytes(self) -> int:
        """Total in-memory footprint of all chunks (payloads + masks)."""
        return self.rdd.map(_chunk_nbytes).fold(
            0, lambda a, b: a + b
        )

    def get(self, coords):
        """Point query: value at global coordinates, or None if invalid."""
        coords = self.meta.check_coords(coords)
        chunk_id = mapper.chunk_id_for_coords(self.meta, coords)
        offset = mapper.local_offset(self.meta, coords)
        hits = self.rdd.lookup(chunk_id)
        if not hits:
            return None
        return hits[0].get(offset)

    def collect_dense(self, fill=np.nan):
        """Materialize as ``(values, valid)`` numpy arrays on the driver."""
        values = np.full(self.meta.shape, fill,
                         dtype=np.result_type(self.meta.dtype, type(fill))
                         if fill is not np.nan else np.float64)
        valid = np.zeros(self.meta.shape, dtype=bool)
        for chunk_id, chunk in self.rdd.collect():
            sel, local_shape = _chunk_selection(self.meta, chunk_id)
            dense = chunk.to_dense(fill).reshape(
                self.meta.chunk_shape, order="F")
            mask = chunk.valid_bools().reshape(
                self.meta.chunk_shape, order="F")
            clip = tuple(slice(0, n) for n in local_shape)
            values[sel] = dense[clip]
            valid[sel] = mask[clip]
        return values, valid

    def cache(self) -> "ArrayRDD":
        self._collapse().cache()
        return self

    def unpersist(self) -> "ArrayRDD":
        for rdd in _source_rdds(self._logical):
            rdd.unpersist()
        if self._compiled is not None:
            self._compiled.unpersist()
        return self

    def explain(self, optimized: bool = False) -> str:
        """Render the recorded plan without compiling it into the array.

        Shows the logical tree as written; with ``optimized=True`` also
        the rewritten tree, the rules that fired, and the estimated
        pruned-chunk count; then the physical stage plan of whichever
        tree would lower. Purely an inspection: nothing is memoized and
        no fusion/optimizer metrics are recorded.
        """
        from repro.core import optimizer as optimizer_mod
        from repro.engine import explain as explain_mod

        node = self._logical
        lines = ["Logical plan:", render_tree(node, 1)]
        if optimized:
            opt, fired, pruned = optimizer_mod.maybe_optimize(
                node, self.context)
            rules = ", ".join(fired) if fired else "none"
            lines.append(
                f"Optimized plan ({len(fired)} rules fired: {rules}; "
                f"~{pruned} chunks pruned):")
            lines.append(render_tree(opt, 1))
            node = opt
        lowered = lower_to_rdd(node, self.context, None)
        lines.append("Physical plan:")
        lines.append(explain_mod.explain(lowered))
        return "\n".join(lines)

    def materialize(self) -> "ArrayRDD":
        """Force computation now (cache + count)."""
        rdd = self._collapse()
        rdd.cache()
        rdd.count()
        return self

    # ------------------------------------------------------------------
    # operators (Section V)
    # ------------------------------------------------------------------

    def map_values(self, func) -> "ArrayRDD":
        """Apply a vectorized function to every valid value."""
        if plan_mod.fusion_enabled():
            return self._with_logical(MapOp(self._logical, func))
        return self._with_rdd(
            self.rdd.map_values(_MapChunkValues(func))
        )

    def filter(self, predicate) -> "ArrayRDD":
        """Invalidate cells whose value fails ``predicate(values)``.

        ``predicate`` is vectorized: it receives a value vector and
        returns booleans. Chunks left with no valid cell are dropped.
        """
        if plan_mod.fusion_enabled():
            return self._with_logical(FilterOp(self._logical, predicate))
        filtered = self.rdd.map_values(
            _FilterChunk(predicate)
        ).filter(_has_valid_cells)
        filtered.partitioner = self.rdd.partitioner
        return self._with_rdd(filtered)

    def repack(self) -> "ArrayRDD":
        """Re-apply the density mode policy to every chunk.

        Filters and masks shrink validity without re-choosing the
        storage mode; repacking re-runs :func:`~repro.core.chunk.choose_mode`
        on each chunk's current density, so a DENSE chunk that a filter
        left 5% valid re-encodes SPARSE (or SUPER_SPARSE). Fused, the
        kernel merely retargets the final encode — zero extra passes;
        ``chunks_repacked`` in the metrics counts the conversions.
        """
        if plan_mod.fusion_enabled():
            return self._with_logical(RepackOp(self._logical))
        return self._with_rdd(
            self.rdd.map_values(_RepackOne(self.context.metrics))
        )

    def subarray(self, lo, hi) -> "ArrayRDD":
        """Keep cells inside the closed coordinate box ``[lo, hi]``.

        Implements Fig. 4a: select intersecting chunks by ID (a metadata
        operation — no scan), then AND each chunk's bitmask with the
        virtual bitmask of the range.
        """
        if plan_mod.fusion_enabled():
            return self._with_logical(SubarrayOp(self._logical, lo, hi))
        out = self.rdd.map_partitions_with_index(
            _RestrictToBox(self.meta, lo, hi), preserves_partitioning=True
        )
        return self._with_rdd(out)

    def partition_by(self, partitioner) -> "ArrayRDD":
        """Redistribute chunk records under an explicit partitioner.

        Recorded as a logical shuffle, so a later ``subarray`` or
        ``filter`` can be pushed below it by the optimizer — pruned
        chunks never cross the network. A no-op at execution time when
        the records already carry an equal partitioner.
        """
        if plan_mod.fusion_enabled():
            return self._with_logical(
                ShuffleOp(self._logical, partitioner))
        return self._with_rdd(self.rdd.partition_by(partitioner))

    def repartition(self, num_partitions: int) -> "ArrayRDD":
        """Hash-redistribute into ``num_partitions`` partitions."""
        return self.partition_by(HashPartitioner(int(num_partitions)))

    def partition_by_nnz(self, num_partitions=None) -> "ArrayRDD":
        """Redistribute so per-partition *valid cells* balance.

        Packs chunk IDs into partitions by their valid counts (greedy
        LPT via :class:`~repro.engine.partitioner
        .NnzBalancedPartitioner`) using the plan's exact per-chunk
        stats. Falls back to plain hash repartitioning when the
        recorded plan cannot supply them (e.g. an estimate-only op
        intervenes). The planned loads land in the context's
        ``nnz_stats``, so ``repro top`` and ``/metrics`` show the
        resulting ``nnz.imbalance`` immediately.
        """
        from repro.core.logical import estimate as estimate_node
        from repro.engine.partitioner import NnzBalancedPartitioner

        if num_partitions is None:
            num_partitions = self.context.default_parallelism
        num_partitions = int(num_partitions)
        est = estimate_node(self._logical)
        if not est.per_chunk:
            return self.repartition(num_partitions)
        weights = {int(cid): float(count)
                   for cid, count in est.per_chunk.items()}
        partitioner = NnzBalancedPartitioner.from_weights(
            weights, num_partitions)
        stats = getattr(self.context, "nnz_stats", None)
        if stats is not None:
            stats.record("partition_by_nnz",
                         partitioner.partition_loads(weights))
        return self.partition_by(partitioner)

    def nnz_by_partition(self) -> np.ndarray:
        """Measured valid cells per partition (an action).

        The ground truth the planned loads of :meth:`partition_by_nnz`
        approximate; also records the measurement into the context's
        ``nnz_stats`` gauge source.
        """
        rdd = self.rdd
        counts = rdd.map_partitions(_partition_valid_count).collect()
        loads = np.asarray(counts, dtype=float)
        stats = getattr(self.context, "nnz_stats", None)
        if stats is not None and loads.size:
            stats.record("measured", loads)
        return loads

    def combine(self, other: "ArrayRDD", op, how: str = "and",
                fill=0) -> "ArrayRDD":
        """Cell-wise combination of two co-dimensional arrays.

        ``how="and"`` — and-join semantics: a result cell is valid only
        when both inputs are (chunks missing on either side vanish).
        ``how="or"`` — or-join: valid when either input is; the missing
        operand contributes ``fill``.

        When both ArrayRDDs share a partitioner the underlying join is
        narrow — no shuffle.
        """
        if other.meta.shape != self.meta.shape:
            raise ShapeMismatchError(
                f"shape mismatch: {self.meta.shape} vs {other.meta.shape}"
            )
        if other.meta.chunk_shape != self.meta.chunk_shape:
            raise ShapeMismatchError(
                f"chunk shape mismatch: {self.meta.chunk_shape} vs "
                f"{other.meta.chunk_shape}"
            )
        if how not in ("and", "or"):
            raise ArrayError(f"unknown join mode {how!r}; use 'and'/'or'")
        cells = self.meta.cells_per_chunk
        dtype = self.meta.dtype
        if plan_mod.fusion_enabled():
            # recorded as a logical join; at lowering the merge becomes
            # a plan *source*, so the drop-empty step and any trailing
            # chunk-local operators fuse into one pass
            return self._with_logical(
                ElementwiseOp(self._logical, other._logical, op, how,
                              fill, self.meta))
        # wide operator: reading .rdd on both sides is the plan barrier
        if how == "and":
            joined = self.rdd.join(other.rdd)
        else:
            joined = self.rdd.full_outer_join(other.rdd)
        if how == "and":
            merge = _MergeAnd(op)
        else:
            merge = _MergeOr(op, cells, dtype, fill)
        out = joined.map_values(merge).filter(_has_valid_cells)
        # the engine's filter preserves partitioning, but keep the
        # contract explicit (matches the filter() operator above) so
        # downstream joins stay narrow
        out.partitioner = joined.partitioner
        return self._with_rdd(out)

    def aggregate(self, aggregator="sum"):
        """Collapse the whole array to one value with an Aggregator."""
        agg = resolve_aggregator(aggregator)
        states = self.rdd.map_partitions(_ChunkAggregate(agg)).collect()
        merged = agg.initialize()
        for state in states:
            merged = agg.merge(merged, state)
        return agg.evaluate(merged)

    def aggregate_by(self, dims, aggregator="sum",
                     group_chunk_shape=None) -> "ArrayRDD":
        """Group-by-dimensions aggregation producing a new, smaller array.

        ``dims`` are the dimension names (or indices) to *keep*; all
        other axes are collapsed. Each chunk computes partial states per
        group (map side), a shuffle merges them, and the result becomes
        a new ArrayRDD over the reduced schema — the "new schema" of
        Section V-B.
        """
        axes = tuple(
            self.meta.dim_index(d) if isinstance(d, str) else int(d)
            for d in dims
        )
        if len(set(axes)) != len(axes) or not axes:
            raise ArrayError(f"bad group dimensions: {dims}")
        agg = resolve_aggregator(aggregator)
        meta = self.meta
        axis_sizes = tuple(int(meta.shape[a]) for a in axes)
        axis_starts = tuple(int(meta.starts[a]) for a in axes)
        # group labels travel as one mixed-radix int64 key so the
        # columnar shuffle can vectorize partitioning and the combine;
        # absurdly large virtual shapes keep the tuple keys
        group_space = 1
        for size in axis_sizes:
            group_space *= size
        linear_keys = group_space < (1 << 62)

        partials = _GroupPartials(meta, axes, agg, axis_sizes,
                                  axis_starts, linear_keys)
        merged = self.rdd.map_partitions(partials) \
                         .reduce_by_key(agg.merge,
                                        combine_kernel=combine_kernel_for(agg)) \
                         .map_values(agg.evaluate)
        if linear_keys:
            merged = merged.map(_DecodeGroupKey(axis_sizes, axis_starts))

        new_shape = tuple(self.meta.shape[a] for a in axes)
        new_starts = tuple(self.meta.starts[a] for a in axes)
        new_names = tuple(self.meta.dim_names[a] for a in axes)
        if group_chunk_shape is None:
            group_chunk_shape = tuple(
                min(self.meta.chunk_shape[a], new_shape[i])
                for i, a in enumerate(axes)
            )
        new_meta = ArrayMetadata(new_shape, group_chunk_shape,
                                 starts=new_starts, dim_names=new_names,
                                 dtype=np.float64,
                                 attribute=f"{agg.name}_{meta.attribute}")
        from repro.core.ingest import array_rdd_from_cell_rdd

        return array_rdd_from_cell_rdd(self.context, merged, new_meta)

    # convenience scalar reductions -------------------------------------

    def sum(self):
        return self.aggregate("sum")

    def min(self):
        return self.aggregate("min")

    def max(self):
        return self.aggregate("max")

    def avg(self):
        return self.aggregate("avg")

    def head(self, n: int = 10) -> list:
        """First ``n`` valid cells as ``(coords, value)``, by chunk order.

        Stops computing partitions as soon as enough cells are found.
        """
        meta = self.meta
        taken = []
        for index in range(self.rdd.num_partitions):
            if len(taken) >= n:
                break
            for chunk_id, chunk in self.context.run_partition(self.rdd,
                                                              index):
                offsets = chunk.indices()[:n - len(taken)]
                coords = mapper.coords_for_offsets_array(meta, chunk_id,
                                                         offsets)
                for cell_coords, value in zip(
                        coords, chunk.values()[:offsets.size]):
                    taken.append((tuple(int(c) for c in cell_coords),
                                  value))
                if len(taken) >= n:
                    break
        return taken[:n]

    def show(self, n: int = 10) -> None:
        """Print a small sample of valid cells (Spark's ``show``)."""
        cells = self.head(n)
        header = " | ".join(f"{name:>8}" for name in self.meta.dim_names)
        print(f"{header} | {self.meta.attribute}")
        print("-" * (len(header) + 3 + len(self.meta.attribute)))
        for coords, value in cells:
            coord_text = " | ".join(f"{c:>8}" for c in coords)
            print(f"{coord_text} | {value:.6g}")
        total = self.count_valid()
        if total > n:
            print(f"... {total - len(cells):,} more valid cells")

    # ------------------------------------------------------------------
    # arithmetic operators
    # ------------------------------------------------------------------
    # Paper semantics (Section II-B): arithmetic with a null value is
    # null — so binary operators use and-join validity. Scalars map
    # over valid cells only. Use :meth:`combine` with ``how="or"`` for
    # union semantics explicitly.

    def _scalar_op(self, op, scalar, reflected, name) -> "ArrayRDD":
        if plan_mod.fusion_enabled():
            return self._with_logical(
                ScalarOp(self._logical, op, scalar, reflected=reflected,
                         opname=name))
        return self.map_values(_BoundScalarOp(op, scalar, reflected))

    def _binary_op(self, other, op, name):
        if isinstance(other, ArrayRDD):
            return self.combine(other, op, how="and")
        if np.isscalar(other):
            return self._scalar_op(op, other, False, name)
        return NotImplemented

    def _reflected_op(self, other, op, name):
        if np.isscalar(other):
            return self._scalar_op(op, other, True, name)
        return NotImplemented

    def __add__(self, other):
        return self._binary_op(other, np.add, "add")

    def __radd__(self, other):
        return self._reflected_op(other, np.add, "add")

    def __sub__(self, other):
        return self._binary_op(other, np.subtract, "sub")

    def __rsub__(self, other):
        return self._reflected_op(other, np.subtract, "sub")

    def __mul__(self, other):
        return self._binary_op(other, np.multiply, "mul")

    def __rmul__(self, other):
        return self._reflected_op(other, np.multiply, "mul")

    def __truediv__(self, other):
        return self._binary_op(other, np.divide, "div")

    def __rtruediv__(self, other):
        return self._reflected_op(other, np.divide, "div")

    def __pow__(self, other):
        return self._binary_op(other, np.power, "pow")

    def __rpow__(self, other):
        return self._reflected_op(other, np.power, "pow")

    def __neg__(self):
        return self.map_values(np.negative)

    def __abs__(self):
        return self.map_values(np.abs)

    def __repr__(self) -> str:
        return f"ArrayRDD({self.meta.describe()})"


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------

def _source_rdds(node) -> list:
    """Every concrete source RDD feeding a logical tree."""
    if isinstance(node, SourceOp):
        return [node.rdd]
    out = []
    for child in node.children:
        out.extend(_source_rdds(child))
    return out


def _chunk_selection(meta: ArrayMetadata, chunk_id: int):
    """Global slices of a chunk's in-bounds region + its clipped shape."""
    origin = mapper.chunk_origin(meta, chunk_id)
    sel = []
    local_shape = []
    for axis in range(meta.ndim):
        lo = origin[axis] - meta.starts[axis]
        hi = min(lo + meta.chunk_shape[axis], meta.shape[axis])
        sel.append(slice(lo, hi))
        local_shape.append(hi - lo)
    return tuple(sel), tuple(local_shape)


def _chunk_from_region(meta: ArrayMetadata, chunk_id: int, array, valid,
                       mode):
    """Cut one chunk out of a dense array; None when it has no valid cell."""
    sel, local_shape = _chunk_selection(meta, chunk_id)
    region_valid = valid[sel]
    if not region_valid.any():
        return None
    padded_values = np.zeros(meta.chunk_shape, dtype=array.dtype)
    padded_valid = np.zeros(meta.chunk_shape, dtype=bool)
    clip = tuple(slice(0, n) for n in local_shape)
    padded_values[clip] = array[sel]
    padded_valid[clip] = region_valid
    return Chunk.from_dense(padded_values.ravel(order="F"),
                            padded_valid.ravel(order="F"), mode=mode)
