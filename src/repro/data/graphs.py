"""Scaled stand-ins for the paper's graph datasets (Table IIb).

The PageRank comparison (Fig. 11) is driven by two graph properties:
the edge/vertex ratio (how much message traffic each rank-vector byte
buys) and the degree skew (power-law hubs). Each spec scales the SNAP
graph down while preserving the edge/vertex ratio exactly and generating
Zipf-skewed degrees.

Paper numbers:   Enron 367K/36K · Epinions 508K/75K ·
LiveJournal 69M/4.9M · Twitter 1,468M/61.6M.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class GraphSpec:
    name: str
    paper_vertices: int
    paper_edges: int
    scale: int                 # vertex downscale factor
    skew: float = 1.2          # Zipf exponent for hub formation
    #: chunk mode the paper applies to this dataset (Section VII-C)
    spangle_mode: str = "sparse"

    @property
    def vertices(self) -> int:
        return max(64, self.paper_vertices // self.scale)

    @property
    def edges(self) -> int:
        # preserve the edge/vertex ratio of the original graph
        return int(round(self.vertices
                         * self.paper_edges / self.paper_vertices))

    @property
    def edge_vertex_ratio(self) -> float:
        return self.paper_edges / self.paper_vertices


GRAPH_SPECS = {
    "enron": GraphSpec("enron", 36_000, 367_000, scale=16),
    "epinions": GraphSpec("epinions", 75_000, 508_000, scale=24),
    "livejournal": GraphSpec("livejournal", 4_900_000, 69_000_000,
                             scale=1024, spangle_mode="super_sparse"),
    "twitter": GraphSpec("twitter", 61_600_000, 1_468_000_000,
                         scale=8192),
}


def scaled_graph(name: str, seed: int = 0) -> tuple:
    """Generate ``(edges, num_vertices)`` for a named spec.

    Edges are directed and deduplicated; sources are drawn uniformly
    while destinations follow a Zipf-like law, producing the in-degree
    hubs (celebrity accounts, popular pages) that real graphs have.
    """
    spec = GRAPH_SPECS[name]
    rng = np.random.default_rng(seed)
    n = spec.vertices
    target = spec.edges
    weights = 1.0 / np.arange(1, n + 1) ** spec.skew
    weights /= weights.sum()
    edges = set()
    # oversample to survive deduplication
    while len(edges) < target:
        need = int((target - len(edges)) * 1.3) + 16
        src = rng.integers(0, n, need)
        dst = rng.choice(n, size=need, p=weights)
        keep = src != dst
        for s, d in zip(src[keep].tolist(), dst[keep].tolist()):
            edges.add((s, d))
            if len(edges) >= target:
                break
    out = np.array(sorted(edges), dtype=np.int64)
    return out, n
