"""Scaled stand-ins for the paper's logistic-regression datasets (Table IIc).

URL Reputation, KDD Cup 2010 and KDD Cup 2012 are large sparse binary
classification problems (rows ≫ features ≫ nnz/row). Each spec scales
rows and features down by the same factor and plants a *concentrated*
linear separator: a small pool of informative features (URL tokens,
problem-step skills...) carries the signal, the rest is sparse noise —
the structure that lets real URL/KDD models reach high accuracy from
relatively few examples per feature. Label noise per dataset is tuned
so the achievable test accuracy lands near Table III's numbers
(94.3 %, 86.6 %, 95.6 %) with the same ordering.

Paper numbers: URL 1.9M train / 479K test / 3.2M features ·
KDD10 8.4M / 510K / 20M · KDD12 120M / 30M / 55M.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LRDatasetSpec:
    name: str
    paper_train_rows: int
    paper_test_rows: int
    paper_features: int
    scale: int
    paper_accuracy: float
    label_noise: float
    informative_features: int = 80
    informative_per_row: int = 8
    noise_per_row: int = 16

    @property
    def train_rows(self) -> int:
        return max(256, self.paper_train_rows // self.scale)

    @property
    def test_rows(self) -> int:
        return max(64, self.paper_test_rows // self.scale)

    @property
    def features(self) -> int:
        return max(64, self.paper_features // self.scale)

    @property
    def nnz_per_row(self) -> int:
        return self.informative_per_row + self.noise_per_row


LR_SPECS = {
    "url": LRDatasetSpec("url", 1_900_000, 479_000, 3_200_000,
                         scale=512, paper_accuracy=0.9426,
                         label_noise=0.012),
    "kddcup2010": LRDatasetSpec("kddcup2010", 8_400_000, 510_000,
                                20_000_000, scale=2048,
                                paper_accuracy=0.8662,
                                label_noise=0.10),
    "kddcup2012": LRDatasetSpec("kddcup2012", 120_000_000, 30_000_000,
                                55_000_000, scale=16_384,
                                paper_accuracy=0.9555,
                                label_noise=0.010),
}


def _generate_rows(rng, num_rows, spec, weights, informative_ids):
    ipr = spec.informative_per_row
    nnz = spec.nnz_per_row
    rows = np.repeat(np.arange(num_rows, dtype=np.int64), nnz)
    cols = np.empty((num_rows, nnz), dtype=np.int64)
    cols[:, :ipr] = rng.choice(informative_ids,
                               size=(num_rows, ipr))
    cols[:, ipr:] = rng.integers(0, spec.features,
                                 (num_rows, spec.noise_per_row))
    cols = cols.ravel()
    values = rng.random(rows.size) + 0.1
    scores = np.bincount(rows, weights=values * weights[cols],
                         minlength=num_rows)
    labels = (scores > 0).astype(np.float64)
    flips = rng.random(num_rows) < spec.label_noise
    labels[flips] = 1.0 - labels[flips]
    return rows, cols, values, labels


def scaled_lr_dataset(name: str, seed: int = 0) -> dict:
    """Generate train/test splits for a named spec.

    Returns a dict with COO arrays and labels for both splits plus the
    spec, ready for :meth:`DistributedSamples.from_coo` and the MLlib
    baseline's ingest. Train and test share the planted separator.
    """
    spec = LR_SPECS[name]
    rng = np.random.default_rng(seed)
    informative_ids = rng.choice(spec.features,
                                 spec.informative_features,
                                 replace=False)
    weights = np.zeros(spec.features)
    weights[informative_ids] = rng.normal(
        scale=3.0, size=spec.informative_features)
    train = _generate_rows(np.random.default_rng(seed + 10),
                           spec.train_rows, spec, weights,
                           informative_ids)
    test = _generate_rows(np.random.default_rng(seed + 11),
                          spec.test_rows, spec, weights,
                          informative_ids)
    return {
        "spec": spec,
        "train": {"rows": train[0], "cols": train[1],
                  "values": train[2], "labels": train[3]},
        "test": {"rows": test[0], "cols": test[1],
                 "values": test[2], "labels": test[3]},
    }
