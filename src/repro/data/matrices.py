"""Scaled stand-ins for the paper's matrix datasets (Table IIa).

Fig. 10's story is density-driven: the dense-ish Mouse matrix breaks
COO's contraction join, while the hyper-sparse Hardesty/Mawi matrices
break systems that store or transpose densely. Each spec scales the
matrix *sides* down by ``scale`` while keeping the paper's density for
the denser matrices and the nonzeros-per-row signature for the
hyper-sparse ones (keeping density there would leave a near-empty
matrix and erase the experiment).

Feasibility budgets in the benchmarks scale alongside: record-count
budgets by ``1/scale`` and dense-structure budgets by ``1/scale²``, so
"who fails" is preserved, not simulated.

Paper numbers: Covtype 581K×54 @ 0.218 · Mouse 45K×45K @ 0.014 ·
Hardesty 8M×8M @ 6.4e-7 · Mawi 129M×129M @ 9.3e-9.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class MatrixSpec:
    name: str
    paper_shape: tuple
    paper_density: float
    scale: int
    #: "density" — keep paper density; "per_row" — keep nnz per row
    preserve: str = "density"

    @property
    def shape(self) -> tuple:
        return (max(32, self.paper_shape[0] // self.scale),
                max(32, self.paper_shape[1] // max(
                    self.scale if self.paper_shape[1] > 1024 else 1, 1)))

    @property
    def paper_nnz_per_row(self) -> float:
        return self.paper_density * self.paper_shape[1]

    @property
    def nnz(self) -> int:
        rows, cols = self.shape
        if self.preserve == "density":
            return max(1, int(rows * cols * self.paper_density))
        return max(1, int(rows * self.paper_nnz_per_row))

    @property
    def density(self) -> float:
        rows, cols = self.shape
        return self.nnz / (rows * cols)


MATRIX_SPECS = {
    "covtype": MatrixSpec("covtype", (581_000, 54), 0.218, scale=64),
    "mouse": MatrixSpec("mouse", (45_000, 45_000), 0.014, scale=16),
    "hardesty": MatrixSpec("hardesty", (8_000_000, 8_000_000), 6.4e-7,
                           scale=1024, preserve="per_row"),
    "mawi": MatrixSpec("mawi", (129_000_000, 129_000_000), 9.3e-9,
                       scale=8192, preserve="per_row"),
}


def scaled_matrix(name: str, seed: int = 0) -> tuple:
    """Generate ``(rows, cols, values, shape)`` COO arrays for a spec.

    Entries are uniform random positions with values in (0, 1]; the
    hyper-sparse specs spread a few nonzeros per row, like the network
    traces they stand in for.
    """
    spec = MATRIX_SPECS[name]
    rng = np.random.default_rng(seed)
    rows_n, cols_n = spec.shape
    target = spec.nnz
    flat = rng.choice(rows_n * cols_n, size=min(
        int(target * 1.2) + 16, rows_n * cols_n), replace=False)
    flat = flat[:target]
    rows = (flat // cols_n).astype(np.int64)
    cols = (flat % cols_n).astype(np.int64)
    values = rng.random(rows.size) + 1e-9  # strictly nonzero
    return rows, cols, values, spec.shape
