"""Synthetic dataset generators standing in for the paper's datasets.

The paper's data (SDSS imagery, SeaWiFS chlorophyll, SuiteSparse
matrices, SNAP graphs, KDD Cup logs) is not available offline, so each
generator reproduces the *statistical signature* that drives the
corresponding experiment — sparsity structure, density, skew, scale
ratios — at laptop-sized dimensions. Every spec records the paper's
original numbers next to the scaled ones.
"""

from repro.data.graphs import GRAPH_SPECS, GraphSpec, scaled_graph
from repro.data.lr_datasets import LR_SPECS, LRDatasetSpec, scaled_lr_dataset
from repro.data.matrices import MATRIX_SPECS, MatrixSpec, scaled_matrix
from repro.data.raster import chl_like, sdss_like

__all__ = [
    "GRAPH_SPECS",
    "GraphSpec",
    "LR_SPECS",
    "LRDatasetSpec",
    "MATRIX_SPECS",
    "MatrixSpec",
    "chl_like",
    "scaled_graph",
    "scaled_lr_dataset",
    "scaled_matrix",
    "sdss_like",
]
