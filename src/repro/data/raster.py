"""Synthetic raster datasets: SDSS-like sky imagery and CHL-like ocean grids.

- :func:`sdss_like` — night-sky survey scenes: a handful of bright
  point-spread objects per image on an empty (null) background, in five
  bands *u g r i z*. Astronomy images are mostly empty (Section II-B);
  this is what exercises sparse chunks and the multi-attribute column
  store.
- :func:`chl_like` — a SeaWiFS-chlorophyll-like (lat, lon, time) grid:
  about two thirds of cells are invalid (land/coastline, spatially
  correlated), valid cells carry positive concentrations. This is the
  dataset behind the chunk-size and mode experiments (Figs. 8–9).
"""

from __future__ import annotations

import numpy as np


def _smooth(field: np.ndarray, passes: int = 2) -> np.ndarray:
    """Cheap separable box smoothing to create spatial correlation."""
    out = field.astype(np.float64)
    for _ in range(passes):
        for axis in range(out.ndim):
            out = (out + np.roll(out, 1, axis) + np.roll(out, -1, axis)) / 3.0
    return out


def sdss_like(num_images: int, shape=(256, 256), bands=("u", "g", "r",
                                                        "i", "z"),
              objects_per_image: int = 40, object_radius: int = 3,
              seed: int = 0) -> dict:
    """Synthetic multi-band sky scenes.

    Returns ``{band: [scene_0, scene_1, ...]}`` where each scene is a
    2-D float array with NaN for empty sky. All bands of one image share
    object positions (the same stars observed through five filters),
    with band-dependent brightness — exactly the structure that makes
    the shared MaskRDD useful.
    """
    rng = np.random.default_rng(seed)
    rows, cols = shape
    out = {band: [] for band in bands}
    yy, xx = np.mgrid[-object_radius:object_radius + 1,
                      -object_radius:object_radius + 1]
    kernel = np.exp(-(xx ** 2 + yy ** 2) / (object_radius * 0.7) ** 2)
    for _img in range(num_images):
        centers_r = rng.integers(object_radius, rows - object_radius,
                                 objects_per_image)
        centers_c = rng.integers(object_radius, cols - object_radius,
                                 objects_per_image)
        brightness = rng.lognormal(mean=2.0, sigma=0.8,
                                   size=objects_per_image)
        base = np.full(shape, np.nan)
        for r, c, b in zip(centers_r, centers_c, brightness):
            patch = b * kernel
            sel = (slice(r - object_radius, r + object_radius + 1),
                   slice(c - object_radius, c + object_radius + 1))
            existing = base[sel]
            base[sel] = np.where(np.isnan(existing), patch,
                                 existing + patch)
        for band_index, band in enumerate(bands):
            gain = 0.5 + 0.25 * band_index
            noise = rng.normal(0, 0.05, shape)
            scene = base * gain
            scene = np.where(np.isnan(base), np.nan, scene + noise)
            out[band].append(scene)
    return out


def sdss_stack(scenes: list) -> tuple:
    """Stack per-image 2-D scenes into the (x, y, image) cube Spangle
    ingests (chunk size 128×128×1 in the paper's Fig. 7 setup).

    Returns ``(values, valid)`` 3-D arrays.
    """
    cube = np.stack(scenes, axis=2)
    valid = ~np.isnan(cube)
    return np.where(valid, cube, 0.0), valid


def chl_like(shape=(360, 540, 4), ocean_fraction: float = 0.34,
             seed: int = 0) -> tuple:
    """Synthetic chlorophyll grid: ``(values, valid)`` 3-D arrays.

    ``shape`` is (latitude, longitude, time). Validity is a smooth
    spatial mask (the same continents at every time step, roughly
    ``ocean_fraction`` of cells valid) — matching SeaWiFS L3, where the
    land/no-retrieval mask dominates and is spatially correlated.
    """
    rng = np.random.default_rng(seed)
    lat, lon, steps = shape
    terrain = _smooth(rng.normal(size=(lat, lon)), passes=4)
    threshold = np.quantile(terrain, 1.0 - ocean_fraction)
    ocean = terrain > threshold
    values = np.empty(shape)
    valid = np.empty(shape, dtype=bool)
    for t in range(steps):
        concentration = np.exp(
            _smooth(rng.normal(size=(lat, lon)), passes=2))
        # a few percent of retrievals drop out per time step (clouds)
        clouds = rng.random((lat, lon)) < 0.05
        step_valid = ocean & ~clouds
        values[:, :, t] = np.where(step_valid, concentration, 0.0)
        valid[:, :, t] = step_valid
    return values, valid


def chl_slice(shape=(360, 540), ocean_fraction: float = 0.34,
              seed: int = 0) -> tuple:
    """A single 2-D chlorophyll slice (used by the chunk-size benches)."""
    values, valid = chl_like((shape[0], shape[1], 1), ocean_fraction,
                             seed)
    return values[:, :, 0], valid[:, :, 0]
