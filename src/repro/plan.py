"""Public alias for the chunk-kernel plan layer.

``repro.plan.disable_fusion()`` is the documented escape hatch for
running every operator through the eager per-chunk path; the
implementation lives in :mod:`repro.core.plan`.
"""

from repro.core.plan import (
    ChunkPlan,
    DropEmpty,
    FilterKernel,
    MapValuesKernel,
    MaskAndKernel,
    ScalarOpKernel,
    disable_fusion,
    enable_fusion,
    fusion_enabled,
)

__all__ = [
    "ChunkPlan",
    "DropEmpty",
    "FilterKernel",
    "MapValuesKernel",
    "MaskAndKernel",
    "ScalarOpKernel",
    "disable_fusion",
    "enable_fusion",
    "fusion_enabled",
]
