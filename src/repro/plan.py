"""Public alias for the chunk-kernel plan layer.

``repro.plan.disable_fusion()`` is the documented escape hatch for
running every operator through the eager per-chunk path; the
implementation lives in :mod:`repro.core.plan`.

This module re-exports the implementation's entire ``__all__`` — the
drift-guard test in ``tests/core/test_plan_alias.py`` asserts the two
stay identical.
"""

from repro.core.plan import (
    ChunkPlan,
    ChunkSource,
    DropEmpty,
    ElementwiseSource,
    FilterKernel,
    FoldedScalarKernel,
    MapValuesKernel,
    MaskAndKernel,
    MaskApplySource,
    RepackKernel,
    ScalarOpKernel,
    disable_fusion,
    enable_fusion,
    fusion_enabled,
)

__all__ = [
    "ChunkPlan",
    "ChunkSource",
    "DropEmpty",
    "ElementwiseSource",
    "FilterKernel",
    "FoldedScalarKernel",
    "MapValuesKernel",
    "MaskAndKernel",
    "MaskApplySource",
    "RepackKernel",
    "ScalarOpKernel",
    "disable_fusion",
    "enable_fusion",
    "fusion_enabled",
]
