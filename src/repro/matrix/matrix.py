"""SpangleMatrix: a two-dimensional ArrayRDD with block semantics.

A matrix is an ArrayRDD whose chunks are rectangular blocks. Zero is
treated as invalid (Section IV-A), so the bitmask *is* the sparsity
structure: matrix kernels skip work wherever bits are unset, and the
memory accounting below is what Fig. 10's feasibility story rides on.

Row index is dimension 0 (fastest in the chunk-ID numbering), column is
dimension 1; a block's chunk ID is ``row_block + col_block * grid_rows``.
"""

from __future__ import annotations

import numpy as np

from repro.core import mapper
from repro.core.array_rdd import ArrayRDD
from repro.core.chunk import Chunk, ChunkMode
from repro.core.metadata import ArrayMetadata
from repro.engine import HashPartitioner
from repro.errors import ArrayError, ShapeMismatchError
from repro.matrix.offsets import encode_static
from repro.matrix.vector import SpangleVector


class SpangleMatrix:
    """A distributed matrix over (chunk_id, block) records."""

    def __init__(self, array: ArrayRDD):
        if array.meta.ndim != 2:
            raise ShapeMismatchError(
                f"a matrix must be 2-D, got {array.meta.ndim}-D"
            )
        self.array = array

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_numpy(cls, context, dense, block_shape,
                   sparse_zeros: bool = True, num_partitions=None,
                   mode: ChunkMode = None) -> "SpangleMatrix":
        """Chunk a dense 2-D array; zeros become invalid by default."""
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise ShapeMismatchError("from_numpy expects a 2-D array")
        valid = (dense != 0) if sparse_zeros else None
        return cls(ArrayRDD.from_numpy(
            context, dense, block_shape, valid=valid,
            num_partitions=num_partitions, mode=mode,
            dim_names=("row", "col")))

    @classmethod
    def from_coo(cls, context, rows, cols, values, shape, block_shape,
                 num_partitions=None) -> "SpangleMatrix":
        """Build from coordinate lists (vectorized — no Python loop/cell)."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if not rows.size == cols.size == values.size:
            raise ShapeMismatchError("rows/cols/values length mismatch")
        meta = ArrayMetadata(shape, block_shape, dim_names=("row", "col"))
        coords = np.stack([rows, cols], axis=1)
        chunk_ids = mapper.chunk_ids_for_coords_array(meta, coords)
        offsets = mapper.local_offsets_for_coords_array(meta, coords)
        order = np.argsort(chunk_ids, kind="stable")
        chunk_ids = chunk_ids[order]
        offsets = offsets[order]
        values = values[order]
        boundaries = np.nonzero(np.diff(chunk_ids))[0] + 1
        starts = np.concatenate([[0], boundaries])
        ends = np.concatenate([boundaries, [chunk_ids.size]])
        records = []
        for start, end in zip(starts, ends):
            if start == end:
                continue
            cid = int(chunk_ids[start])
            chunk = Chunk.from_sparse(meta.cells_per_chunk,
                                      offsets[start:end],
                                      values[start:end])
            records.append((cid, chunk))
        array = ArrayRDD.from_chunks(context, records, meta,
                                     num_partitions)
        return cls(array)

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------

    @property
    def context(self):
        return self.array.context

    @property
    def meta(self) -> ArrayMetadata:
        return self.array.meta

    @property
    def shape(self) -> tuple:
        return self.meta.shape

    @property
    def block_shape(self) -> tuple:
        return self.meta.chunk_shape

    @property
    def grid_rows(self) -> int:
        return self.meta.chunk_grid[0]

    @property
    def grid_cols(self) -> int:
        return self.meta.chunk_grid[1]

    def row_block_of(self, chunk_id: int) -> int:
        return chunk_id % self.grid_rows

    def col_block_of(self, chunk_id: int) -> int:
        return chunk_id // self.grid_rows

    def chunk_id_of(self, row_block: int, col_block: int) -> int:
        return row_block + col_block * self.grid_rows

    def nnz(self) -> int:
        return self.array.count_valid()

    def memory_bytes(self) -> int:
        return self.array.memory_bytes()

    def cache(self) -> "SpangleMatrix":
        self.array.cache()
        return self

    def materialize(self) -> "SpangleMatrix":
        self.array.materialize()
        return self

    def explain(self, optimized: bool = False) -> str:
        """The recorded plan (see :meth:`ArrayRDD.explain`)."""
        return self.array.explain(optimized=optimized)

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------

    def to_numpy(self) -> np.ndarray:
        values, _valid = self.array.collect_dense(fill=0.0)
        return values

    def block_as_ndarray(self, chunk) -> np.ndarray:
        """A chunk's payload as a dense (block_rows, block_cols) array."""
        return chunk.to_dense(0).reshape(self.block_shape, order="F")

    def optimize_static(self) -> "SpangleMatrix":
        """Swap very sparse blocks' bitmasks for offset arrays.

        Section V-A-4's conversion rule: applies only where the offset
        array is the smaller structure, and is meant for matrices that
        are rarely updated (training data, graph structure).
        """
        out = self.array.rdd.map_values(encode_static)
        out.partitioner = self.array.rdd.partitioner
        return SpangleMatrix(ArrayRDD(out, self.meta, self.context))

    # ------------------------------------------------------------------
    # matrix-vector kernels
    # ------------------------------------------------------------------

    def dot_vector(self, vector: SpangleVector) -> SpangleVector:
        """``M × v`` → column vector of length n_rows.

        The vector is broadcast; every partition accumulates a partial
        result vector which the driver sums (a tree-aggregate pattern,
        one task per partition, no shuffle of matrix blocks).
        """
        if vector.orientation != "col":
            raise ShapeMismatchError(
                "M x v needs a column vector; transpose it first"
            )
        if vector.size != self.shape[1]:
            raise ShapeMismatchError(
                f"matrix has {self.shape[1]} columns but vector has "
                f"{vector.size} entries"
            )
        n_rows = self.shape[0]
        block_rows, block_cols = self.block_shape
        grid_rows = self.grid_rows
        data = vector.data
        as_block = self.block_as_ndarray

        def partials(part):
            partial = np.zeros(n_rows)
            for chunk_id, chunk in part:
                if chunk.valid_count == 0:
                    continue
                rb = chunk_id % grid_rows
                cb = chunk_id // grid_rows
                r0 = rb * block_rows
                c0 = cb * block_cols
                v_slice = data[c0:c0 + block_cols]
                out_len = min(block_rows, n_rows - r0)
                if _prefer_sparse_kernel(chunk):
                    offsets = chunk.indices()
                    local_rows = offsets % block_rows
                    local_cols = offsets // block_rows
                    contrib = np.bincount(
                        local_rows,
                        weights=chunk.values() * v_slice[local_cols],
                        minlength=block_rows,
                    )
                else:
                    block = as_block(chunk)
                    if v_slice.size < block_cols:
                        padded = np.zeros(block_cols)
                        padded[:v_slice.size] = v_slice
                        v_slice = padded
                    contrib = block @ v_slice
                partial[r0:r0 + out_len] += contrib[:out_len]
            return [partial]

        pieces = self.array.rdd.map_partitions(partials).collect()
        result = np.zeros(n_rows)
        for piece in pieces:
            result += piece
        return SpangleVector(result, "col")

    def vector_dot(self, vector: SpangleVector) -> SpangleVector:
        """``vᵀ × M`` → row vector of length n_cols.

        With *opt2* the caller never physically transposes anything: a
        column vector's ``.T`` flips metadata and this kernel reads the
        same buffer.
        """
        if vector.orientation != "row":
            raise ShapeMismatchError(
                "v^T x M needs a row vector; transpose it first"
            )
        if vector.size != self.shape[0]:
            raise ShapeMismatchError(
                f"matrix has {self.shape[0]} rows but vector has "
                f"{vector.size} entries"
            )
        n_cols = self.shape[1]
        block_rows, block_cols = self.block_shape
        grid_rows = self.grid_rows
        data = vector.data
        as_block = self.block_as_ndarray

        def partials(part):
            partial = np.zeros(n_cols)
            for chunk_id, chunk in part:
                if chunk.valid_count == 0:
                    continue
                rb = chunk_id % grid_rows
                cb = chunk_id // grid_rows
                r0 = rb * block_rows
                c0 = cb * block_cols
                v_slice = data[r0:r0 + block_rows]
                out_len = min(block_cols, n_cols - c0)
                if _prefer_sparse_kernel(chunk):
                    offsets = chunk.indices()
                    local_rows = offsets % block_rows
                    local_cols = offsets // block_rows
                    contrib = np.bincount(
                        local_cols,
                        weights=chunk.values() * v_slice[local_rows],
                        minlength=block_cols,
                    )
                else:
                    block = as_block(chunk)
                    if v_slice.size < block_rows:
                        padded = np.zeros(block_rows)
                        padded[:v_slice.size] = v_slice
                        v_slice = padded
                    contrib = v_slice @ block
                partial[c0:c0 + out_len] += contrib[:out_len]
            return [partial]

        pieces = self.array.rdd.map_partitions(partials).collect()
        result = np.zeros(n_cols)
        for piece in pieces:
            result += piece
        return SpangleVector(result, "row")

    # ------------------------------------------------------------------
    # matrix-matrix operations
    # ------------------------------------------------------------------

    def multiply(self, other: "SpangleMatrix",
                 local_join: bool = False) -> "SpangleMatrix":
        """Distributed block matmul; see :mod:`repro.matrix.multiply`."""
        from repro.matrix.multiply import block_matmul

        return block_matmul(self, other, local_join=local_join)

    def gram(self) -> "SpangleMatrix":
        """``Mᵀ × M`` without materializing the transpose."""
        from repro.matrix.multiply import gram_matmul

        return gram_matmul(self)

    def add(self, other: "SpangleMatrix") -> "SpangleMatrix":
        from repro.matrix.elementwise import add

        return add(self, other)

    def subtract(self, other: "SpangleMatrix") -> "SpangleMatrix":
        from repro.matrix.elementwise import subtract

        return subtract(self, other)

    def hadamard(self, other: "SpangleMatrix") -> "SpangleMatrix":
        from repro.matrix.elementwise import hadamard

        return hadamard(self, other)

    def scale(self, scalar: float) -> "SpangleMatrix":
        if scalar == 0:
            raise ArrayError(
                "scaling by zero would invalidate every cell; build an "
                "empty matrix explicitly instead"
            )
        return SpangleMatrix(self.array.map_values(lambda xs: xs * scalar))

    def transpose(self) -> "SpangleMatrix":
        """Physical distributed transpose (re-key + re-shuffle blocks).

        This is the expensive operation the paper's *opt1* avoids for
        SGD (Section VI-C) by rewriting Mᵀz as (zᵀM)ᵀ.
        """
        meta = self.meta
        grid_rows = self.grid_rows
        grid_cols = self.grid_cols
        block_rows, block_cols = self.block_shape

        def flip(record):
            chunk_id, chunk = record
            rb = chunk_id % grid_rows
            cb = chunk_id // grid_rows
            new_id = cb + rb * grid_cols
            block = chunk.to_dense(0).reshape(
                (block_rows, block_cols), order="F")
            flipped = block.T
            return new_id, Chunk.from_dense(
                flipped.ravel(order="F"),
                (flipped != 0).ravel(order="F"))

        rekeyed = self.array.rdd.map(flip)
        partitioner = HashPartitioner(self.array.rdd.num_partitions)
        shuffled = rekeyed.partition_by(partitioner)
        new_meta = meta.transposed().with_attribute(meta.attribute)
        return SpangleMatrix(ArrayRDD(shuffled, new_meta, self.context))

    def __repr__(self) -> str:
        return (
            f"SpangleMatrix(shape={self.shape}, "
            f"blocks={self.block_shape})"
        )


def _prefer_sparse_kernel(chunk) -> bool:
    """Use the gather/scatter kernel when the block is truly sparse."""
    return chunk.density < 0.05
