"""Offset-array encoding: the COO-like alternative for static matrices.

Section V-A-4: for matrix computation Spangle may swap a chunk's bitmask
for an *offset array* — a flat list of one-dimensional offsets, similar
to the coordinate-list (COO) format but with multi-dimensional
coordinates already collapsed. The swap happens only when the offset
array is smaller than the bitmask (i.e. the chunk is extremely sparse),
and only for *static* matrices that are rarely updated (training data,
the PageRank adjacency structure).
"""

from __future__ import annotations

import numpy as np

from repro.core.chunk import Chunk, ChunkMode
from repro.errors import ArrayError


class OffsetArrayChunk:
    """A chunk encoded as (offsets, values) instead of (bitmask, values).

    Duck-types the read-side of :class:`Chunk` (``values``, ``indices``,
    ``to_dense``, ``valid_count``, ``nbytes``...) so the matrix kernels
    accept either encoding.
    """

    __slots__ = ("_offsets", "payload", "num_cells")

    mode = "offset_array"

    def __init__(self, num_cells: int, offsets: np.ndarray,
                 values: np.ndarray):
        offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        values = np.ascontiguousarray(values)
        if offsets.size != values.size:
            raise ArrayError(
                f"{offsets.size} offsets but {values.size} values"
            )
        if offsets.size and (offsets.min() < 0
                             or offsets.max() >= num_cells):
            raise ArrayError(f"offsets out of range [0, {num_cells})")
        order = np.argsort(offsets, kind="stable")
        self._offsets = offsets[order]
        self.payload = values[order]
        self.num_cells = num_cells

    @classmethod
    def from_chunk(cls, chunk: Chunk) -> "OffsetArrayChunk":
        return cls(chunk.num_cells, chunk.indices(), chunk.values())

    def to_chunk(self, mode: ChunkMode = None) -> Chunk:
        return Chunk.from_sparse(self.num_cells, self._offsets,
                                 self.payload, mode=mode)

    # ------------------------------------------------------------------
    # Chunk-compatible read API
    # ------------------------------------------------------------------

    @property
    def valid_count(self) -> int:
        return int(self.payload.size)

    @property
    def density(self) -> float:
        if self.num_cells == 0:
            return 0.0
        return self.valid_count / self.num_cells

    @property
    def dtype(self):
        return self.payload.dtype

    @property
    def nbytes(self) -> int:
        return int(self._offsets.nbytes) + int(self.payload.nbytes)

    def indices(self) -> np.ndarray:
        return self._offsets

    def values(self) -> np.ndarray:
        return self.payload

    def to_dense(self, fill=0) -> np.ndarray:
        out = np.full(self.num_cells, fill, dtype=self.payload.dtype)
        out[self._offsets] = self.payload
        return out

    def get(self, offset: int):
        if not 0 <= offset < self.num_cells:
            raise ArrayError(
                f"offset {offset} out of range [0, {self.num_cells})"
            )
        slot = np.searchsorted(self._offsets, offset)
        if slot < self._offsets.size and self._offsets[slot] == offset:
            return self.payload[slot]
        return None

    def __repr__(self) -> str:
        return (
            f"OffsetArrayChunk(cells={self.num_cells}, "
            f"nnz={self.valid_count}, {self.nbytes}B)"
        )


def bitmask_bytes(num_cells: int) -> int:
    """Flat bitmask size for a chunk of ``num_cells`` cells."""
    return ((num_cells + 63) // 64) * 8


def offset_array_bytes(nnz: int) -> int:
    return nnz * 8


def should_use_offsets(chunk) -> bool:
    """The paper's conversion rule: swap only when it shrinks the chunk."""
    return (
        offset_array_bytes(chunk.valid_count)
        < bitmask_bytes(chunk.num_cells)
    )


def encode_static(chunk):
    """Re-encode a static chunk with whichever structure is smaller.

    Returns the chunk unchanged when the bitmask is already the compact
    choice; otherwise an :class:`OffsetArrayChunk`.
    """
    if isinstance(chunk, OffsetArrayChunk):
        return chunk
    if should_use_offsets(chunk):
        return OffsetArrayChunk.from_chunk(chunk)
    return chunk


# ----------------------------------------------------------------------
# CSR construction: row pointers grown from the offset encoding
# ----------------------------------------------------------------------
#
# A chunk's offsets are Fortran-order (``offset = row + col·num_rows``),
# so *sorted offsets are already column-major*: the CSC decomposition of
# a block falls out of the encoding with one searchsorted, and the CSR
# decomposition needs only a stable sort by row. The matmul partial-
# product kernels and the PageRank spmv consume these directly.

def csr_row_pointers(sorted_rows: np.ndarray, num_rows: int
                     ) -> np.ndarray:
    """CSR ``indptr`` from row indices already sorted ascending."""
    return np.searchsorted(sorted_rows, np.arange(num_rows + 1)) \
             .astype(np.int64, copy=False)


def csr_from_offsets(offsets: np.ndarray, values, num_rows: int):
    """Row-major ``(indptr, cols, vals)`` of one block.

    The stable sort keeps each row's entries in ascending-column order —
    the same order a column-major scan visits them — so kernels that sum
    a row sequentially reproduce the offset-order summation bit for bit.
    """
    rows = offsets % num_rows
    cols = offsets // num_rows
    order = np.argsort(rows, kind="stable")
    indptr = csr_row_pointers(rows[order], num_rows)
    return (indptr, cols[order],
            values[order] if values is not None else None)


def csc_from_offsets(offsets: np.ndarray, values, num_rows: int,
                     num_cols: int):
    """Column-major ``(indptr, rows, vals)`` of one block — free:
    ascending offsets are ascending (col, row) pairs, and the column
    boundaries sit at offset multiples of ``num_rows``."""
    indptr = np.searchsorted(
        offsets, np.arange(num_cols + 1, dtype=np.int64) * num_rows
    ).astype(np.int64, copy=False)
    return indptr, offsets % num_rows, values


class CSRBlock:
    """Row-pointer form of one payload-free adjacency block.

    Built once from a block's edge offsets and cached, so iterative
    consumers (the PageRank power loop) stop re-deriving ``row = off %
    block`` / ``col = off // block`` on every pass and reduce each row
    with one segmented sum.
    """

    __slots__ = ("indptr", "cols", "num_rows")

    def __init__(self, indptr: np.ndarray, cols: np.ndarray,
                 num_rows: int):
        self.indptr = indptr
        self.cols = cols
        self.num_rows = num_rows

    @classmethod
    def from_offsets(cls, offsets: np.ndarray, num_rows: int
                     ) -> "CSRBlock":
        indptr, cols, _ = csr_from_offsets(offsets, None, num_rows)
        return cls(indptr, cols, num_rows)

    @property
    def edge_count(self) -> int:
        return int(self.cols.size)

    @property
    def nbytes(self) -> int:
        return int(self.indptr.nbytes) + int(self.cols.nbytes)

    def spmv(self, x_block: np.ndarray) -> np.ndarray:
        """``y = A_block @ x_block`` for a 0/1 block: per-row sums of
        gathered x, bit-identical to the bincount formulation.

        Accumulates through ``bincount`` rather than
        ``np.add.reduceat`` — reduceat's blocked pairwise reduction
        groups additions differently, which costs the last float bit
        against the offset-decode kernel. The cached structure still
        pays off: no per-iteration ``off % n`` / ``off // n`` decode
        and no row sort.
        """
        if self.cols.size == 0:
            return np.zeros(self.num_rows)
        rows = np.repeat(np.arange(self.num_rows),
                         np.diff(self.indptr))
        return np.bincount(rows, weights=x_block[self.cols],
                           minlength=self.num_rows)


def _register_codec() -> None:
    """Teach the columnar shuffle / shm / spill planes to pack
    OffsetArrayChunk columns (no pickle fallback for offset-encoded
    static matrices)."""
    from repro.core import chunk_codec

    chunk_codec.register_offset_chunks(OffsetArrayChunk)


_register_codec()
