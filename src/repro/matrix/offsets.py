"""Offset-array encoding: the COO-like alternative for static matrices.

Section V-A-4: for matrix computation Spangle may swap a chunk's bitmask
for an *offset array* — a flat list of one-dimensional offsets, similar
to the coordinate-list (COO) format but with multi-dimensional
coordinates already collapsed. The swap happens only when the offset
array is smaller than the bitmask (i.e. the chunk is extremely sparse),
and only for *static* matrices that are rarely updated (training data,
the PageRank adjacency structure).
"""

from __future__ import annotations

import numpy as np

from repro.core.chunk import Chunk, ChunkMode
from repro.errors import ArrayError


class OffsetArrayChunk:
    """A chunk encoded as (offsets, values) instead of (bitmask, values).

    Duck-types the read-side of :class:`Chunk` (``values``, ``indices``,
    ``to_dense``, ``valid_count``, ``nbytes``...) so the matrix kernels
    accept either encoding.
    """

    __slots__ = ("_offsets", "payload", "num_cells")

    mode = "offset_array"

    def __init__(self, num_cells: int, offsets: np.ndarray,
                 values: np.ndarray):
        offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        values = np.ascontiguousarray(values)
        if offsets.size != values.size:
            raise ArrayError(
                f"{offsets.size} offsets but {values.size} values"
            )
        if offsets.size and (offsets.min() < 0
                             or offsets.max() >= num_cells):
            raise ArrayError(f"offsets out of range [0, {num_cells})")
        order = np.argsort(offsets, kind="stable")
        self._offsets = offsets[order]
        self.payload = values[order]
        self.num_cells = num_cells

    @classmethod
    def from_chunk(cls, chunk: Chunk) -> "OffsetArrayChunk":
        return cls(chunk.num_cells, chunk.indices(), chunk.values())

    def to_chunk(self, mode: ChunkMode = None) -> Chunk:
        return Chunk.from_sparse(self.num_cells, self._offsets,
                                 self.payload, mode=mode)

    # ------------------------------------------------------------------
    # Chunk-compatible read API
    # ------------------------------------------------------------------

    @property
    def valid_count(self) -> int:
        return int(self.payload.size)

    @property
    def density(self) -> float:
        if self.num_cells == 0:
            return 0.0
        return self.valid_count / self.num_cells

    @property
    def dtype(self):
        return self.payload.dtype

    @property
    def nbytes(self) -> int:
        return int(self._offsets.nbytes) + int(self.payload.nbytes)

    def indices(self) -> np.ndarray:
        return self._offsets

    def values(self) -> np.ndarray:
        return self.payload

    def to_dense(self, fill=0) -> np.ndarray:
        out = np.full(self.num_cells, fill, dtype=self.payload.dtype)
        out[self._offsets] = self.payload
        return out

    def get(self, offset: int):
        if not 0 <= offset < self.num_cells:
            raise ArrayError(
                f"offset {offset} out of range [0, {self.num_cells})"
            )
        slot = np.searchsorted(self._offsets, offset)
        if slot < self._offsets.size and self._offsets[slot] == offset:
            return self.payload[slot]
        return None

    def __repr__(self) -> str:
        return (
            f"OffsetArrayChunk(cells={self.num_cells}, "
            f"nnz={self.valid_count}, {self.nbytes}B)"
        )


def bitmask_bytes(num_cells: int) -> int:
    """Flat bitmask size for a chunk of ``num_cells`` cells."""
    return ((num_cells + 63) // 64) * 8


def offset_array_bytes(nnz: int) -> int:
    return nnz * 8


def should_use_offsets(chunk) -> bool:
    """The paper's conversion rule: swap only when it shrinks the chunk."""
    return (
        offset_array_bytes(chunk.valid_count)
        < bitmask_bytes(chunk.num_cells)
    )


def encode_static(chunk):
    """Re-encode a static chunk with whichever structure is smaller.

    Returns the chunk unchanged when the bitmask is already the compact
    choice; otherwise an :class:`OffsetArrayChunk`.
    """
    if isinstance(chunk, OffsetArrayChunk):
        return chunk
    if should_use_offsets(chunk):
        return OffsetArrayChunk.from_chunk(chunk)
    return chunk
