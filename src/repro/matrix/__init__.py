"""Linear algebra on ArrayRDDs (Sections V-A-4 and VI of the paper).

- :class:`~repro.matrix.matrix.SpangleMatrix` — a 2-D array as blocks
  (chunks); zero is treated as invalid, so the bitmask doubles as the
  sparsity structure.
- :class:`~repro.matrix.vector.SpangleVector` — a broadcast vector whose
  transpose is a metadata swap (*opt2*).
- :mod:`~repro.matrix.multiply` — distributed block matmul with
  bitmask-gated partial products and the local-join fusion of
  Section VI-A.
- :mod:`~repro.matrix.offsets` — the offset-array (COO-like) alternative
  encoding for static matrices.
"""

from repro.matrix.matrix import SpangleMatrix
from repro.matrix.multiply import (
    set_nnz_balance,
    set_sparse_kernel,
    set_sparse_threshold,
    sparse_config,
    sparse_threshold,
)
from repro.matrix.offsets import CSRBlock, OffsetArrayChunk, encode_static
from repro.matrix.vector import SpangleVector

__all__ = [
    "CSRBlock",
    "OffsetArrayChunk",
    "SpangleMatrix",
    "SpangleVector",
    "encode_static",
    "set_nnz_balance",
    "set_sparse_kernel",
    "set_sparse_threshold",
    "sparse_config",
    "sparse_threshold",
]
