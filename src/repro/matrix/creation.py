"""Matrix constructors and whole-matrix reductions.

Factory functions (identity, diagonal, random sparse) and the
reductions a linear-algebra user expects (row/column sums, trace,
Frobenius norm) — each a single distributed pass over the blocks, with
the bitmask keeping all of them proportional to the nonzero count.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeMismatchError
from repro.matrix.matrix import SpangleMatrix
from repro.matrix.vector import SpangleVector


def identity(context, n: int, block: int = 512) -> SpangleMatrix:
    """The n×n identity as a (very sparse) SpangleMatrix."""
    idx = np.arange(n, dtype=np.int64)
    return SpangleMatrix.from_coo(context, idx, idx, np.ones(n),
                                  (n, n), (min(block, n),) * 2)


def from_diagonal(context, diagonal, block: int = 512) -> SpangleMatrix:
    """A diagonal matrix from a vector of entries."""
    diagonal = np.asarray(diagonal, dtype=np.float64).ravel()
    n = diagonal.size
    idx = np.arange(n, dtype=np.int64)
    keep = diagonal != 0
    return SpangleMatrix.from_coo(context, idx[keep], idx[keep],
                                  diagonal[keep], (n, n),
                                  (min(block, n),) * 2)


def random_sparse(context, shape, density: float, block=(512, 512),
                  seed: int = 0) -> SpangleMatrix:
    """A uniform random sparse matrix (values in (0, 1])."""
    rng = np.random.default_rng(seed)
    rows_n, cols_n = shape
    nnz = max(1, int(rows_n * cols_n * density))
    flat = rng.choice(rows_n * cols_n, size=min(nnz, rows_n * cols_n),
                      replace=False)
    return SpangleMatrix.from_coo(
        context, flat // cols_n, flat % cols_n,
        rng.random(flat.size) + 1e-12, shape,
        (min(block[0], rows_n), min(block[1], cols_n)))


# ----------------------------------------------------------------------
# reductions
# ----------------------------------------------------------------------

def row_sums(matrix: SpangleMatrix) -> SpangleVector:
    """Σ_j M[i, j] as a column vector (one pass, driver-merged)."""
    n_rows = matrix.shape[0]
    block_rows = matrix.block_shape[0]
    grid_rows = matrix.grid_rows

    def partials(part):
        partial = np.zeros(n_rows)
        for chunk_id, chunk in part:
            offsets = chunk.indices()
            if offsets.size == 0:
                continue
            rb = chunk_id % grid_rows
            local_rows = offsets % block_rows
            contribution = np.bincount(local_rows,
                                       weights=chunk.values(),
                                       minlength=block_rows)
            lo = rb * block_rows
            hi = min(lo + block_rows, n_rows)
            partial[lo:hi] += contribution[:hi - lo]
        return [partial]

    pieces = matrix.array.rdd.map_partitions(partials).collect()
    out = np.zeros(n_rows)
    for piece in pieces:
        out += piece
    return SpangleVector(out, "col")


def col_sums(matrix: SpangleMatrix) -> SpangleVector:
    """Σ_i M[i, j] as a row vector."""
    n_cols = matrix.shape[1]
    block_rows, block_cols = matrix.block_shape
    grid_rows = matrix.grid_rows

    def partials(part):
        partial = np.zeros(n_cols)
        for chunk_id, chunk in part:
            offsets = chunk.indices()
            if offsets.size == 0:
                continue
            cb = chunk_id // grid_rows
            local_cols = offsets // block_rows
            contribution = np.bincount(local_cols,
                                       weights=chunk.values(),
                                       minlength=block_cols)
            lo = cb * block_cols
            hi = min(lo + block_cols, n_cols)
            partial[lo:hi] += contribution[:hi - lo]
        return [partial]

    pieces = matrix.array.rdd.map_partitions(partials).collect()
    out = np.zeros(n_cols)
    for piece in pieces:
        out += piece
    return SpangleVector(out, "row")


def diagonal(matrix: SpangleMatrix) -> np.ndarray:
    """The main diagonal (square matrices)."""
    if matrix.shape[0] != matrix.shape[1]:
        raise ShapeMismatchError(
            f"diagonal of a non-square matrix {matrix.shape}"
        )
    n = matrix.shape[0]
    block_rows, block_cols = matrix.block_shape
    grid_rows = matrix.grid_rows

    def partials(part):
        partial = np.zeros(n)
        for chunk_id, chunk in part:
            rb = chunk_id % grid_rows
            cb = chunk_id // grid_rows
            offsets = chunk.indices()
            if offsets.size == 0:
                continue
            global_rows = rb * block_rows + offsets % block_rows
            global_cols = cb * block_cols + offsets // block_rows
            on_diagonal = global_rows == global_cols
            partial[global_rows[on_diagonal]] += \
                chunk.values()[on_diagonal]
        return [partial]

    pieces = matrix.array.rdd.map_partitions(partials).collect()
    out = np.zeros(n)
    for piece in pieces:
        out += piece
    return out


def trace(matrix: SpangleMatrix) -> float:
    return float(diagonal(matrix).sum())


def frobenius_norm(matrix: SpangleMatrix) -> float:
    """sqrt(Σ M[i,j]²) — one pass over the valid values only."""
    total = matrix.array.rdd.map(
        lambda kv: float((kv[1].values() ** 2).sum())
    ).fold(0.0, lambda a, b: a + b)
    return float(np.sqrt(total))
