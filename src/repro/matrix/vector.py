"""SpangleVector: a broadcast vector with metadata-only transpose (opt2).

Vectors in the paper's ML workloads (the PageRank rank vector, the SGD
weight vector) are orders of magnitude smaller than the matrices, so
Spangle broadcasts them to every worker instead of distributing them.
Section VI-C's *opt2*: transposing such a vector "only replaces metadata
(e.g. from 1×n to n×1)" — the payload never moves.

For the Fig. 12b ablation we also keep the naive path:
:meth:`transpose_physical` rebuilds the vector through a distributed
1×n array, paying the shuffle and materialization the optimization
avoids.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeMismatchError


class SpangleVector:
    """A dense vector plus its logical orientation.

    ``orientation`` is ``"col"`` (n×1) or ``"row"`` (1×n). All arithmetic
    is orientation-checked so that transposed-without-copying vectors
    behave exactly like physically transposed ones.
    """

    __slots__ = ("data", "orientation")

    def __init__(self, data, orientation: str = "col"):
        if orientation not in ("col", "row"):
            raise ShapeMismatchError(
                f"orientation must be 'col' or 'row', got {orientation!r}"
            )
        self.data = np.asarray(data, dtype=np.float64).ravel()
        self.orientation = orientation

    @classmethod
    def zeros(cls, size: int, orientation: str = "col") -> "SpangleVector":
        return cls(np.zeros(size), orientation)

    @classmethod
    def full(cls, size: int, value: float,
             orientation: str = "col") -> "SpangleVector":
        return cls(np.full(size, value), orientation)

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def shape(self) -> tuple:
        if self.orientation == "col":
            return (self.size, 1)
        return (1, self.size)

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    # ------------------------------------------------------------------
    # transposes
    # ------------------------------------------------------------------

    def transpose(self) -> "SpangleVector":
        """opt2: flip the orientation metadata; zero data movement.

        The result shares the payload buffer — nothing is copied.
        """
        flipped = "row" if self.orientation == "col" else "col"
        out = SpangleVector.__new__(SpangleVector)
        out.data = self.data
        out.orientation = flipped
        return out

    @property
    def T(self) -> "SpangleVector":
        return self.transpose()

    def transpose_physical(self, context, chunk: int = 4096):
        """The unoptimized path: round-trip through a distributed array.

        Builds a 1×n ArrayRDD, transposes it chunk-by-chunk (a shuffle),
        and collects the n×1 result — the cost *opt2* eliminates.
        """
        from repro.matrix.matrix import SpangleMatrix

        if self.orientation == "col":
            as_matrix = SpangleMatrix.from_numpy(
                context, self.data.reshape(-1, 1),
                (min(chunk, self.size), 1), sparse_zeros=False)
        else:
            as_matrix = SpangleMatrix.from_numpy(
                context, self.data.reshape(1, -1),
                (1, min(chunk, self.size)), sparse_zeros=False)
        transposed = as_matrix.transpose()
        dense = transposed.to_numpy()
        flipped = "row" if self.orientation == "col" else "col"
        return SpangleVector(dense.ravel(), flipped)

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------

    def _check_same_orientation(self, other: "SpangleVector") -> None:
        if self.orientation != other.orientation:
            raise ShapeMismatchError(
                f"orientation mismatch: {self.orientation} vs "
                f"{other.orientation}"
            )
        if self.size != other.size:
            raise ShapeMismatchError(
                f"vector length mismatch: {self.size} vs {other.size}"
            )

    def __add__(self, other):
        if isinstance(other, SpangleVector):
            self._check_same_orientation(other)
            return SpangleVector(self.data + other.data, self.orientation)
        return SpangleVector(self.data + other, self.orientation)

    def __sub__(self, other):
        if isinstance(other, SpangleVector):
            self._check_same_orientation(other)
            return SpangleVector(self.data - other.data, self.orientation)
        return SpangleVector(self.data - other, self.orientation)

    def __mul__(self, scalar):
        return SpangleVector(self.data * scalar, self.orientation)

    __rmul__ = __mul__

    def hadamard(self, other: "SpangleVector") -> "SpangleVector":
        """Element-wise product (the ∘ of the PageRank decomposition)."""
        self._check_same_orientation(other)
        return SpangleVector(self.data * other.data, self.orientation)

    def dot(self, other: "SpangleVector") -> float:
        if self.size != other.size:
            raise ShapeMismatchError(
                f"vector length mismatch: {self.size} vs {other.size}"
            )
        return float(self.data @ other.data)

    def norm_diff(self, other: "SpangleVector") -> float:
        """L1 distance, the paper's PageRank/SGD convergence residual."""
        return float(np.abs(self.data - other.data).sum())

    def map(self, func) -> "SpangleVector":
        return SpangleVector(func(self.data), self.orientation)

    def to_numpy(self) -> np.ndarray:
        return self.data.copy()

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, SpangleVector)
            and self.orientation == other.orientation
            and np.allclose(self.data, other.data)
        )

    def __repr__(self) -> str:
        return f"SpangleVector(shape={self.shape})"
