"""Element-wise matrix operations with bitmask gating (Fig. 5).

Addition and subtraction use or-join semantics (a cell present on either
side contributes; the missing operand is zero). The Hadamard product uses
and-join semantics: the bitwise AND of the two bitmasks decides which
pairs are multiplied at all — if either bit is unset the product is zero
(invalid) and no arithmetic happens.

When the operands share a partitioner these are embarrassingly parallel:
the underlying joins are narrow and no data moves.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeMismatchError
from repro.matrix import matrix as matrix_mod


def _check(left, right) -> None:
    if left.shape != right.shape:
        raise ShapeMismatchError(
            f"matrix shape mismatch: {left.shape} vs {right.shape}"
        )
    if left.block_shape != right.block_shape:
        raise ShapeMismatchError(
            f"block shape mismatch: {left.block_shape} vs "
            f"{right.block_shape}"
        )


def add(left, right):
    _check(left, right)
    combined = left.array.combine(right.array, np.add, how="or", fill=0.0)
    # zero results (a + (-a)) are no longer valid matrix cells
    nonzero = combined.filter(lambda xs: xs != 0)
    return matrix_mod.SpangleMatrix(nonzero)


def subtract(left, right):
    _check(left, right)
    combined = left.array.combine(right.array, np.subtract, how="or",
                                  fill=0.0)
    nonzero = combined.filter(lambda xs: xs != 0)
    return matrix_mod.SpangleMatrix(nonzero)


def hadamard(left, right):
    _check(left, right)
    combined = left.array.combine(right.array, np.multiply, how="and")
    nonzero = combined.filter(lambda xs: xs != 0)
    return matrix_mod.SpangleMatrix(nonzero)
