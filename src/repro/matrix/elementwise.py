"""Element-wise matrix operations with bitmask gating (Fig. 5).

Addition and subtraction use or-join semantics (a cell present on either
side contributes; the missing operand is zero). The Hadamard product uses
and-join semantics: the bitwise AND of the two bitmasks decides which
pairs are multiplied at all — if either bit is unset the product is zero
(invalid) and no arithmetic happens.

When the operands share a partitioner these are embarrassingly parallel:
the underlying joins are narrow and no data moves.

Each operation is a combine followed by a nonzero filter, recorded as
an :class:`~repro.core.logical.ElementwiseOp` under a
:class:`~repro.core.logical.FilterOp`. At lowering the whole chain —
the elementwise merge source, the drop-empty kernel, and the nonzero
``FilterKernel`` — compiles to a single fused pass per chunk
(``fused[combine_or→drop_empty→filter]`` in the stage plan) instead of
building an intermediate combined chunk and re-encoding it. Because
the join is now logical, a ``subarray`` applied to the result pushes
into *both operands* when the cost model approves
(``subarray_into_elementwise`` in :mod:`repro.core.optimizer`), so
restricted sums never join out-of-box chunks at all.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeMismatchError
from repro.matrix import matrix as matrix_mod


def _check(left, right) -> None:
    if left.shape != right.shape:
        raise ShapeMismatchError(
            f"matrix shape mismatch: {left.shape} vs {right.shape}"
        )
    if left.block_shape != right.block_shape:
        raise ShapeMismatchError(
            f"block shape mismatch: {left.block_shape} vs "
            f"{right.block_shape}"
        )


def _combine_nonzero(left, right, op, how, fill=0.0):
    """combine + drop-zeros as one kernel chain (fused when enabled)."""
    _check(left, right)
    combined = left.array.combine(right.array, op, how=how, fill=fill)
    # zero results (a + (-a), gated products) are not valid matrix cells
    nonzero = combined.filter(lambda xs: xs != 0)
    return matrix_mod.SpangleMatrix(nonzero)


def add(left, right):
    return _combine_nonzero(left, right, np.add, how="or")


def subtract(left, right):
    return _combine_nonzero(left, right, np.subtract, how="or")


def hadamard(left, right):
    return _combine_nonzero(left, right, np.multiply, how="and")
