"""Distributed block matrix multiplication (Sections V-A-4 and VI-A).

The default path mirrors Spark's three-stage plan: two shuffles to key
the operands by the contraction block index *k*, then a reduce to gather
partial products per output block.

The **local join** path (Section VI-A) applies when the left operand is
partitioned by column-block and the right by row-block under the *same*
partitioner: the join becomes a per-partition zip — one fused stage, no
input shuffle — and only the final gather shuffles. The paper reports
this is what lets Spangle survive the largest (Mawi) matrices.

Partial products are bitmask-gated: a pair of blocks is multiplied only
when both carry valid cells, and zero rows/columns never reach the
kernel.

The **sparse execution tier** layers two decisions on top:

- *kernel*: per block pair, dense BLAS vs the legacy per-k COO join
  loop vs the vectorized CSR kernels (:func:`_csr_join` for
  sparse×sparse — bit-identical to the COO join — and the CSR×dense
  scatter of :func:`_scatter_partial` for one-sided sparsity);
- *placement*: the k-shuffle and the gather shuffle may swap their hash
  partitioners for :class:`~repro.engine.partitioner
  .NnzBalancedPartitioner`\\ s packed from per-chunk valid counts, so a
  power-law nnz distribution cannot strand the stage on one executor.

Both decisions are made on the driver — either by the rewrite
optimizer (a :class:`~repro.core.logical.MatmulExecPlan` attached to
the MatmulOp, priced by the cost model) or by the density gates of
:func:`sparse_threshold` — and shipped to workers inside the picklable
:class:`_BlockKernel`, so every backend (serial, thread, process) runs
the same arithmetic in the same order.
"""

from __future__ import annotations

import numpy as np

from repro.core import plan as plan_mod
from repro.core.array_rdd import ArrayRDD
from repro.core.chunk import Chunk
from repro.core.logical import MatmulExecPlan, MatmulOp, SourceOp, estimate
from repro.core.metadata import ArrayMetadata
from repro.engine import HashPartitioner
from repro.engine.partitioner import (
    ExplicitPartitioner,
    NnzBalancedPartitioner,
)
from repro.errors import EngineError, ShapeMismatchError
from repro.matrix.offsets import csc_from_offsets, csr_from_offsets


def _check_dims(left, right) -> None:
    if left.shape[1] != right.shape[0]:
        raise ShapeMismatchError(
            f"cannot multiply {left.shape} by {right.shape}"
        )
    if left.block_shape[1] != right.block_shape[0]:
        raise ShapeMismatchError(
            f"contraction block mismatch: left blocks are "
            f"{left.block_shape}, right blocks are {right.block_shape}"
        )


#: Fallback density gate below which both operands take the sparse
#: partial-product path. The *derived* gate normally comes from the
#: context's cost model (``sparse_kernel_threshold()`` — 0.02 at the
#: default rates, so the constant and the model agree out of the box);
#: this constant only applies when no cost model is reachable, and a
#: ``repro``-level override (:func:`set_sparse_threshold`) beats both.
SPARSE_KERNEL_THRESHOLD = 0.02

#: valid kernel kinds: "auto" resolves per block pair by density gates,
#: the rest force one representation everywhere
_KERNEL_KINDS = ("auto", "coo", "csr", "dense")

_SPARSE_CONFIG = {"kernel": "auto", "threshold": None, "balance": True}


def set_sparse_kernel(kind: str) -> None:
    """Force the block-pair kernel: ``auto`` (default), ``coo``,
    ``csr``, or ``dense``."""
    if kind not in _KERNEL_KINDS:
        raise EngineError(
            f"unknown sparse kernel {kind!r}; pick from {_KERNEL_KINDS}"
        )
    _SPARSE_CONFIG["kernel"] = kind


def set_sparse_threshold(threshold) -> None:
    """Override the sparse-kernel density gate; ``None`` restores the
    cost-model-derived default."""
    _SPARSE_CONFIG["threshold"] = (
        None if threshold is None else float(threshold))


def set_nnz_balance(enabled: bool) -> None:
    """Allow (default) or forbid nnz-balanced shuffle placement."""
    _SPARSE_CONFIG["balance"] = bool(enabled)


def sparse_threshold(cost_model=None) -> float:
    """The effective sparse-kernel density gate.

    Resolution order: the explicit override, then the cost model's
    derived gate, then the legacy constant (kept for callers with no
    model in reach — and as the documented default the model
    reproduces).
    """
    if _SPARSE_CONFIG["threshold"] is not None:
        return _SPARSE_CONFIG["threshold"]
    if cost_model is not None:
        return cost_model.sparse_kernel_threshold()
    return SPARSE_KERNEL_THRESHOLD


class sparse_config:
    """Scoped override of the sparse execution tier, for benchmarks and
    tests::

        with sparse_config(kernel="coo", balance=False):
            ...   # the legacy execution path
    """

    def __init__(self, kernel=None, threshold=None, balance=None):
        self._saved = dict(_SPARSE_CONFIG)
        if kernel is not None:
            set_sparse_kernel(kernel)
        if threshold is not None:
            set_sparse_threshold(threshold)
        if balance is not None:
            set_nnz_balance(balance)

    def __enter__(self) -> "sparse_config":
        return self

    def __exit__(self, *exc) -> bool:
        _SPARSE_CONFIG.update(self._saved)
        return False


class _COOPartial:
    """A partial product held as COO triples instead of a dense block.

    Hyper-sparse block pairs (the Hardesty/Mawi regime) would waste both
    time and memory on dense partials that are almost entirely zero;
    this keeps exactly the nonzero contributions. Merging with another
    partial (COO or dense) happens in :func:`_merge_partials`.
    """

    __slots__ = ("rows", "cols", "vals", "shape")

    def __init__(self, rows, cols, vals, shape):
        self.rows = rows
        self.cols = cols
        self.vals = vals
        self.shape = shape

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape)
        np.add.at(out, (self.rows, self.cols), self.vals)
        return out

    @property
    def nbytes(self) -> int:
        return int(self.rows.nbytes + self.cols.nbytes
                   + self.vals.nbytes)


def _merge_partials(a, b):
    """Sum two partial products of the same output block."""
    if isinstance(a, _COOPartial) and isinstance(b, _COOPartial):
        return _COOPartial(
            np.concatenate([a.rows, b.rows]),
            np.concatenate([a.cols, b.cols]),
            np.concatenate([a.vals, b.vals]),
            a.shape,
        )
    if isinstance(a, _COOPartial):
        a = a.to_dense()
    if isinstance(b, _COOPartial):
        b = b.to_dense()
    return a + b


def _partial_to_dense(partial) -> np.ndarray:
    if isinstance(partial, _COOPartial):
        return partial.to_dense()
    return partial


def _coo_join(a_rows, a_ks, a_vals, b_ks, b_cols, b_vals, shape):
    """Join two COO operands on the contraction index.

    ``a`` contributes (row, k, value), ``b`` contributes (k, col,
    value); returns the COO partial of their product, or None when no
    k-index is shared (no arithmetic at all — the COO analogue of the
    bitmask AND in Fig. 5).
    """
    shared = np.intersect1d(a_ks, b_ks)
    if shared.size == 0:
        return None
    out_rows, out_cols, out_vals = [], [], []
    a_order = np.argsort(a_ks, kind="stable")
    b_order = np.argsort(b_ks, kind="stable")
    a_ks_sorted = a_ks[a_order]
    b_ks_sorted = b_ks[b_order]
    for k in shared:
        a_lo, a_hi = np.searchsorted(a_ks_sorted, [k, k + 1])
        b_lo, b_hi = np.searchsorted(b_ks_sorted, [k, k + 1])
        ar = a_rows[a_order[a_lo:a_hi]]
        av = a_vals[a_order[a_lo:a_hi]]
        bc = b_cols[b_order[b_lo:b_hi]]
        bv = b_vals[b_order[b_lo:b_hi]]
        out_rows.append(np.repeat(ar, bc.size))
        out_cols.append(np.tile(bc, ar.size))
        out_vals.append(np.outer(av, bv).ravel())
    return _COOPartial(
        np.concatenate(out_rows), np.concatenate(out_cols),
        np.concatenate(out_vals), shape,
    )


def _csr_join(a_rows, a_ks, a_vals, b_ks, b_cols, b_vals, shape):
    """Vectorized row-pointer join — :func:`_coo_join` without the
    per-k Python loop.

    Both operands sort by k (stable); the b side's sorted k column *is*
    a sparse CSR pointer structure, and the two searchsorteds below are
    its ``indptr`` lookups (``csr_row_pointers`` evaluated only at the
    k values the a side actually holds). Every a entry then expands
    against its b run with pure index arithmetic.

    Bit-identical to the COO join by construction: pairs emit in the
    same order — shared k ascending, a entries in stable-sorted offset
    order, each against all matching b entries — and each value is the
    same two-operand product, so downstream summation sees the same
    floats in the same sequence.
    """
    a_order = np.argsort(a_ks, kind="stable")
    b_order = np.argsort(b_ks, kind="stable")
    a_ks_sorted = a_ks[a_order]
    b_ks_sorted = b_ks[b_order]
    b_lo = np.searchsorted(b_ks_sorted, a_ks_sorted, side="left")
    b_hi = np.searchsorted(b_ks_sorted, a_ks_sorted, side="right")
    reps = b_hi - b_lo
    matched = reps > 0
    if not matched.any():
        return None
    a_idx = a_order[matched]
    b_lo = b_lo[matched]
    reps = reps[matched]
    total = int(reps.sum())
    # pair p belongs to kept a entry a_expand[p]; its offset inside that
    # entry's b run is p minus the run's start position
    a_expand = np.repeat(np.arange(a_idx.size), reps)
    run_starts = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(reps)[:-1]])
    pos_in_run = np.arange(total) - run_starts[a_expand]
    b_expand = b_order[np.repeat(b_lo, reps) + pos_in_run]
    a_expand = a_idx[a_expand]
    return _COOPartial(
        a_rows[a_expand], b_cols[b_expand],
        a_vals[a_expand] * b_vals[b_expand], shape,
    )


def _sparse_partial(left_chunk, right_chunk, left_rows, contraction,
                    right_cols, join=_coo_join):
    """Sparse product of two sparse blocks; None when no k-index
    matches. ``join`` picks the loop (COO) or vectorized (CSR)
    implementation — their outputs are bit-identical."""
    a_off = left_chunk.indices()
    b_off = right_chunk.indices()
    return join(
        a_off % left_rows, a_off // left_rows, left_chunk.values(),
        b_off % contraction, b_off // contraction, right_chunk.values(),
        (left_rows, right_cols),
    )


def _scatter_partial(left_chunk, right_chunk, left_shape, right_shape,
                     sparse_on_left):
    """CSR×dense (or dense×CSC) partial: one-sided sparsity.

    The sparse side decomposes into row-pointer form straight from its
    offset encoding (:func:`csr_from_offsets` /
    :func:`csc_from_offsets`), then each live output row is one
    segmented sum over gathered dense rows — no k loop, no densify of
    the sparse side, and no work for empty rows.
    """
    m, k_dim = left_shape
    n = right_shape[1]
    if sparse_on_left:
        b = right_chunk.to_dense(0).reshape(right_shape, order="F")
        indptr, ks, vals = csr_from_offsets(
            left_chunk.indices(), left_chunk.values(), m)
        out = np.zeros((m, n))
        if vals.size:
            contrib = vals[:, None] * b[ks, :]
            live = np.nonzero(np.diff(indptr))[0]
            out[live] = np.add.reduceat(contrib, indptr[live], axis=0)
        return out if out.any() else None
    a = left_chunk.to_dense(0).reshape(left_shape, order="F")
    # group the right side by output column: its CSC view is free
    # because sorted offsets are already column-major
    indptr, ks, vals = csc_from_offsets(
        right_chunk.indices(), right_chunk.values(), k_dim, n)
    out_t = np.zeros((n, m))
    if vals.size:
        contrib = vals[:, None] * a[:, ks].T
        live = np.nonzero(np.diff(indptr))[0]
        out_t[live] = np.add.reduceat(contrib, indptr[live], axis=0)
    out = out_t.T
    return out if out.any() else None


class _BlockKernel:
    """The driver-chosen per-block-pair kernel, shipped to workers.

    A module-level class (process-backend tasks pickle it by
    reference) holding the *resolved* policy: the kernel kind and the
    density gates, decided once on the driver from the exec plan /
    config / cost model. Worker-side module state never participates,
    so every backend multiplies the same blocks the same way.
    """

    __slots__ = ("left_shape", "right_shape", "kind", "gate",
                 "scatter_gate")

    def __init__(self, left_shape, right_shape, kind, gate,
                 scatter_gate):
        self.left_shape = left_shape
        self.right_shape = right_shape
        self.kind = kind                  # "coo" | "csr" | "dense"
        self.gate = gate                  # both-sparse density gate
        self.scatter_gate = scatter_gate  # one-sided CSR×dense gate

    def __getstate__(self):
        return (self.left_shape, self.right_shape, self.kind,
                self.gate, self.scatter_gate)

    def __setstate__(self, state):
        (self.left_shape, self.right_shape, self.kind, self.gate,
         self.scatter_gate) = state

    def __call__(self, left_chunk, right_chunk):
        if left_chunk.valid_count == 0 or right_chunk.valid_count == 0:
            return None
        da = left_chunk.density
        db = right_chunk.density
        if self.kind != "dense" and da < self.gate and db < self.gate:
            join = _coo_join if self.kind == "coo" else _csr_join
            return _sparse_partial(
                left_chunk, right_chunk, self.left_shape[0],
                self.left_shape[1], self.right_shape[1], join=join)
        if self.kind == "csr" and min(da, db) < self.scatter_gate:
            return _scatter_partial(left_chunk, right_chunk,
                                    self.left_shape, self.right_shape,
                                    sparse_on_left=da <= db)
        a = left_chunk.to_dense(0).reshape(self.left_shape, order="F")
        b = right_chunk.to_dense(0).reshape(self.right_shape,
                                            order="F")
        partial = a @ b
        if not partial.any():
            return None
        return partial


def _resolve_kernel(left, right, exec_plan=None):
    """The :class:`_BlockKernel` for one matmul, resolved driver-side.

    Priority: the optimizer's exec plan, then the module config
    (``auto`` → CSR kernels behind cost-model density gates; the
    sparse×sparse regime stays bit-identical to the legacy COO path).
    """
    kind = exec_plan.kernel if exec_plan is not None \
        else _SPARSE_CONFIG["kernel"]
    cost_model = getattr(left.context, "cost_model", None)
    gate = sparse_threshold(cost_model)
    if kind == "auto":
        kind = "csr"
    scatter_gate = 0.0
    if kind == "csr":
        scatter_gate = (cost_model.scatter_kernel_threshold()
                        if cost_model is not None else 0.1)
    return _BlockKernel(tuple(left.block_shape),
                        tuple(right.block_shape), kind, gate,
                        scatter_gate)


def _multiply_blocks(left, right, left_chunk, right_chunk):
    """Legacy entry point: the COO-or-dense kernel at the constant
    threshold. Kept for callers that predate :class:`_BlockKernel`."""
    kernel = _BlockKernel(tuple(left.block_shape),
                          tuple(right.block_shape), "coo",
                          SPARSE_KERNEL_THRESHOLD, 0.0)
    return kernel(left_chunk, right_chunk)


def _result_meta(left, right) -> ArrayMetadata:
    return ArrayMetadata(
        (left.shape[0], right.shape[1]),
        (left.block_shape[0], right.block_shape[1]),
        dim_names=("row", "col"),
    )


def _assemble(context, partials_rdd, meta) -> ArrayRDD:
    """(chunk_id, partial sum) records → (chunk_id, Chunk) records.

    The gather shuffle upstream already keys partials by output chunk
    ID (``rb + cb * out_grid_rows``) so its int keys ride the columnar
    path; this step only densifies.
    """

    def to_chunk(record):
        chunk_id, partial = record
        flat = _partial_to_dense(partial).ravel(order="F")
        return chunk_id, Chunk.from_dense(flat, flat != 0)

    chunks = partials_rdd.map(to_chunk) \
        .filter(lambda kv: kv[1].valid_count > 0)
    partitioner = HashPartitioner(partials_rdd.num_partitions)
    placed = chunks.partition_by(partitioner)
    return ArrayRDD(placed, meta, context)


def k_partitioners(left, right, num_partitions: int):
    """The co-partitioning pair for the local join.

    Left blocks are placed by their column-block index, right blocks by
    their row-block index — both modulo the same partition count and
    under the same tag, so the engine treats them as equal partitioners
    and the contraction index *k* of both operands lands in the same
    partition.
    """
    tag = ("matmul-k", num_partitions)
    grid_rows_left = left.grid_rows
    grid_rows_right = right.grid_rows
    left_part = ExplicitPartitioner(
        num_partitions, lambda cid: cid // grid_rows_left, tag=tag,
        array_func=lambda cids: cids // grid_rows_left)
    right_part = ExplicitPartitioner(
        num_partitions, lambda cid: cid % grid_rows_right, tag=tag,
        array_func=lambda cids: cids % grid_rows_right)
    return left_part, right_part


def prepare_local(left, right, num_partitions=None):
    """Pre-place both operands for the local join (one-off shuffles).

    Returns ``(left_prepared, right_prepared)``. Once prepared, every
    ``block_matmul(..., local_join=True)`` on the pair runs without
    shuffling the inputs — the fused single stage of Section VI-A.
    """
    from repro.matrix.matrix import SpangleMatrix

    if num_partitions is None:
        num_partitions = left.array.rdd.num_partitions
    left_part, right_part = k_partitioners(left, right, num_partitions)
    left_placed = left.array.rdd.partition_by(left_part)
    right_placed = right.array.rdd.partition_by(right_part)
    return (
        SpangleMatrix(ArrayRDD(left_placed, left.meta, left.context)),
        SpangleMatrix(ArrayRDD(right_placed, right.meta, right.context)),
    )


def block_matmul(left, right, local_join: bool = False):
    """``left × right`` as a SpangleMatrix.

    Recorded as a logical :class:`~repro.core.logical.MatmulOp` (when
    fusion is on), so a subarray written after the multiply can restrict
    the operand sides before their shuffles; :func:`lower_matmul` runs
    the actual three-stage plan when an action forces it.
    """
    from repro.matrix.matrix import SpangleMatrix

    _check_dims(left, right)
    meta = _result_meta(left, right)
    context = left.context
    if plan_mod.fusion_enabled():
        node = MatmulOp(left, right, local_join, meta)
        return SpangleMatrix(ArrayRDD(None, meta, context,
                                      logical=node))
    return SpangleMatrix(ArrayRDD(
        _run_matmul(left, right, local_join, meta, context),
        meta, context))


def lower_matmul(node: MatmulOp, context):
    """Lower a recorded matmul node to its concrete chunk RDD."""
    return _run_matmul(node.left, node.right, node.local_join,
                       node.meta, context, exec_plan=node.exec_plan)


def _partition_loads(partitioner, weights: dict) -> np.ndarray:
    """Per-partition total weight a partitioner produces over a
    ``{key: weight}`` map (hash or nnz-balanced alike)."""
    loads = np.zeros(partitioner.num_partitions)
    for key, weight in weights.items():
        loads[partitioner.partition(int(key))] += float(weight)
    return loads


def _record_nnz_stats(context, stage: str, loads) -> None:
    stats = getattr(context, "nnz_stats", None)
    if stats is not None:
        stats.record(stage, loads)


def _run_matmul(left, right, local_join, meta, context,
                exec_plan=None):
    out_grid_rows = meta.chunk_grid[0]
    kernel = _resolve_kernel(left, right, exec_plan)
    balance = (exec_plan is not None and exec_plan.balance
               and _SPARSE_CONFIG["balance"])

    if local_join:
        partials = _local_join_partials(left, right, kernel)
    else:
        k_partitioner = None
        if balance and exec_plan.k_weights:
            k_partitioner = NnzBalancedPartitioner.from_weights(
                exec_plan.k_weights, left.array.rdd.num_partitions)
            _record_nnz_stats(
                context, "matmul-k",
                k_partitioner.partition_loads(exec_plan.k_weights))
        partials = _shuffled_partials(left, right, kernel,
                                      k_partitioner)

    # gather on the output chunk ID (an int) rather than the
    # (row_block, col_block) tuple: the columnar shuffle packs it
    keyed = partials.map(
        lambda kv: (kv[0][0] + kv[0][1] * out_grid_rows, kv[1])
    )
    gather_partitioner = None
    if balance and exec_plan.gather_weights:
        gather_partitioner = NnzBalancedPartitioner.from_weights(
            exec_plan.gather_weights, keyed.num_partitions)
        _record_nnz_stats(
            context, "matmul-gather",
            gather_partitioner.partition_loads(
                exec_plan.gather_weights))
    elif exec_plan is not None and exec_plan.gather_weights:
        _record_nnz_stats(
            context, "matmul-gather",
            _partition_loads(HashPartitioner(keyed.num_partitions),
                             exec_plan.gather_weights))
    summed = keyed.reduce_by_key(_merge_partials,
                                 partitioner=gather_partitioner)
    return _assemble(context, summed, meta).rdd


def _shuffled_partials(left, right, kernel, k_partitioner=None):
    """Spark-style: key both sides by k, cogroup (two shuffles).

    ``k_partitioner`` (when the exec plan packed one) places heavy
    contraction groups apart; the default hash placement sends k to
    partition ``k % n`` regardless of its pair count.
    """
    grid_rows_left = left.grid_rows
    grid_rows_right = right.grid_rows

    left_by_k = left.array.rdd.map(
        lambda kv: (kv[0] // grid_rows_left,
                    (kv[0] % grid_rows_left, kv[1]))
    )
    right_by_k = right.array.rdd.map(
        lambda kv: (kv[0] % grid_rows_right,
                    (kv[0] // grid_rows_right, kv[1]))
    )
    grouped = left_by_k.cogroup(right_by_k, partitioner=k_partitioner)

    def emit(groups):
        left_blocks, right_blocks = groups
        out = []
        for rb, left_chunk in left_blocks:
            for cb, right_chunk in right_blocks:
                partial = kernel(left_chunk, right_chunk)
                if partial is not None:
                    out.append(((rb, cb), partial))
        return out

    return grouped.flat_map_values(lambda g: emit(g)) \
                  .map(lambda kv: kv[1])


def _local_join_partials(left, right, kernel):
    """Fused stage: zip co-partitioned operands, no input shuffle.

    ``prepare_local`` (or matching prior placement) makes the
    ``partition_by`` calls below no-ops; otherwise they fall back to the
    one-off placement shuffles.
    """
    num_partitions = left.array.rdd.num_partitions
    left_part, right_part = k_partitioners(left, right, num_partitions)
    left_placed = left.array.rdd.partition_by(left_part)
    right_placed = right.array.rdd.partition_by(right_part)
    grid_rows_left = left.grid_rows
    grid_rows_right = right.grid_rows

    def zipper(left_records, right_records):
        right_by_k = {}
        for cid, chunk in right_records:
            right_by_k.setdefault(cid % grid_rows_right, []).append(
                (cid // grid_rows_right, chunk))
        out = []
        for cid, left_chunk in left_records:
            k = cid // grid_rows_left
            rb = cid % grid_rows_left
            for cb, right_chunk in right_by_k.get(k, ()):
                partial = kernel(left_chunk, right_chunk)
                if partial is not None:
                    out.append(((rb, cb), partial))
        return out

    return left_placed.zip_partitions(right_placed, zipper)


# ----------------------------------------------------------------------
# driver-side planning: nnz profiles and cost-model pricing
# ----------------------------------------------------------------------

def _known_partitions(matrix):
    """The operand's partition count without forcing compilation, or
    None when its plan has not materialized a source yet."""
    array = matrix.array
    if array._compiled is not None:
        return array._compiled.num_partitions
    node = array._logical
    while node is not None and not isinstance(node, SourceOp):
        children = node.children
        if not children:
            return None
        node = children[0]
    if isinstance(node, SourceOp):
        return node.rdd.num_partitions
    return None


def _imbalance(loads) -> float:
    loads = np.asarray(loads, dtype=float)
    if loads.size == 0:
        return 1.0
    mean = loads.mean()
    if mean <= 0:
        return 1.0
    return float(loads.max() / mean)


def matmul_nnz_profile(node: MatmulOp):
    """Shuffle weights and skew estimates for one matmul, from the
    operands' per-chunk valid counts. None when either side lacks exact
    stats (e.g. its plan passes through an estimate-only op).

    Returns a dict with ``k_weights`` (contraction group → modeled pair
    work), ``gather_weights`` (output chunk ID → partial-product nnz),
    and the max/mean load ratios hash vs LPT placement would produce
    for the gather, which is what the cost model's
    :meth:`skewed_stage_seconds` prices.
    """
    left, right = node.left, node.right
    left_est = estimate(left.array._logical)
    right_est = estimate(right.array._logical)
    if left_est.per_chunk is None or right_est.per_chunk is None:
        return None
    gl_rows, gl_cols = left.meta.chunk_grid
    gr_rows, gr_cols = right.meta.chunk_grid
    nnz_a = np.zeros((gl_rows, gl_cols))
    for cid, count in left_est.per_chunk.items():
        nnz_a[cid % gl_rows, cid // gl_rows] = count
    nnz_b = np.zeros((gr_rows, gr_cols))
    for cid, count in right_est.per_chunk.items():
        nnz_b[cid % gr_rows, cid // gr_rows] = count
    a_k = nnz_a.sum(axis=0)          # per contraction block, left nnz
    b_k = nnz_b.sum(axis=1)          # per contraction block, right nnz
    k_dim = max(left.block_shape[1], 1)
    k_weights = {
        int(k): float(a_k[k] * b_k[k] / k_dim + a_k[k] + b_k[k])
        for k in range(min(gl_cols, gr_rows))
        if a_k[k] > 0 and b_k[k] > 0
    }
    pair_nnz = nnz_a @ nnz_b          # expected pair count per output
    out_grid_rows = node.meta.chunk_grid[0]
    gather_weights = {
        int(rb + cb * out_grid_rows): float(pair_nnz[rb, cb])
        for rb in range(pair_nnz.shape[0])
        for cb in range(pair_nnz.shape[1])
        if pair_nnz[rb, cb] > 0
    }
    num_partitions = (_known_partitions(left)
                      or _known_partitions(right) or 8)
    hash_loads = _partition_loads(HashPartitioner(num_partitions),
                                  gather_weights)
    balanced = NnzBalancedPartitioner.from_weights(
        gather_weights, num_partitions) if gather_weights else None
    balanced_loads = (balanced.partition_loads(gather_weights)
                      if balanced is not None else hash_loads)
    return {
        "k_weights": k_weights,
        "gather_weights": gather_weights,
        "imbalance_hash": _imbalance(hash_loads),
        "imbalance_nnz": _imbalance(balanced_loads),
        "density_left": left_est.density,
        "density_right": right_est.density,
    }


def plan_matmul_execution(node: MatmulOp):
    """The optimizer rule body: a candidate MatmulOp with an attached
    :class:`~repro.core.logical.MatmulExecPlan`, or None.

    Picks the cheapest kernel kind the cost model prices (respecting a
    forced module config) and pairs it with nnz-balanced shuffle
    placement when that lowers the modeled skew. The optimizer's cost
    gate then accepts the candidate only when the whole plan is
    strictly cheaper than the gated-auto default.
    """
    if node.exec_plan is not None:
        return None
    profile = matmul_nnz_profile(node)
    if profile is None:
        return None
    model = getattr(node.left.context, "cost_model", None)
    if model is None:
        return None
    m, k_dim = node.left.block_shape
    n = node.right.block_shape[1]
    da = profile["density_left"]
    db = profile["density_right"]
    forced = _SPARSE_CONFIG["kernel"]
    kinds = ("dense", "coo", "csr") if forced == "auto" else (forced,)
    kernel = min(kinds, key=lambda kind: model.matmul_kernel_seconds(
        m, k_dim, n, da, db, kind))
    balance = (_SPARSE_CONFIG["balance"]
               and profile["imbalance_nnz"]
               < profile["imbalance_hash"] - 1e-9)
    plan = MatmulExecPlan(
        kernel=kernel,
        balance=balance,
        k_weights=profile["k_weights"],
        gather_weights=profile["gather_weights"],
        imbalance_hash=profile["imbalance_hash"],
        imbalance_nnz=profile["imbalance_nnz"],
    )
    return MatmulOp(node.left, node.right, node.local_join, node.meta,
                    operands_restricted=node.operands_restricted,
                    exec_plan=plan)


def matmul_stage_seconds(node: MatmulOp, model) -> float:
    """Modeled compute seconds for a matmul's partial-product stage,
    skew included — the cost the optimizer charges on top of the
    shuffles.

    An un-planned node prices as what :func:`_resolve_kernel` would run
    (the gated-auto CSR path) under hash placement; a planned node
    prices its chosen kernel under its chosen placement.
    """
    left_est = estimate(node.children[0])
    right_est = estimate(node.children[1])
    m, k_dim = node.left.block_shape
    n = node.right.block_shape[1]
    da = left_est.density
    db = right_est.density
    grid_k = max(node.left.meta.chunk_grid[1], 1)
    block_pairs = left_est.chunks * right_est.chunks / grid_k
    plan = node.exec_plan
    kind = plan.kernel if plan is not None else _SPARSE_CONFIG["kernel"]
    if kind == "auto":
        gate = sparse_threshold(model)
        if da < gate and db < gate:
            kind = "csr"
        elif min(da, db) < model.scatter_kernel_threshold():
            kind = "csr"
        else:
            kind = "dense"
    per_pair = model.matmul_kernel_seconds(m, k_dim, n, da, db, kind)
    imbalance = 1.0
    if plan is not None:
        imbalance = (plan.imbalance_nnz if plan.balance
                     else plan.imbalance_hash)
    else:
        profile = matmul_nnz_profile(node)
        if profile is not None:
            imbalance = profile["imbalance_hash"]
    return model.skewed_stage_seconds(block_pairs * per_pair,
                                      imbalance)


def gram_matmul(matrix):
    """``Mᵀ × M`` directly from M's blocks — no transpose materialized.

    Blocks sharing a row-block index k meet in one group; each pair
    (k,c1),(k,c2) contributes ``block(k,c1)ᵀ @ block(k,c2)`` to output
    block (c1,c2). One shuffle to group by k, one to gather.
    """
    from repro.matrix.matrix import SpangleMatrix

    n_cols = matrix.shape[1]
    block_cols = matrix.block_shape[1]
    meta = ArrayMetadata((n_cols, n_cols), (block_cols, block_cols),
                         dim_names=("row", "col"))
    out_grid_rows = meta.chunk_grid[0]
    grid_rows = matrix.grid_rows

    by_k = matrix.array.rdd.map(
        lambda kv: (kv[0] % grid_rows, (kv[0] // grid_rows, kv[1]))
    ).group_by_key()

    block_rows = matrix.block_shape[0]
    out_shape = (matrix.block_shape[1], matrix.block_shape[1])
    # resolve the kernel policy driver-side so process workers agree
    kind = _SPARSE_CONFIG["kernel"]
    gate = 0.0 if kind == "dense" else sparse_threshold(
        getattr(matrix.context, "cost_model", None))
    join = _coo_join if kind == "coo" else _csr_join

    def emit(blocks):
        out = []
        live = [(cb, chunk) for cb, chunk in blocks
                if chunk.valid_count]
        all_sparse = all(
            chunk.density < gate
            for _cb, chunk in live)
        if all_sparse:
            # COO kernel: a block (k × c) transposes by swapping its
            # offset decomposition; only matching k-indices join
            coo = {}
            for cb, chunk in live:
                offsets = chunk.indices()
                coo[cb] = (offsets % block_rows,       # k-index
                           offsets // block_rows,      # column
                           chunk.values())
            for c1, (a_ks, a_cols, a_vals) in coo.items():
                for c2, (b_ks, b_cols, b_vals) in coo.items():
                    partial = join(a_cols, a_ks, a_vals, b_ks,
                                   b_cols, b_vals, out_shape)
                    if partial is not None:
                        out.append(((c1, c2), partial))
            return out
        dense = {
            cb: chunk.to_dense(0).reshape(matrix.block_shape, order="F")
            for cb, chunk in live
        }
        for c1, a in dense.items():
            at = a.T
            for c2, b in dense.items():
                partial = at @ b
                if partial.any():
                    out.append(((c1, c2), partial))
        return out

    partials = by_k.flat_map_values(emit).map(lambda kv: kv[1])
    summed = partials.map(
        lambda kv: (kv[0][0] + kv[0][1] * out_grid_rows, kv[1])
    ).reduce_by_key(_merge_partials)
    return SpangleMatrix(_assemble(matrix.context, summed, meta))
