"""Distributed block matrix multiplication (Sections V-A-4 and VI-A).

The default path mirrors Spark's three-stage plan: two shuffles to key
the operands by the contraction block index *k*, then a reduce to gather
partial products per output block.

The **local join** path (Section VI-A) applies when the left operand is
partitioned by column-block and the right by row-block under the *same*
partitioner: the join becomes a per-partition zip — one fused stage, no
input shuffle — and only the final gather shuffles. The paper reports
this is what lets Spangle survive the largest (Mawi) matrices.

Partial products are bitmask-gated: a pair of blocks is multiplied only
when both carry valid cells, and zero rows/columns never reach the
kernel.
"""

from __future__ import annotations

import numpy as np

from repro.core import plan as plan_mod
from repro.core.array_rdd import ArrayRDD
from repro.core.chunk import Chunk
from repro.core.logical import MatmulOp
from repro.core.metadata import ArrayMetadata
from repro.engine import HashPartitioner
from repro.engine.partitioner import ExplicitPartitioner
from repro.errors import ShapeMismatchError


def _check_dims(left, right) -> None:
    if left.shape[1] != right.shape[0]:
        raise ShapeMismatchError(
            f"cannot multiply {left.shape} by {right.shape}"
        )
    if left.block_shape[1] != right.block_shape[0]:
        raise ShapeMismatchError(
            f"contraction block mismatch: left blocks are "
            f"{left.block_shape}, right blocks are {right.block_shape}"
        )


#: below this density both operands take the COO partial-product path
SPARSE_KERNEL_THRESHOLD = 0.02


class _COOPartial:
    """A partial product held as COO triples instead of a dense block.

    Hyper-sparse block pairs (the Hardesty/Mawi regime) would waste both
    time and memory on dense partials that are almost entirely zero;
    this keeps exactly the nonzero contributions. Merging with another
    partial (COO or dense) happens in :func:`_merge_partials`.
    """

    __slots__ = ("rows", "cols", "vals", "shape")

    def __init__(self, rows, cols, vals, shape):
        self.rows = rows
        self.cols = cols
        self.vals = vals
        self.shape = shape

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape)
        np.add.at(out, (self.rows, self.cols), self.vals)
        return out

    @property
    def nbytes(self) -> int:
        return int(self.rows.nbytes + self.cols.nbytes
                   + self.vals.nbytes)


def _merge_partials(a, b):
    """Sum two partial products of the same output block."""
    if isinstance(a, _COOPartial) and isinstance(b, _COOPartial):
        return _COOPartial(
            np.concatenate([a.rows, b.rows]),
            np.concatenate([a.cols, b.cols]),
            np.concatenate([a.vals, b.vals]),
            a.shape,
        )
    if isinstance(a, _COOPartial):
        a = a.to_dense()
    if isinstance(b, _COOPartial):
        b = b.to_dense()
    return a + b


def _partial_to_dense(partial) -> np.ndarray:
    if isinstance(partial, _COOPartial):
        return partial.to_dense()
    return partial


def _coo_join(a_rows, a_ks, a_vals, b_ks, b_cols, b_vals, shape):
    """Join two COO operands on the contraction index.

    ``a`` contributes (row, k, value), ``b`` contributes (k, col,
    value); returns the COO partial of their product, or None when no
    k-index is shared (no arithmetic at all — the COO analogue of the
    bitmask AND in Fig. 5).
    """
    shared = np.intersect1d(a_ks, b_ks)
    if shared.size == 0:
        return None
    out_rows, out_cols, out_vals = [], [], []
    a_order = np.argsort(a_ks, kind="stable")
    b_order = np.argsort(b_ks, kind="stable")
    a_ks_sorted = a_ks[a_order]
    b_ks_sorted = b_ks[b_order]
    for k in shared:
        a_lo, a_hi = np.searchsorted(a_ks_sorted, [k, k + 1])
        b_lo, b_hi = np.searchsorted(b_ks_sorted, [k, k + 1])
        ar = a_rows[a_order[a_lo:a_hi]]
        av = a_vals[a_order[a_lo:a_hi]]
        bc = b_cols[b_order[b_lo:b_hi]]
        bv = b_vals[b_order[b_lo:b_hi]]
        out_rows.append(np.repeat(ar, bc.size))
        out_cols.append(np.tile(bc, ar.size))
        out_vals.append(np.outer(av, bv).ravel())
    return _COOPartial(
        np.concatenate(out_rows), np.concatenate(out_cols),
        np.concatenate(out_vals), shape,
    )


def _sparse_partial(left_chunk, right_chunk, left_rows, contraction,
                    right_cols):
    """COO product of two sparse blocks; None when no k-index matches."""
    a_off = left_chunk.indices()
    b_off = right_chunk.indices()
    return _coo_join(
        a_off % left_rows, a_off // left_rows, left_chunk.values(),
        b_off % contraction, b_off // contraction, right_chunk.values(),
        (left_rows, right_cols),
    )


def _multiply_blocks(left, right, left_chunk, right_chunk):
    """Partial product of two blocks; None when nothing to do.

    Dense kernel by default; COO kernel when both blocks are very
    sparse (bitmask gating taken to its conclusion — only matching
    k-indices are ever touched).
    """
    if left_chunk.valid_count == 0 or right_chunk.valid_count == 0:
        return None
    if (left_chunk.density < SPARSE_KERNEL_THRESHOLD
            and right_chunk.density < SPARSE_KERNEL_THRESHOLD):
        return _sparse_partial(
            left_chunk, right_chunk, left.block_shape[0],
            left.block_shape[1], right.block_shape[1])
    a = left_chunk.to_dense(0).reshape(left.block_shape, order="F")
    b = right_chunk.to_dense(0).reshape(right.block_shape, order="F")
    partial = a @ b
    if not partial.any():
        return None
    return partial


def _result_meta(left, right) -> ArrayMetadata:
    return ArrayMetadata(
        (left.shape[0], right.shape[1]),
        (left.block_shape[0], right.block_shape[1]),
        dim_names=("row", "col"),
    )


def _assemble(context, partials_rdd, meta) -> ArrayRDD:
    """(chunk_id, partial sum) records → (chunk_id, Chunk) records.

    The gather shuffle upstream already keys partials by output chunk
    ID (``rb + cb * out_grid_rows``) so its int keys ride the columnar
    path; this step only densifies.
    """

    def to_chunk(record):
        chunk_id, partial = record
        flat = _partial_to_dense(partial).ravel(order="F")
        return chunk_id, Chunk.from_dense(flat, flat != 0)

    chunks = partials_rdd.map(to_chunk) \
        .filter(lambda kv: kv[1].valid_count > 0)
    partitioner = HashPartitioner(partials_rdd.num_partitions)
    placed = chunks.partition_by(partitioner)
    return ArrayRDD(placed, meta, context)


def k_partitioners(left, right, num_partitions: int):
    """The co-partitioning pair for the local join.

    Left blocks are placed by their column-block index, right blocks by
    their row-block index — both modulo the same partition count and
    under the same tag, so the engine treats them as equal partitioners
    and the contraction index *k* of both operands lands in the same
    partition.
    """
    tag = ("matmul-k", num_partitions)
    grid_rows_left = left.grid_rows
    grid_rows_right = right.grid_rows
    left_part = ExplicitPartitioner(
        num_partitions, lambda cid: cid // grid_rows_left, tag=tag,
        array_func=lambda cids: cids // grid_rows_left)
    right_part = ExplicitPartitioner(
        num_partitions, lambda cid: cid % grid_rows_right, tag=tag,
        array_func=lambda cids: cids % grid_rows_right)
    return left_part, right_part


def prepare_local(left, right, num_partitions=None):
    """Pre-place both operands for the local join (one-off shuffles).

    Returns ``(left_prepared, right_prepared)``. Once prepared, every
    ``block_matmul(..., local_join=True)`` on the pair runs without
    shuffling the inputs — the fused single stage of Section VI-A.
    """
    from repro.matrix.matrix import SpangleMatrix

    if num_partitions is None:
        num_partitions = left.array.rdd.num_partitions
    left_part, right_part = k_partitioners(left, right, num_partitions)
    left_placed = left.array.rdd.partition_by(left_part)
    right_placed = right.array.rdd.partition_by(right_part)
    return (
        SpangleMatrix(ArrayRDD(left_placed, left.meta, left.context)),
        SpangleMatrix(ArrayRDD(right_placed, right.meta, right.context)),
    )


def block_matmul(left, right, local_join: bool = False):
    """``left × right`` as a SpangleMatrix.

    Recorded as a logical :class:`~repro.core.logical.MatmulOp` (when
    fusion is on), so a subarray written after the multiply can restrict
    the operand sides before their shuffles; :func:`lower_matmul` runs
    the actual three-stage plan when an action forces it.
    """
    from repro.matrix.matrix import SpangleMatrix

    _check_dims(left, right)
    meta = _result_meta(left, right)
    context = left.context
    if plan_mod.fusion_enabled():
        node = MatmulOp(left, right, local_join, meta)
        return SpangleMatrix(ArrayRDD(None, meta, context,
                                      logical=node))
    return SpangleMatrix(ArrayRDD(
        _run_matmul(left, right, local_join, meta, context),
        meta, context))


def lower_matmul(node: MatmulOp, context):
    """Lower a recorded matmul node to its concrete chunk RDD."""
    return _run_matmul(node.left, node.right, node.local_join,
                       node.meta, context)


def _run_matmul(left, right, local_join, meta, context):
    out_grid_rows = meta.chunk_grid[0]

    if local_join:
        partials = _local_join_partials(left, right)
    else:
        partials = _shuffled_partials(left, right)

    # gather on the output chunk ID (an int) rather than the
    # (row_block, col_block) tuple: the columnar shuffle packs it
    summed = partials.map(
        lambda kv: (kv[0][0] + kv[0][1] * out_grid_rows, kv[1])
    ).reduce_by_key(_merge_partials)
    return _assemble(context, summed, meta).rdd


def _shuffled_partials(left, right):
    """Spark-style: key both sides by k, cogroup (two shuffles)."""
    grid_rows_left = left.grid_rows
    grid_rows_right = right.grid_rows

    left_by_k = left.array.rdd.map(
        lambda kv: (kv[0] // grid_rows_left,
                    (kv[0] % grid_rows_left, kv[1]))
    )
    right_by_k = right.array.rdd.map(
        lambda kv: (kv[0] % grid_rows_right,
                    (kv[0] // grid_rows_right, kv[1]))
    )
    grouped = left_by_k.cogroup(right_by_k)

    def emit(groups):
        left_blocks, right_blocks = groups
        out = []
        for rb, left_chunk in left_blocks:
            for cb, right_chunk in right_blocks:
                partial = _multiply_blocks(left, right, left_chunk,
                                           right_chunk)
                if partial is not None:
                    out.append(((rb, cb), partial))
        return out

    return grouped.flat_map_values(lambda g: emit(g)) \
                  .map(lambda kv: kv[1])


def _local_join_partials(left, right):
    """Fused stage: zip co-partitioned operands, no input shuffle.

    ``prepare_local`` (or matching prior placement) makes the
    ``partition_by`` calls below no-ops; otherwise they fall back to the
    one-off placement shuffles.
    """
    num_partitions = left.array.rdd.num_partitions
    left_part, right_part = k_partitioners(left, right, num_partitions)
    left_placed = left.array.rdd.partition_by(left_part)
    right_placed = right.array.rdd.partition_by(right_part)
    grid_rows_left = left.grid_rows
    grid_rows_right = right.grid_rows

    def zipper(left_records, right_records):
        right_by_k = {}
        for cid, chunk in right_records:
            right_by_k.setdefault(cid % grid_rows_right, []).append(
                (cid // grid_rows_right, chunk))
        out = []
        for cid, left_chunk in left_records:
            k = cid // grid_rows_left
            rb = cid % grid_rows_left
            for cb, right_chunk in right_by_k.get(k, ()):
                partial = _multiply_blocks(left, right, left_chunk,
                                           right_chunk)
                if partial is not None:
                    out.append(((rb, cb), partial))
        return out

    return left_placed.zip_partitions(right_placed, zipper)


def gram_matmul(matrix):
    """``Mᵀ × M`` directly from M's blocks — no transpose materialized.

    Blocks sharing a row-block index k meet in one group; each pair
    (k,c1),(k,c2) contributes ``block(k,c1)ᵀ @ block(k,c2)`` to output
    block (c1,c2). One shuffle to group by k, one to gather.
    """
    from repro.matrix.matrix import SpangleMatrix

    n_cols = matrix.shape[1]
    block_cols = matrix.block_shape[1]
    meta = ArrayMetadata((n_cols, n_cols), (block_cols, block_cols),
                         dim_names=("row", "col"))
    out_grid_rows = meta.chunk_grid[0]
    grid_rows = matrix.grid_rows

    by_k = matrix.array.rdd.map(
        lambda kv: (kv[0] % grid_rows, (kv[0] // grid_rows, kv[1]))
    ).group_by_key()

    block_rows = matrix.block_shape[0]
    out_shape = (matrix.block_shape[1], matrix.block_shape[1])

    def emit(blocks):
        out = []
        live = [(cb, chunk) for cb, chunk in blocks
                if chunk.valid_count]
        all_sparse = all(
            chunk.density < SPARSE_KERNEL_THRESHOLD
            for _cb, chunk in live)
        if all_sparse:
            # COO kernel: a block (k × c) transposes by swapping its
            # offset decomposition; only matching k-indices join
            coo = {}
            for cb, chunk in live:
                offsets = chunk.indices()
                coo[cb] = (offsets % block_rows,       # k-index
                           offsets // block_rows,      # column
                           chunk.values())
            for c1, (a_ks, a_cols, a_vals) in coo.items():
                for c2, (b_ks, b_cols, b_vals) in coo.items():
                    partial = _coo_join(a_cols, a_ks, a_vals, b_ks,
                                        b_cols, b_vals, out_shape)
                    if partial is not None:
                        out.append(((c1, c2), partial))
            return out
        dense = {
            cb: chunk.to_dense(0).reshape(matrix.block_shape, order="F")
            for cb, chunk in live
        }
        for c1, a in dense.items():
            at = a.T
            for c2, b in dense.items():
                partial = at @ b
                if partial.any():
                    out.append(((c1, c2), partial))
        return out

    partials = by_k.flat_map_values(emit).map(lambda kv: kv[1])
    summed = partials.map(
        lambda kv: (kv[0][0] + kv[0][1] * out_grid_rows, kv[1])
    ).reduce_by_key(_merge_partials)
    return SpangleMatrix(_assemble(matrix.context, summed, meta))
