"""Observation extraction: from raw pixels to detected sources.

The SS-DB benchmark the paper borrows its queries from distinguishes
three levels — raw imagery, *observations* (detected objects), and
observation groups. Q1/Q2 run on raw pixels; the rest conceptually run
on observations. This module implements the cooking step: threshold the
image, find connected bright regions, and emit one observation record
per region (image, centroid, flux, pixel count).

The labeling is distributed via the overlap mechanism: every chunk
labels its core plus a halo of depth ``max_radius`` and keeps only the
components whose *anchor pixel* (lexicographically smallest coordinate)
falls inside its core — each component is emitted exactly once, with no
global union-find, provided objects fit inside the halo (true for the
point-source imagery this models; larger blobs are truncated at the
halo and a warning record is counted).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import mapper
from repro.core.array_rdd import ArrayRDD
from repro.core.overlap import expanded_chunks
from repro.errors import ArrayError


@dataclass(frozen=True)
class Observation:
    """One detected source."""

    image: int
    centroid_x: float
    centroid_y: float
    flux: float
    num_pixels: int
    peak: float

    def position(self) -> tuple:
        return (self.centroid_x, self.centroid_y)


def _label_components(mask: np.ndarray, max_rounds: int) -> np.ndarray:
    """4-connected component labels by iterative min-propagation.

    Labels are the flattened index of each component's smallest member;
    background is -1. Vectorized: each round takes the elementwise min
    with the four neighbours (inside the mask); components converge in
    O(diameter) rounds, which the halo bounds.
    """
    rows, cols = mask.shape
    labels = np.where(
        mask, np.arange(rows * cols).reshape(rows, cols), -1)
    big = rows * cols + 1
    for _round in range(max_rounds):
        working = np.where(mask, labels, big)
        shifted = np.full_like(working, big)
        neighbour_min = working.copy()
        shifted[1:, :] = working[:-1, :]
        np.minimum(neighbour_min, shifted, out=neighbour_min)
        shifted.fill(big)
        shifted[:-1, :] = working[1:, :]
        np.minimum(neighbour_min, shifted, out=neighbour_min)
        shifted.fill(big)
        shifted[:, 1:] = working[:, :-1]
        np.minimum(neighbour_min, shifted, out=neighbour_min)
        shifted.fill(big)
        shifted[:, :-1] = working[:, 1:]
        np.minimum(neighbour_min, shifted, out=neighbour_min)
        new_labels = np.where(mask, neighbour_min, -1)
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
    return labels


def extract_observations(array: ArrayRDD, threshold: float,
                         max_radius: int = 4,
                         min_pixels: int = 1):
    """Detect connected bright regions; returns an RDD of Observations.

    ``array`` is an (x, y, image) ArrayRDD; a pixel belongs to a source
    when it is valid and its value exceeds ``threshold``. ``max_radius``
    bounds the source diameter (and sets the halo depth).
    """
    meta = array.meta
    if meta.ndim != 3:
        raise ArrayError(
            "extract_observations expects an (x, y, image) array"
        )
    if max_radius <= 0:
        raise ArrayError("max_radius must be positive")
    depth = (max_radius, max_radius, 0)
    cx, cy, ci = meta.chunk_shape
    expanded = expanded_chunks(array, depth)

    def detect(pair):
        chunk_id, (values, valid) = pair
        origin = mapper.chunk_origin(meta, chunk_id)
        observations = []
        bright = valid & (values > threshold)
        for t in range(ci):
            plane = bright[:, :, t]
            if not plane.any():
                continue
            labels = _label_components(plane, max_rounds=4 * max_radius)
            flat = labels[plane]
            pixel_rows, pixel_cols = np.nonzero(plane)
            pixel_values = values[:, :, t][plane]
            order = np.argsort(flat, kind="stable")
            flat = flat[order]
            pixel_rows = pixel_rows[order]
            pixel_cols = pixel_cols[order]
            pixel_values = pixel_values[order]
            boundaries = np.nonzero(np.diff(flat))[0] + 1
            starts = np.concatenate([[0], boundaries])
            ends = np.concatenate([boundaries, [flat.size]])
            for start, end in zip(starts, ends):
                rows_i = pixel_rows[start:end]
                cols_i = pixel_cols[start:end]
                vals_i = pixel_values[start:end]
                # the anchor is the component's smallest flattened
                # index == its first pixel in row-major order
                anchor_r = int(rows_i[0])
                anchor_c = int(cols_i[0])
                # keep only components anchored in this chunk's core
                if not (max_radius <= anchor_r < max_radius + cx
                        and max_radius <= anchor_c < max_radius + cy):
                    continue
                if vals_i.size < min_pixels:
                    continue
                weight = vals_i.sum()
                observations.append(Observation(
                    image=origin[2] + t,
                    centroid_x=float(
                        origin[0] - max_radius
                        + (rows_i * vals_i).sum() / weight),
                    centroid_y=float(
                        origin[1] - max_radius
                        + (cols_i * vals_i).sum() / weight),
                    flux=float(weight),
                    num_pixels=int(vals_i.size),
                    peak=float(vals_i.max()),
                ))
        return observations

    return expanded.flat_map(detect)


# ----------------------------------------------------------------------
# observation-level queries (the SS-DB "cooked" level)
# ----------------------------------------------------------------------

def count_observations(observations) -> int:
    return observations.count()

def brightest(observations, k: int = 10) -> list:
    """Top-k observations by flux (driver-side heap over partials)."""
    import heapq

    def local_top(part):
        return heapq.nlargest(k, part, key=lambda o: o.flux)

    partials = observations.map_partitions(local_top).collect()
    return heapq.nlargest(k, partials, key=lambda o: o.flux)


def observations_per_image(observations) -> dict:
    return observations.map(lambda o: (o.image, 1)).count_by_key()


def flux_histogram(observations, bins: int = 8) -> tuple:
    """(counts, edges) over observation fluxes."""
    fluxes = np.array(observations.map(lambda o: o.flux).collect())
    if fluxes.size == 0:
        return np.zeros(bins, dtype=np.int64), \
            np.linspace(0.0, 1.0, bins + 1)
    return np.histogram(fluxes, bins=bins)
