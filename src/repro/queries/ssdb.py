"""The SS-DB-style raster benchmark queries of Table I, on Spangle.

Five queries over a stack of images (dimensions x, y, image; one
attribute per band):

- **Q1** (aggregation): average of selected cells in a range —
  background-noise estimation over raw imagery.
- **Q2** (regridding): average of adjacent cells onto a coarser grid.
- **Q3** (aggregation): cells in a range matching a condition, averaged.
- **Q4** (polygons): count observations in a range satisfying a
  condition after a filter.
- **Q5** (density): group observations into spatial windows, find
  windows with more than a given number of observations.

Baseline implementations of the same queries live with their systems
(:mod:`repro.baselines`); this module provides the Spangle side plus the
shared dataset loader.
"""

from __future__ import annotations

import numpy as np

from repro.core import ArrayRDD, SpangleDataset
from repro.core import mapper
from repro.data.raster import sdss_stack
from repro.errors import ArrayError


def load_spangle_dataset(context, band_scenes: dict,
                         chunk_shape=(128, 128, 1),
                         num_partitions=None,
                         use_mask_rdd: bool = True) -> SpangleDataset:
    """Ingest ``{band: [2-D scenes]}`` into a 3-D multi-band dataset."""
    attributes = {}
    for band, scenes in band_scenes.items():
        values, valid = sdss_stack(scenes)
        attributes[band] = ArrayRDD.from_numpy(
            context, values, chunk_shape, valid=valid,
            num_partitions=num_partitions,
            dim_names=("x", "y", "image"), attribute=band)
    return SpangleDataset(attributes, use_mask_rdd=use_mask_rdd)


def _window_partials(array: ArrayRDD, window: int):
    """Per-window (sum, count) records keyed ``(image, wr, wc)``.

    Windows tile the (x, y) plane; images stay separate. Windows that
    straddle chunk boundaries are completed by the reduce.
    """
    if window <= 0:
        raise ArrayError("window must be positive")
    meta = array.meta
    if meta.ndim != 3:
        raise ArrayError("window queries expect an (x, y, image) array")
    # when windows tile chunks exactly, no window spans two chunks:
    # per-chunk results are final and the merge shuffle can be skipped
    globally_aligned = (
        meta.chunk_shape[0] % window == 0
        and meta.chunk_shape[1] % window == 0
        and meta.starts[0] % window == 0
        and meta.starts[1] % window == 0
    )

    cx, cy, ci = meta.chunk_shape

    def partials(part):
        for chunk_id, chunk in part:
            origin = mapper.chunk_origin(meta, chunk_id)
            dense = chunk.to_dense(0.0).reshape((cx, cy, ci), order="F")
            valid = chunk.valid_bools().reshape((cx, cy, ci), order="F")
            if not valid.any():
                continue
            aligned = (
                cx % window == 0 and cy % window == 0
                and origin[0] % window == 0 and origin[1] % window == 0
            )
            if aligned:
                # fast path: windows tile the chunk exactly — one
                # reshape-reduce per chunk
                wr0 = origin[0] // window
                wc0 = origin[1] // window
                nr = cx // window
                nc = cy // window
                filled = np.where(valid, dense, 0.0)
                sums = filled.reshape(nr, window, nc, window, ci) \
                             .sum(axis=(1, 3))
                counts = valid.reshape(nr, window, nc, window, ci) \
                              .sum(axis=(1, 3))
                live = np.argwhere(counts > 0)
                for wr, wc, t in live:
                    yield ((origin[2] + int(t), wr0 + int(wr),
                            wc0 + int(wc)),
                           (float(sums[wr, wc, t]),
                            int(counts[wr, wc, t])))
                continue
            # general path: label every cell with its window and group
            rows = (origin[0] + np.arange(cx)) // window
            cols = (origin[1] + np.arange(cy)) // window
            imgs = origin[2] + np.arange(ci)
            big = 1 << 20
            keys = ((imgs[None, None, :] * big + rows[:, None, None])
                    * big + cols[None, :, None]
                    + np.zeros((cx, cy, ci), dtype=np.int64))
            flat_keys = keys.ravel()
            flat_vals = np.where(valid, dense, 0.0).ravel()
            flat_valid = valid.ravel().astype(np.float64)
            uniq, inverse = np.unique(flat_keys, return_inverse=True)
            sums = np.bincount(inverse, weights=flat_vals,
                               minlength=uniq.size)
            counts = np.bincount(inverse, weights=flat_valid,
                                 minlength=uniq.size)
            for key, s, n in zip(uniq, sums, counts):
                if n > 0:
                    image = int(key) // (big * big)
                    wr = (int(key) // big) % big
                    wc = int(key) % big
                    yield (image, wr, wc), (float(s), int(n))

    mapped = array.rdd.map_partitions(partials)
    if globally_aligned:
        return mapped
    return mapped.reduce_by_key(
        lambda a, b: (a[0] + b[0], a[1] + b[1]))


class SpangleRasterQueries:
    """The five Table-I queries against a SpangleDataset."""

    name = "Spangle"

    def __init__(self, dataset: SpangleDataset):
        self.dataset = dataset

    def _restricted(self, band: str, box=None) -> ArrayRDD:
        ds = self.dataset
        if box is not None:
            lo, hi = box
            ds = ds.subarray(lo, hi)
        return ds.evaluate(band)

    # ------------------------------------------------------------------

    def q1_aggregation(self, band: str, box=None) -> float:
        """Average value of selected cells (optionally in a range)."""
        return self._restricted(band, box).aggregate("avg")

    def q2_regrid(self, band: str, grid: int, box=None) -> dict:
        """Average of adjacent cells onto a grid of ``grid × grid``."""
        array = self._restricted(band, box)
        merged = _window_partials(array, grid).collect()
        return {
            key: s / n for key, (s, n) in merged
        }

    def q3_conditional_aggregation(self, band: str, predicate,
                                   box=None) -> float:
        """Average of cells in a range matching a condition."""
        ds = self.dataset
        if box is not None:
            ds = ds.subarray(*box)
        return ds.filter(band, predicate).evaluate(band).aggregate("avg")

    def q4_polygons(self, band: str, filter_predicate,
                    count_predicate, box=None) -> int:
        """Filter, then count observations satisfying a condition."""
        ds = self.dataset
        if box is not None:
            ds = ds.subarray(*box)
        filtered = ds.filter(band, filter_predicate).evaluate(band)
        return filtered.filter(count_predicate).count_valid()

    def q5_density(self, band: str, window: int, min_count: int,
                   box=None) -> int:
        """Windows containing more than ``min_count`` observations.

        Unlike Q2, Q5 counts observations across *all* attributes'
        shared validity — this is the query Fig. 9b uses to measure the
        MaskRDD's effect as attributes are added.
        """
        array = self._restricted(band, box)
        merged = _window_partials(array, window).collect()
        return sum(1 for _key, (_s, n) in merged if n > min_count)


def reference_window_counts(valid: np.ndarray, window: int) -> dict:
    """Dense-numpy oracle for window observation counts (tests)."""
    counts = {}
    xs, ys, imgs = np.nonzero(valid)
    for x, y, img in zip(xs, ys, imgs):
        key = (int(img), int(x) // window, int(y) // window)
        counts[key] = counts.get(key, 0) + 1
    return counts
