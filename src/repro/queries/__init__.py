"""Benchmark queries (Table I) over Spangle and the baseline systems."""

from repro.queries.ssdb import SpangleRasterQueries, load_spangle_dataset

__all__ = ["SpangleRasterQueries", "load_spangle_dataset"]
