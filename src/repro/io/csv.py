"""CSV cell records: ``coord_0,...,coord_{d-1},attr_0,...,attr_{k-1}``.

Only valid cells are written — the textual analogue of never storing
nulls. The header line names the dimensions and attributes, e.g.::

    # dims: x, y, time | attrs: chlorophyll

Reading returns records compatible with the ingest pipeline
(:func:`repro.core.ingest.array_rdd_from_records`).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import IngestError


def write_csv_cells(path, dim_names, attr_names, records) -> int:
    """Write ``(coords, values)`` records; returns the cell count.

    ``values`` may be a scalar (single attribute) or a sequence of one
    value per attribute.
    """
    path = Path(path)
    count = 0
    with path.open("w") as handle:
        handle.write(
            "# dims: " + ", ".join(dim_names)
            + " | attrs: " + ", ".join(attr_names) + "\n")
        for coords, values in records:
            if np.isscalar(values):
                values = (values,)
            if len(values) != len(attr_names):
                raise IngestError(
                    f"record has {len(values)} values for "
                    f"{len(attr_names)} attributes"
                )
            handle.write(
                ",".join(str(int(c)) for c in coords) + ","
                + ",".join(repr(float(v)) for v in values) + "\n")
            count += 1
    return count


def read_csv_cells(path):
    """Parse a cell CSV; returns ``(dim_names, attr_names, records)``.

    Records are ``(coords_tuple, values_tuple)``.
    """
    path = Path(path)
    with path.open() as handle:
        header = handle.readline().strip()
        if not header.startswith("# dims:") or "| attrs:" not in header:
            raise IngestError(
                f"{path}: missing '# dims: ... | attrs: ...' header"
            )
        dims_part, attrs_part = header[len("# dims:"):].split("| attrs:")
        dim_names = tuple(
            name.strip() for name in dims_part.split(",") if name.strip())
        attr_names = tuple(
            name.strip() for name in attrs_part.split(",")
            if name.strip())
        ndim = len(dim_names)
        nattr = len(attr_names)
        records = []
        for line_number, line in enumerate(handle, start=2):
            line = line.strip()
            if not line:
                continue
            fields = line.split(",")
            if len(fields) != ndim + nattr:
                raise IngestError(
                    f"{path}:{line_number}: expected {ndim + nattr} "
                    f"fields, got {len(fields)}"
                )
            try:
                coords = tuple(int(f) for f in fields[:ndim])
                values = tuple(float(f) for f in fields[ndim:])
            except ValueError as exc:
                raise IngestError(
                    f"{path}:{line_number}: {exc}"
                ) from exc
            records.append((coords, values))
    return dim_names, attr_names, records
