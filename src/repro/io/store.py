"""ChunkStore: chunk-granular persistence for ArrayRDDs.

SNF export materializes a dense array — right for small results, wrong
for big sparse ones. The ChunkStore keeps the chunked, compressed form:
a directory with a JSON manifest (metadata + chunk index) and one
``.npz`` per chunk holding the valid offsets and values. Loading builds
the ArrayRDD back without ever densifying, and chunks are read inside
tasks, one partition at a time.

This mirrors the storage-manager design of ArrayStore (Soroush et al.,
the paper's [18]) at the scale this repo needs: chunk-aligned files,
a manifest for pruning, validity preserved exactly.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.array_rdd import ArrayRDD
from repro.core.chunk import Chunk
from repro.core.metadata import ArrayMetadata
from repro.engine import HashPartitioner
from repro.errors import IngestError

MANIFEST = "manifest.json"
FORMAT_VERSION = 1


def save_array(array: ArrayRDD, directory) -> int:
    """Persist an ArrayRDD; returns the number of chunk files written.

    Existing contents of ``directory`` are overwritten chunk-by-chunk;
    stale chunk files from a previous save are removed.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for stale in directory.glob("chunk_*.npz"):
        stale.unlink()
    meta = array.meta
    metrics = array.context.metrics
    chunk_ids = []
    for index in range(array.rdd.num_partitions):
        records = array.context.run_partition(array.rdd, index)
        for chunk_id, chunk in records:
            path = directory / f"chunk_{chunk_id}.npz"
            np.savez(path, offsets=chunk.indices(),
                     values=chunk.values())
            metrics.record_disk_write(path.stat().st_size)
            chunk_ids.append(int(chunk_id))
    manifest = {
        "format_version": FORMAT_VERSION,
        "shape": list(meta.shape),
        "chunk_shape": list(meta.chunk_shape),
        "starts": list(meta.starts),
        "dim_names": list(meta.dim_names),
        "dtype": str(meta.dtype),
        "attribute": meta.attribute,
        "chunks": sorted(chunk_ids),
    }
    (directory / MANIFEST).write_text(json.dumps(manifest, indent=2))
    return len(chunk_ids)


def load_manifest(directory) -> dict:
    directory = Path(directory)
    path = directory / MANIFEST
    if not path.exists():
        raise IngestError(f"{directory}: no {MANIFEST} — not a "
                          f"ChunkStore directory")
    try:
        manifest = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise IngestError(f"{path}: corrupt manifest: {exc}") from exc
    if manifest.get("format_version") != FORMAT_VERSION:
        raise IngestError(
            f"{path}: unsupported format version "
            f"{manifest.get('format_version')!r}"
        )
    return manifest


def load_array(context, directory, num_partitions=None,
               region=None) -> ArrayRDD:
    """Load a stored ArrayRDD.

    ``region=(lo, hi)`` prunes chunk files by the manifest before any
    I/O happens (the store-level analogue of Subarray's ID pruning) and
    then applies the exact range restriction.
    """
    directory = Path(directory)
    manifest = load_manifest(directory)
    meta = ArrayMetadata(
        tuple(manifest["shape"]), tuple(manifest["chunk_shape"]),
        starts=tuple(manifest["starts"]),
        dim_names=tuple(manifest["dim_names"]),
        dtype=np.dtype(manifest["dtype"]),
        attribute=manifest["attribute"])
    wanted = manifest["chunks"]
    if region is not None:
        from repro.core import mapper

        lo, hi = region
        in_range = set(mapper.chunk_ids_in_range(meta, lo, hi))
        wanted = [cid for cid in wanted if cid in in_range]
    if num_partitions is None:
        num_partitions = context.default_parallelism
    partitioner = HashPartitioner(num_partitions)
    assignments = [[] for _ in range(num_partitions)]
    for chunk_id in wanted:
        assignments[partitioner.partition(chunk_id)].append(chunk_id)
    cells = meta.cells_per_chunk
    metrics = context.metrics

    def read_partition(index):
        for chunk_id in assignments[index]:
            path = directory / f"chunk_{chunk_id}.npz"
            if not path.exists():
                raise IngestError(
                    f"{path}: chunk listed in manifest but missing"
                )
            metrics.record_disk_read(path.stat().st_size)
            with np.load(path) as payload:
                chunk = Chunk.from_sparse(cells, payload["offsets"],
                                          payload["values"])
            yield chunk_id, chunk

    rdd = context.generate(num_partitions, read_partition,
                           partitioner=partitioner)
    array = ArrayRDD(rdd, meta, context)
    if region is not None:
        array = array.subarray(*region)
    return array
