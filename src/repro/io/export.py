"""Export: writing ArrayRDDs and datasets back to SNF / CSV.

The inverse of the ingest paths — analysis results (regridded arrays,
aggregates, filtered datasets) leave the cluster as the same formats
they came in as. CSV export streams one partition at a time so only a
partition's cells are ever held on the driver; SNF export materializes
the dense array (its layout is dense by definition), so it is meant for
result-sized arrays, not raw inputs.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core import mapper
from repro.core.array_rdd import ArrayRDD
from repro.io.snf import write_snf


def array_rdd_to_snf(array: ArrayRDD, path) -> None:
    """Write one ArrayRDD as a single-attribute SNF file."""
    values, valid = array.collect_dense(fill=0.0)
    dims = {
        name: size
        for name, size in zip(array.meta.dim_names, array.meta.shape)
    }
    write_snf(path, dims, {array.meta.attribute: values}, valid)


def dataset_to_snf(dataset, path) -> None:
    """Write every (evaluated) attribute of a dataset into one SNF file.

    The dataset's pending mask is applied first, so what lands on disk
    is exactly what a reader would have computed.
    """
    meta = dataset.meta
    dims = {name: size
            for name, size in zip(meta.dim_names, meta.shape)}
    attributes = {}
    combined_valid = None
    for name in dataset.attribute_names:
        values, valid = dataset.evaluate(name).collect_dense(fill=0.0)
        attributes[name] = values
        combined_valid = valid if combined_valid is None \
            else (combined_valid & valid)
    write_snf(path, dims, attributes, combined_valid)


def array_rdd_to_csv(array: ArrayRDD, path) -> int:
    """Stream an ArrayRDD's valid cells to a cell CSV; returns the count.

    Partitions are collected one at a time (``run_partition``), so the
    driver never holds more than one partition of records.
    """
    path = Path(path)
    meta = array.meta
    count = 0
    with path.open("w") as handle:
        handle.write(
            "# dims: " + ", ".join(meta.dim_names)
            + " | attrs: " + meta.attribute + "\n")
        for index in range(array.rdd.num_partitions):
            records = array.context.run_partition(array.rdd, index)
            for chunk_id, chunk in records:
                offsets = chunk.indices()
                if offsets.size == 0:
                    continue
                coords = mapper.coords_for_offsets_array(
                    meta, chunk_id, offsets)
                for cell_coords, value in zip(coords, chunk.values()):
                    handle.write(
                        ",".join(str(int(c)) for c in cell_coords)
                        + "," + repr(float(value)) + "\n")
                    count += 1
    return count


def csv_to_array_rdd(context, path, chunk_shape,
                     num_partitions=None) -> ArrayRDD:
    """Read a single-attribute cell CSV into an ArrayRDD.

    The array geometry is inferred from the cells' bounding box.
    """
    from repro.core.ingest import array_rdd_from_records
    from repro.core.metadata import ArrayMetadata
    from repro.io.csv import read_csv_cells

    dim_names, attr_names, records = read_csv_cells(path)
    if not records:
        raise ValueError(f"{path}: no cells to infer a geometry from")
    coords = np.array([record[0] for record in records],
                      dtype=np.int64)
    starts = tuple(int(c) for c in coords.min(axis=0))
    shape = tuple(
        int(hi - lo + 1)
        for lo, hi in zip(coords.min(axis=0), coords.max(axis=0)))
    meta = ArrayMetadata(shape, chunk_shape, starts=starts,
                         dim_names=dim_names,
                         attribute=attr_names[0])
    cells = [(record[0], record[1][0]) for record in records]
    return array_rdd_from_records(context, cells, meta, num_partitions)
