"""File formats Spangle ingests (Section III-A mentions CSV and NetCDF).

- :mod:`repro.io.csv` — cell records as text: one line per valid cell,
  coordinates then attribute values.
- :mod:`repro.io.snf` — the *Simple NetCDF-like Format*: a binary
  container with a JSON header describing dimensions and attributes,
  followed by raw little-endian arrays. Stands in for NetCDF, which is
  not available offline.
"""

from repro.io.csv import read_csv_cells, write_csv_cells
from repro.io.snf import read_snf, write_snf

__all__ = [
    "read_csv_cells",
    "read_snf",
    "write_csv_cells",
    "write_snf",
]
