"""SNF — the Simple NetCDF-like Format.

Layout::

    8 bytes   magic  b"SNF\\x00v01\\n"
    8 bytes   header length (little-endian uint64)
    N bytes   JSON header: {"dims": {...}, "attributes": [...]}
    payload   per attribute, in header order:
                values array  (raw little-endian, C order)
                valid bitmap  (uint8, 0/1, same cell order)

Multi-attribute files model NetCDF variables over shared dimensions;
the valid bitmap models NetCDF's _FillValue semantics explicitly.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import IngestError

MAGIC = b"SNF\x00v01\n"


def write_snf(path, dims: dict, attributes: dict,
              valid: np.ndarray = None) -> None:
    """Write arrays to an SNF file.

    ``dims`` maps dimension names to sizes (ordered); ``attributes``
    maps attribute names to arrays of exactly that shape; ``valid`` is
    an optional shared validity array (None = everything valid, NaNs
    still count as invalid on read).
    """
    path = Path(path)
    shape = tuple(dims.values())
    header = {"dims": dims, "attributes": []}
    blobs = []
    if valid is None:
        valid_u8 = np.ones(shape, dtype=np.uint8)
    else:
        valid_arr = np.asarray(valid, dtype=bool)
        if valid_arr.shape != shape:
            raise IngestError(
                f"valid shape {valid_arr.shape} != dims shape {shape}"
            )
        valid_u8 = valid_arr.astype(np.uint8)
    for name, array in attributes.items():
        array = np.asarray(array)
        if array.shape != shape:
            raise IngestError(
                f"attribute {name!r} shape {array.shape} != dims "
                f"shape {shape}"
            )
        data = np.ascontiguousarray(array, dtype="<f8")
        header["attributes"].append({"name": name, "dtype": "<f8"})
        blobs.append(data.tobytes())
        blobs.append(np.ascontiguousarray(valid_u8).tobytes())
    header_bytes = json.dumps(header).encode("utf-8")
    with path.open("wb") as handle:
        handle.write(MAGIC)
        handle.write(len(header_bytes).to_bytes(8, "little"))
        handle.write(header_bytes)
        for blob in blobs:
            handle.write(blob)


def read_snf(path):
    """Read an SNF file → ``(dims, {attr: (values, valid)})``."""
    path = Path(path)
    with path.open("rb") as handle:
        magic = handle.read(len(MAGIC))
        if magic != MAGIC:
            raise IngestError(f"{path}: not an SNF file")
        header_len = int.from_bytes(handle.read(8), "little")
        try:
            header = json.loads(handle.read(header_len))
        except json.JSONDecodeError as exc:
            raise IngestError(f"{path}: corrupt header: {exc}") from exc
        dims = {name: int(size) for name, size in header["dims"].items()}
        shape = tuple(dims.values())
        cells = int(np.prod(shape))
        out = {}
        for attr in header["attributes"]:
            raw = handle.read(cells * 8)
            if len(raw) != cells * 8:
                raise IngestError(
                    f"{path}: truncated payload for {attr['name']!r}"
                )
            values = np.frombuffer(raw, dtype="<f8").reshape(shape).copy()
            raw_valid = handle.read(cells)
            if len(raw_valid) != cells:
                raise IngestError(
                    f"{path}: truncated validity for {attr['name']!r}"
                )
            valid = np.frombuffer(raw_valid, dtype=np.uint8) \
                      .reshape(shape).astype(bool)
            valid &= ~np.isnan(values)
            out[attr["name"]] = (values, valid)
    return dims, out


def load_snf_as_dataset(context, path, chunk_shape,
                        num_partitions=None):
    """Read an SNF file straight into a multi-attribute SpangleDataset."""
    from repro.core import ArrayRDD, SpangleDataset

    dims, attributes = read_snf(path)
    dim_names = tuple(dims.keys())
    arrays = {}
    for name, (values, valid) in attributes.items():
        arrays[name] = ArrayRDD.from_numpy(
            context, values, chunk_shape, valid=valid,
            num_partitions=num_partitions, dim_names=dim_names,
            attribute=name)
    return SpangleDataset(arrays)
