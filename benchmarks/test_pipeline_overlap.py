"""Pipelined vs barrier scheduling — overlap on independent stages.

The pipelined scheduler (the default on parallel contexts) launches a
stage's shuffle map tasks the moment its inputs are materialized, so
the independent sides of a join run concurrently where the barrier
scheduler (``disable_pipelining()``) materializes them one after the
other. Two workloads measure that contract from both directions:

- **join-overlap** — a two-sided shuffle join whose map tasks block
  for a fixed interval (GIL-releasing work, modeling the I/O- and
  network-bound maps of a real cluster). With both sides overlapped
  the job's wall time collapses toward one side's; asserted at
  ``>= MIN_OVERLAP_SPEEDUP``. A CPU-bound variant (``np.dot`` work,
  NumPy releases the GIL) is also measured, and asserted only on
  machines with >= 4 cores where the kernels can truly run in
  parallel.
- **chain-overhead** — three chained shuffles with nothing to
  overlap: the pipelined scheduler's event loop, per-stage locks, and
  readiness bookkeeping must cost nothing, so pipelined wall time
  stays within ``OVERHEAD_CEILING`` of the barrier loop
  (min-over-repeats on both sides).

Both workloads also assert byte-identical results across the two
schedulers — overlap must never change what a job returns.

Run as a script to emit the JSON artifact (plus a replayable trace
event log of the overlapped join)::

    PYTHONPATH=src python benchmarks/test_pipeline_overlap.py pipeline-overlap.json
"""

from __future__ import annotations

import json
import os
import pickle
import time

import numpy as np

if __package__ in (None, ""):
    # allow `python benchmarks/test_pipeline_overlap.py` (the CI smoke
    # job) as well as `pytest benchmarks/`
    import sys

    sys.path.insert(0, os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))

from benchmarks.harness import print_table, write_trace_artifact
from repro.engine import ClusterContext, HashPartitioner, disable_pipelining

#: overlapped two-sided join must beat the barrier loop by this much
MIN_OVERLAP_SPEEDUP = 1.4
#: and on a pure chain the pipelining machinery must be ~free
OVERHEAD_CEILING = 1.05

EXECUTORS = 4
PARTS_PER_SIDE = 2
KEYS = 8
RECORDS_PER_SIDE = 40
TASK_BLOCK_S = 0.04
CHAIN_TASK_BLOCK_S = 0.02
REPEATS = 3
#: CPU-bound variant: np.dot passes per map task over this square size
DOT_SIZE = 256
DOT_PASSES = 6


def _context(trace: bool = False) -> ClusterContext:
    return ClusterContext(num_executors=EXECUTORS, use_threads=True,
                          default_parallelism=EXECUTORS, trace=trace)


def _blocking_map(kv):
    time.sleep(TASK_BLOCK_S)
    return kv


def _chain_map(kv):
    time.sleep(CHAIN_TASK_BLOCK_S)
    return kv


def _dot_map(kv):
    block = np.full((DOT_SIZE, DOT_SIZE), float(kv[1] % 7 + 1))
    for _ in range(DOT_PASSES):
        block = np.dot(block, block) / DOT_SIZE
    return (kv[0], kv[1] + int(block[0, 0]) % 2)


def _two_sided_join(ctx, mapper):
    left = ctx.parallelize(
        [(i % KEYS, i) for i in range(RECORDS_PER_SIDE)],
        PARTS_PER_SIDE).map(mapper)
    right = ctx.parallelize(
        [(i % KEYS, -i) for i in range(RECORDS_PER_SIDE)],
        PARTS_PER_SIDE).map(mapper)
    return left.join(right).collect()


def _three_stage_chain(ctx):
    pairs = ctx.parallelize(
        [(i % KEYS, i) for i in range(RECORDS_PER_SIDE)],
        PARTS_PER_SIDE)
    return (pairs.map(_chain_map)
                 .reduce_by_key(lambda a, b: a + b)
                 .map(_chain_map)
                 .reduce_by_key(lambda a, b: a + b,
                                partitioner=HashPartitioner(PARTS_PER_SIDE))
                 .map(_chain_map)
                 .reduce_by_key(lambda a, b: a + b)
                 .collect())


def _measure(workload, pipelined: bool) -> dict:
    walls = []
    result = None
    for _ in range(REPEATS):
        toggle = disable_pipelining() if not pipelined else None
        try:
            with _context() as ctx:
                start = time.perf_counter()
                result = workload(ctx)
                walls.append(time.perf_counter() - start)
        finally:
            if toggle is not None:
                toggle.__exit__(None, None, None)
    return {"wall_s": min(walls), "walls_s": walls, "result": result}


def run() -> dict:
    workloads = {
        "join_blocking": lambda ctx: _two_sided_join(ctx, _blocking_map),
        "join_cpu": lambda ctx: _two_sided_join(ctx, _dot_map),
        "chain": _three_stage_chain,
    }
    results = {}
    for name, workload in workloads.items():
        barrier = _measure(workload, pipelined=False)
        pipelined = _measure(workload, pipelined=True)
        assert pickle.dumps(barrier["result"]) \
            == pickle.dumps(pipelined["result"]), name
        results[name] = {
            "barrier_wall_s": barrier["wall_s"],
            "pipelined_wall_s": pipelined["wall_s"],
            "barrier_walls_s": barrier["walls_s"],
            "pipelined_walls_s": pipelined["walls_s"],
            "speedup": barrier["wall_s"] / max(pipelined["wall_s"], 1e-9),
        }

    artifact = {
        "executors": EXECUTORS,
        "parts_per_side": PARTS_PER_SIDE,
        "task_block_s": TASK_BLOCK_S,
        "repeats": REPEATS,
        "cpu_count": os.cpu_count(),
        "min_overlap_speedup": MIN_OVERLAP_SPEEDUP,
        "overhead_ceiling": OVERHEAD_CEILING,
        "workloads": results,
    }
    print_table(
        "pipelined vs barrier scheduling (thread backend, min of "
        f"{REPEATS})",
        ["workload", "barrier", "pipelined", "speedup"],
        [
            [name,
             f"{row['barrier_wall_s'] * 1e3:.1f}ms",
             f"{row['pipelined_wall_s'] * 1e3:.1f}ms",
             f"{row['speedup']:.2f}x"]
            for name, row in results.items()
        ],
    )
    return artifact


def test_pipeline_overlap():
    artifact = run()
    workloads = artifact["workloads"]
    # blocking maps overlap regardless of core count: the barrier loop
    # pays both join sides in sequence, the pipelined scheduler pays
    # the slower one
    blocking = workloads["join_blocking"]
    assert blocking["speedup"] >= MIN_OVERLAP_SPEEDUP, (
        f"two-sided join sped up only {blocking['speedup']:.2f}x "
        f"(barrier {blocking['barrier_wall_s']:.3f}s vs pipelined "
        f"{blocking['pipelined_wall_s']:.3f}s)")
    # CPU-bound maps need real cores to overlap; on smaller machines
    # the numbers are still recorded in the artifact
    if (os.cpu_count() or 1) >= 4:
        cpu = workloads["join_cpu"]
        assert cpu["speedup"] >= MIN_OVERLAP_SPEEDUP, (
            f"CPU-bound join sped up only {cpu['speedup']:.2f}x on "
            f"{os.cpu_count()} cores")
    # a pure chain has no independent stages: pipelining must not slow
    # it down beyond timer noise
    chain = workloads["chain"]
    overhead = chain["pipelined_wall_s"] / max(chain["barrier_wall_s"],
                                               1e-9)
    assert overhead <= OVERHEAD_CEILING, (
        f"pipelined chain paid {overhead:.3f}x over the barrier loop")


def main(json_path: str = None) -> dict:
    artifact = run()
    if json_path:
        # one traced pipelined run of the overlapped join, for the
        # Chrome-trace / `repro trace` artifacts: the two cogroup-side
        # stage spans visibly overlap and carry depends_on edges
        with _context(trace=True) as ctx:
            _two_sided_join(ctx, _blocking_map)
            stage_spans = [
                {"name": span.name,
                 "start_s": span.start_s,
                 "end_s": span.end_s,
                 "depends_on": span.attrs.get("depends_on")}
                for span in ctx.tracer.spans()
                if span.kind in ("shuffle", "result")]
            artifact["trace"] = write_trace_artifact(ctx, json_path)
            artifact["trace"]["stage_spans"] = stage_spans
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2)
    print(json.dumps(artifact, indent=2))
    return artifact


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else None)
