"""Tracing overhead — trace=False must be free, trace=True cheap.

The tracer's contract is that a context created with the default
``trace=False`` pays only one attribute check per would-be span: the
fused 4-operator chain from the fusion benchmark is run with tracing
off and with tracing on, and the disabled run must not be slower than
the traced run beyond timer noise (``wall_disabled <= wall_traced *
1.05``, min-over-repeats on both sides). The traced run's absolute
overhead is recorded in the JSON artifact so regressions show up in CI
history.

Run as a script to emit the JSON artifact::

    PYTHONPATH=src python benchmarks/test_trace_overhead.py overhead.json
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

if __package__ in (None, ""):
    # allow `python benchmarks/test_trace_overhead.py` (the CI smoke
    # job) as well as `pytest benchmarks/`
    import sys

    sys.path.insert(0, os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))

from benchmarks.harness import fresh_context, print_table
from repro.core import ArrayRDD

#: disabled tracing may not cost more than this fraction of a traced run
OVERHEAD_CEILING = 1.05
REPEATS = 5

SHAPE = (1024, 1024)
CHUNK = (128, 128)
DENSITY = 0.25


def _build_array(ctx) -> ArrayRDD:
    rng = np.random.default_rng(7)
    data = rng.random(SHAPE)
    valid = rng.random(SHAPE) < DENSITY
    return ArrayRDD.from_numpy(ctx, data, CHUNK, valid=valid).materialize()


def _chain(arr: ArrayRDD) -> ArrayRDD:
    """subarray → filter → map → scalar: 4 chunk-local operators."""
    return (arr.subarray((16, 16), (1000, 1000))
               .filter(lambda xs: xs > 0.05)
               .map_values(lambda xs: xs * xs)
            * 10.0)


def _run_mode(trace: bool) -> dict:
    ctx = fresh_context(8, trace=trace)
    arr = _build_array(ctx)
    walls = []
    count = None
    for _ in range(REPEATS):
        out = _chain(arr)
        start = time.perf_counter()
        count = out.count_valid()
        walls.append(time.perf_counter() - start)
    spans = ctx.tracer.spans() if trace else []
    return {
        "trace": trace,
        "wall_s": min(walls),
        "walls_s": walls,
        "count": count,
        "num_spans": len(spans),
    }


def run() -> dict:
    disabled = _run_mode(False)
    traced = _run_mode(True)
    overhead = traced["wall_s"] / max(disabled["wall_s"], 1e-9)
    artifact = {
        "shape": list(SHAPE),
        "chunk_shape": list(CHUNK),
        "density": DENSITY,
        "chain_ops": 4,
        "repeats": REPEATS,
        "overhead_ceiling": OVERHEAD_CEILING,
        "traced_over_disabled": overhead,
        "disabled": disabled,
        "traced": traced,
    }
    print_table(
        "tracing overhead (fused 4-op chain)",
        ["mode", "wall (min)", "spans recorded"],
        [
            ["trace=False", f"{disabled['wall_s'] * 1e3:.2f}ms",
             disabled["num_spans"]],
            ["trace=True", f"{traced['wall_s'] * 1e3:.2f}ms",
             traced["num_spans"]],
            ["traced/disabled", f"{overhead:.3f}x", ""],
        ],
    )
    return artifact


def test_trace_overhead():
    artifact = run()
    disabled, traced = artifact["disabled"], artifact["traced"]
    assert disabled["count"] == traced["count"]
    assert disabled["num_spans"] == 0
    assert traced["num_spans"] > 0
    # the contract is on the *disabled* path: turning tracing off must
    # never cost wall time — disabled can't be slower than traced
    # beyond timer noise
    assert disabled["wall_s"] <= traced["wall_s"] * OVERHEAD_CEILING, (
        f"trace=False ran {disabled['wall_s']:.4f}s vs "
        f"{traced['wall_s']:.4f}s traced — the disabled path is "
        f"paying for tracing")


def main(json_path: str = None) -> dict:
    artifact = run()
    if json_path:
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2)
    print(json.dumps(artifact, indent=2))
    return artifact


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else None)
