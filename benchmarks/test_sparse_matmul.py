"""The sparse execution tier: CSR kernels + nnz-balanced placement.

One skewed workload, measured two ways:

- **matmul**: a power-law sparse matrix pair — a handful of row/column
  blocks hold most of the nonzeros, the long tail is nearly empty. The
  legacy path (COO join with its per-k Python loop, chunk-count hash
  placement) against the sparse tier (vectorized CSR join,
  nnz-balanced shuffle placement). Results must stay byte-identical;
  the wall-clock win must clear ``SPEEDUP_TARGET`` and the tracer's
  nnz gauges must show the placement skew dropping.
- **PageRank**: the cached-CSR spmv kernel against the per-iteration
  offset decode on a Zipf-skewed graph, hash vs nnz block placement.
  Ranks are bit-identical; CSR must not regress.

Run as a script to emit the JSON artifact::

    PYTHONPATH=src python benchmarks/test_sparse_matmul.py sparse-matmul.json
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

if __package__ in (None, ""):
    # allow `python benchmarks/test_sparse_matmul.py` (the CI smoke
    # job) as well as `pytest benchmarks/`
    import sys

    sys.path.insert(0, os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))

from benchmarks.harness import (
    fresh_context,
    print_table,
    write_trace_artifact,
)
from repro.matrix import SpangleMatrix, sparse_config
from repro.ml import BitmaskGraph, pagerank

#: CSR + nnz balancing must beat COO + hash by at least this much on
#: the skewed matmul
SPEEDUP_TARGET = 1.5
#: the cached-CSR PageRank kernel must not regress past this floor
PAGERANK_FLOOR = 0.7
REPEATS = 3

SHAPE = (1536, 1536)
BLOCK = (128, 128)
DENSITY_HOT = 0.25     # the few hot k-blocks
DENSITY_COLD = 0.004   # the long tail
HOT_BLOCKS = 2         # per operand, out of 12

GRAPH_VERTICES = 4096
GRAPH_EDGES = 60_000
GRAPH_BLOCK = 512
ITERATIONS = 10


def _skewed_operand(seed: int, hot_axis: int) -> np.ndarray:
    """Integer-valued sparse matrix with power-law block densities.

    ``hot_axis=0`` concentrates nonzeros in a few row blocks,
    ``hot_axis=1`` in a few column blocks. A row-hot left operand and
    a column-hot right operand make a few output rows and columns
    carry most of the partial-product nnz — and hash placement of the
    output chunk IDs (``rb + cb * grid``, here with ``grid % 8 == 4``)
    lands each hot row's blocks on just two of the eight partitions.
    """
    rng = np.random.default_rng(seed)
    dense = rng.integers(-4, 5, size=SHAPE).astype(np.float64)
    grid = SHAPE[hot_axis] // BLOCK[hot_axis]
    hot = rng.choice(grid, size=HOT_BLOCKS, replace=False)
    keep = np.zeros(SHAPE)
    for b in range(grid):
        density = DENSITY_HOT if b in hot else DENSITY_COLD
        lo = b * BLOCK[hot_axis]
        hi = lo + BLOCK[hot_axis]
        sel = (slice(lo, hi) if hot_axis == 0
               else (slice(None), slice(lo, hi)))
        keep[sel] = rng.random((SHAPE[0], hi - lo) if hot_axis == 1
                               else (hi - lo, SHAPE[1])) < density
    dense[keep == 0] = 0.0
    return dense


def _run_matmul_mode(ctx, a, b, kernel: str, balance: bool) -> dict:
    ma = SpangleMatrix.from_numpy(ctx, a, BLOCK)
    mb = SpangleMatrix.from_numpy(ctx, b, BLOCK)
    walls = []
    product = None
    with sparse_config(kernel=kernel, balance=balance):
        for _ in range(REPEATS):
            ctx.nnz_stats.clear()
            start = time.perf_counter()
            product = ma.multiply(mb).to_numpy()
            walls.append(time.perf_counter() - start)
    gauges = ctx.nnz_stats.gauges()
    return {
        "wall_s": min(walls),
        "product": product,
        "gather_imbalance": gauges.get("imbalance"),
    }


def _planned_skew(a, b, num_partitions: int = 8):
    """(hash, LPT) max/mean gather-load ratios from the operands'
    per-block nnz — the same pair-nnz weights the planner prices."""
    from repro.engine import HashPartitioner, NnzBalancedPartitioner

    def block_nnz(dense):
        gr = dense.shape[0] // BLOCK[0]
        gc = dense.shape[1] // BLOCK[1]
        return (dense != 0).reshape(
            gr, BLOCK[0], gc, BLOCK[1]).sum(axis=(1, 3)).astype(float)

    pair = block_nnz(a) @ block_nnz(b)
    grid_rows = pair.shape[0]
    weights = {rb + cb * grid_rows: pair[rb, cb]
               for rb in range(pair.shape[0])
               for cb in range(pair.shape[1]) if pair[rb, cb] > 0}

    def imbalance(partitioner):
        loads = np.zeros(num_partitions)
        for cid, w in weights.items():
            loads[partitioner.partition(cid)] += w
        return float(loads.max() / loads.mean())

    return (imbalance(HashPartitioner(num_partitions)),
            imbalance(NnzBalancedPartitioner.from_weights(
                weights, num_partitions)))


def _zipf_edges(seed: int):
    """A directed graph whose in-degrees follow a Zipf law — the hub
    blocks hold most of the edges."""
    rng = np.random.default_rng(seed)
    dst = rng.zipf(1.3, size=GRAPH_EDGES * 2)
    dst = dst[dst <= GRAPH_VERTICES][:GRAPH_EDGES] - 1
    src = rng.integers(0, GRAPH_VERTICES, size=dst.size)
    return np.stack([src, dst], axis=1)


def _run_pagerank_mode(ctx, edges, kernel: str, balance: str) -> dict:
    graph = BitmaskGraph.from_edges(
        ctx, edges, GRAPH_VERTICES, block_size=GRAPH_BLOCK,
        balance=balance).cache()
    graph.num_edges()
    walls = []
    result = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = pagerank(graph, max_iterations=ITERATIONS,
                          kernel=kernel)
        walls.append(time.perf_counter() - start)
    return {"wall_s": min(walls), "ranks": result.ranks,
            "graph": graph}


def run() -> dict:
    a = _skewed_operand(seed=5, hot_axis=0)
    b = _skewed_operand(seed=6, hot_axis=1)
    hash_imbalance, lpt_imbalance = _planned_skew(a, b)

    ctx = fresh_context(8)
    legacy = _run_matmul_mode(ctx, a, b, kernel="coo", balance=False)
    tiered = _run_matmul_mode(ctx, a, b, kernel="csr", balance=True)
    ctx.shutdown()

    speedup = legacy["wall_s"] / max(tiered["wall_s"], 1e-9)
    identical = legacy["product"].tobytes() \
        == tiered["product"].tobytes()
    exact = bool(np.array_equal(tiered["product"], a @ b))
    # the engine's own gauge for the balanced gather; the hash side
    # never places by nnz, so its skew comes from the same pair-nnz
    # weights the planner prices
    nnz_imbalance = tiered["gather_imbalance"] or lpt_imbalance

    edges = _zipf_edges(seed=9)
    ctx = fresh_context(8)
    pr_offsets = _run_pagerank_mode(ctx, edges, kernel="offsets",
                                    balance="hash")
    pr_csr = _run_pagerank_mode(ctx, edges, kernel="csr",
                                balance="nnz")
    ctx.shutdown()
    pr_speedup = pr_offsets["wall_s"] / max(pr_csr["wall_s"], 1e-9)
    # kernel identity holds per placement: the partition layout fixes
    # the order driver-side partials sum in, so compare the two
    # kernels on the *same* (nnz-balanced) graph
    same_graph_offsets = pagerank(pr_csr["graph"],
                                  max_iterations=ITERATIONS,
                                  kernel="offsets")
    pr_identical = same_graph_offsets.ranks.tobytes() \
        == pr_csr["ranks"].tobytes()
    pr_close = bool(np.allclose(pr_offsets["ranks"],
                                pr_csr["ranks"], atol=1e-12))

    print_table(
        f"Sparse matmul {SHAPE[0]}^2, block {BLOCK[0]}, "
        f"{HOT_BLOCKS} hot row/column blocks "
        f"(nnz: {int((a != 0).sum())} x {int((b != 0).sum())})",
        ["path", "wall", "gather skew (max/mean nnz)"],
        [["COO join + hash placement",
          f"{legacy['wall_s']:.3f}s", f"{hash_imbalance:.2f}x"],
         ["CSR join + nnz placement",
          f"{tiered['wall_s']:.3f}s", f"{nnz_imbalance:.2f}x"],
         ["speedup", f"{speedup:.2f}x", ""]])
    print_table(
        f"PageRank, {GRAPH_VERTICES} vertices, {len(edges)} Zipf "
        f"edges, {ITERATIONS} iterations",
        ["kernel", "wall"],
        [["offset decode + hash placement",
          f"{pr_offsets['wall_s']:.3f}s"],
         ["cached CSR + nnz placement", f"{pr_csr['wall_s']:.3f}s"],
         ["speedup", f"{pr_speedup:.2f}x"]])

    return {
        "matmul": {
            "coo_hash_wall_s": legacy["wall_s"],
            "csr_nnz_wall_s": tiered["wall_s"],
            "speedup": speedup,
            "byte_identical": identical,
            "matches_numpy": exact,
            "hash_imbalance": hash_imbalance,
            "nnz_imbalance": nnz_imbalance,
            "engine_reported_imbalance": tiered["gather_imbalance"],
        },
        "pagerank": {
            "offsets_hash_wall_s": pr_offsets["wall_s"],
            "csr_nnz_wall_s": pr_csr["wall_s"],
            "speedup": pr_speedup,
            "kernels_byte_identical": pr_identical,
            "placements_allclose": pr_close,
        },
    }


def test_sparse_matmul_tier(benchmark):
    artifact = benchmark.pedantic(run, rounds=1, iterations=1)
    matmul = artifact["matmul"]
    assert matmul["byte_identical"], \
        "CSR path diverged from the COO path"
    assert matmul["matches_numpy"]
    # the nnz-balanced gather spreads the hot blocks' partials
    assert matmul["nnz_imbalance"] <= matmul["hash_imbalance"]
    assert matmul["speedup"] >= SPEEDUP_TARGET, (
        f"expected >= {SPEEDUP_TARGET}x from CSR + nnz balancing on "
        f"the skewed matmul, got {matmul['speedup']:.2f}x")
    pr = artifact["pagerank"]
    assert pr["kernels_byte_identical"], \
        "CSR spmv diverged from the offset-decode kernel"
    assert pr["placements_allclose"]
    assert pr["speedup"] >= PAGERANK_FLOOR, (
        f"cached-CSR PageRank regressed to {pr['speedup']:.2f}x")


def _traced_run(json_path: str) -> dict:
    """One traced CSR matmul: the event log for ``repro trace``."""
    ctx = fresh_context(8, trace=True)
    a = _skewed_operand(seed=5, hot_axis=1)
    b = _skewed_operand(seed=6, hot_axis=0)
    ma = SpangleMatrix.from_numpy(ctx, a, BLOCK)
    mb = SpangleMatrix.from_numpy(ctx, b, BLOCK)
    ma.nnz(), mb.nnz()
    ctx.tracer.clear()          # trace the multiply, not ingest
    with sparse_config(kernel="csr", balance=True):
        ma.multiply(mb).to_numpy()
    return write_trace_artifact(ctx, json_path)


def main(json_path: str = None) -> dict:
    artifact = run()
    if json_path:
        artifact["trace"] = _traced_run(json_path)
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2)
    print(json.dumps(artifact, indent=2))
    return artifact


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else None)
