"""Fig. 9 — memory by mode (9a) and the MaskRDD's effect (9b).

Fig. 9a: in-memory size of a sparse CHL grid under dense vs sparse
chunk modes as the chunk width grows. Shape: dense grows with chunk
size (invalid cells stored explicitly, fewer empty chunks dropped);
sparse stays roughly flat; both shrink at small chunk sizes where empty
chunks are elided.

Fig. 9b: Q5 over a multi-band dataset with one filter per attribute,
with and without the MaskRDD, as the attribute count k grows. Shape:
identical at k=1; without the MaskRDD every operator eagerly collects
and ANDs every attribute's bitmask, so time grows superlinearly in k;
with it, the pipeline stays linear.
"""

import time

from benchmarks.harness import fresh_context, print_table
from repro.core import ArrayRDD, ChunkMode
from repro.data import sdss_like
from repro.data.raster import chl_slice
from repro.queries import SpangleRasterQueries, load_spangle_dataset

WIDTHS = (8, 16, 32, 64, 128, 192)
SHAPE = (192, 256)


def test_fig9a_memory_by_mode(benchmark):
    values, valid = chl_slice(SHAPE, seed=0)
    ctx = fresh_context()

    def run():
        sizes = {"dense": {}, "sparse": {}}
        for width in WIDTHS:
            for mode_name, mode in (("dense", ChunkMode.DENSE),
                                    ("sparse", ChunkMode.SPARSE)):
                array = ArrayRDD.from_numpy(
                    ctx, values, (width, width), valid=valid, mode=mode)
                sizes[mode_name][width] = array.memory_bytes()
        return sizes

    sizes = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [mode] + [f"{sizes[mode][w] / 1024:.0f} KiB" for w in WIDTHS]
        for mode in ("dense", "sparse")
    ]
    print_table("Fig. 9a — in-memory size vs chunk size",
                ["mode \\ chunk w"] + [str(w) for w in WIDTHS], rows)

    dense = sizes["dense"]
    sparse = sizes["sparse"]
    # dense grows substantially with the chunk width
    assert dense[WIDTHS[-1]] > dense[WIDTHS[0]] * 1.5
    # sparse stays roughly flat
    assert max(sparse.values()) < min(sparse.values()) * 1.7
    # and sparse is decisively smaller at large chunks
    assert sparse[WIDTHS[-1]] < dense[WIDTHS[-1]] / 2
    # small chunks shrink both modes (empty-chunk elision)
    assert dense[WIDTHS[0]] < dense[WIDTHS[-1]]


def _q5_pipeline(dataset, bands_used):
    """One filter per attribute, then the Q5 density count."""
    ds = dataset
    for band in bands_used:
        ds = ds.filter(band, lambda xs: xs > 0.1)
    return SpangleRasterQueries(ds).q5_density(bands_used[0], 32, 40)


def test_fig9b_maskrdd_effect(benchmark):
    all_bands = ("u", "g", "r", "i", "z")
    scenes = sdss_like(12, shape=(256, 256), objects_per_image=220,
                       seed=3)
    ctx = fresh_context()

    def run():
        times = {"with MaskRDD": {}, "without MaskRDD": {}}
        answers = {}
        for k in range(1, len(all_bands) + 1):
            bands_used = all_bands[:k]
            band_scenes = {b: scenes[b] for b in bands_used}
            for label, use_mask in (("with MaskRDD", True),
                                    ("without MaskRDD", False)):
                dataset = load_spangle_dataset(
                    ctx, band_scenes, (64, 64, 1), use_mask_rdd=use_mask)
                start = time.perf_counter()
                answer = _q5_pipeline(dataset, bands_used)
                times[label][k] = time.perf_counter() - start
                answers.setdefault(k, answer)
                assert answer == answers[k], (label, k)
        return times

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    ks = sorted(times["with MaskRDD"])
    rows = [
        [label] + [f"{times[label][k]:.3f}s" for k in ks]
        for label in ("with MaskRDD", "without MaskRDD")
    ]
    print_table("Fig. 9b — Q5 time vs number of attributes",
                ["variant \\ #attrs"] + [str(k) for k in ks], rows)

    lazy = times["with MaskRDD"]
    eager = times["without MaskRDD"]
    # similar with one attribute
    assert lazy[1] < eager[1] * 2.0
    # the gap opens as attributes are added
    assert eager[5] > lazy[5] * 1.5
    # eager growth outpaces lazy growth
    assert eager[5] / eager[1] > lazy[5] / lazy[1]
