"""Fused vs unfused operator chains over a CHL-like sparse raster.

The workload mirrors the paper's chlorophyll (CHL) queries: a sparse
2-D raster (most cells are land/cloud nulls), restricted to a region,
filtered on value, and rescaled — a 4-operator chunk-local chain. With
kernel fusion (the default) the chain compiles to one ``map_partitions``
pass per chunk; ``repro.plan.disable_fusion()`` runs the original eager
path that rebuilds every chunk once per operator.

Run as a script to emit the JSON artifact::

    PYTHONPATH=src python benchmarks/test_fusion_chains.py fusion.json
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

if __package__ in (None, ""):
    # allow `python benchmarks/test_fusion_chains.py` (the CI smoke
    # job) as well as `pytest benchmarks/`
    import sys

    sys.path.insert(0, os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))

from benchmarks.harness import (
    fresh_context,
    print_table,
    write_trace_artifact,
)
from repro import plan
from repro.core import ArrayRDD

#: assert at least this speedup for the fused 4-op chain
SPEEDUP_TARGET = 1.5
REPEATS = 3

SHAPE = (1024, 1024)
CHUNK = (128, 128)
DENSITY = 0.25           # CHL-like: ~3/4 of cells are null


def _build_array(ctx) -> ArrayRDD:
    rng = np.random.default_rng(7)
    data = rng.random(SHAPE)
    valid = rng.random(SHAPE) < DENSITY
    arr = ArrayRDD.from_numpy(ctx, data, CHUNK, valid=valid)
    return arr.materialize()    # timings cover the chain, not ingestion


def _chain(arr: ArrayRDD) -> ArrayRDD:
    """subarray → filter → map → scalar: 4 chunk-local operators."""
    return (arr.subarray((16, 16), (1000, 1000))
               .filter(lambda xs: xs > 0.05)
               .map_values(lambda xs: xs * xs)
            * 10.0)


def _run_mode(fused: bool) -> dict:
    ctx = fresh_context(8)
    arr = _build_array(ctx)
    toggle = plan.enable_fusion if fused else plan.disable_fusion
    walls = []
    count = None
    label = None
    with toggle():
        before = ctx.metrics.snapshot()
        for _ in range(REPEATS):
            out = _chain(arr)
            start = time.perf_counter()
            count = out.count_valid()
            walls.append(time.perf_counter() - start)
            label = out.rdd.name
        delta = ctx.metrics.snapshot() - before
    return {
        "wall_s": min(walls),
        "count": count,
        "label": label,
        "tasks_launched": delta.tasks_launched,
        "stages_run": delta.stages_run,
        "kernels_fused": delta.kernels_fused,
        "fused_chunks_avoided": delta.fused_chunks_avoided,
    }


def run() -> dict:
    fused = _run_mode(True)
    eager = _run_mode(False)
    speedup = eager["wall_s"] / max(fused["wall_s"], 1e-9)
    artifact = {
        "shape": list(SHAPE),
        "chunk_shape": list(CHUNK),
        "density": DENSITY,
        "chain_ops": 4,
        "repeats": REPEATS,
        "speedup": speedup,
        "fused": fused,
        "eager": eager,
    }
    print_table(
        "fused vs eager 4-op chain (CHL-like raster)",
        ["mode", "wall", "tasks", "stages", "kernels fused",
         "chunk builds avoided", "pipeline"],
        [
            ["fused", f"{fused['wall_s']:.3f}s", fused["tasks_launched"],
             fused["stages_run"], fused["kernels_fused"],
             fused["fused_chunks_avoided"], fused["label"]],
            ["eager", f"{eager['wall_s']:.3f}s", eager["tasks_launched"],
             eager["stages_run"], eager["kernels_fused"],
             eager["fused_chunks_avoided"], eager["label"]],
            ["speedup", f"{speedup:.2f}x", "", "", "", "", ""],
        ],
    )
    return artifact


def test_fused_chain_speedup():
    artifact = run()
    fused, eager = artifact["fused"], artifact["eager"]
    assert fused["count"] == eager["count"]
    assert fused["label"].startswith("fused[")
    assert fused["tasks_launched"] <= eager["tasks_launched"]
    assert fused["kernels_fused"] >= 4
    assert fused["fused_chunks_avoided"] > 0
    assert eager["kernels_fused"] == 0
    assert artifact["speedup"] >= SPEEDUP_TARGET, (
        f"expected >= {SPEEDUP_TARGET}x from fusing a 4-op chain, "
        f"got {artifact['speedup']:.2f}x")


def _traced_run(json_path: str) -> dict:
    """One traced fused pass: the event-log artifact for ``repro trace``."""
    ctx = fresh_context(8, trace=True)
    arr = _build_array(ctx)
    ctx.tracer.clear()          # trace the chain, not ingestion
    _chain(arr).count_valid()
    return write_trace_artifact(ctx, json_path)


def main(json_path: str = None) -> dict:
    artifact = run()
    if json_path:
        artifact["trace"] = _traced_run(json_path)
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2)
    print(json.dumps(artifact, indent=2))
    return artifact


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else None)
