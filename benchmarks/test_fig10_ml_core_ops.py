"""Fig. 10 — machine-learning core operations across five systems.

Three kernels (M×V, VᵀM, MᵀM) over the four Table-IIa matrices, on
Spangle, SciDB, Spark (COO), MLlib (CSC), and SciSpark. Matrices are
scaled per :mod:`repro.data.matrices`; the feasibility budgets scale
with them (record-count budgets by 1/scale, dense-structure budgets by
1/scale²), so the paper's "x" marks are decided by the same mechanisms
— COO's join-intermediate explosion, MLlib's driver-dense Gramian,
SciDB's disk-resident temporaries, SciSpark's dense loading — not by
hard-coding.

Shape claims: Spangle completes every cell (including the Mawi-like
matrix); COO completes the hyper-sparse matrices but fails the
dense-ish Mouse MᵀM; SciSpark has no distributed MᵀM at all and cannot
densify the large matrices; MᵀM defeats most systems; SciDB's modeled
time is disk-dominated.
"""

import numpy as np
import pytest

from benchmarks.harness import fresh_context, print_table, run_measured
from repro.baselines import (
    MLlibRowMatrix,
    SciDBSystem,
    SciSparkSystem,
    SparkCOOMatrix,
)
from repro.data import MATRIX_SPECS, scaled_matrix
from repro.matrix import SpangleMatrix, SpangleVector

DATASETS = ("covtype", "mouse", "hardesty", "mawi")
SYSTEMS = ("Spangle", "SciDB", "Spark (COO)", "MLlib (CSC)", "SciSpark")

# paper-testbed budgets, scaled per dataset (see module docstring)
PAPER_COO_BUDGET_RECORDS = 50_000_000
PAPER_DRIVER_BYTES = 2 * 1024 ** 3
PAPER_SCIDB_TEMP_BYTES = 64 * 1024 ** 3
PAPER_SCISPARK_DENSE_BYTES = 10 * 1024 ** 3


def _block_for(name):
    shape = MATRIX_SPECS[name].shape
    return (min(512, shape[0]), min(512, shape[1]))


def _run_dataset(ctx, name):
    """All kernels for all systems on one dataset."""
    spec = MATRIX_SPECS[name]
    rows, cols, values, shape = scaled_matrix(name, seed=0)
    block = _block_for(name)
    v_col = SpangleVector(
        np.random.default_rng(1).random(shape[1]), "col")
    v_row = SpangleVector(
        np.random.default_rng(2).random(shape[0]), "row")
    out = {}

    # --- Spangle ------------------------------------------------------
    spangle = SpangleMatrix.from_coo(ctx, rows, cols, values, shape,
                                     block).optimize_static()
    spangle.materialize()
    out[("Spangle", "MxV")] = run_measured(ctx, spangle.dot_vector,
                                           v_col)
    out[("Spangle", "VtM")] = run_measured(ctx, spangle.vector_dot,
                                           v_row)
    out[("Spangle", "MtM")] = run_measured(
        ctx, lambda: spangle.gram().array.rdd.count())

    # --- SciDB --------------------------------------------------------
    scale = spec.scale
    with SciDBSystem(ctx) as db:
        db.store_matrix("M", rows, cols, values, shape, block=256)
        out[("SciDB", "MxV")] = run_measured(ctx, db.dot_vector, "M",
                                             v_col)
        out[("SciDB", "VtM")] = run_measured(ctx, db.vector_dot, "M",
                                             v_row)
        db.store_matrix("Mt", cols, rows, values,
                        (shape[1], shape[0]), block=256)
        out[("SciDB", "MtM")] = run_measured(
            ctx, db.multiply, "Mt", "M", "G",
            max_temp_bytes=PAPER_SCIDB_TEMP_BYTES // (scale ** 2))

    # --- Spark (COO) ---------------------------------------------------
    coo = SparkCOOMatrix.from_coo(ctx, rows, cols, values, shape)
    out[("Spark (COO)", "MxV")] = run_measured(ctx, coo.dot_vector,
                                               v_col)
    out[("Spark (COO)", "VtM")] = run_measured(ctx, coo.vector_dot,
                                               v_row)
    out[("Spark (COO)", "MtM")] = run_measured(
        ctx, lambda: coo.gram(
            max_intermediate_records=PAPER_COO_BUDGET_RECORDS
            // scale).nnz())

    # --- MLlib (CSC) ----------------------------------------------------
    mllib = MLlibRowMatrix.from_coo(ctx, rows, cols, values, shape)
    out[("MLlib (CSC)", "MxV")] = run_measured(ctx, mllib.dot_vector,
                                               v_col)
    out[("MLlib (CSC)", "VtM")] = run_measured(ctx, mllib.vector_dot,
                                               v_row)
    out[("MLlib (CSC)", "MtM")] = run_measured(
        ctx, mllib.gram,
        driver_memory_bytes=PAPER_DRIVER_BYTES // (scale ** 2)
        if spec.paper_shape[1] > 1024 else PAPER_DRIVER_BYTES)

    # --- SciSpark -------------------------------------------------------
    scispark = SciSparkSystem(ctx)

    def scispark_load():
        return scispark.matrix_from_coo(
            rows, cols, values, shape, _block_for(name),
            memory_budget_bytes=PAPER_SCISPARK_DENSE_BYTES
            // (scale ** 2) if spec.paper_shape[1] > 1024
            else PAPER_SCISPARK_DENSE_BYTES)

    loaded = run_measured(ctx, scispark_load)
    if loaded.failed:
        for op in ("MxV", "VtM", "MtM"):
            out[("SciSpark", op)] = loaded
    else:
        dense_matrix = loaded.value
        out[("SciSpark", "MxV")] = run_measured(
            ctx, dense_matrix.dot_vector, v_col)
        out[("SciSpark", "VtM")] = run_measured(
            ctx, dense_matrix.vector_dot, v_row)
        out[("SciSpark", "MtM")] = run_measured(
            ctx, dense_matrix.gram)
    return out


@pytest.mark.parametrize("name", DATASETS)
def test_fig10(benchmark, name):
    ctx = fresh_context()
    results = benchmark.pedantic(lambda: _run_dataset(ctx, name),
                                 rounds=1, iterations=1)
    rows = []
    for op in ("MxV", "VtM", "MtM"):
        rows.append([op] + [results[(system, op)].cell()
                            for system in SYSTEMS])
    spec = MATRIX_SPECS[name]
    print_table(
        f"Fig. 10 — {name}-like "
        f"{spec.shape[0]}x{spec.shape[1]}, nnz={spec.nnz} "
        f"(paper: {spec.paper_shape[0]}x{spec.paper_shape[1]} "
        f"@ {spec.paper_density})",
        ["op (wall / modeled)"] + list(SYSTEMS), rows)

    # Spangle completes every operation on every dataset
    for op in ("MxV", "VtM", "MtM"):
        assert results[("Spangle", op)].failed is None, (name, op)

    # numerical agreement on M x V across completing systems
    reference = None
    for system in SYSTEMS:
        cell = results[(system, "MxV")]
        if cell.failed or cell.value is None:
            continue
        if reference is None:
            reference = cell.value.data
        else:
            assert np.allclose(cell.value.data, reference), system

    if name == "mouse":
        # the density wall: COO's contraction join explodes on the
        # dense-ish matrix
        assert results[("Spark (COO)", "MtM")].failed is not None
    if name in ("hardesty", "mawi"):
        # hyper-sparse: COO's M x V / VtM survive easily
        assert results[("Spark (COO)", "MxV")].failed is None
        # dense-managing systems cannot even hold the matrix
        assert results[("SciSpark", "MxV")].failed is not None
        # MLlib's driver-dense Gramian is infeasible
        assert results[("MLlib (CSC)", "MtM")].failed is not None
        # SciDB's disk-resident temporaries exceed the bounded budget
        assert results[("SciDB", "MtM")].failed is not None
    if name == "mawi":
        # the headline: only Spangle finishes the largest MtM
        finishers = [system for system in SYSTEMS
                     if results[(system, "MtM")].failed is None]
        assert finishers == ["Spangle"]

    # SciDB pays disk I/O on whatever it does complete
    scidb_mv = results[("SciDB", "MxV")]
    if scidb_mv.failed is None:
        assert scidb_mv.modeled_s > scidb_mv.wall_s
