"""Fig. 7 — raster query performance across four systems.

Fig. 7a: Q1–Q5 without a range predicate over a stack of images;
Fig. 7b: the range-query variants over a 10× larger stack (paper:
1000 vs 100 images), Spangle vs SciSpark.

Scaled setup: 16 images of 128×128 (Fig. 7a) and 96 images (Fig. 7b),
chunk/tile size 32×32×1 (the paper uses 128×128×1 on 2048×1489 scenes).

Shape claims verified:
- Spangle beats SciSpark on every query (dense tile management);
- RasterFrames wins Q2 (its tiles are pre-gridded to the target grid);
- SciDB pays disk I/O on every query (modeled time exceeds wall time);
- at 10× data (Fig. 7b), Spangle's margin over SciSpark grows.
"""

import pytest

from benchmarks.harness import fresh_context, print_table, run_measured
from repro.baselines import RasterFramesSystem, SciDBSystem, SciSparkSystem
from repro.data import sdss_like
from repro.queries import SpangleRasterQueries, load_spangle_dataset

CHUNK = (64, 64, 1)
TILE = (64, 64)
GRID = 16
DENSITY_WINDOW = 32
DENSITY_MIN = 60
FILTER_THRESHOLD = 2.0
COUNT_THRESHOLD = 5.0


def _run_all_queries(ctx, scenes, box_2d=None, box_3d=None,
                     systems=("Spangle", "SciSpark", "RasterFrames",
                              "SciDB")):
    """Run Q1–Q5 on each system; returns {query: {system: Measured}}."""
    results = {f"Q{i}": {} for i in range(1, 6)}

    if "Spangle" in systems:
        dataset = load_spangle_dataset(ctx, {"u": scenes}, CHUNK)
        queries = SpangleRasterQueries(dataset)
        results["Q1"]["Spangle"] = run_measured(
            ctx, queries.q1_aggregation, "u", box_3d)
        results["Q2"]["Spangle"] = run_measured(
            ctx, queries.q2_regrid, "u", GRID, box_3d)
        results["Q3"]["Spangle"] = run_measured(
            ctx, queries.q3_conditional_aggregation, "u",
            lambda xs: xs > FILTER_THRESHOLD, box_3d)
        results["Q4"]["Spangle"] = run_measured(
            ctx, queries.q4_polygons, "u",
            lambda xs: xs > FILTER_THRESHOLD,
            lambda xs: xs > COUNT_THRESHOLD, box_3d)
        results["Q5"]["Spangle"] = run_measured(
            ctx, queries.q5_density, "u", DENSITY_WINDOW, DENSITY_MIN,
            box_3d)

    if "SciSpark" in systems:
        system = SciSparkSystem(ctx)
        tiles = system.load_scenes(scenes, TILE)

        def scoped(t):
            return system.select_range(t, *box_2d) if box_2d else t

        results["Q1"]["SciSpark"] = run_measured(
            ctx, lambda: system.aggregate_mean(scoped(tiles)))
        results["Q2"]["SciSpark"] = run_measured(
            ctx, lambda: system.regrid_mean(scoped(tiles), GRID)
            .count())
        results["Q3"]["SciSpark"] = run_measured(
            ctx, lambda: system.aggregate_mean(system.filter_cells(
                scoped(tiles), lambda t: t > FILTER_THRESHOLD)))
        results["Q4"]["SciSpark"] = run_measured(
            ctx, lambda: system.count_matching(system.filter_cells(
                scoped(tiles), lambda t: t > FILTER_THRESHOLD),
                lambda t: t > COUNT_THRESHOLD))
        results["Q5"]["SciSpark"] = run_measured(
            ctx, lambda: system.density_windows(
                scoped(tiles), DENSITY_WINDOW, DENSITY_MIN))

    if "RasterFrames" in systems:
        system = RasterFramesSystem(ctx)
        frame = system.load_scenes(scenes, TILE)

        def scoped_frame(f):
            return system.select_range(f, *box_2d) if box_2d else f

        results["Q1"]["RasterFrames"] = run_measured(
            ctx, lambda: system.aggregate_mean(scoped_frame(frame)))
        results["Q2"]["RasterFrames"] = run_measured(
            ctx, lambda: system.regrid_mean(scoped_frame(frame), GRID)
            .count())
        results["Q3"]["RasterFrames"] = run_measured(
            ctx, lambda: system.aggregate_mean(system.filter_cells(
                scoped_frame(frame), lambda v: v > FILTER_THRESHOLD)))
        results["Q4"]["RasterFrames"] = run_measured(
            ctx, lambda: system.count_cells(system.filter_cells(
                system.filter_cells(scoped_frame(frame),
                                    lambda v: v > FILTER_THRESHOLD),
                lambda v: v > COUNT_THRESHOLD)))
        results["Q5"]["RasterFrames"] = run_measured(
            ctx, lambda: system.density_windows(
                scoped_frame(frame), DENSITY_WINDOW, DENSITY_MIN))

    if "SciDB" in systems:
        db = SciDBSystem(ctx)
        db.store_scenes("img", scenes, TILE)
        lo, hi = box_2d if box_2d else (None, None)
        results["Q1"]["SciDB"] = run_measured(
            ctx, db.aggregate_mean, "img", lo, hi)
        results["Q2"]["SciDB"] = run_measured(
            ctx, db.regrid_mean, "img", GRID, lo, hi)
        results["Q3"]["SciDB"] = run_measured(
            ctx, db.aggregate_mean, "img", lo, hi,
            lambda r: r > FILTER_THRESHOLD)
        results["Q4"]["SciDB"] = run_measured(
            ctx, lambda: db.count_matching(
                "img", lambda r: r > COUNT_THRESHOLD, lo, hi))
        results["Q5"]["SciDB"] = run_measured(
            ctx, db.density_windows, "img", DENSITY_WINDOW, DENSITY_MIN,
            lo, hi)
        db.close()

    return results


def _print_results(title, results, systems):
    rows = []
    for query in sorted(results):
        row = [query]
        for system in systems:
            cell = results[query].get(system)
            row.append(cell.cell() if cell else "-")
        rows.append(row)
    print_table(title, ["query (wall / modeled)"] + list(systems), rows)


def test_fig7a(benchmark):
    """Q1–Q5, no range, four systems (paper: 100 images)."""
    scenes = sdss_like(32, shape=(256, 256), objects_per_image=220,
                       seed=0)["u"]
    ctx = fresh_context()
    results = benchmark.pedantic(
        lambda: _run_all_queries(ctx, scenes), rounds=1, iterations=1)
    systems = ("Spangle", "SciSpark", "RasterFrames", "SciDB")
    _print_results("Fig. 7a — raster queries, no range", results,
                   systems)

    # shape: no failures, and Spangle wins the window queries outright
    # (SciSpark must reassemble whole dense scenes through a shuffle)
    for query in ("Q1", "Q2", "Q3", "Q4", "Q5"):
        assert results[query]["Spangle"].failed is None
        assert results[query]["SciSpark"].failed is None
    for query in ("Q2", "Q5"):
        assert results[query]["Spangle"].modeled_s \
            < results[query]["SciSpark"].modeled_s, query

    # shape: scan queries — Spangle at least competitive (the paper has
    # it fastest; in-process the dense numpy scan has no network to
    # lose, so we bound the ratio instead)
    assert results["Q1"]["Spangle"].modeled_s \
        <= results["Q1"]["SciSpark"].modeled_s * 1.1
    for query in ("Q3", "Q4"):
        assert results[query]["Spangle"].modeled_s \
            < results[query]["SciSpark"].modeled_s * 2.0, query

    # shape: RasterFrames wins Q2 (pre-gridded tiles, no reshaping) —
    # the one query the paper reports Spangle losing
    assert results["Q2"]["RasterFrames"].modeled_s \
        < results["Q2"]["Spangle"].modeled_s

    # shape: SciDB pays for disk on every query
    for query in ("Q1", "Q2", "Q3", "Q4", "Q5"):
        scidb = results[query]["SciDB"]
        assert scidb.modeled_s > scidb.wall_s


def test_fig7b(benchmark):
    """Range-restricted queries at ~6x the images: Spangle vs SciSpark."""
    scenes = sdss_like(96, shape=(256, 256), objects_per_image=220,
                       seed=1)["u"]
    n_images = len(scenes)
    # chunk-aligned center quarter: Spangle prunes 12 of 16 chunks per
    # image by ID and the virtual bitmask is an identity on the rest
    box_2d = ((64, 64), (191, 191))
    box_3d = ((64, 64, 0), (191, 191, n_images - 1))
    ctx = fresh_context()
    results = benchmark.pedantic(
        lambda: _run_all_queries(ctx, scenes, box_2d=box_2d,
                                 box_3d=box_3d,
                                 systems=("Spangle", "SciSpark")),
        rounds=1, iterations=1)
    _print_results("Fig. 7b — range queries, 3x images", results,
                   ("Spangle", "SciSpark"))
    # shape: the shuffle-bearing window queries are where SciSpark's
    # dense scene reassembly loses badly at scale — strict wins
    for query in ("Q2", "Q5"):
        assert results[query]["Spangle"].modeled_s \
            < results[query]["SciSpark"].modeled_s, query
    # shape: scan queries are map-only for both systems in-process; the
    # paper's margin there comes from bytes-scanned (see the footprint
    # test below), so we bound the ratio rather than require a win
    assert results["Q1"]["Spangle"].modeled_s \
        <= results["Q1"]["SciSpark"].modeled_s * 1.5
    for query in ("Q3", "Q4"):
        assert results[query]["Spangle"].modeled_s \
            < results[query]["SciSpark"].modeled_s * 2.75, query


def test_fig7_memory_footprints(benchmark):
    """Supporting claim: sparse management loads what SciSpark cannot.

    SciSpark's dense footprint is the logical array size; Spangle's and
    RasterFrames' track the valid cells.
    """
    scenes = sdss_like(8, shape=(256, 256), objects_per_image=220,
                       seed=2)["u"]
    ctx = fresh_context()
    dataset = benchmark.pedantic(
        lambda: load_spangle_dataset(ctx, {"u": scenes}, CHUNK),
        rounds=1, iterations=1)
    spangle_bytes = dataset.attribute("u").memory_bytes()

    scispark = SciSparkSystem(ctx)
    dense_bytes = scispark.load_scenes(scenes, TILE) \
        .map(lambda kv: kv[1].nbytes).sum()

    rasterframes = RasterFramesSystem(ctx)
    rf_bytes = rasterframes.memory_bytes(
        rasterframes.load_scenes(scenes, TILE))

    print_table(
        "Fig. 7 supporting — in-memory footprint (bytes)",
        ["system", "bytes"],
        [["Spangle (sparse chunks)", spangle_bytes],
         ["RasterFrames (compressed tiles)", rf_bytes],
         ["SciSpark (dense tiles)", dense_bytes]],
    )
    assert spangle_bytes < dense_bytes / 2
    assert rf_bytes < dense_bytes / 2

    # and the hard limit: a driver budget SciSpark cannot load under
    from repro.errors import OutOfMemoryError

    tight = SciSparkSystem(ctx, driver_memory_bytes=spangle_bytes)
    with pytest.raises(OutOfMemoryError):
        tight.load_scenes(scenes, TILE)
