"""Optimized vs as-written logical plans: pushdown benchmarks.

Two workloads the cost-based rewrite optimizer is built for:

- **subarray-after-shuffle** — repartition a large sparse raster, then
  restrict to a small region. As written, every chunk crosses the
  shuffle and the restriction runs after; the ``push_below_shuffle``
  rule prunes out-of-box chunks *before* they move, so only the
  region's chunks ever hit the network.
- **skewed-density pushdown** — a long scalar chain over a raster whose
  validity is concentrated in one corner, restricted afterwards. The
  ``fold_scalars`` + ``subarray_before_scalar`` rules fold the chain to
  one kernel and hoist the restriction under it, so the arithmetic only
  touches the surviving chunks.

``repro.optimizer.disable()`` is the baseline: the same recorded plan
lowered exactly as written.

Run as a script to emit the JSON artifact::

    PYTHONPATH=src python benchmarks/test_optimizer.py optimizer.json
"""

from __future__ import annotations

import json
import os

import numpy as np

if __package__ in (None, ""):
    # allow `python benchmarks/test_optimizer.py` (the CI smoke job)
    # as well as `pytest benchmarks/`
    import sys

    sys.path.insert(0, os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))

from benchmarks.harness import (
    fresh_context,
    print_table,
    run_measured,
    write_trace_artifact,
)
from repro import optimizer
from repro.core import ArrayRDD

#: assert at least this speedup for the subarray-after-shuffle chain
SHUFFLE_SPEEDUP_TARGET = 1.5
#: skewed-density pushdown: arithmetic is cheap, so the bar is lower
SKEW_SPEEDUP_TARGET = 1.15
REPEATS = 3

SHAPE = (4096, 4096)
CHUNK = (128, 128)
#: bigger chunks for the skew case: per-chunk overhead out of the way,
#: so the timing isolates the arithmetic the hoisted restriction skips
SKEW_CHUNK = (256, 256)
DENSITY = 0.5
#: a 3x3-chunk region out of the 32x32 grid
BOX_LO, BOX_HI = (130, 130), (500, 500)


def _build_uniform(ctx) -> ArrayRDD:
    rng = np.random.default_rng(7)
    data = rng.random(SHAPE)
    valid = rng.random(SHAPE) < DENSITY
    arr = ArrayRDD.from_numpy(ctx, data, CHUNK, valid=valid)
    return arr.materialize()    # timings cover the chain, not ingestion


def _build_skewed(ctx) -> ArrayRDD:
    """Validity concentrated in the top-left corner, near-empty tail."""
    rng = np.random.default_rng(11)
    data = rng.random(SHAPE)
    threshold = np.full(SHAPE, 0.002)
    threshold[:2048, :2048] = 0.9
    valid = rng.random(SHAPE) < threshold
    arr = ArrayRDD.from_numpy(ctx, data, SKEW_CHUNK, valid=valid)
    return arr.materialize()


def _shuffle_chain(arr: ArrayRDD) -> ArrayRDD:
    """repartition (wide) → subarray: the pushdown poster child."""
    return arr.repartition(16).subarray(BOX_LO, BOX_HI)


def _skew_chain(arr: ArrayRDD) -> ArrayRDD:
    """10 scalar ops → subarray into a corner of the dense region."""
    chain = ((arr * 2.0 + 1.0) / 3.0 - 0.25) * 1.5 + 0.125
    chain = ((chain * 0.8 - 1.0) / 1.1) + 4.0
    return chain.subarray((0, 0), (255, 255))


def _run_mode(build, chain, optimized: bool) -> dict:
    ctx = fresh_context(8)
    arr = build(ctx)
    toggle = optimizer.enable if optimized else optimizer.disable
    best = None
    with toggle():
        before = ctx.metrics.snapshot()
        for _ in range(REPEATS):
            out = chain(arr)
            measured = run_measured(ctx, out.aggregate, "sum")
            if best is None or measured.modeled_s < best.modeled_s:
                best = measured
        delta = ctx.metrics.snapshot() - before
    return {
        "wall_s": best.wall_s,
        "modeled_s": best.modeled_s,
        "network_s": best.network_s,
        "sum": float(best.value),
        "tasks_launched": delta.tasks_launched,
        "shuffle_bytes": delta.shuffle_bytes,
        "rules_fired": delta.optimizer_rules_fired,
        "chunks_pruned": delta.optimizer_chunks_pruned,
    }


def _compare(name, build, chain) -> dict:
    optimized = _run_mode(build, chain, True)
    as_written = _run_mode(build, chain, False)
    wall_speedup = as_written["wall_s"] / max(optimized["wall_s"], 1e-9)
    modeled_speedup = as_written["modeled_s"] / max(
        optimized["modeled_s"], 1e-9)
    case = {
        "wall_speedup": wall_speedup,
        "modeled_speedup": modeled_speedup,
        "optimized": optimized,
        "as_written": as_written,
    }
    rows = []
    for label, mode in (("optimized", optimized),
                        ("as written", as_written)):
        rows.append([
            label, f"{mode['wall_s']:.3f}s", f"{mode['modeled_s']:.3f}s",
            mode["tasks_launched"],
            f"{mode['shuffle_bytes'] / 1e6:.1f}",
            mode["rules_fired"], mode["chunks_pruned"]])
    rows.append(["speedup", f"{wall_speedup:.2f}x",
                 f"{modeled_speedup:.2f}x", "", "", "", ""])
    print_table(
        name,
        ["mode", "wall", "modeled", "tasks", "shuffle MB", "rules fired",
         "chunks pruned"],
        rows,
    )
    return case


def run() -> dict:
    return {
        "shape": list(SHAPE),
        "chunk_shape": list(CHUNK),
        "repeats": REPEATS,
        "subarray_after_shuffle": _compare(
            "subarray after shuffle (push_below_shuffle)",
            _build_uniform, _shuffle_chain),
        "skewed_density_pushdown": _compare(
            "skewed-density scalar pushdown (fold + hoist)",
            _build_skewed, _skew_chain),
    }


def test_subarray_after_shuffle_speedup():
    case = _compare("subarray after shuffle (push_below_shuffle)",
                    _build_uniform, _shuffle_chain)
    opt, raw = case["optimized"], case["as_written"]
    assert opt["sum"] == raw["sum"]
    assert opt["rules_fired"] > 0
    assert opt["chunks_pruned"] > 0
    assert raw["rules_fired"] == 0
    assert opt["shuffle_bytes"] < raw["shuffle_bytes"] / 4
    # pruning pays in network time: in-process the shuffle is a memory
    # copy, so the win shows in modeled cluster time (1 GbE rates)
    assert case["modeled_speedup"] >= SHUFFLE_SPEEDUP_TARGET, (
        f"expected >= {SHUFFLE_SPEEDUP_TARGET}x modeled from pruning "
        f"the shuffle, got {case['modeled_speedup']:.2f}x")


def test_skewed_density_pushdown():
    case = _compare("skewed-density scalar pushdown (fold + hoist)",
                    _build_skewed, _skew_chain)
    opt, raw = case["optimized"], case["as_written"]
    assert opt["sum"] == raw["sum"]
    assert opt["rules_fired"] > 0
    # this chain never shuffles: the hoisted restriction saves compute,
    # which is exactly what wall time measures in-process
    assert case["wall_speedup"] >= SKEW_SPEEDUP_TARGET, (
        f"expected >= {SKEW_SPEEDUP_TARGET}x wall from hoisting the "
        f"restriction, got {case['wall_speedup']:.2f}x")


def _traced_run(json_path: str) -> dict:
    """One traced optimized pass: the event-log artifact."""
    ctx = fresh_context(8, trace=True)
    arr = _build_uniform(ctx)
    ctx.tracer.clear()          # trace the chain, not ingestion
    _shuffle_chain(arr).aggregate("sum")
    return write_trace_artifact(ctx, json_path)


def main(json_path: str = None) -> dict:
    artifact = run()
    if json_path:
        artifact["trace"] = _traced_run(json_path)
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2)
    print(json.dumps(artifact, indent=2))
    return artifact


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else None)
