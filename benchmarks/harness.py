"""Shared helpers for the figure/table reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper's
evaluation: it runs the same workload on every system, prints the same
rows/series the paper reports, and *asserts the shape* of the result —
who wins, roughly by how much, where the crossover falls. Absolute
numbers are not comparable (the substrate is an in-process simulator,
not the authors' nine-node cluster), so each row reports both measured
wall-clock and the cost-model's modeled cluster time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.engine import ClusterContext


@dataclass
class Measured:
    """One cell of a result table."""

    value: object
    wall_s: float
    modeled_s: float
    failed: str = None
    network_s: float = 0.0
    scheduling_s: float = 0.0
    disk_s: float = 0.0
    stage_timings: list = None
    utilization: float = 0.0

    def cell(self) -> str:
        if self.failed:
            return f"x ({self.failed})"
        return f"{self.wall_s:.3f}s / {self.modeled_s:.3f}s"

    def modeled_with_parallelism(self, ways: int) -> float:
        """Modeled time when the compute divides over ``ways`` workers.

        The engine executes tasks serially in-process, so measured wall
        time is the *total* compute; on a cluster it divides across
        executors while the network/scheduling/disk overheads do not.
        """
        return (self.wall_s / max(ways, 1) + self.network_s
                + self.scheduling_s + self.disk_s)


def run_measured(ctx: ClusterContext, fn, *args, **kwargs) -> Measured:
    """Run ``fn`` and capture wall time + modeled cluster time.

    Expected feasibility failures (OOM, bounded-time) become ``x`` cells
    — the paper's Fig. 10 marks — instead of propagating.
    """
    from repro.baselines.scidb import SciDBTimeout
    from repro.baselines.scispark import UnsupportedOperation
    from repro.errors import OutOfMemoryError, TaskFailure

    expected = (OutOfMemoryError, SciDBTimeout, UnsupportedOperation)
    with ctx.measure() as measurement:
        try:
            value = fn(*args, **kwargs)
            failed = None
        except expected as exc:
            value = None
            failed = type(exc).__name__
        except TaskFailure as exc:
            if isinstance(exc.cause, expected):
                value = None
                failed = type(exc.cause).__name__
            else:
                raise
    return Measured(value=value,
                    wall_s=measurement.wall_s,
                    modeled_s=measurement.report.modeled_s,
                    failed=failed,
                    network_s=measurement.report.network_s,
                    scheduling_s=measurement.report.scheduling_s,
                    disk_s=measurement.report.disk_s,
                    stage_timings=list(measurement.stage_timings),
                    utilization=measurement.utilization)


def print_stage_breakdown(title: str, measured: Measured) -> None:
    """Print the per-stage wall times captured by a measured run."""
    from repro.engine.explain import stage_breakdown

    print(f"\n--- {title} "
          f"(executor utilization {measured.utilization * 100:.0f}%) ---")
    print(stage_breakdown(measured.stage_timings or []))


def print_table(title: str, headers, rows) -> None:
    """Print an aligned ASCII table (the bench's 'paper figure')."""
    headers = [str(h) for h in headers]
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "-+-".join("-" * w for w in widths)
    print(f"\n=== {title} ===")
    print(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    print(line)
    for row in str_rows:
        print(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    print()


def timed(fn, *args, **kwargs):
    """Plain wall-clock timing: ``(result, seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def fresh_context(num_executors: int = 8, trace: bool = False,
                  telemetry_interval=None,
                  telemetry_path=None) -> ClusterContext:
    return ClusterContext(num_executors=num_executors,
                          default_parallelism=num_executors,
                          trace=trace,
                          telemetry_interval=telemetry_interval,
                          telemetry_path=telemetry_path)


def write_trace_artifact(ctx: ClusterContext, json_path) -> dict:
    """Export a traced context's spans next to a benchmark JSON artifact.

    Writes ``<base>.trace.jsonl`` (replayable with ``repro trace``) and
    ``<base>.chrome.json`` (Chrome ``trace_event`` format) beside
    ``json_path``, and returns a summary dict for embedding in the
    benchmark JSON. Returns ``{}`` when the context was not traced.
    """
    import os

    from repro.engine.tracing import export_chrome_trace, export_jsonl

    spans = ctx.tracer.spans()
    if not spans:
        return {}
    base, _ = os.path.splitext(str(json_path))
    jsonl_path = base + ".trace.jsonl"
    chrome_path = base + ".chrome.json"
    export_jsonl(spans, jsonl_path, num_executors=ctx.num_executors)
    export_chrome_trace(spans, chrome_path)
    profiles = ctx.tracer.job_profiles()
    return {
        "event_log": os.path.basename(jsonl_path),
        "chrome_trace": os.path.basename(chrome_path),
        "num_spans": len(spans),
        "num_jobs": len(profiles),
        "jobs": [profile.as_dict() for profile in profiles],
    }
