"""Ablation benches for the design choices DESIGN.md calls out.

Beyond the paper's figures, these isolate each optimization:

- local-join fusion for matmul (Section VI-A) — input shuffles on/off;
- offset-array vs bitmask encoding for static matrices (Section V-A-4)
  — the size crossover that drives the conversion rule;
- population-count strategies (Section IV-B) — naive vs builtin vs
  vectorized, the microbench behind Fig. 8's access paths;
- synchronous vs asynchronous Accumulator (Section V-B) — barrier
  counts and agreement.
"""

import time

import numpy as np

from benchmarks.harness import fresh_context, print_table, run_measured
from repro.bitmask import Bitmask
from repro.bitmask.popcount import (
    popcount_words_builtin,
    popcount_words_naive,
    popcount_words_vectorized,
)
from repro.core.aggregates import Accumulator
from repro.core.chunk import Chunk, ChunkMode
from repro.matrix import SpangleMatrix, encode_static
from repro.matrix.multiply import prepare_local
from repro.matrix.offsets import bitmask_bytes, offset_array_bytes


def test_ablation_local_join(benchmark):
    """Matmul with and without the local-join fusion."""
    rng = np.random.default_rng(0)
    a = rng.random((512, 512))
    a[rng.random((512, 512)) > 0.2] = 0
    b = rng.random((512, 512))
    b[rng.random((512, 512)) > 0.2] = 0
    ctx = fresh_context()
    ma = SpangleMatrix.from_numpy(ctx, a, (128, 128)).materialize()
    mb = SpangleMatrix.from_numpy(ctx, b, (128, 128)).materialize()
    la, lb = prepare_local(ma, mb)
    la.materialize()
    lb.materialize()

    def run():
        default = run_measured(
            ctx, lambda: ma.multiply(mb).array.rdd.count())
        local = run_measured(
            ctx, lambda: la.multiply(lb, local_join=True)
            .array.rdd.count())
        return default, local

    default, local = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Ablation — matmul local join",
        ["variant", "wall / modeled", "network_s"],
        [["three-stage (shuffle inputs)", default.cell(),
          f"{default.network_s:.3f}"],
         ["local join (fused)", local.cell(),
          f"{local.network_s:.3f}"]])
    # correctness
    assert np.allclose(
        ma.multiply(mb).to_numpy(), la.multiply(lb, True).to_numpy())
    # the fusion removes input shuffle traffic
    assert local.network_s < default.network_s
    assert local.modeled_s < default.modeled_s


def test_ablation_offset_encoding(benchmark):
    """Size crossover between bitmask and offset-array encodings."""
    num_cells = 65_536
    crossover_nnz = bitmask_bytes(num_cells) // 8  # = cells / 64

    def run():
        rows = []
        rng = np.random.default_rng(1)
        for nnz in (16, 128, crossover_nnz, 4 * crossover_nnz,
                    32 * crossover_nnz):
            offsets = rng.choice(num_cells, nnz, replace=False)
            chunk = Chunk.from_sparse(num_cells, offsets,
                                      np.ones(nnz),
                                      mode=ChunkMode.SPARSE)
            encoded = encode_static(chunk)
            rows.append((nnz, chunk.mask.nbytes,
                         offset_array_bytes(nnz),
                         type(encoded).__name__))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Ablation — offset array vs bitmask (64k-cell chunk)",
        ["nnz", "bitmask bytes", "offset bytes", "chosen encoding"],
        rows)
    # below the crossover the offsets win; above it the bitmask does
    assert rows[0][3] == "OffsetArrayChunk"
    assert rows[-1][3] == "Chunk"
    # the rule is exactly the byte comparison
    for nnz, mask_bytes, offset_bytes, chosen in rows:
        expected = ("OffsetArrayChunk"
                    if offset_bytes < bitmask_bytes(num_cells)
                    else "Chunk")
        assert chosen == expected, nnz


def test_ablation_popcount(benchmark):
    """The three popcount strategies on the same words."""
    rng = np.random.default_rng(2)
    words = rng.integers(0, 2 ** 63, 200_000, dtype=np.int64) \
               .astype(np.uint64)
    # the naive path is per-set-bit; keep its input smaller
    naive_words = words[:2_000]

    def run():
        timings = {}
        start = time.perf_counter()
        naive_count = popcount_words_naive(naive_words)
        timings["naive (Wegner loop)"] = (
            (time.perf_counter() - start) / naive_words.size)
        start = time.perf_counter()
        builtin_count = popcount_words_builtin(words)
        timings["builtin (bit_count)"] = (
            (time.perf_counter() - start) / words.size)
        start = time.perf_counter()
        vector_count = popcount_words_vectorized(words)
        timings["vectorized (byte LUT)"] = (
            (time.perf_counter() - start) / words.size)
        assert popcount_words_builtin(naive_words) == naive_count
        assert builtin_count == vector_count
        return timings

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Ablation — popcount strategies (per-word cost)",
        ["strategy", "ns/word"],
        [[name, f"{cost * 1e9:.1f}"]
         for name, cost in timings.items()])
    assert timings["vectorized (byte LUT)"] \
        < timings["builtin (bit_count)"] \
        < timings["naive (Wegner loop)"]


def test_ablation_milestones(benchmark):
    """Random-access rank: milestones vs scanning from the start."""
    rng = np.random.default_rng(3)
    mask = Bitmask.from_bools(rng.random(1 << 20) < 0.3)
    positions = rng.integers(0, 1 << 20, 3_000)

    def run():
        start = time.perf_counter()
        from_scratch = [mask.rank(int(p), "vectorized")
                        for p in positions]
        scratch_s = time.perf_counter() - start
        start = time.perf_counter()
        with_milestones = [mask.rank(int(p), "milestone")
                           for p in positions]
        milestone_s = time.perf_counter() - start
        assert from_scratch == with_milestones
        return scratch_s, milestone_s

    scratch_s, milestone_s = benchmark.pedantic(run, rounds=1,
                                                iterations=1)
    print_table(
        "Ablation — random-access rank on a 1M-bit mask (3k queries)",
        ["method", "seconds"],
        [["full prefix scan", f"{scratch_s:.4f}"],
         ["milestones (64-word blocks)", f"{milestone_s:.4f}"]])
    assert milestone_s < scratch_s


def test_ablation_store_pruning(benchmark, tmp_path):
    """ChunkStore manifest pruning: a region load reads only its chunks.

    The storage-level analogue of Subarray's chunk-ID pruning — and of
    SciDB's query pushdown — measured in actual bytes read from disk.
    """
    from repro.io.store import load_array, save_array
    from repro.core import ArrayRDD

    rng = np.random.default_rng(5)
    data = rng.random((512, 512))
    ctx = fresh_context()
    arr = ArrayRDD.from_numpy(ctx, data, (64, 64))
    save_array(arr, tmp_path / "store")

    def run():
        before = ctx.metrics.snapshot()
        full = load_array(ctx, tmp_path / "store")
        full.count_valid()
        full_read = (ctx.metrics.snapshot() - before).disk_read_bytes
        before = ctx.metrics.snapshot()
        window = load_array(ctx, tmp_path / "store",
                            region=((0, 0), (63, 63)))
        count = window.count_valid()
        window_read = (ctx.metrics.snapshot()
                       - before).disk_read_bytes
        return full_read, window_read, count

    full_read, window_read, count = benchmark.pedantic(
        run, rounds=1, iterations=1)
    print_table(
        "Ablation — ChunkStore region pruning (512x512, 64-cell chunks)",
        ["load", "disk bytes read"],
        [["full array (64 chunks)", full_read],
         ["one-chunk region", window_read]])
    assert count == 64 * 64
    # pruning reads ~1/64th of the store
    assert window_read < full_read / 32


def test_ablation_accumulator(benchmark):
    """Sync vs async Accumulator: same answer, fewer barriers."""
    rng = np.random.default_rng(4)
    values = rng.random((64, 4096))
    valid = rng.random((64, 4096)) < 0.6

    def run():
        sync = Accumulator(np.add)
        start = time.perf_counter()
        sync_out = sync.run(values, valid, axis=1, chunk_interval=64,
                            mode="sync")
        sync_s = time.perf_counter() - start
        async_acc = Accumulator(np.add)
        start = time.perf_counter()
        async_out = async_acc.run(values, valid, axis=1, chunk_interval=64,
                           mode="async")
        async_s = time.perf_counter() - start
        assert np.allclose(sync_out, async_out)
        return sync_s, sync.num_sync_steps, async_s, async_acc.num_sync_steps

    sync_s, sync_steps, async_s, async_steps = benchmark.pedantic(
        run, rounds=1, iterations=1)
    print_table(
        "Ablation — Accumulator sync vs async (prefix sum, 64 chunks)",
        ["mode", "seconds", "synchronization steps"],
        [["sync (barrier per boundary)", f"{sync_s:.4f}", sync_steps],
         ["async (scan + one adjustment)", f"{async_s:.4f}",
          async_steps]])
    assert async_steps < sync_steps
    assert async_steps == 2
