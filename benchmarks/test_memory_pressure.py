"""Adaptive memory manager under pressure: eviction policy + repacking.

Two workloads exercise the cache as a real memory tier:

- **budgeted iterative PageRank** — the adjacency lists are an
  expensive ``MEMORY_AND_DISK`` dataset read every iteration; each
  iteration also persists its (cheap, narrow) contribution vectors,
  which pushes the cache over budget mid-iteration. LRU evicts by
  recency and lands on the adjacency partition the *next* task needs —
  sequential flooding — so every later iteration reloads it from the
  spill tier and pays disk in the modeled time. The cost-aware policy
  prices the contribution blocks at a one-pass narrow recompute,
  evicts those instead, and keeps the adjacency hot.
- **post-filter repacking** — raster tiles arrive dense from the
  loader with a threshold filter already applied as a validity mask
  (~2% of cells survive), so the pinned DENSE payloads are stale for
  their true density. With ``repack_on_admission`` the cache re-runs
  the paper's density→mode policy when the blocks are persisted,
  shrinking the resident footprint by the dense/sparse ratio.

Run as a script to emit the JSON artifact::

    PYTHONPATH=src python benchmarks/test_memory_pressure.py memory.json
"""

from __future__ import annotations

import json
import os

import numpy as np

if __package__ in (None, ""):
    # allow `python benchmarks/test_memory_pressure.py` (the CI smoke
    # job) as well as `pytest benchmarks/`
    import sys

    sys.path.insert(0, os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))

from benchmarks.harness import (
    print_table,
    run_measured,
    write_trace_artifact,
)
from repro.core import ArrayRDD, ChunkMode
from repro.engine import ClusterContext, StorageLevel, memory_report

#: cost-aware eviction must model at least this much faster than LRU
MODELED_TARGET = 1.2
#: admission repacking must shrink resident bytes at least this much
REPACK_TARGET = 1.3

NUM_VERTICES = 60_000
NUM_EDGES = 1_500_000
PARTITIONS = 4
BLOCK = NUM_VERTICES // PARTITIONS
ITERATIONS = 12
DAMPING = 0.85
EXECUTORS = 8

FILTER_SHAPE = (256, 256)
FILTER_CHUNK = (32, 32)
FILTER_THRESHOLD = 2.0


# ----------------------------------------------------------------------
# workload 1: budgeted iterative PageRank
# ----------------------------------------------------------------------

def _edge_blocks():
    """Edges grouped by target block: ``(p, (sources, local_targets))``.

    Target-partitioned adjacency means each contribution partial only
    covers its own vertex block, so iterations aggregate by
    concatenation instead of an all-to-all sum.
    """
    rng = np.random.default_rng(42)
    src = rng.integers(0, NUM_VERTICES, NUM_EDGES)
    dst = rng.integers(0, NUM_VERTICES, NUM_EDGES)
    out_degree = np.bincount(src, minlength=NUM_VERTICES)
    records = []
    for p in range(PARTITIONS):
        lo = p * BLOCK
        sel = (dst >= lo) & (dst < lo + BLOCK)
        records.append((p, (src[sel].astype(np.int64),
                            (dst[sel] - lo).astype(np.int64))))
    return records, out_degree


def _load_links(ctx, records):
    links = ctx.parallelize(records, PARTITIONS).persist(
        StorageLevel.MEMORY_AND_DISK)
    links.count()
    return links


def _pagerank(ctx, links, out_degree):
    n = NUM_VERTICES
    inv_degree = np.where(out_degree > 0,
                          1.0 / np.maximum(out_degree, 1), 0.0)
    dangling_mask = out_degree == 0
    ranks = np.full(n, 1.0 / n)
    for _ in range(ITERATIONS):
        weights = ranks * inv_degree
        contribs = links.map_values(
            lambda st, w=weights: np.bincount(
                st[1], weights=w[st[0]], minlength=BLOCK)
        ).persist(StorageLevel.MEMORY)
        blocks = dict(contribs.collect())
        # the mass check re-reads the persisted contributions — the
        # second action that justifies caching them
        mass = contribs.map_values(lambda v: float(v.sum())) \
            .values().sum()
        dangling = float(ranks[dangling_mask].sum())
        total = np.concatenate([blocks[p] for p in range(PARTITIONS)])
        ranks = (1.0 - DAMPING) / n \
            + DAMPING * (total + dangling / n)
        contribs.unpersist()
        if mass + dangling < 1e-12:
            break
    return ranks


def _links_budget() -> int:
    """Budget = the whole adjacency + ~2.5 contribution partials.

    Mid-iteration the working set (adjacency + all four partials)
    exceeds this, so the third partial's admission must evict.
    """
    ctx = ClusterContext(num_executors=EXECUTORS,
                         default_parallelism=PARTITIONS)
    records, _ = _edge_blocks()
    _load_links(ctx, records)
    links_bytes = ctx.cache.used_bytes()
    ctx.shutdown()
    return links_bytes + int(2.5 * BLOCK * 8)


def _run_pagerank_policy(policy: str, budget: int) -> dict:
    ctx = ClusterContext(num_executors=EXECUTORS,
                         default_parallelism=PARTITIONS,
                         cache_budget_bytes=budget,
                         eviction_policy=policy)
    records, out_degree = _edge_blocks()
    links = _load_links(ctx, records)
    measured = run_measured(ctx, _pagerank, ctx, links, out_degree)
    delta = ctx.metrics.snapshot()
    report = memory_report(ctx)
    ctx.shutdown()
    return {
        "policy": policy,
        "measured": measured,
        "ranks": measured.value,
        "modeled_s": measured.modeled_with_parallelism(EXECUTORS),
        "disk_read_bytes": delta.disk_read_bytes,
        "disk_write_bytes": delta.disk_write_bytes,
        "evictions": delta.cache_evictions,
        "spills": delta.cache_spills,
        "reloads": delta.cache_reloads,
        "memory_report": report,
    }


def run_pagerank() -> dict:
    budget = _links_budget()
    lru = _run_pagerank_policy("lru", budget)
    cost = _run_pagerank_policy("cost", budget)
    speedup = lru["modeled_s"] / max(cost["modeled_s"], 1e-9)
    identical = bool(np.allclose(lru["ranks"], cost["ranks"],
                                 atol=1e-12))

    rows = []
    for out in (lru, cost):
        measured = out["measured"]
        rows.append([
            out["policy"], measured.cell(),
            f"{out['modeled_s']:.3f}s",
            f"{measured.disk_s:.3f}s",
            out["spills"], out["reloads"], out["evictions"],
        ])
    rows.append(["speedup", "", f"{speedup:.2f}x", "", "", "", ""])
    print_table(
        f"budgeted PageRank ({NUM_VERTICES} vertices, {NUM_EDGES} "
        f"edges, {ITERATIONS} iterations, budget {budget:,} B)",
        ["policy", "wall / modeled", "modeled (cluster)", "disk",
         "spills", "reloads", "evictions"], rows)
    print(lru["memory_report"])
    print(cost["memory_report"])

    def slim(out):
        return {key: out[key] for key in (
            "policy", "modeled_s", "disk_read_bytes",
            "disk_write_bytes", "evictions", "spills", "reloads")}

    return {
        "budget_bytes": budget,
        "iterations": ITERATIONS,
        "num_vertices": NUM_VERTICES,
        "num_edges": NUM_EDGES,
        "modeled_speedup": speedup,
        "ranks_identical": identical,
        "lru": slim(lru),
        "cost": slim(cost),
    }


# ----------------------------------------------------------------------
# workload 2: post-filter density repacking
# ----------------------------------------------------------------------

def _run_filter_workload(repack: bool) -> dict:
    ctx = ClusterContext(num_executors=4, default_parallelism=4,
                         repack_on_admission=repack)
    rng = np.random.default_rng(7)
    data = rng.standard_normal(FILTER_SHAPE)
    # the loader applied the filter upstream (a validity mask) but
    # pinned the tile encoding DENSE — the density/mode mismatch the
    # admission repacker exists to fix
    kept = ArrayRDD.from_numpy(ctx, data, FILTER_CHUNK,
                               valid=data > FILTER_THRESHOLD,
                               mode=ChunkMode.DENSE).cache()
    kept.num_chunks_materialized()
    out = {
        "repack": repack,
        "resident_bytes": ctx.cache.used_bytes(),
        "chunks_repacked": ctx.metrics.chunks_repacked,
        "repack_bytes_saved": ctx.metrics.repack_bytes_saved,
        "dense": kept.collect_dense(),
        "memory_report": memory_report(ctx),
    }
    ctx.shutdown()
    return out


def run_repack() -> dict:
    plain = _run_filter_workload(False)
    packed = _run_filter_workload(True)
    reduction = plain["resident_bytes"] \
        / max(packed["resident_bytes"], 1)
    values_plain, valid_plain = plain.pop("dense")
    values_packed, valid_packed = packed.pop("dense")
    identical = bool(
        np.array_equal(valid_plain, valid_packed)
        and np.allclose(values_plain[valid_plain],
                        values_packed[valid_packed]))

    print_table(
        f"post-filter repacking ({FILTER_SHAPE[0]}x{FILTER_SHAPE[1]} "
        f"array, keep > {FILTER_THRESHOLD} sigma)",
        ["admission", "resident bytes", "chunks repacked",
         "bytes saved"],
        [
            ["as computed", f"{plain['resident_bytes']:,}",
             plain["chunks_repacked"], plain["repack_bytes_saved"]],
            ["repacked", f"{packed['resident_bytes']:,}",
             packed["chunks_repacked"],
             f"{packed['repack_bytes_saved']:,}"],
            ["reduction", f"{reduction:.2f}x", "", ""],
        ])
    print(packed["memory_report"])

    return {
        "resident_reduction": reduction,
        "data_identical": identical,
        "plain_resident_bytes": plain["resident_bytes"],
        "repacked_resident_bytes": packed["resident_bytes"],
        "chunks_repacked": packed["chunks_repacked"],
        "repack_bytes_saved": packed["repack_bytes_saved"],
        "memory_report": packed["memory_report"],
    }


# ----------------------------------------------------------------------
# assertions (the benchmark's "figure shape")
# ----------------------------------------------------------------------

def test_cost_aware_beats_lru_under_budget():
    artifact = run_pagerank()
    assert artifact["ranks_identical"]
    # LRU floods the adjacency to disk and pays a reload per iteration
    assert artifact["lru"]["spills"] > 0
    assert artifact["lru"]["reloads"] >= ITERATIONS - 1
    # the cost-aware policy sacrifices recomputable narrow blocks and
    # never touches the spill tier
    assert artifact["cost"]["disk_read_bytes"] == 0
    assert artifact["cost"]["disk_write_bytes"] == 0
    assert artifact["cost"]["evictions"] > 0
    assert artifact["modeled_speedup"] >= MODELED_TARGET, (
        f"expected cost-aware eviction to model >= {MODELED_TARGET}x "
        f"faster than LRU under budget, got "
        f"{artifact['modeled_speedup']:.2f}x")


def test_repacking_shrinks_resident_bytes():
    artifact = run_repack()
    assert artifact["data_identical"]
    assert artifact["chunks_repacked"] > 0
    assert artifact["repack_bytes_saved"] > 0
    assert "chunks_repacked" in artifact["memory_report"]
    assert artifact["resident_reduction"] >= REPACK_TARGET, (
        f"expected admission repacking to shrink resident bytes "
        f">= {REPACK_TARGET}x on a post-filter sparse array, got "
        f"{artifact['resident_reduction']:.2f}x")


# ----------------------------------------------------------------------
# CLI artifact
# ----------------------------------------------------------------------

def _traced_run(json_path: str) -> dict:
    """A traced budgeted run: spill/reload events for ``repro trace``.

    Traced under LRU on purpose — that is the run that touches the
    spill tier, so the event log carries ``cache_spill`` and
    ``cache_reload`` annotations with their encoded disk bytes.
    """
    budget = _links_budget()
    ctx = ClusterContext(num_executors=EXECUTORS,
                         default_parallelism=PARTITIONS,
                         cache_budget_bytes=budget,
                         eviction_policy="lru",
                         trace=True)
    records, out_degree = _edge_blocks()
    links = _load_links(ctx, records)
    ctx.tracer.clear()          # trace the iterations, not ingest
    _pagerank(ctx, links, out_degree)
    summary = write_trace_artifact(ctx, json_path)
    ctx.shutdown()
    return summary


def main(json_path: str = None) -> dict:
    artifact = {
        "pagerank": run_pagerank(),
        "repack": run_repack(),
    }
    if json_path:
        artifact["trace"] = _traced_run(json_path)
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2)
    print(json.dumps(artifact, indent=2))
    return artifact


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else None)
