"""Process backend vs thread backend — where each one wins.

Two chains run under all three execution modes (serial, thread pool,
forked worker processes) on identical data:

- **Python-heavy**: a 4-op ``map_values`` chain of pure-Python
  per-record kernels. The GIL serializes the thread pool here, so the
  process backend — true multi-core, shuffle blocks exchanged through
  shared memory — should win big (>= 1.8x over threads on >= 4 cores).
- **numpy-dominated**: the same shape but GIL-releasing ufunc passes
  over dense blocks. Threads already scale on this one; the process
  backend must stay within 1.1x of it (its task round trips ride
  shared-memory segments, not the result pipe).

Shape claims (asserted on every host): all three modes return
byte-identical results and identical logical metrics on both chains.
Speedup/regression gates apply on hosts with >= 4 cores. ``main()``
writes the JSON + trace artifacts consumed by CI.
"""

from __future__ import annotations

import json
import os
import pickle

import numpy as np

if __package__ in (None, ""):
    # allow `python benchmarks/test_process_backend.py` (the CI smoke
    # job) as well as `pytest benchmarks/`
    import sys

    sys.path.insert(0, os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))

from benchmarks.harness import (
    print_stage_breakdown,
    print_table,
    run_measured,
    write_trace_artifact,
)
from repro.engine import ClusterContext

NUM_PARTITIONS = 8
NUM_EXECUTORS = 4
NUM_KEYS = 4

PY_RECORDS_PER_PARTITION = 120
PY_ROUNDS = 600
SPEEDUP_TARGET = 1.8

NP_RECORDS_PER_PARTITION = 3
NP_BLOCK_CELLS = 400_000
NP_KERNEL_PASSES = 4
REGRESSION_CEILING = 1.1

LOGICAL_FIELDS = ("stages_run", "tasks_launched", "shuffle_records",
                  "shuffle_bytes", "shuffles_performed")


# ----------------------------------------------------------------------
# the Python-heavy chain: four pure-Python per-record kernels
# ----------------------------------------------------------------------

def _py_gen(index):
    return [(j % NUM_KEYS, (index * PY_RECORDS_PER_PARTITION + j) or 1)
            for j in range(PY_RECORDS_PER_PARTITION)]


def _py_stir(value):
    acc = value
    for i in range(PY_ROUNDS):
        acc = (acc * 31 + i) % 1000003
    return acc


def _py_fold(value):
    acc = 0
    for i in range(PY_ROUNDS):
        acc = (acc + value * i) % 998244353
    return acc or 1


def _py_collatzish(value):
    acc = value
    for _ in range(PY_ROUNDS):
        acc = acc // 2 if acc % 2 == 0 else acc * 3 + 1
        acc = acc % 1000003 or 7
    return acc


def _py_digits(value):
    acc = value
    for _ in range(PY_ROUNDS // 10):
        acc = sum(int(d) * 7 for d in str(acc * acc + 11)) + acc % 97
    return acc


def _py_workload(ctx):
    chain = (
        ctx.generate(NUM_PARTITIONS, _py_gen)
        .map_values(_py_stir)
        .map_values(_py_fold)
        .map_values(_py_collatzish)
        .map_values(_py_digits)
        .reduce_by_key(lambda a, b: (a + b) % 1000000007)
    )
    return sorted(chain.collect())


# ----------------------------------------------------------------------
# the numpy-dominated chain: GIL-releasing ufunc passes
# ----------------------------------------------------------------------

def _np_gen(index):
    rng = np.random.default_rng(1000 + index)
    return [(index % NUM_KEYS, rng.random(NP_BLOCK_CELLS))
            for _ in range(NP_RECORDS_PER_PARTITION)]


def _np_kernel(block):
    acc = block
    for _ in range(NP_KERNEL_PASSES):
        acc = np.sqrt(acc * acc + 1.0)
    return float(acc.sum())


def _np_workload(ctx):
    chain = (
        ctx.generate(NUM_PARTITIONS, _np_gen)
        .map_values(_np_kernel)
        .reduce_by_key(lambda a, b: a + b)
    )
    return sorted(chain.collect())


# ----------------------------------------------------------------------
# runners
# ----------------------------------------------------------------------

def _run_mode(mode, workload):
    kwargs = {"num_executors": NUM_EXECUTORS,
              "default_parallelism": NUM_PARTITIONS}
    if mode == "thread":
        kwargs["use_threads"] = True
    elif mode == "process":
        kwargs["backend"] = "process"
    with ClusterContext(**kwargs) as ctx:
        before = ctx.metrics.snapshot()
        measured = run_measured(ctx, workload, ctx)
        delta = ctx.metrics.snapshot() - before
    return measured, delta


def _speedup_expected() -> bool:
    return (os.cpu_count() or 1) >= 4


def _assert_identity(results, deltas):
    reference = pickle.dumps(results["serial"])
    for mode in ("thread", "process"):
        assert pickle.dumps(results[mode]) == reference, mode
    for field_name in LOGICAL_FIELDS:
        values = {mode: getattr(delta, field_name)
                  for mode, delta in deltas.items()}
        assert len(set(values.values())) == 1, (field_name, values)


def _run_chain(workload):
    results, measures, deltas = {}, {}, {}
    for mode in ("serial", "thread", "process"):
        measured, delta = _run_mode(mode, workload)
        results[mode] = measured.value
        measures[mode] = measured
        deltas[mode] = delta
    _assert_identity(results, deltas)
    return measures, deltas


def _print_chain(title, measures, deltas):
    rows = []
    for mode in ("serial", "thread", "process"):
        measured = measures[mode]
        rows.append([mode, f"{measured.wall_s:.3f}s",
                     f"{measured.utilization * 100:.0f}%",
                     deltas[mode].stages_run,
                     deltas[mode].tasks_launched])
    thread_vs_process = (measures["thread"].wall_s
                         / max(measures["process"].wall_s, 1e-9))
    rows.append(["process vs thread", f"{thread_vs_process:.2f}x",
                 "", "", ""])
    print_table(title, ["mode", "wall", "utilization", "stages", "tasks"],
                rows)
    print_stage_breakdown("process", measures["process"])
    return thread_vs_process


def test_python_heavy_chain_process_speedup(capsys=None):
    measures, deltas = _run_chain(_py_workload)
    speedup = _print_chain(
        "Python-heavy 4-op map_values chain (GIL-bound kernels)",
        measures, deltas)
    if _speedup_expected():
        assert speedup >= SPEEDUP_TARGET, (
            f"expected the process backend >= {SPEEDUP_TARGET}x over "
            f"threads on a multi-core host, got {speedup:.2f}x")


def test_numpy_chain_process_regression_bounded(capsys=None):
    measures, deltas = _run_chain(_np_workload)
    _print_chain("numpy-dominated chain (GIL-releasing kernels)",
                 measures, deltas)
    if _speedup_expected():
        ratio = (measures["process"].wall_s
                 / max(measures["thread"].wall_s, 1e-9))
        assert ratio <= REGRESSION_CEILING, (
            f"process backend must stay within {REGRESSION_CEILING}x of "
            f"threads on numpy chains, was {ratio:.2f}x slower")


def main(json_path: str = None) -> dict:
    """Run both chains under all modes; write the CI JSON artifact."""
    artifact = {"cpu_count": os.cpu_count(), "chains": {}}
    for chain_name, workload in (("python_heavy", _py_workload),
                                 ("numpy_dominated", _np_workload)):
        measures, deltas = _run_chain(workload)
        artifact["chains"][chain_name] = {
            "process_vs_thread_speedup": (
                measures["thread"].wall_s
                / max(measures["process"].wall_s, 1e-9)),
            "modes": {
                mode: {
                    "wall_s": measures[mode].wall_s,
                    "utilization": measures[mode].utilization,
                    "stages_run": deltas[mode].stages_run,
                    "tasks_launched": deltas[mode].tasks_launched,
                    "shuffle_bytes": deltas[mode].shuffle_bytes,
                    "shm_segments_created":
                        deltas[mode].shm_segments_created,
                    "shm_bytes_mapped": deltas[mode].shm_bytes_mapped,
                    "stage_timings": [
                        timing.as_dict()
                        for timing in measures[mode].stage_timings],
                }
                for mode in ("serial", "thread", "process")
            },
        }
    if json_path:
        with ClusterContext(num_executors=NUM_EXECUTORS,
                            default_parallelism=NUM_PARTITIONS,
                            backend="process", trace=True) as ctx:
            _py_workload(ctx)
            artifact["trace"] = write_trace_artifact(ctx, json_path)
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2)
    print(json.dumps(artifact, indent=2))
    return artifact


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else None)
