"""Table III — logistic regression: Spangle vs MLlib on three datasets.

Scaled URL-reputation / KDD Cup 2010 / KDD Cup 2012 stand-ins (80/20
train-test structure preserved; see :mod:`repro.data.lr_datasets`).
Hyper-parameters follow the paper: tolerance 1e-4, step size 0.6.

Shape claims:
- Spangle trains all three datasets;
- MLlib ingests only the smallest (URL-like) — the two KDD-like
  datasets exceed its (scaled) heap, the paper's "-" cells;
- on the shared dataset both systems reach comparable accuracy, with
  training times of the same order.
"""


from benchmarks.harness import fresh_context, print_table, run_measured
from repro.baselines import LogisticRegressionMLlib
from repro.data import LR_SPECS, scaled_lr_dataset
from repro.ml import DistributedSamples, LogisticRegression

DATASETS = ("url", "kddcup2010", "kddcup2012")
STEP_SIZE = 0.6
TOLERANCE = 1e-4
MAX_ITERATIONS = 250

# MLlib driver/executor heaps from the paper (2 GB / 10 GB), scaled per
# dataset so feasibility is decided by the same mechanism at every scale
PAPER_DRIVER_BYTES = 2 * 1024 ** 3
PAPER_EXECUTOR_BYTES = 10 * 1024 ** 3


def _train_spangle(ctx, data):
    spec = data["spec"]
    train = data["train"]
    samples = DistributedSamples.from_coo(
        ctx, train["rows"], train["cols"], train["values"],
        train["labels"], spec.features, chunk_rows=256).cache()
    model = LogisticRegression(
        step_size=STEP_SIZE, tolerance=TOLERANCE,
        max_iterations=MAX_ITERATIONS, chunks_per_step=3)
    model.fit(samples)
    test = data["test"]
    test_samples = DistributedSamples.from_coo(
        ctx, test["rows"], test["cols"], test["values"],
        test["labels"], spec.features, chunk_rows=256)
    return model.history.total_time_s, model.accuracy(test_samples)


def _train_mllib(ctx, data):
    spec = data["spec"]
    train = data["train"]
    model = LogisticRegressionMLlib(
        step_size=STEP_SIZE, tolerance=TOLERANCE,
        max_iterations=MAX_ITERATIONS,
        driver_memory_bytes=PAPER_DRIVER_BYTES // spec.scale,
        executor_memory_bytes=PAPER_EXECUTOR_BYTES // spec.scale)
    matrix, labels = model.ingest(
        ctx, train["rows"], train["cols"], train["values"],
        train["labels"], spec.features)
    model.fit(matrix, labels)
    test = data["test"]
    test_matrix = LogisticRegressionMLlib(
        executor_memory_bytes=PAPER_EXECUTOR_BYTES)
    test_m, test_labels = test_matrix.ingest(
        ctx, test["rows"], test["cols"], test["values"],
        test["labels"], spec.features)
    return (sum(model.iteration_times_s),
            model.accuracy(test_m, test_labels))


def test_table3(benchmark):
    ctx = fresh_context()

    def run():
        table = {}
        for name in DATASETS:
            data = scaled_lr_dataset(name, seed=0)
            table[(name, "Spangle")] = run_measured(
                ctx, _train_spangle, ctx, data)
            table[(name, "MLlib")] = run_measured(
                ctx, _train_mllib, ctx, data)
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name in DATASETS:
        spec = LR_SPECS[name]
        for system in ("Spangle", "MLlib"):
            cell = table[(name, system)]
            if cell.failed:
                rows.append([name, system, "-", "-", cell.failed])
            else:
                train_s, acc = cell.value
                rows.append([name, system, f"{train_s:.2f}s",
                             f"{acc * 100:.2f}%", ""])
    print_table(
        "Table III — logistic regression (scaled datasets)",
        ["dataset", "system", "train time", "test accuracy", "note"],
        rows)

    # Spangle completes all three datasets
    for name in DATASETS:
        assert table[(name, "Spangle")].failed is None, name
        _time, acc = table[(name, "Spangle")].value
        spec = LR_SPECS[name]
        # within a few points of the paper's accuracy, same ordering
        assert acc > spec.paper_accuracy - 0.06, (name, acc)

    # MLlib completes only the URL-like dataset
    assert table[("url", "MLlib")].failed is None
    assert table[("kddcup2010", "MLlib")].failed is not None
    assert table[("kddcup2012", "MLlib")].failed is not None

    # on the shared dataset, accuracies are comparable
    _spangle_time, spangle_acc = table[("url", "Spangle")].value
    _mllib_time, mllib_acc = table[("url", "MLlib")].value
    assert abs(spangle_acc - mllib_acc) < 0.08

    # accuracy ordering across datasets matches the paper:
    # kddcup2010 < url < kddcup2012
    accs = {name: table[(name, "Spangle")].value[1]
            for name in DATASETS}
    assert accs["kddcup2010"] < accs["url"] < accs["kddcup2012"]
