"""Telemetry overhead — the sampler must be invisible to the workload.

Mirrors ``test_trace_overhead.py``: the fused 4-operator chain runs
with telemetry off and with a **250 ms background sampler** on (the
interval ISSUE 8 pins for live dashboards), and the sampled run may
not be slower than the plain run beyond timer noise
(``wall_sampled <= wall_plain * 1.05``, min-over-repeats on both
sides; each repeat times a block of chain executions long enough for
sampler ticks to land inside the measured window). Results must be
byte-identical — the sampler is read-only.

The sampled run records its telemetry to ``<base>.telemetry.jsonl``
(replayable with ``repro top``), which CI uploads as an artifact.

Run as a script to emit the JSON artifact::

    PYTHONPATH=src python benchmarks/test_telemetry_overhead.py telemetry-overhead.json
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

if __package__ in (None, ""):
    # allow `python benchmarks/test_telemetry_overhead.py` (the CI
    # smoke job) as well as `pytest benchmarks/`
    import sys

    sys.path.insert(0, os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))

from benchmarks.harness import fresh_context, print_table
from repro.core import ArrayRDD

#: a sampled run may not cost more than this fraction of a plain run
OVERHEAD_CEILING = 1.05
#: the live-dashboard sampler period under test
SAMPLER_INTERVAL_S = 0.25
REPEATS = 5
#: chain executions per timed repeat — stretches each measured window
#: well past the sampler period, so ticks land *inside* the timing and
#: the min-over-repeats is taken over ~100ms blocks instead of ~10ms
#: ones (a single scheduler blip cannot blow the 5% ceiling)
ITERS_PER_REPEAT = 10

SHAPE = (1024, 1024)
CHUNK = (128, 128)
DENSITY = 0.25


def _build_array(ctx) -> ArrayRDD:
    rng = np.random.default_rng(7)
    data = rng.random(SHAPE)
    valid = rng.random(SHAPE) < DENSITY
    return ArrayRDD.from_numpy(ctx, data, CHUNK, valid=valid).materialize()


def _chain(arr: ArrayRDD) -> ArrayRDD:
    """subarray → filter → map → scalar: 4 chunk-local operators."""
    return (arr.subarray((16, 16), (1000, 1000))
               .filter(lambda xs: xs > 0.05)
               .map_values(lambda xs: xs * xs)
            * 10.0)


def _run_mode(telemetry: bool, jsonl_path=None) -> dict:
    ctx = fresh_context(
        8,
        telemetry_interval=SAMPLER_INTERVAL_S if telemetry else None,
        telemetry_path=jsonl_path if telemetry else None)
    arr = _build_array(ctx)
    walls = []
    count = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        for _ in range(ITERS_PER_REPEAT):
            count = _chain(arr).count_valid()
        walls.append(time.perf_counter() - start)
    num_samples = (ctx.telemetry_sampler.store.num_samples()
                   if telemetry else 0)
    health = (ctx.health_monitor.status() if telemetry else "ok")
    ctx.shutdown()
    return {
        "telemetry": telemetry,
        "wall_s": min(walls),
        "walls_s": walls,
        "count": count,
        "num_samples": num_samples,
        "health": health,
    }


def run(jsonl_path=None) -> dict:
    plain = _run_mode(False)
    sampled = _run_mode(True, jsonl_path=jsonl_path)
    overhead = sampled["wall_s"] / max(plain["wall_s"], 1e-9)
    artifact = {
        "shape": list(SHAPE),
        "chunk_shape": list(CHUNK),
        "density": DENSITY,
        "chain_ops": 4,
        "repeats": REPEATS,
        "iters_per_repeat": ITERS_PER_REPEAT,
        "sampler_interval_s": SAMPLER_INTERVAL_S,
        "overhead_ceiling": OVERHEAD_CEILING,
        "sampled_over_plain": overhead,
        "plain": plain,
        "sampled": sampled,
    }
    if jsonl_path:
        artifact["telemetry_log"] = os.path.basename(jsonl_path)
    print_table(
        f"telemetry overhead (fused 4-op chain, "
        f"{SAMPLER_INTERVAL_S * 1e3:.0f}ms sampler)",
        ["mode", "wall (min)", "samples recorded"],
        [
            ["telemetry=off", f"{plain['wall_s'] * 1e3:.2f}ms",
             plain["num_samples"]],
            ["telemetry=on", f"{sampled['wall_s'] * 1e3:.2f}ms",
             sampled["num_samples"]],
            ["sampled/plain", f"{overhead:.3f}x", ""],
        ],
    )
    return artifact


def test_telemetry_overhead():
    artifact = run()
    plain, sampled = artifact["plain"], artifact["sampled"]
    # byte-identical results: the sampler only reads
    assert plain["count"] == sampled["count"]
    assert plain["num_samples"] == 0
    assert sampled["num_samples"] >= 1
    assert sampled["wall_s"] <= plain["wall_s"] * OVERHEAD_CEILING, (
        f"telemetry=on ran {sampled['wall_s']:.4f}s vs "
        f"{plain['wall_s']:.4f}s plain — the sampler is perturbing "
        f"the workload")


def main(json_path: str = None) -> dict:
    jsonl_path = None
    if json_path:
        base, _ = os.path.splitext(json_path)
        jsonl_path = base + ".telemetry.jsonl"
    artifact = run(jsonl_path=jsonl_path)
    if json_path:
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2)
    print(json.dumps(artifact, indent=2))
    return artifact


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else None)
